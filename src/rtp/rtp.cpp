#include "rtp/rtp.hpp"

#include "common/time.hpp"
#include "netflow/bytes.hpp"

namespace vcaqoe::rtp {

void encode(const RtpHeader& h, std::vector<std::uint8_t>& out) {
  netflow::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(kRtpVersion << 6));  // V=2, P=0, X=0, CC=0
  w.u8(static_cast<std::uint8_t>((h.marker ? 0x80 : 0x00) |
                                 (h.payloadType & 0x7F)));
  w.u16(h.sequenceNumber);
  w.u32(h.timestamp);
  w.u32(h.ssrc);
}

std::optional<RtpHeader> decode(std::span<const std::uint8_t> data) {
  if (data.size() < kRtpHeaderSize) return std::nullopt;
  if ((data[0] >> 6) != kRtpVersion) return std::nullopt;
  netflow::ByteReader r(data);
  r.skip(1);
  const std::uint8_t mpt = r.u8();
  RtpHeader h;
  h.marker = (mpt & 0x80) != 0;
  h.payloadType = mpt & 0x7F;
  h.sequenceNumber = r.u16();
  h.timestamp = r.u32();
  h.ssrc = r.u32();
  return h;
}

std::int32_t sequenceDistance(std::uint16_t a, std::uint16_t b) {
  const std::int32_t d = static_cast<std::int32_t>(b) - a;
  if (d > 32767) return d - 65536;
  if (d < -32768) return d + 65536;
  return d;
}

std::int64_t timestampDeltaToNs(std::uint32_t from, std::uint32_t to,
                                std::uint32_t clockHz) {
  // Unwrap modulo-2^32; deltas in a call are far below half the ring.
  std::int64_t d = static_cast<std::int64_t>(to) - static_cast<std::int64_t>(from);
  if (d > (1LL << 31)) d -= (1LL << 32);
  if (d < -(1LL << 31)) d += (1LL << 32);
  return d * common::kNanosPerSecond / static_cast<std::int64_t>(clockHz);
}

}  // namespace vcaqoe::rtp
