#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

/// Media-kind taxonomy and payload-type mapping.
///
/// The ground truth for media classification (paper §3.1) is the RTP
/// `payload type` header; each VCA uses its own numbering, and the numbering
/// differs between the in-lab and real-world captures (§5.2). This module
/// provides the registry both the simulator and the evaluation use.
namespace vcaqoe::rtp {

enum class MediaKind : std::uint8_t {
  kAudio,     // OPUS voice stream
  kVideo,     // primary video stream
  kVideoRtx,  // video retransmission stream (incl. 304-byte keep-alives)
  kControl,   // DTLS/STUN/handshake datagrams (no RTP header)
};

std::string toString(MediaKind kind);

/// Bidirectional payload-type <-> media-kind map for one VCA deployment.
class PayloadTypeMap {
 public:
  PayloadTypeMap() = default;

  /// Registers `pt` as carrying `kind`. Re-registering a PT overwrites.
  void assign(std::uint8_t pt, MediaKind kind);

  /// Kind for a payload type; nullopt when the PT is unknown.
  std::optional<MediaKind> kindOf(std::uint8_t pt) const;

  /// The payload type registered for `kind`; nullopt if none.
  std::optional<std::uint8_t> payloadTypeOf(MediaKind kind) const;

 private:
  std::unordered_map<std::uint8_t, MediaKind> ptToKind_;
  std::unordered_map<std::uint8_t, std::uint8_t> kindToPt_;  // key: MediaKind
};

}  // namespace vcaqoe::rtp
