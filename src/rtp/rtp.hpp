#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

/// RFC 3550 RTP fixed-header codec.
///
/// The simulator serializes real RTP headers into each packet's payload
/// prefix; the RTP-baseline estimators and the ground-truth extractors parse
/// them back. The IP/UDP methods never touch this module — that asymmetry is
/// the point of the paper.
namespace vcaqoe::rtp {

inline constexpr std::size_t kRtpHeaderSize = 12;
inline constexpr std::uint8_t kRtpVersion = 2;

/// RTP timestamp clock rate for video codecs (RFC 6184 and friends).
inline constexpr std::uint32_t kVideoClockHz = 90'000;
/// OPUS RTP clock rate (RFC 7587).
inline constexpr std::uint32_t kAudioClockHz = 48'000;

/// Parsed RTP fixed header. CSRC lists and header extensions are not modeled
/// (WebRTC media packets in this problem carry none that matter for QoE
/// inference; the paper's features use only PT/marker/seq/timestamp/SSRC).
struct RtpHeader {
  std::uint8_t payloadType = 0;  // 7 bits
  bool marker = false;
  std::uint16_t sequenceNumber = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t ssrc = 0;

  friend bool operator==(const RtpHeader&, const RtpHeader&) = default;
};

/// Serializes the 12-byte fixed header (version 2, no padding/extension/CSRC).
void encode(const RtpHeader& h, std::vector<std::uint8_t>& out);

/// Parses a fixed header from the first bytes of a UDP payload. Returns
/// nullopt if the buffer is shorter than 12 bytes or the version is not 2 —
/// which is exactly how a monitor distinguishes RTP media from DTLS/STUN
/// traffic sharing the same flow.
std::optional<RtpHeader> decode(std::span<const std::uint8_t> data);

/// Forward distance from sequence number `a` to `b` in modulo-2^16 space
/// (RFC 3550 §A.1 style). Positive result means b is ahead of a.
std::int32_t sequenceDistance(std::uint16_t a, std::uint16_t b);

/// Converts an RTP timestamp delta to nanoseconds under the given clock.
std::int64_t timestampDeltaToNs(std::uint32_t from, std::uint32_t to,
                                std::uint32_t clockHz);

}  // namespace vcaqoe::rtp
