#include "rtp/media_kind.hpp"

namespace vcaqoe::rtp {

std::string toString(MediaKind kind) {
  switch (kind) {
    case MediaKind::kAudio:
      return "audio";
    case MediaKind::kVideo:
      return "video";
    case MediaKind::kVideoRtx:
      return "video-rtx";
    case MediaKind::kControl:
      return "control";
  }
  return "unknown";
}

void PayloadTypeMap::assign(std::uint8_t pt, MediaKind kind) {
  ptToKind_[pt] = kind;
  kindToPt_[static_cast<std::uint8_t>(kind)] = pt;
}

std::optional<MediaKind> PayloadTypeMap::kindOf(std::uint8_t pt) const {
  const auto it = ptToKind_.find(pt);
  if (it == ptToKind_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint8_t> PayloadTypeMap::payloadTypeOf(
    MediaKind kind) const {
  const auto it = kindToPt_.find(static_cast<std::uint8_t>(kind));
  if (it == kindToPt_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vcaqoe::rtp
