#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "netem/conditions.hpp"

/// Bottleneck-link emulator.
///
/// Models the downstream path the paper emulates with `tc`: a FIFO
/// bottleneck queue whose drain rate follows the per-second throughput
/// schedule, followed by propagation delay with per-packet jitter and
/// Bernoulli loss. Independent per-packet jitter produces packet reordering
/// under high latency jitter — the error source §5.4 identifies.
namespace vcaqoe::netem {

struct LinkStats {
  std::uint64_t offeredPackets = 0;
  std::uint64_t deliveredPackets = 0;
  std::uint64_t randomLosses = 0;
  std::uint64_t queueDrops = 0;
  std::uint64_t offeredBytes = 0;
  std::uint64_t deliveredBytes = 0;
};

struct LinkOptions {
  /// Maximum queueing delay before tail drop (a ~250 ms buffer is typical
  /// for access links; deep enough to show bufferbloat under load).
  common::DurationNs maxQueueDelayNs = common::millisToNs(250.0);
};

class LinkEmulator {
 public:
  using Options = LinkOptions;

  LinkEmulator(ConditionSchedule schedule, std::uint64_t seed,
               Options options = {});

  /// Offers one packet to the link at its departure time. Packets must be
  /// offered in non-decreasing departure order. Returns the arrival time at
  /// the receiver, or nullopt if the packet was dropped (queue overflow or
  /// random loss).
  std::optional<common::TimeNs> send(common::TimeNs departureNs,
                                     std::uint32_t sizeBytes);

  /// Instantaneous queueing delay a packet offered at `t` would experience.
  common::DurationNs currentQueueDelay(common::TimeNs t) const;

  /// Fraction of offered packets lost in the last completed window the
  /// sender's congestion controller samples (randomly lost + queue drops).
  double recentLossRate() const;

  /// Delivery rate (kbps) observed over the sender's last feedback interval.
  double recentDeliveryRateKbps() const;

  /// Marks the end of a sender feedback interval; recent* accessors report
  /// over the interval just closed.
  void rollFeedbackWindow(common::TimeNs now);

  const LinkStats& stats() const { return stats_; }
  const ConditionSchedule& schedule() const { return schedule_; }

 private:
  ConditionSchedule schedule_;
  common::Rng rng_;
  Options options_;
  LinkStats stats_;

  common::TimeNs queueFreeAt_ = 0;

  // Feedback-interval accounting.
  std::uint64_t windowOffered_ = 0;
  std::uint64_t windowLost_ = 0;
  std::uint64_t windowDeliveredBytes_ = 0;
  common::TimeNs windowStart_ = 0;
  double lastWindowLossRate_ = 0.0;
  double lastWindowRateKbps_ = 0.0;
};

}  // namespace vcaqoe::netem
