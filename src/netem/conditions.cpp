#include "netem/conditions.hpp"

#include <algorithm>
#include <cmath>

namespace vcaqoe::netem {

ConditionSchedule ConditionSchedule::constant(const SecondCondition& c,
                                              std::size_t durationSec) {
  return ConditionSchedule(std::vector<SecondCondition>(durationSec, c));
}

const SecondCondition& ConditionSchedule::at(common::TimeNs t) const {
  static const SecondCondition kDefault{};
  if (seconds_.empty()) return kDefault;
  const std::int64_t idx = common::secondIndex(std::max<common::TimeNs>(t, 0));
  const std::size_t clamped =
      std::min(static_cast<std::size_t>(idx), seconds_.size() - 1);
  return seconds_[clamped];
}

ConditionSchedule NdtTraceSynthesizer::synthesize(std::size_t durationSec) {
  // Per-test parameters, mirroring the spread of sub-10 Mbps NDT tests.
  const double meanKbps = std::exp(rng_.uniform(std::log(300.0), std::log(9'500.0)));
  const double cv = rng_.uniform(0.08, 0.45);  // coefficient of variation
  const double stdevKbps = meanKbps * cv;
  const double baseRttMs = rng_.uniform(8.0, 90.0);
  const bool lossyTest = rng_.bernoulli(0.25);
  const double episodeLoss = lossyTest ? rng_.uniform(0.003, 0.04) : 0.0;

  std::vector<SecondCondition> seconds;
  seconds.reserve(durationSec);

  // AR(1) walk for throughput; RTT inflates when throughput sags (queue
  // build-up), which is what tcp-info sequences show.
  double walk = 0.0;
  const double phi = 0.7;
  bool inLossEpisode = false;
  for (std::size_t i = 0; i < durationSec; ++i) {
    walk = phi * walk + rng_.normal(0.0, stdevKbps * std::sqrt(1 - phi * phi));
    SecondCondition c;
    c.throughputKbps = std::max(100.0, meanKbps + walk);
    const double sag = std::max(0.0, (meanKbps - c.throughputKbps) / meanKbps);
    c.delayMs = baseRttMs / 2.0 * (1.0 + 2.5 * sag);
    c.jitterMs = rng_.uniform(0.3, 3.0) + 12.0 * sag;
    if (inLossEpisode) {
      c.lossRate = episodeLoss;
      if (rng_.bernoulli(0.4)) inLossEpisode = false;
    } else {
      c.lossRate = 0.0;
      if (episodeLoss > 0.0 && rng_.bernoulli(0.08)) inLossEpisode = true;
    }
    seconds.push_back(c);
  }
  return ConditionSchedule(std::move(seconds));
}

namespace {
constexpr double kDefaultThroughputKbps = 1'500.0;
constexpr double kDefaultDelayMs = 50.0;
}  // namespace

ConditionSchedule meanThroughputProfile(double kbps, std::size_t durationSec) {
  SecondCondition c;
  c.throughputKbps = kbps;
  c.delayMs = kDefaultDelayMs;
  return ConditionSchedule::constant(c, durationSec);
}

ConditionSchedule throughputStdevProfile(double kbpsStdev,
                                         std::size_t durationSec) {
  // Per-second throughput drawn around the 1500 kbps default. Deterministic
  // pseudo-random sequence derived from the stdev so repeated calls with the
  // same parameters yield the same schedule.
  common::Rng rng(0x7470ULL ^ static_cast<std::uint64_t>(kbpsStdev * 1e3));
  std::vector<SecondCondition> seconds(durationSec);
  for (auto& c : seconds) {
    c.throughputKbps = std::max(
        100.0, rng.normal(kDefaultThroughputKbps, kbpsStdev));
    c.delayMs = kDefaultDelayMs;
  }
  return ConditionSchedule(std::move(seconds));
}

ConditionSchedule meanLatencyProfile(double delayMs, std::size_t durationSec) {
  SecondCondition c;
  c.throughputKbps = kDefaultThroughputKbps;
  c.delayMs = delayMs;
  return ConditionSchedule::constant(c, durationSec);
}

ConditionSchedule latencyStdevProfile(double jitterMs,
                                      std::size_t durationSec) {
  SecondCondition c;
  c.throughputKbps = kDefaultThroughputKbps;
  c.delayMs = kDefaultDelayMs;
  c.jitterMs = jitterMs;
  return ConditionSchedule::constant(c, durationSec);
}

ConditionSchedule packetLossProfile(double lossPct, std::size_t durationSec) {
  SecondCondition c;
  c.throughputKbps = kDefaultThroughputKbps;
  c.delayMs = kDefaultDelayMs;
  c.lossRate = lossPct / 100.0;
  return ConditionSchedule::constant(c, durationSec);
}

const std::vector<ImpairmentSweep>& impairmentSweeps() {
  static const std::vector<ImpairmentSweep> kSweeps = {
      {"Mean Throughput", "throughput_kbps",
       {100, 200, 500, 1000, 2000, 4000}, &meanThroughputProfile},
      {"Throughput stdev.", "throughput_stdev_kbps",
       {0, 100, 200, 500, 1000, 1500}, &throughputStdevProfile},
      {"Mean Latency", "delay_ms", {50, 100, 200, 300, 400, 500},
       &meanLatencyProfile},
      {"Latency stdev.", "jitter_ms",
       {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, &latencyStdevProfile},
      {"Packet Loss %", "loss_pct", {1, 2, 5, 10, 15, 20}, &packetLossProfile},
  };
  return kSweeps;
}

const std::vector<AccessNetworkProfile>& householdProfiles() {
  // 15 households across neighbourhoods/ISPs/speed tiers (§4.2). Values are
  // synthetic but span the access tiers a major US city exhibits.
  static const std::vector<AccessNetworkProfile> kHouseholds = {
      {"dsl-25", 25'000, 2'500, 22.0, 2.5, 0.0008, 0.020, 0.75},
      {"dsl-50", 50'000, 4'000, 18.0, 2.0, 0.0005, 0.015, 0.70},
      {"cable-100a", 100'000, 8'000, 12.0, 1.5, 0.0003, 0.012, 0.65},
      {"cable-100b", 100'000, 12'000, 14.0, 2.2, 0.0006, 0.018, 0.70},
      {"cable-200a", 200'000, 15'000, 11.0, 1.2, 0.0002, 0.010, 0.60},
      {"cable-200b", 200'000, 10'000, 13.0, 1.8, 0.0004, 0.014, 0.65},
      {"cable-400", 400'000, 20'000, 10.0, 1.0, 0.0002, 0.008, 0.55},
      {"fiber-300", 300'000, 9'000, 6.0, 0.6, 0.0001, 0.005, 0.50},
      {"fiber-500", 500'000, 12'000, 5.0, 0.5, 0.0001, 0.004, 0.45},
      {"fiber-940a", 940'000, 18'000, 4.0, 0.4, 0.0001, 0.003, 0.40},
      {"fiber-940b", 940'000, 22'000, 4.5, 0.5, 0.0001, 0.003, 0.40},
      {"wisp-30", 30'000, 6'000, 28.0, 4.0, 0.0015, 0.030, 0.80},
      {"lte-40", 40'000, 10'000, 35.0, 5.5, 0.0020, 0.035, 0.85},
      {"cable-60", 60'000, 7'000, 16.0, 2.4, 0.0007, 0.016, 0.70},
      {"fiber-100", 100'000, 4'000, 7.0, 0.7, 0.0001, 0.006, 0.50},
  };
  return kHouseholds;
}

ConditionSchedule householdSchedule(const AccessNetworkProfile& profile,
                                    std::size_t durationSec,
                                    common::Rng& rng) {
  std::vector<SecondCondition> seconds;
  seconds.reserve(durationSec);
  int dipRemaining = 0;
  for (std::size_t i = 0; i < durationSec; ++i) {
    SecondCondition c;
    c.throughputKbps = std::max(
        500.0, rng.normal(profile.downKbpsMean, profile.downKbpsStdev));
    c.delayMs = std::max(1.0, rng.normal(profile.baseDelayMs,
                                         profile.baseDelayMs * 0.05));
    c.jitterMs = std::max(0.05, rng.normal(profile.jitterMs,
                                           profile.jitterMs * 0.2));
    c.lossRate = profile.lossRate;
    if (dipRemaining > 0) {
      --dipRemaining;
      c.throughputKbps *= (1.0 - profile.dipSeverity);
      c.jitterMs += rng.uniform(2.0, 12.0);
      c.lossRate += rng.uniform(0.002, 0.02);
    } else if (rng.bernoulli(profile.dipProbability)) {
      dipRemaining = static_cast<int>(rng.uniformInt(1, 4));
    }
    seconds.push_back(c);
  }
  return ConditionSchedule(std::move(seconds));
}

}  // namespace vcaqoe::netem
