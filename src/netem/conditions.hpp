#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

/// Network-condition schedules.
///
/// The paper emulates dynamic conditions by replaying per-second
/// {throughput, RTT, loss} sequences derived from M-Lab NDT tcp-info traces
/// (§4.2), and runs controlled single-parameter sweeps for the sensitivity
/// study (Table A.6). Both are reproduced here as `ConditionSchedule`s the
/// link emulator consumes.
namespace vcaqoe::netem {

/// Conditions held for one second of emulation.
struct SecondCondition {
  double throughputKbps = 10'000.0;  // bottleneck capacity
  double delayMs = 25.0;             // one-way propagation delay
  double jitterMs = 0.0;             // stdev of per-packet delay variation
  double lossRate = 0.0;             // Bernoulli loss probability
};

/// A per-second sequence of conditions; second `i` applies to simulation time
/// [i, i+1) seconds. Lookups beyond the end hold the last value.
class ConditionSchedule {
 public:
  ConditionSchedule() = default;
  explicit ConditionSchedule(std::vector<SecondCondition> seconds)
      : seconds_(std::move(seconds)) {}

  /// Uniform conditions for `durationSec` seconds.
  static ConditionSchedule constant(const SecondCondition& c,
                                    std::size_t durationSec);

  const SecondCondition& at(common::TimeNs t) const;
  std::size_t durationSec() const { return seconds_.size(); }
  bool empty() const { return seconds_.empty(); }
  const std::vector<SecondCondition>& seconds() const { return seconds_; }
  std::vector<SecondCondition>& seconds() { return seconds_; }

 private:
  std::vector<SecondCondition> seconds_;
};

/// Synthesizes NDT-like condition sequences for the in-lab dataset.
///
/// Mirrors §4.2: per-test mean/variance throughput with per-second samples
/// drawn from a normal distribution around an AR(1)-correlated walk, an
/// RTT sequence with congestion-correlated bloat, and bursty loss episodes.
/// Only traces with mean speed below 10 Mbps are produced ("challenging
/// network conditions").
class NdtTraceSynthesizer {
 public:
  explicit NdtTraceSynthesizer(std::uint64_t seed) : rng_(seed) {}

  /// One synthetic NDT-derived schedule of the given duration.
  ConditionSchedule synthesize(std::size_t durationSec);

 private:
  common::Rng rng_;
};

/// One impairment sweep of Table A.6: the varied parameter's values plus the
/// fixed defaults (throughput 1500 kbps, delay 50 ms, loss 0%).
struct ImpairmentSweep {
  std::string name;           // e.g. "Packet Loss %"
  std::string parameterName;  // e.g. "loss"
  std::vector<double> values;
  /// Builds the schedule for one swept value.
  ConditionSchedule (*make)(double value, std::size_t durationSec);
};

/// All five sweeps of Table A.6, in paper order: mean throughput, throughput
/// stdev, mean latency, latency stdev, packet loss.
const std::vector<ImpairmentSweep>& impairmentSweeps();

/// Individual Table A.6 profile builders (also reachable via
/// impairmentSweeps(); exposed for direct use in tests and benches).
ConditionSchedule meanThroughputProfile(double kbps, std::size_t durationSec);
ConditionSchedule throughputStdevProfile(double kbpsStdev,
                                         std::size_t durationSec);
ConditionSchedule meanLatencyProfile(double delayMs, std::size_t durationSec);
ConditionSchedule latencyStdevProfile(double jitterMs,
                                      std::size_t durationSec);
ConditionSchedule packetLossProfile(double lossPct, std::size_t durationSec);

/// Parameters of one real-world access network (a "household" in §4.2).
struct AccessNetworkProfile {
  std::string ispTier;        // label only
  double downKbpsMean = 0.0;  // steady-state capacity
  double downKbpsStdev = 0.0;
  double baseDelayMs = 0.0;
  double jitterMs = 0.0;
  double lossRate = 0.0;
  double dipProbability = 0.0;  // chance per second of a transient dip
  double dipSeverity = 0.0;     // fraction of capacity lost during a dip
};

/// The 15 household profiles used for the real-world dataset: a spread of
/// speed tiers (25 Mbps DSL through 940 Mbps fiber) and ISP behaviours,
/// generally far better than the <10 Mbps lab conditions — which is what
/// produces the paper's "higher QoE in the wild" observation (Fig A.2).
const std::vector<AccessNetworkProfile>& householdProfiles();

/// Draws a schedule for one call on the given household network.
ConditionSchedule householdSchedule(const AccessNetworkProfile& profile,
                                    std::size_t durationSec, common::Rng& rng);

}  // namespace vcaqoe::netem
