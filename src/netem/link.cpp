#include "netem/link.hpp"

#include <algorithm>

namespace vcaqoe::netem {

LinkEmulator::LinkEmulator(ConditionSchedule schedule, std::uint64_t seed,
                           Options options)
    : schedule_(std::move(schedule)), rng_(seed), options_(options) {}

std::optional<common::TimeNs> LinkEmulator::send(common::TimeNs departureNs,
                                                 std::uint32_t sizeBytes) {
  ++stats_.offeredPackets;
  stats_.offeredBytes += sizeBytes;
  ++windowOffered_;

  const SecondCondition& cond = schedule_.at(departureNs);

  // Random (Bernoulli) loss, applied before queueing like tc's netem stage.
  if (rng_.bernoulli(cond.lossRate)) {
    ++stats_.randomLosses;
    ++windowLost_;
    return std::nullopt;
  }

  // Bottleneck FIFO: serialization at the scheduled capacity.
  const double bitsPerNs = cond.throughputKbps * 1e3 / 1e9;
  const auto serviceNs = static_cast<common::DurationNs>(
      static_cast<double>(sizeBytes) * 8.0 / std::max(bitsPerNs, 1e-12));
  const common::TimeNs startService = std::max(departureNs, queueFreeAt_);
  const common::DurationNs queueDelay = startService - departureNs;
  if (queueDelay > options_.maxQueueDelayNs) {
    ++stats_.queueDrops;
    ++windowLost_;
    return std::nullopt;
  }
  queueFreeAt_ = startService + serviceNs;

  // Propagation + per-packet jitter (truncated at zero extra delay). Jitter
  // is independent per packet, so large jitter reorders packets.
  const double jitterMs = std::max(0.0, rng_.normal(0.0, cond.jitterMs));
  const common::TimeNs arrival = queueFreeAt_ +
                                 common::millisToNs(cond.delayMs) +
                                 common::millisToNs(jitterMs);

  ++stats_.deliveredPackets;
  stats_.deliveredBytes += sizeBytes;
  windowDeliveredBytes_ += sizeBytes;
  return arrival;
}

common::DurationNs LinkEmulator::currentQueueDelay(common::TimeNs t) const {
  return std::max<common::DurationNs>(0, queueFreeAt_ - t);
}

double LinkEmulator::recentLossRate() const { return lastWindowLossRate_; }

double LinkEmulator::recentDeliveryRateKbps() const {
  return lastWindowRateKbps_;
}

void LinkEmulator::rollFeedbackWindow(common::TimeNs now) {
  const common::DurationNs span = std::max<common::DurationNs>(
      now - windowStart_, common::kNanosPerMilli);
  lastWindowLossRate_ =
      windowOffered_ ? static_cast<double>(windowLost_) /
                           static_cast<double>(windowOffered_)
                     : 0.0;
  lastWindowRateKbps_ = static_cast<double>(windowDeliveredBytes_) * 8.0 /
                        common::nsToSeconds(span) / 1e3;
  windowOffered_ = 0;
  windowLost_ = 0;
  windowDeliveredBytes_ = 0;
  windowStart_ = now;
}

}  // namespace vcaqoe::netem
