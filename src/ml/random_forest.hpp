#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

/// Random forests — the model family the paper settles on after comparing
/// SVMs, decision trees, and random forests (§4.3): bootstrap-bagged CART
/// trees with per-split feature subsampling, plus impurity-based feature
/// importance (Figs 5, 7, 9, A.4-A.9).
namespace vcaqoe::ml {

struct ForestOptions {
  int numTrees = 60;
  TreeOptions tree;
  /// Per-split feature subsample: 0 derives the usual default, sqrt(p) for
  /// classification and max(1, p/3) for regression.
  int maxFeatures = 0;
  /// Trees trained concurrently; 0 = hardware concurrency.
  int threads = 0;
};

class RandomForest {
 public:
  RandomForest() = default;

  void fit(const Dataset& data, TreeTask task, const ForestOptions& options,
           std::uint64_t seed);

  /// Mean of tree outputs (regression) or majority vote (classification).
  double predict(std::span<const double> x) const;
  std::vector<double> predictAll(const Dataset& data) const;

  /// Impurity-decrease importance, normalized to sum to 1.
  std::vector<double> featureImportance() const;

  /// (name, importance) pairs sorted descending; requires the training
  /// dataset to have carried feature names.
  std::vector<std::pair<std::string, double>> rankedImportance() const;

  bool trained() const { return !trees_.empty(); }
  TreeTask task() const { return task_; }
  std::size_t treeCount() const { return trees_.size(); }
  const std::vector<std::string>& featureNames() const {
    return featureNames_;
  }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Persistence support: reconstructs a forest from its parts.
  static RandomForest fromParts(TreeTask task,
                                std::vector<std::string> featureNames,
                                std::vector<DecisionTree> trees,
                                std::vector<double> importance);

 private:
  TreeTask task_ = TreeTask::kRegression;
  std::vector<DecisionTree> trees_;
  std::vector<double> importance_;  // normalized
  std::vector<std::string> featureNames_;
};

/// One fold of cross-validated predictions.
struct CvPrediction {
  std::vector<double> predicted;  // aligned with Dataset rows
  std::vector<double> truth;
};

/// K-fold cross-validated out-of-fold predictions (the paper reports all
/// accuracy numbers over 5-fold CV). Returned vectors align with the
/// dataset's row order.
CvPrediction crossValidate(const Dataset& data, TreeTask task,
                           const ForestOptions& options, int folds,
                           std::uint64_t seed);

}  // namespace vcaqoe::ml
