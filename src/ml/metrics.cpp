#include "ml/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcaqoe::ml {

ConfusionMatrix::ConfusionMatrix(std::span<const double> truth,
                                 std::span<const double> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("ConfusionMatrix: size mismatch");
  }
  std::vector<int> labelSet;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = static_cast<int>(truth[i]);
    const int p = static_cast<int>(predicted[i]);
    ++counts_[{t, p}];
    ++rowTotals_[t];
    if (t == p) ++correct_;
    ++total_;
    labelSet.push_back(t);
    labelSet.push_back(p);
  }
  std::sort(labelSet.begin(), labelSet.end());
  labelSet.erase(std::unique(labelSet.begin(), labelSet.end()),
                 labelSet.end());
  labels_ = std::move(labelSet);
}

std::size_t ConfusionMatrix::count(int truthLabel, int predictedLabel) const {
  const auto it = counts_.find({truthLabel, predictedLabel});
  return it == counts_.end() ? 0 : it->second;
}

std::size_t ConfusionMatrix::rowTotal(int truthLabel) const {
  const auto it = rowTotals_.find(truthLabel);
  return it == rowTotals_.end() ? 0 : it->second;
}

double ConfusionMatrix::rowFraction(int truthLabel, int predictedLabel) const {
  const std::size_t total = rowTotal(truthLabel);
  if (total == 0) return 0.0;
  return static_cast<double>(count(truthLabel, predictedLabel)) /
         static_cast<double>(total);
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(correct_) / static_cast<double>(total_);
}

int teamsResolutionBin(int frameHeight) {
  if (frameHeight <= 240) return 0;
  if (frameHeight <= 480) return 1;
  return 2;
}

std::string teamsResolutionBinName(int bin) {
  switch (bin) {
    case 0:
      return "Low";
    case 1:
      return "Medium";
    case 2:
      return "High";
    default:
      return "?";
  }
}

}  // namespace vcaqoe::ml
