#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

/// Classification metrics: the paper reports resolution as overall accuracy
/// (Table 3) plus row-normalized confusion matrices (Tables 4, A.3).
namespace vcaqoe::ml {

class ConfusionMatrix {
 public:
  /// Builds from parallel truth/prediction label sequences (labels are
  /// arbitrary ints, e.g. frame heights or bin ids).
  ConfusionMatrix(std::span<const double> truth,
                  std::span<const double> predicted);

  /// Sorted distinct labels.
  const std::vector<int>& labels() const { return labels_; }
  /// Count of rows with truth `t` predicted as `p`.
  std::size_t count(int truthLabel, int predictedLabel) const;
  /// Total rows with the given truth label.
  std::size_t rowTotal(int truthLabel) const;
  /// Row-normalized fraction (the percentage cells of Tables 2/4/A.3).
  double rowFraction(int truthLabel, int predictedLabel) const;
  /// Overall accuracy.
  double accuracy() const;
  std::size_t total() const { return total_; }

 private:
  std::vector<int> labels_;
  std::map<std::pair<int, int>, std::size_t> counts_;
  std::map<int, std::size_t> rowTotals_;
  std::size_t correct_ = 0;
  std::size_t total_ = 0;
};

/// Maps a Teams frame height to the paper's three resolution classes:
/// low (<= 240), medium ((240, 480]), high (> 480). Returns 0/1/2.
int teamsResolutionBin(int frameHeight);

/// Human-readable names for the Teams bins.
std::string teamsResolutionBinName(int bin);

}  // namespace vcaqoe::ml
