#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

/// CART decision trees (regression via variance reduction, classification
/// via Gini impurity) — the base learner of the random forests the paper's
/// ML methods use (§4.3).
namespace vcaqoe::ml {

enum class TreeTask : std::uint8_t { kRegression, kClassification };

struct TreeOptions {
  int maxDepth = 18;
  int minSamplesLeaf = 2;
  int minSamplesSplit = 4;
  /// Number of features examined per split; 0 = all (single tree), forests
  /// pass sqrt(p) (classification) or p/3 (regression).
  int maxFeatures = 0;
};

class DecisionTree {
 public:
  /// Fits on the rows of `data` selected by `sampleIdx` (with repetition
  /// allowed — bagging passes bootstrap samples).
  void fit(const Dataset& data, std::span<const std::size_t> sampleIdx,
           TreeTask task, const TreeOptions& options, common::Rng& rng);

  double predict(std::span<const double> x) const;

  /// Total impurity decrease credited to each feature during training
  /// (unnormalized; forests aggregate and normalize).
  const std::vector<double>& featureImportance() const { return importance_; }

  std::size_t nodeCount() const { return nodes_.size(); }
  bool trained() const { return !nodes_.empty(); }

  /// Serialized node layout (also the in-memory layout; exposed for model
  /// persistence).
  struct Node {
    // Leaf when featureIndex < 0.
    std::int32_t featureIndex = -1;
    double threshold = 0.0;  // go left when x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  // mean (regression) or majority class id

    friend bool operator==(const Node&, const Node&) = default;
  };

  /// Persistence support: raw node access and reconstruction.
  const std::vector<Node>& nodes() const { return nodes_; }
  static DecisionTree fromNodes(std::vector<Node> nodes, TreeTask task,
                                std::vector<double> importance);

 private:

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& idx,
                     std::size_t begin, std::size_t end, int depth,
                     common::Rng& rng);

  TreeTask task_ = TreeTask::kRegression;
  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t totalSamples_ = 0;
};

}  // namespace vcaqoe::ml
