#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <thread>

#include "common/load.hpp"

namespace vcaqoe::ml {

void RandomForest::fit(const Dataset& data, TreeTask task,
                       const ForestOptions& options, std::uint64_t seed) {
  if (data.rows() == 0) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  task_ = task;
  featureNames_ = data.featureNames;

  const std::size_t p = data.cols();
  TreeOptions treeOptions = options.tree;
  if (options.maxFeatures > 0) {
    treeOptions.maxFeatures = options.maxFeatures;
  } else if (treeOptions.maxFeatures == 0) {
    treeOptions.maxFeatures =
        task == TreeTask::kClassification
            ? std::max(1, static_cast<int>(std::sqrt(static_cast<double>(p))))
            : std::max(1, static_cast<int>(p) / 3);
  }

  const int numTrees = std::max(1, options.numTrees);
  trees_.assign(static_cast<std::size_t>(numTrees), DecisionTree{});

  // Derive an independent seed per tree so training order / threading does
  // not change results.
  common::Rng seeder(seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(numTrees));
  for (auto& s : seeds) {
    s = static_cast<std::uint64_t>(seeder.engine()());
  }

  const int threads =
      options.threads > 0 ? options.threads
                          : static_cast<int>(common::hardwareThreadsOr(1));

  auto trainRange = [&](int from, int to) {
    for (int t = from; t < to; ++t) {
      common::Rng rng(seeds[static_cast<std::size_t>(t)]);
      // Bootstrap sample (with replacement) of the training rows.
      std::vector<std::size_t> sample(data.rows());
      for (auto& s : sample) {
        s = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(data.rows()) - 1));
      }
      trees_[static_cast<std::size_t>(t)].fit(data, sample, task, treeOptions,
                                              rng);
    }
  };

  if (threads <= 1 || numTrees == 1) {
    trainRange(0, numTrees);
  } else {
    std::vector<std::thread> pool;
    const int chunk = (numTrees + threads - 1) / threads;
    for (int from = 0; from < numTrees; from += chunk) {
      pool.emplace_back(trainRange, from, std::min(numTrees, from + chunk));
    }
    for (auto& th : pool) th.join();
  }

  // Aggregate and normalize importance.
  importance_.assign(p, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.featureImportance();
    for (std::size_t f = 0; f < p; ++f) importance_[f] += imp[f];
  }
  double total = 0.0;
  for (const double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

RandomForest RandomForest::fromParts(TreeTask task,
                                     std::vector<std::string> featureNames,
                                     std::vector<DecisionTree> trees,
                                     std::vector<double> importance) {
  RandomForest forest;
  forest.task_ = task;
  forest.featureNames_ = std::move(featureNames);
  forest.trees_ = std::move(trees);
  forest.importance_ = std::move(importance);
  return forest;
}

double RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict before fit");
  }
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    for (const auto& tree : trees_) sum += tree.predict(x);
    return sum / static_cast<double>(trees_.size());
  }
  std::map<int, int> votes;
  for (const auto& tree : trees_) {
    ++votes[static_cast<int>(tree.predict(x))];
  }
  int best = 0;
  int bestVotes = -1;
  for (const auto& [cls, count] : votes) {
    if (count > bestVotes) {
      best = cls;
      bestVotes = count;
    }
  }
  return static_cast<double>(best);
}

std::vector<double> RandomForest::predictAll(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.rows());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

std::vector<double> RandomForest::featureImportance() const {
  return importance_;
}

std::vector<std::pair<std::string, double>> RandomForest::rankedImportance()
    const {
  std::vector<std::pair<std::string, double>> ranked;
  for (std::size_t f = 0; f < importance_.size(); ++f) {
    const std::string name = f < featureNames_.size()
                                 ? featureNames_[f]
                                 : "feature_" + std::to_string(f);
    ranked.emplace_back(name, importance_[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

CvPrediction crossValidate(const Dataset& data, TreeTask task,
                           const ForestOptions& options, int folds,
                           std::uint64_t seed) {
  data.validate();
  common::Rng rng(seed);
  const auto assignment = kFoldAssignment(data.rows(), folds, rng);

  CvPrediction result;
  result.predicted.assign(data.rows(), 0.0);
  result.truth = data.y;

  for (int fold = 0; fold < folds; ++fold) {
    const auto split = foldIndices(assignment, fold);
    if (split.test.empty() || split.train.empty()) continue;
    const Dataset trainSet = data.subset(split.train);
    RandomForest forest;
    forest.fit(trainSet, task, options,
               seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                                   fold + 1)));
    for (const std::size_t i : split.test) {
      result.predicted[i] = forest.predict(data.x[i]);
    }
  }
  return result;
}

}  // namespace vcaqoe::ml
