#include "ml/inspection.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace vcaqoe::ml {

namespace {

double modelError(const RandomForest& forest, const Dataset& data) {
  const auto predicted = forest.predictAll(data);
  if (forest.task() == TreeTask::kRegression) {
    return common::meanAbsoluteError(predicted, data.y);
  }
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (static_cast<int>(predicted[i]) != static_cast<int>(data.y[i])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) / static_cast<double>(data.rows());
}

}  // namespace

std::vector<double> permutationImportance(
    const RandomForest& forest, const Dataset& data,
    const PermutationImportanceOptions& options) {
  if (!forest.trained()) {
    throw std::logic_error("permutationImportance: untrained forest");
  }
  data.validate();
  if (data.rows() < 2) {
    throw std::invalid_argument("permutationImportance: too few rows");
  }

  const double baseline = modelError(forest, data);
  const std::size_t p = data.cols();
  std::vector<double> importance(p, 0.0);
  common::Rng rng(options.seed);

  for (std::size_t f = 0; f < p; ++f) {
    double errorSum = 0.0;
    for (int repeat = 0; repeat < std::max(options.repeats, 1); ++repeat) {
      Dataset shuffled = data;
      std::vector<double> column(data.rows());
      for (std::size_t i = 0; i < data.rows(); ++i) column[i] = data.x[i][f];
      rng.shuffle(column);
      for (std::size_t i = 0; i < data.rows(); ++i) {
        shuffled.x[i][f] = column[i];
      }
      errorSum += modelError(forest, shuffled);
    }
    importance[f] =
        errorSum / static_cast<double>(std::max(options.repeats, 1)) -
        baseline;
  }
  return importance;
}

std::vector<std::pair<std::string, double>> rankedPermutationImportance(
    const RandomForest& forest, const Dataset& data,
    const PermutationImportanceOptions& options) {
  const auto importance = permutationImportance(forest, data, options);
  std::vector<std::pair<std::string, double>> ranked;
  for (std::size_t f = 0; f < importance.size(); ++f) {
    const std::string name = f < data.featureNames.size()
                                 ? data.featureNames[f]
                                 : "feature_" + std::to_string(f);
    ranked.emplace_back(name, importance[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

}  // namespace vcaqoe::ml
