#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "ml/flattened_forest.hpp"
#include "ml/random_forest.hpp"

/// Model persistence.
///
/// A deployment (the paper's §7 "system considerations") trains models
/// offline on labeled lab data and ships them to monitoring points; the
/// monitors must load models without retraining. The format is a versioned,
/// line-oriented text format — easy to diff, inspect, and parse without
/// external dependencies.
namespace vcaqoe::ml {

inline constexpr int kModelFormatVersion = 1;

/// Canonical extension of serialized forests; the inference ModelRegistry
/// looks for `<modelDir>/<vca>/<target>.forest`.
inline constexpr const char* kForestFileExtension = ".forest";

/// Serializes a trained forest. Throws std::logic_error if untrained.
void saveForest(const RandomForest& forest, std::ostream& out);
void saveForestFile(const RandomForest& forest, const std::string& path);

/// Deserializes a forest. Throws std::runtime_error on malformed input or
/// version mismatch.
RandomForest loadForest(std::istream& in);
RandomForest loadForestFile(const std::string& path);

/// Lazy-load variant for registries: nullopt when `path` does not exist (a
/// normal miss), but still throws std::runtime_error when the file exists
/// and is malformed — a corrupt deployed model should be loud, a missing
/// one is routine.
std::optional<RandomForest> tryLoadForestFile(const std::string& path);

/// Canonical extension of serialized flattened forests.
inline constexpr const char* kFlatForestFileExtension = ".fforest";

/// Serializes a flattened forest (same versioned line-oriented family as
/// `saveForest`, magic `vcaqoe-forest-flat`, explicit `end` terminator).
/// Throws std::logic_error if untrained.
void saveFlattenedForest(const FlattenedForest& forest, std::ostream& out);
void saveFlattenedForestFile(const FlattenedForest& forest,
                             const std::string& path);

/// Deserializes a flattened forest. Throws std::runtime_error on malformed
/// input, version mismatch, declared counts that disagree with the payload,
/// or trailing payload past the declared counts.
FlattenedForest loadFlattenedForest(std::istream& in);
FlattenedForest loadFlattenedForestFile(const std::string& path);

/// Lazy-load variant mirroring `tryLoadForestFile`: nullopt when `path`
/// does not exist, loud std::runtime_error when it exists but is malformed.
/// The `ModelRegistry` probes `<target>.fforest` before `<target>.forest`.
std::optional<FlattenedForest> tryLoadFlattenedForestFile(
    const std::string& path);

}  // namespace vcaqoe::ml
