#pragma once

#include <iosfwd>
#include <string>

#include "ml/random_forest.hpp"

/// Model persistence.
///
/// A deployment (the paper's §7 "system considerations") trains models
/// offline on labeled lab data and ships them to monitoring points; the
/// monitors must load models without retraining. The format is a versioned,
/// line-oriented text format — easy to diff, inspect, and parse without
/// external dependencies.
namespace vcaqoe::ml {

inline constexpr int kModelFormatVersion = 1;

/// Serializes a trained forest. Throws std::logic_error if untrained.
void saveForest(const RandomForest& forest, std::ostream& out);
void saveForestFile(const RandomForest& forest, const std::string& path);

/// Deserializes a forest. Throws std::runtime_error on malformed input or
/// version mismatch.
RandomForest loadForest(std::istream& in);
RandomForest loadForestFile(const std::string& path);

}  // namespace vcaqoe::ml
