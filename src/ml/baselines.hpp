#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

/// Classical baseline models.
///
/// §4.3 of the paper compares SVMs, decision trees, and random forests and
/// keeps random forests because they are consistently the most accurate.
/// These baselines reproduce that model comparison: a regularized linear
/// model (ridge regression — the linear-SVM-shaped hypothesis class), a
/// k-nearest-neighbour model, and the single CART tree from decision_tree.h.
namespace vcaqoe::ml {

struct RidgeOptions {
  double lambda = 1.0;
};

/// L2-regularized linear least squares with an intercept, solved in closed
/// form. Features are standardized internally.
class RidgeRegression {
 public:
  using Options = RidgeOptions;

  void fit(const Dataset& data, Options options = {});
  double predict(std::span<const double> x) const;
  std::vector<double> predictAll(const Dataset& data) const;
  bool trained() const { return !weights_.empty(); }

 private:
  std::vector<double> weights_;  // per standardized feature
  double intercept_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> scale_;
};

struct KnnOptions {
  int k = 9;
  TreeTask task = TreeTask::kRegression;
};

/// k-nearest neighbours over standardized features; mean of neighbour
/// targets (regression) or majority vote (classification).
class KnnModel {
 public:
  using Options = KnnOptions;

  void fit(const Dataset& data, Options options = {});
  double predict(std::span<const double> x) const;
  std::vector<double> predictAll(const Dataset& data) const;
  bool trained() const { return !x_.empty(); }

 private:
  Options options_;
  std::vector<std::vector<double>> x_;  // standardized training rows
  std::vector<double> y_;
  std::vector<double> mean_;
  std::vector<double> scale_;
};

/// Cross-validated MAE of each baseline plus the forest, used by the model
/// ablation bench. Returned in the order {forest, tree, ridge, knn}.
struct ModelComparison {
  double forestMae = 0.0;
  double treeMae = 0.0;
  double ridgeMae = 0.0;
  double knnMae = 0.0;
};
ModelComparison compareModels(const Dataset& data, TreeTask task, int folds,
                              std::uint64_t seed);

}  // namespace vcaqoe::ml
