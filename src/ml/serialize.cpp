#include "ml/serialize.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vcaqoe::ml {

namespace {

std::string escape(const std::string& name) {
  // Feature names may contain spaces; encode them to keep the format
  // whitespace-delimited.
  std::string out;
  for (const char c : name) {
    if (c == ' ') {
      out += "\\s";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& token) {
  std::string out;
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '\\' && i + 1 < token.size()) {
      out += token[i + 1] == 's' ? ' ' : token[i + 1];
      ++i;
    } else {
      out += token[i];
    }
  }
  return out;
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("model load: " + what);
}

/// Count-vs-payload guard: a stream whose declared tree/node counts
/// undershoot the payload would otherwise silently construct a truncated
/// forest and leave the rest of the file on the floor.
void rejectTrailingPayload(std::istream& in) {
  std::string extra;
  if (in >> extra) {
    malformed("trailing payload past declared counts ('" + extra + "')");
  }
}

/// Declared counts size vectors before any payload is read, so an absurd
/// (or negative, wrapped through unsigned extraction) count must fail as a
/// loud malformed-file error, not as a multi-GB allocation attempt. The
/// bound is far above any real model while keeping the worst-case upfront
/// allocation bounded: 2^24 nodes across the flat loader's four parallel
/// arrays (20 bytes/node) or the node-tree loader's 40-byte AoS nodes is
/// a few hundred MB, not an OOM from a 60-byte corrupt file.
void checkDeclaredCount(std::size_t count, const char* what) {
  constexpr std::size_t kMaxDeclaredCount = std::size_t{1} << 24;
  if (count > kMaxDeclaredCount) {
    malformed(std::string("absurd declared ") + what + " count " +
              std::to_string(count));
  }
}

}  // namespace

void saveForest(const RandomForest& forest, std::ostream& out) {
  if (!forest.trained()) {
    throw std::logic_error("saveForest: forest is untrained");
  }
  out << "vcaqoe-forest " << kModelFormatVersion << '\n';
  out << "task " << (forest.task() == TreeTask::kRegression ? "regression"
                                                            : "classification")
      << '\n';
  out << std::setprecision(17);

  const auto& names = forest.featureNames();
  out << "features " << names.size();
  for (const auto& name : names) out << ' ' << escape(name);
  out << '\n';

  const auto importance = forest.featureImportance();
  out << "importance " << importance.size();
  for (const double v : importance) out << ' ' << v;
  out << '\n';

  out << "trees " << forest.treeCount() << '\n';
  for (const auto& tree : forest.trees()) {
    const auto& nodes = tree.nodes();
    out << "tree " << nodes.size() << '\n';
    for (const auto& node : nodes) {
      out << node.featureIndex << ' ' << node.threshold << ' ' << node.left
          << ' ' << node.right << ' ' << node.value << '\n';
    }
  }
  if (!out) throw std::runtime_error("saveForest: stream write failed");
}

void saveForestFile(const RandomForest& forest, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveForest: cannot open " + path);
  saveForest(forest, out);
}

RandomForest loadForest(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != "vcaqoe-forest") malformed("bad magic '" + magic + "'");
  if (version != kModelFormatVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  std::string key;
  std::string taskName;
  if (!(in >> key >> taskName) || key != "task") malformed("missing task");
  TreeTask task;
  if (taskName == "regression") {
    task = TreeTask::kRegression;
  } else if (taskName == "classification") {
    task = TreeTask::kClassification;
  } else {
    malformed("unknown task '" + taskName + "'");
  }

  std::size_t nameCount = 0;
  if (!(in >> key >> nameCount) || key != "features") {
    malformed("missing features");
  }
  checkDeclaredCount(nameCount, "feature");
  std::vector<std::string> names(nameCount);
  for (auto& name : names) {
    std::string token;
    if (!(in >> token)) malformed("truncated feature names");
    name = unescape(token);
  }

  std::size_t importanceCount = 0;
  if (!(in >> key >> importanceCount) || key != "importance") {
    malformed("missing importance");
  }
  checkDeclaredCount(importanceCount, "importance");
  std::vector<double> importance(importanceCount);
  for (auto& v : importance) {
    if (!(in >> v)) malformed("truncated importance");
  }

  std::size_t treeCount = 0;
  if (!(in >> key >> treeCount) || key != "trees") malformed("missing trees");
  checkDeclaredCount(treeCount, "tree");
  std::vector<DecisionTree> trees;
  trees.reserve(treeCount);
  for (std::size_t t = 0; t < treeCount; ++t) {
    std::size_t nodeCount = 0;
    if (!(in >> key >> nodeCount) || key != "tree") malformed("missing tree");
    checkDeclaredCount(nodeCount, "node");
    if (nodeCount == 0) malformed("empty tree");
    std::vector<DecisionTree::Node> nodes(nodeCount);
    for (auto& node : nodes) {
      if (!(in >> node.featureIndex >> node.threshold >> node.left >>
            node.right >> node.value)) {
        malformed("truncated tree nodes");
      }
      const auto limit = static_cast<std::int32_t>(nodeCount);
      if (node.featureIndex >= 0 &&
          (node.left < 0 || node.left >= limit || node.right < 0 ||
           node.right >= limit ||
           node.featureIndex >= static_cast<std::int32_t>(nameCount))) {
        malformed("node references out of range");
      }
    }
    // Children must point strictly forward (training emits parents before
    // children, so every well-formed file satisfies this). Range checks
    // alone admit cycles — e.g. node 0 with left == right == 0 — which
    // would hang `DecisionTree::predict` and the flattening pass forever
    // on a corrupt or hostile model file.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      const auto self = static_cast<std::int32_t>(i);
      if (node.featureIndex >= 0 && (node.left <= self || node.right <= self)) {
        malformed("node child references do not point forward (cycle)");
      }
    }
    trees.push_back(DecisionTree::fromNodes(std::move(nodes), task, {}));
  }
  rejectTrailingPayload(in);
  return RandomForest::fromParts(task, std::move(names), std::move(trees),
                                 std::move(importance));
}

RandomForest loadForestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadForest: cannot open " + path);
  return loadForest(in);
}

std::optional<RandomForest> tryLoadForestFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return loadForest(in);
}

void saveFlattenedForest(const FlattenedForest& forest, std::ostream& out) {
  if (!forest.trained()) {
    throw std::logic_error("saveFlattenedForest: forest is untrained");
  }
  out << "vcaqoe-forest-flat " << kModelFormatVersion << '\n';
  out << "task "
      << (forest.task() == TreeTask::kRegression ? "regression"
                                                 : "classification")
      << '\n';
  // The quantized variant keeps the full-precision payload (thresholds are
  // written as doubles either way); the marker only records that eval
  // should re-quantize after load.
  if (forest.quantized()) out << "layout quantized\n";
  out << std::setprecision(17);
  out << "features " << forest.featureCount() << '\n';

  out << "roots " << forest.treeCount();
  for (const auto root : forest.roots()) out << ' ' << root;
  out << '\n';

  out << "nodes " << forest.internalNodeCount() << '\n';
  for (std::size_t i = 0; i < forest.internalNodeCount(); ++i) {
    out << forest.feature()[i] << ' ' << forest.threshold()[i] << ' '
        << forest.left(i) << ' ' << forest.right(i) << '\n';
  }

  out << "leaves " << forest.leafCount();
  for (const auto value : forest.leafValue()) out << ' ' << value;
  out << "\nend\n";
  if (!out) throw std::runtime_error("saveFlattenedForest: write failed");
}

void saveFlattenedForestFile(const FlattenedForest& forest,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveFlattenedForest: cannot open " + path);
  saveFlattenedForest(forest, out);
}

FlattenedForest loadFlattenedForest(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != "vcaqoe-forest-flat") malformed("bad magic '" + magic + "'");
  if (version != kModelFormatVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  std::string key;
  std::string taskName;
  if (!(in >> key >> taskName) || key != "task") malformed("missing task");
  TreeTask task;
  if (taskName == "regression") {
    task = TreeTask::kRegression;
  } else if (taskName == "classification") {
    task = TreeTask::kClassification;
  } else {
    malformed("unknown task '" + taskName + "'");
  }

  // Optional `layout quantized` marker (written by saveFlattenedForest for
  // a forest whose quantized layout was applied); anything else here must
  // be the features line.
  bool quantizedLayout = false;
  if (!(in >> key)) malformed("missing features");
  if (key == "layout") {
    std::string layoutName;
    if (!(in >> layoutName)) malformed("truncated layout");
    if (layoutName != "quantized") {
      malformed("unknown layout '" + layoutName + "'");
    }
    quantizedLayout = true;
    if (!(in >> key)) malformed("missing features");
  }
  std::size_t featureCount = 0;
  if (!(in >> featureCount) || key != "features") {
    malformed("missing features");
  }
  checkDeclaredCount(featureCount, "feature");

  std::size_t treeCount = 0;
  if (!(in >> key >> treeCount) || key != "roots") malformed("missing roots");
  checkDeclaredCount(treeCount, "root");
  std::vector<std::int32_t> roots(treeCount);
  for (auto& root : roots) {
    if (!(in >> root)) malformed("truncated roots");
  }

  std::size_t nodeCount = 0;
  if (!(in >> key >> nodeCount) || key != "nodes") malformed("missing nodes");
  checkDeclaredCount(nodeCount, "node");
  std::vector<std::int32_t> feature(nodeCount);
  std::vector<double> threshold(nodeCount);
  std::vector<std::int32_t> left(nodeCount);
  std::vector<std::int32_t> right(nodeCount);
  for (std::size_t i = 0; i < nodeCount; ++i) {
    if (!(in >> feature[i] >> threshold[i] >> left[i] >> right[i])) {
      malformed("truncated nodes");
    }
  }

  std::size_t leafCount = 0;
  if (!(in >> key >> leafCount) || key != "leaves") {
    malformed("missing leaves (declared node count disagrees with payload)");
  }
  checkDeclaredCount(leafCount, "leaf");
  std::vector<double> leafValue(leafCount);
  for (auto& value : leafValue) {
    if (!(in >> value)) malformed("truncated leaves");
  }

  if (!(in >> key) || key != "end") {
    malformed("missing end (declared leaf count disagrees with payload)");
  }
  rejectTrailingPayload(in);

  try {
    FlattenedForest flat = FlattenedForest::fromParts(
        task, featureCount, std::move(roots), std::move(feature),
        std::move(threshold), std::move(left), std::move(right),
        std::move(leafValue));
    // Re-deriving the int16/float32 arrays can itself reject the file (a
    // split feature index past int16), which is a malformed model, not a
    // programming error.
    if (quantizedLayout) flat.applyLayout({.quantizeThresholds = true});
    return flat;
  } catch (const std::invalid_argument& e) {
    malformed(e.what());
  }
}

FlattenedForest loadFlattenedForestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("loadFlattenedForest: cannot open " + path);
  }
  return loadFlattenedForest(in);
}

std::optional<FlattenedForest> tryLoadFlattenedForestFile(
    const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return loadFlattenedForest(in);
}

}  // namespace vcaqoe::ml
