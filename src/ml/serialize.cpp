#include "ml/serialize.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vcaqoe::ml {

namespace {

std::string escape(const std::string& name) {
  // Feature names may contain spaces; encode them to keep the format
  // whitespace-delimited.
  std::string out;
  for (const char c : name) {
    if (c == ' ') {
      out += "\\s";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& token) {
  std::string out;
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '\\' && i + 1 < token.size()) {
      out += token[i + 1] == 's' ? ' ' : token[i + 1];
      ++i;
    } else {
      out += token[i];
    }
  }
  return out;
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("model load: " + what);
}

}  // namespace

void saveForest(const RandomForest& forest, std::ostream& out) {
  if (!forest.trained()) {
    throw std::logic_error("saveForest: forest is untrained");
  }
  out << "vcaqoe-forest " << kModelFormatVersion << '\n';
  out << "task " << (forest.task() == TreeTask::kRegression ? "regression"
                                                            : "classification")
      << '\n';
  out << std::setprecision(17);

  const auto& names = forest.featureNames();
  out << "features " << names.size();
  for (const auto& name : names) out << ' ' << escape(name);
  out << '\n';

  const auto importance = forest.featureImportance();
  out << "importance " << importance.size();
  for (const double v : importance) out << ' ' << v;
  out << '\n';

  out << "trees " << forest.treeCount() << '\n';
  for (const auto& tree : forest.trees()) {
    const auto& nodes = tree.nodes();
    out << "tree " << nodes.size() << '\n';
    for (const auto& node : nodes) {
      out << node.featureIndex << ' ' << node.threshold << ' ' << node.left
          << ' ' << node.right << ' ' << node.value << '\n';
    }
  }
  if (!out) throw std::runtime_error("saveForest: stream write failed");
}

void saveForestFile(const RandomForest& forest, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveForest: cannot open " + path);
  saveForest(forest, out);
}

RandomForest loadForest(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != "vcaqoe-forest") malformed("bad magic '" + magic + "'");
  if (version != kModelFormatVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  std::string key;
  std::string taskName;
  if (!(in >> key >> taskName) || key != "task") malformed("missing task");
  TreeTask task;
  if (taskName == "regression") {
    task = TreeTask::kRegression;
  } else if (taskName == "classification") {
    task = TreeTask::kClassification;
  } else {
    malformed("unknown task '" + taskName + "'");
  }

  std::size_t nameCount = 0;
  if (!(in >> key >> nameCount) || key != "features") {
    malformed("missing features");
  }
  std::vector<std::string> names(nameCount);
  for (auto& name : names) {
    std::string token;
    if (!(in >> token)) malformed("truncated feature names");
    name = unescape(token);
  }

  std::size_t importanceCount = 0;
  if (!(in >> key >> importanceCount) || key != "importance") {
    malformed("missing importance");
  }
  std::vector<double> importance(importanceCount);
  for (auto& v : importance) {
    if (!(in >> v)) malformed("truncated importance");
  }

  std::size_t treeCount = 0;
  if (!(in >> key >> treeCount) || key != "trees") malformed("missing trees");
  std::vector<DecisionTree> trees;
  trees.reserve(treeCount);
  for (std::size_t t = 0; t < treeCount; ++t) {
    std::size_t nodeCount = 0;
    if (!(in >> key >> nodeCount) || key != "tree") malformed("missing tree");
    if (nodeCount == 0) malformed("empty tree");
    std::vector<DecisionTree::Node> nodes(nodeCount);
    for (auto& node : nodes) {
      if (!(in >> node.featureIndex >> node.threshold >> node.left >>
            node.right >> node.value)) {
        malformed("truncated tree nodes");
      }
      const auto limit = static_cast<std::int32_t>(nodeCount);
      if (node.featureIndex >= 0 &&
          (node.left < 0 || node.left >= limit || node.right < 0 ||
           node.right >= limit ||
           node.featureIndex >= static_cast<std::int32_t>(nameCount))) {
        malformed("node references out of range");
      }
    }
    trees.push_back(DecisionTree::fromNodes(std::move(nodes), task, {}));
  }
  return RandomForest::fromParts(task, std::move(names), std::move(trees),
                                 std::move(importance));
}

RandomForest loadForestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadForest: cannot open " + path);
  return loadForest(in);
}

std::optional<RandomForest> tryLoadForestFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return loadForest(in);
}

}  // namespace vcaqoe::ml
