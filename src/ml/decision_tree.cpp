#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace vcaqoe::ml {

namespace {

/// Class count bookkeeping for Gini computations.
struct GiniCounter {
  std::vector<double> counts;
  double total = 0.0;

  explicit GiniCounter(std::size_t numClasses) : counts(numClasses, 0.0) {}

  void add(int cls, double w = 1.0) {
    counts[static_cast<std::size_t>(cls)] += w;
    total += w;
  }
  void remove(int cls) {
    counts[static_cast<std::size_t>(cls)] -= 1.0;
    total -= 1.0;
  }
  double gini() const {
    if (total <= 0.0) return 0.0;
    double sumSq = 0.0;
    for (const double c : counts) sumSq += c * c;
    return 1.0 - sumSq / (total * total);
  }
  int majority() const {
    return static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }
};

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> sampleIdx, TreeTask task,
                       const TreeOptions& options, common::Rng& rng) {
  if (data.rows() == 0 || sampleIdx.empty()) {
    throw std::invalid_argument("DecisionTree::fit: empty training data");
  }
  task_ = task;
  options_ = options;
  nodes_.clear();
  importance_.assign(data.cols(), 0.0);
  totalSamples_ = sampleIdx.size();

  std::vector<std::size_t> idx(sampleIdx.begin(), sampleIdx.end());
  build(data, idx, 0, idx.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end, int depth,
                                 common::Rng& rng) {
  const std::size_t n = end - begin;
  const std::size_t p = data.cols();

  // Node statistics and impurity.
  double leafValue = 0.0;
  double nodeImpurity = 0.0;
  std::size_t numClasses = 0;
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    double sumSq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double y = data.y[idx[i]];
      sum += y;
      sumSq += y * y;
    }
    leafValue = sum / static_cast<double>(n);
    nodeImpurity = std::max(
        0.0, sumSq / static_cast<double>(n) - leafValue * leafValue);
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      numClasses = std::max(
          numClasses, static_cast<std::size_t>(data.y[idx[i]]) + 1);
    }
    GiniCounter counter(numClasses);
    for (std::size_t i = begin; i < end; ++i) {
      counter.add(static_cast<int>(data.y[idx[i]]));
    }
    leafValue = static_cast<double>(counter.majority());
    nodeImpurity = counter.gini();
  }

  const auto makeLeaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = leafValue;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= options_.maxDepth || n < static_cast<std::size_t>(
                                            options_.minSamplesSplit) ||
      nodeImpurity <= 1e-12) {
    return makeLeaf();
  }

  // Candidate features: a random subset of maxFeatures (all when 0).
  std::vector<std::size_t> candidates(p);
  std::iota(candidates.begin(), candidates.end(), 0);
  if (options_.maxFeatures > 0 &&
      static_cast<std::size_t>(options_.maxFeatures) < p) {
    rng.shuffle(candidates);
    candidates.resize(static_cast<std::size_t>(options_.maxFeatures));
  }

  double bestGain = 0.0;
  std::size_t bestFeature = 0;
  double bestThreshold = 0.0;

  // (value, y or class) pairs sorted per candidate feature.
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(n);

  for (const std::size_t f : candidates) {
    pairs.clear();
    for (std::size_t i = begin; i < end; ++i) {
      pairs.emplace_back(data.x[idx[i]][f], data.y[idx[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.front().first == pairs.back().first) continue;  // constant

    const auto minLeaf = static_cast<std::size_t>(options_.minSamplesLeaf);
    if (task_ == TreeTask::kRegression) {
      double sumLeft = 0.0;
      double sumSqLeft = 0.0;
      double sumTotal = 0.0;
      double sumSqTotal = 0.0;
      for (const auto& [v, y] : pairs) {
        sumTotal += y;
        sumSqTotal += y * y;
      }
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const double y = pairs[i].second;
        sumLeft += y;
        sumSqLeft += y * y;
        if (pairs[i].first == pairs[i + 1].first) continue;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < minLeaf || nr < minLeaf) continue;
        const double meanL = sumLeft / static_cast<double>(nl);
        const double meanR =
            (sumTotal - sumLeft) / static_cast<double>(nr);
        const double sseL = sumSqLeft - static_cast<double>(nl) * meanL * meanL;
        const double sseR = (sumSqTotal - sumSqLeft) -
                            static_cast<double>(nr) * meanR * meanR;
        const double childImpurity =
            (sseL + sseR) / static_cast<double>(n);
        const double gain = nodeImpurity - childImpurity;
        if (gain > bestGain) {
          bestGain = gain;
          bestFeature = f;
          bestThreshold = (pairs[i].first + pairs[i + 1].first) / 2.0;
        }
      }
    } else {
      GiniCounter left(numClasses);
      GiniCounter right(numClasses);
      for (const auto& [v, y] : pairs) right.add(static_cast<int>(y));
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const int cls = static_cast<int>(pairs[i].second);
        left.add(cls);
        right.remove(cls);
        if (pairs[i].first == pairs[i + 1].first) continue;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < minLeaf || nr < minLeaf) continue;
        const double childImpurity =
            (left.total * left.gini() + right.total * right.gini()) /
            static_cast<double>(n);
        const double gain = nodeImpurity - childImpurity;
        if (gain > bestGain) {
          bestGain = gain;
          bestFeature = f;
          bestThreshold = (pairs[i].first + pairs[i + 1].first) / 2.0;
        }
      }
    }
  }

  if (bestGain <= 1e-12) return makeLeaf();

  // Credit the split to the feature, weighted by the node's sample share.
  importance_[bestFeature] +=
      bestGain * static_cast<double>(n) / static_cast<double>(totalSamples_);

  // Partition the index range around the threshold.
  const auto mid = std::stable_partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][bestFeature] <= bestThreshold; });
  const std::size_t split =
      static_cast<std::size_t>(mid - idx.begin());
  if (split == begin || split == end) return makeLeaf();  // degenerate

  const std::int32_t nodeIndex = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(nodeIndex)].featureIndex =
      static_cast<std::int32_t>(bestFeature);
  nodes_[static_cast<std::size_t>(nodeIndex)].threshold = bestThreshold;
  nodes_[static_cast<std::size_t>(nodeIndex)].value = leafValue;

  const std::int32_t left = build(data, idx, begin, split, depth + 1, rng);
  const std::int32_t right = build(data, idx, split, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(nodeIndex)].left = left;
  nodes_[static_cast<std::size_t>(nodeIndex)].right = right;
  return nodeIndex;
}

DecisionTree DecisionTree::fromNodes(std::vector<Node> nodes, TreeTask task,
                                     std::vector<double> importance) {
  DecisionTree tree;
  tree.task_ = task;
  tree.nodes_ = std::move(nodes);
  tree.importance_ = std::move(importance);
  tree.totalSamples_ = 1;
  return tree;
}

double DecisionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict before fit");
  }
  std::size_t node = 0;
  while (nodes_[node].featureIndex >= 0) {
    const auto& nd = nodes_[node];
    const double v = x[static_cast<std::size_t>(nd.featureIndex)];
    node = static_cast<std::size_t>(v <= nd.threshold ? nd.left : nd.right);
  }
  return nodes_[node].value;
}

}  // namespace vcaqoe::ml
