#include "ml/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "common/stats.hpp"
#include "ml/random_forest.hpp"

namespace vcaqoe::ml {

namespace {

struct Standardizer {
  std::vector<double> mean;
  std::vector<double> scale;

  static Standardizer fit(const Dataset& data) {
    const std::size_t p = data.cols();
    Standardizer s;
    s.mean.assign(p, 0.0);
    s.scale.assign(p, 1.0);
    for (const auto& row : data.x) {
      for (std::size_t f = 0; f < p; ++f) s.mean[f] += row[f];
    }
    for (double& m : s.mean) m /= static_cast<double>(data.rows());
    std::vector<double> var(p, 0.0);
    for (const auto& row : data.x) {
      for (std::size_t f = 0; f < p; ++f) {
        const double d = row[f] - s.mean[f];
        var[f] += d * d;
      }
    }
    for (std::size_t f = 0; f < p; ++f) {
      const double sd = std::sqrt(var[f] / static_cast<double>(data.rows()));
      s.scale[f] = sd > 1e-12 ? sd : 1.0;
    }
    return s;
  }

  std::vector<double> apply(std::span<const double> x) const {
    std::vector<double> out(x.size());
    for (std::size_t f = 0; f < x.size(); ++f) {
      out[f] = (x[f] - mean[f]) / scale[f];
    }
    return out;
  }
};

/// Solves the symmetric positive-definite system A w = b in place via
/// Gaussian elimination with partial pivoting (A is p x p with p <= ~30).
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("ridge: singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> w(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < n; ++k) sum -= a[row][k] * w[k];
    w[row] = sum / a[row][row];
  }
  return w;
}

}  // namespace

void RidgeRegression::fit(const Dataset& data, Options options) {
  if (data.rows() == 0) {
    throw std::invalid_argument("RidgeRegression::fit: empty dataset");
  }
  const std::size_t p = data.cols();
  const auto standardizer = Standardizer::fit(data);
  mean_ = standardizer.mean;
  scale_ = standardizer.scale;

  // Centered targets make the intercept the target mean.
  intercept_ = common::mean(data.y);

  // Normal equations on standardized features: (Z^T Z + λI) w = Z^T y.
  std::vector<std::vector<double>> a(p, std::vector<double>(p, 0.0));
  std::vector<double> b(p, 0.0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto z = standardizer.apply(data.x[i]);
    const double resid = data.y[i] - intercept_;
    for (std::size_t f = 0; f < p; ++f) {
      b[f] += z[f] * resid;
      for (std::size_t g = f; g < p; ++g) a[f][g] += z[f] * z[g];
    }
  }
  for (std::size_t f = 0; f < p; ++f) {
    for (std::size_t g = 0; g < f; ++g) a[f][g] = a[g][f];
    a[f][f] += options.lambda;
  }
  weights_ = solveLinearSystem(std::move(a), std::move(b));
}

double RidgeRegression::predict(std::span<const double> x) const {
  if (!trained()) throw std::logic_error("RidgeRegression::predict before fit");
  double out = intercept_;
  for (std::size_t f = 0; f < weights_.size(); ++f) {
    out += weights_[f] * (x[f] - mean_[f]) / scale_[f];
  }
  return out;
}

std::vector<double> RidgeRegression::predictAll(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.rows());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

void KnnModel::fit(const Dataset& data, Options options) {
  if (data.rows() == 0) {
    throw std::invalid_argument("KnnModel::fit: empty dataset");
  }
  options_ = options;
  const auto standardizer = Standardizer::fit(data);
  mean_ = standardizer.mean;
  scale_ = standardizer.scale;
  x_.clear();
  x_.reserve(data.rows());
  for (const auto& row : data.x) x_.push_back(standardizer.apply(row));
  y_ = data.y;
}

double KnnModel::predict(std::span<const double> x) const {
  if (!trained()) throw std::logic_error("KnnModel::predict before fit");
  std::vector<double> z(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) {
    z[f] = (x[f] - mean_[f]) / scale_[f];
  }
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(options_.k, 1)),
                            x_.size());

  // Partial sort of squared distances.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double d = 0.0;
    for (std::size_t f = 0; f < z.size(); ++f) {
      const double diff = z[f] - x_[i][f];
      d += diff * diff;
    }
    dist.emplace_back(d, i);
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  if (options_.task == TreeTask::kRegression) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += y_[dist[i].second];
    return sum / static_cast<double>(k);
  }
  std::map<int, int> votes;
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<int>(y_[dist[i].second])];
  }
  int best = 0;
  int bestVotes = -1;
  for (const auto& [cls, count] : votes) {
    if (count > bestVotes) {
      best = cls;
      bestVotes = count;
    }
  }
  return static_cast<double>(best);
}

std::vector<double> KnnModel::predictAll(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.rows());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

ModelComparison compareModels(const Dataset& data, TreeTask task, int folds,
                              std::uint64_t seed) {
  data.validate();
  common::Rng rng(seed);
  const auto assignment = kFoldAssignment(data.rows(), folds, rng);

  std::vector<double> forestPred(data.rows(), 0.0);
  std::vector<double> treePred(data.rows(), 0.0);
  std::vector<double> ridgePred(data.rows(), 0.0);
  std::vector<double> knnPred(data.rows(), 0.0);

  for (int fold = 0; fold < folds; ++fold) {
    const auto split = foldIndices(assignment, fold);
    if (split.train.empty() || split.test.empty()) continue;
    const Dataset train = data.subset(split.train);

    RandomForest forest;
    ForestOptions forestOptions;
    forestOptions.numTrees = 40;
    forest.fit(train, task, forestOptions,
               seed + static_cast<std::uint64_t>(fold));

    DecisionTree tree;
    std::vector<std::size_t> all(train.rows());
    std::iota(all.begin(), all.end(), 0);
    common::Rng treeRng(seed ^ static_cast<std::uint64_t>(fold + 101));
    tree.fit(train, all, task, TreeOptions{}, treeRng);

    RidgeRegression ridge;
    if (task == TreeTask::kRegression) ridge.fit(train);

    KnnModel knn;
    KnnModel::Options knnOptions;
    knnOptions.task = task;
    knn.fit(train, knnOptions);

    for (const std::size_t i : split.test) {
      forestPred[i] = forest.predict(data.x[i]);
      treePred[i] = tree.predict(data.x[i]);
      ridgePred[i] =
          task == TreeTask::kRegression ? ridge.predict(data.x[i]) : 0.0;
      knnPred[i] = knn.predict(data.x[i]);
    }
  }

  ModelComparison out;
  out.forestMae = common::meanAbsoluteError(forestPred, data.y);
  out.treeMae = common::meanAbsoluteError(treePred, data.y);
  out.ridgeMae = task == TreeTask::kRegression
                     ? common::meanAbsoluteError(ridgePred, data.y)
                     : 0.0;
  out.knnMae = common::meanAbsoluteError(knnPred, data.y);
  return out;
}

}  // namespace vcaqoe::ml
