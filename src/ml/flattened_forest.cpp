#include "ml/flattened_forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcaqoe::ml {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("FlattenedForest: " + what);
}

/// Encodes a leaf index as a negative child reference.
constexpr std::int32_t leafRef(std::size_t leafIndex) {
  return -static_cast<std::int32_t>(leafIndex) - 1;
}

/// Decodes a negative child reference back to a leaf index. Widened before
/// negation: `-ref` would overflow (UB) for INT32_MIN, which a hostile
/// serialized file can carry into `fromParts`.
constexpr std::size_t leafIndex(std::int32_t ref) {
  return static_cast<std::size_t>(-(static_cast<std::int64_t>(ref) + 1));
}

/// Majority vote with ties to the smallest class id — the ascending
/// map-order tie-break of `RandomForest::predict`, computed over a sorted
/// scratch so the hot path never allocates. Sorts `votes` in place.
int majorityClass(std::vector<int>& votes) {
  std::sort(votes.begin(), votes.end());
  int best = 0;
  int bestVotes = -1;
  int run = 0;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    run = (i > 0 && votes[i] == votes[i - 1]) ? run + 1 : 1;
    if (run > bestVotes) {
      bestVotes = run;
      best = votes[i];
    }
  }
  return best;
}

}  // namespace

FlattenedForest::FlattenedForest(const RandomForest& forest) {
  if (!forest.trained()) invalid("forest is untrained");
  task_ = forest.task();

  std::size_t maxFeature = 0;
  std::size_t internals = 0;
  std::size_t leaves = 0;
  for (const auto& tree : forest.trees()) {
    for (const auto& node : tree.nodes()) {
      if (node.featureIndex >= 0) {
        ++internals;
        maxFeature = std::max(
            maxFeature, static_cast<std::size_t>(node.featureIndex) + 1);
      } else {
        ++leaves;
      }
    }
  }
  featureCount_ = std::max(forest.featureNames().size(), maxFeature);
  roots_.reserve(forest.treeCount());
  feature_.reserve(internals);
  threshold_.reserve(internals);
  children_.reserve(2 * internals);
  leafValue_.reserve(leaves);

  std::vector<std::int32_t> ref;  // local node index -> encoded arena ref
  for (const auto& tree : forest.trees()) {
    const auto& nodes = tree.nodes();
    if (nodes.empty()) invalid("empty tree");
    ref.assign(nodes.size(), 0);
    // Pass 1: hand every local node its arena slot (internal) or leaf id.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      if (node.featureIndex >= 0) {
        ref[i] = static_cast<std::int32_t>(feature_.size());
        feature_.push_back(node.featureIndex);
        threshold_.push_back(node.threshold);
        children_.push_back(0);
        children_.push_back(0);
      } else {
        ref[i] = leafRef(leafValue_.size());
        leafValue_.push_back(node.value);
      }
    }
    // Pass 2: translate child links through the local->arena map.
    const auto limit = static_cast<std::int32_t>(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      if (node.featureIndex < 0) continue;
      if (node.left < 0 || node.left >= limit || node.right < 0 ||
          node.right >= limit) {
        invalid("tree child reference out of range");
      }
      const auto arena = 2 * static_cast<std::size_t>(ref[i]);
      children_[arena] = ref[static_cast<std::size_t>(node.left)];
      children_[arena + 1] = ref[static_cast<std::size_t>(node.right)];
    }
    roots_.push_back(ref[0]);
  }
}

FlattenedForest FlattenedForest::fromParts(
    TreeTask task, std::size_t featureCount, std::vector<std::int32_t> roots,
    std::vector<std::int32_t> feature, std::vector<double> threshold,
    std::vector<std::int32_t> left, std::vector<std::int32_t> right,
    std::vector<double> leafValue) {
  const std::size_t internals = feature.size();
  if (threshold.size() != internals || left.size() != internals ||
      right.size() != internals) {
    invalid("internal-node arrays disagree in length");
  }
  if (roots.empty()) invalid("no trees");
  if (leafValue.empty()) invalid("no leaves");

  const auto checkRef = [&](std::int32_t ref) {
    if (ref >= 0) {
      if (static_cast<std::size_t>(ref) >= internals) {
        invalid("child reference past the node arena");
      }
    } else if (leafIndex(ref) >= leafValue.size()) {
      invalid("leaf reference past the leaf array");
    }
  };
  std::vector<std::int32_t> children(2 * internals);
  for (std::size_t i = 0; i < internals; ++i) {
    if (feature[i] < 0 ||
        static_cast<std::size_t>(feature[i]) >= featureCount) {
      invalid("split feature index out of range");
    }
    checkRef(left[i]);
    checkRef(right[i]);
    children[2 * i] = left[i];
    children[2 * i + 1] = right[i];
  }

  // Structural check: walking from the roots must visit every internal node
  // and every leaf exactly once. This both rejects truncated/garbled arenas
  // and proves traversal terminates (no cycles can survive exactly-once
  // visitation), so `predict` needs no step budget.
  std::vector<char> nodeSeen(internals, 0);
  std::vector<char> leafSeen(leafValue.size(), 0);
  std::vector<std::int32_t> stack;
  for (const auto root : roots) {
    checkRef(root);
    stack.push_back(root);
    while (!stack.empty()) {
      const auto ref = stack.back();
      stack.pop_back();
      if (ref < 0) {
        auto& seen = leafSeen[leafIndex(ref)];
        if (seen) invalid("leaf referenced twice");
        seen = 1;
        continue;
      }
      auto& seen = nodeSeen[static_cast<std::size_t>(ref)];
      if (seen) invalid("node referenced twice (cycle or shared subtree)");
      seen = 1;
      stack.push_back(children[2 * static_cast<std::size_t>(ref)]);
      stack.push_back(children[2 * static_cast<std::size_t>(ref) + 1]);
    }
  }
  if (std::find(nodeSeen.begin(), nodeSeen.end(), 0) != nodeSeen.end() ||
      std::find(leafSeen.begin(), leafSeen.end(), 0) != leafSeen.end()) {
    invalid("unreferenced arena entries (node/leaf counts exceed payload)");
  }

  FlattenedForest flat;
  flat.task_ = task;
  flat.featureCount_ = featureCount;
  flat.roots_ = std::move(roots);
  flat.feature_ = std::move(feature);
  flat.threshold_ = std::move(threshold);
  flat.children_ = std::move(children);
  flat.leafValue_ = std::move(leafValue);
  return flat;
}

double FlattenedForest::evalTree(std::int32_t ref, FeatureRow x) const {
  while (ref >= 0) {
    const auto node = static_cast<std::size_t>(ref);
    const double v = x[static_cast<std::size_t>(feature_[node])];
    // `v <= t ? left : right`, phrased as index math. The negated form
    // (`v > t`) would send NaN features left where the node tree sends
    // them right — the comparison must match DecisionTree::predict.
    ref = children_[2 * node + (v <= threshold_[node] ? 0u : 1u)];
  }
  return leafValue_[leafIndex(ref)];
}

double FlattenedForest::predict(FeatureRow x) const {
  if (roots_.empty()) {
    throw std::logic_error("FlattenedForest::predict before flatten");
  }
  if (x.size() < featureCount_) {
    throw std::invalid_argument("FlattenedForest::predict: short feature row");
  }
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    for (const auto root : roots_) sum += evalTree(root, x);
    return sum / static_cast<double>(roots_.size());
  }
  thread_local std::vector<int> votes;
  votes.clear();
  for (const auto root : roots_) {
    votes.push_back(static_cast<int>(evalTree(root, x)));
  }
  return static_cast<double>(majorityClass(votes));
}

void FlattenedForest::predictBatch(std::span<const FeatureRow> rows,
                                   std::span<double> out) const {
  if (roots_.empty()) {
    throw std::logic_error("FlattenedForest::predictBatch before flatten");
  }
  if (rows.size() != out.size()) {
    throw std::invalid_argument(
        "FlattenedForest::predictBatch: rows/out length mismatch");
  }
  for (const auto& row : rows) {
    if (row.size() < featureCount_) {
      throw std::invalid_argument(
          "FlattenedForest::predictBatch: short feature row");
    }
  }

  if (task_ == TreeTask::kRegression) {
    // Tree-major: one tree's arena segment stays hot across the whole batch.
    // Per row the additions happen in tree order, so the accumulated mean is
    // bit-identical to the scalar path.
    std::fill(out.begin(), out.end(), 0.0);
    for (const auto root : roots_) {
      for (std::size_t r = 0; r < rows.size(); ++r) {
        out[r] += evalTree(root, rows[r]);
      }
    }
    const double n = static_cast<double>(roots_.size());
    for (auto& value : out) value /= n;
    return;
  }

  // Classification, still tree-major into a reused scratch; vote counting
  // goes through the same sorted-run majorityClass as the scalar path.
  const std::size_t n = rows.size();
  const std::size_t trees = roots_.size();
  thread_local std::vector<int> treeOut;  // tree-major, [t * n + r]
  treeOut.resize(trees * n);
  for (std::size_t t = 0; t < trees; ++t) {
    for (std::size_t r = 0; r < n; ++r) {
      treeOut[t * n + r] = static_cast<int>(evalTree(roots_[t], rows[r]));
    }
  }
  thread_local std::vector<int> votes;
  for (std::size_t r = 0; r < n; ++r) {
    votes.clear();
    for (std::size_t t = 0; t < trees; ++t) votes.push_back(treeOut[t * n + r]);
    out[r] = static_cast<double>(majorityClass(votes));
  }
}

}  // namespace vcaqoe::ml
