#include "ml/flattened_forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcaqoe::ml {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("FlattenedForest: " + what);
}

/// Encodes a leaf index as a negative child reference.
constexpr std::int32_t leafRef(std::size_t leafIndex) {
  return -static_cast<std::int32_t>(leafIndex) - 1;
}

/// Decodes a negative child reference back to a leaf index. Widened before
/// negation: `-ref` would overflow (UB) for INT32_MIN, which a hostile
/// serialized file can carry into `fromParts`.
constexpr std::size_t leafIndex(std::int32_t ref) {
  return static_cast<std::size_t>(-(static_cast<std::int64_t>(ref) + 1));
}

/// Majority vote with ties to the smallest class id — the ascending
/// map-order tie-break of `RandomForest::predict`, computed over a sorted
/// scratch so the hot path never allocates. Sorts `votes` in place.
int majorityClass(std::vector<int>& votes) {
  std::sort(votes.begin(), votes.end());
  int best = 0;
  int bestVotes = -1;
  int run = 0;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    run = (i > 0 && votes[i] == votes[i - 1]) ? run + 1 : 1;
    if (run > bestVotes) {
      bestVotes = run;
      best = votes[i];
    }
  }
  return best;
}

/// One tree level for one node ref: the shared step of every traversal
/// below, generic over the full-precision (int32/double) and quantized
/// (int16/float) column types. The float threshold widens back to double
/// for the compare, so quantized divergence is confined to feature values
/// inside the double->float rounding gap; NaN still goes right on both.
template <typename Feat, typename Thresh>
inline std::int32_t step(std::int32_t ref, FeatureRow x, const Feat* feature,
                         const Thresh* threshold,
                         const std::int32_t* children) {
  const auto node = static_cast<std::size_t>(ref);
  const double v = x[static_cast<std::size_t>(feature[node])];
  const auto t = static_cast<double>(threshold[node]);
  return children[2 * node + (v <= t ? 0u : 1u)];
}

template <typename Feat, typename Thresh>
double evalTreeImpl(std::int32_t ref, FeatureRow x, const Feat* feature,
                    const Thresh* threshold, const std::int32_t* children,
                    const double* leafValue) {
  while (ref >= 0) ref = step(ref, x, feature, threshold, children);
  return leafValue[leafIndex(ref)];
}

/// Rows advanced together through one tree, one level per round.
constexpr std::size_t kRowBlock = 8;

/// Evaluates one tree for up to kRowBlock rows in lockstep: every active
/// row takes one `step` per round, so their data-dependent arena/feature
/// loads are all in flight at once instead of serialized down one row's
/// path. Each row still walks exactly the path `evalTreeImpl` would.
template <typename Feat, typename Thresh>
void evalTreeBlock(std::int32_t root, const FeatureRow* rows, std::size_t m,
                   const Feat* feature, const Thresh* threshold,
                   const std::int32_t* children, const double* leafValue,
                   double* treeVal) {
  std::int32_t ref[kRowBlock];
  for (std::size_t j = 0; j < m; ++j) ref[j] = root;
  std::size_t active = root >= 0 ? m : 0;
  while (active > 0) {
    active = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t r = ref[j];
      if (r < 0) continue;
      ref[j] = step(r, rows[j], feature, threshold, children);
      active += ref[j] >= 0 ? 1u : 0u;
    }
  }
  for (std::size_t j = 0; j < m; ++j) treeVal[j] = leafValue[leafIndex(ref[j])];
}

}  // namespace

FlattenedForest::FlattenedForest(const RandomForest& forest) {
  if (!forest.trained()) invalid("forest is untrained");
  task_ = forest.task();

  std::size_t maxFeature = 0;
  std::size_t internals = 0;
  std::size_t leaves = 0;
  for (const auto& tree : forest.trees()) {
    for (const auto& node : tree.nodes()) {
      if (node.featureIndex >= 0) {
        ++internals;
        maxFeature = std::max(
            maxFeature, static_cast<std::size_t>(node.featureIndex) + 1);
      } else {
        ++leaves;
      }
    }
  }
  featureCount_ = std::max(forest.featureNames().size(), maxFeature);
  roots_.reserve(forest.treeCount());
  feature_.reserve(internals);
  threshold_.reserve(internals);
  children_.reserve(2 * internals);
  leafValue_.reserve(leaves);

  std::vector<std::int32_t> ref;  // local node index -> encoded arena ref
  for (const auto& tree : forest.trees()) {
    const auto& nodes = tree.nodes();
    if (nodes.empty()) invalid("empty tree");
    ref.assign(nodes.size(), 0);
    // Pass 1: hand every local node its arena slot (internal) or leaf id.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      if (node.featureIndex >= 0) {
        ref[i] = static_cast<std::int32_t>(feature_.size());
        feature_.push_back(node.featureIndex);
        threshold_.push_back(node.threshold);
        children_.push_back(0);
        children_.push_back(0);
      } else {
        ref[i] = leafRef(leafValue_.size());
        leafValue_.push_back(node.value);
      }
    }
    // Pass 2: translate child links through the local->arena map.
    const auto limit = static_cast<std::int32_t>(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      if (node.featureIndex < 0) continue;
      if (node.left < 0 || node.left >= limit || node.right < 0 ||
          node.right >= limit) {
        invalid("tree child reference out of range");
      }
      const auto arena = 2 * static_cast<std::size_t>(ref[i]);
      children_[arena] = ref[static_cast<std::size_t>(node.left)];
      children_[arena + 1] = ref[static_cast<std::size_t>(node.right)];
    }
    roots_.push_back(ref[0]);
  }
}

FlattenedForest FlattenedForest::fromParts(
    TreeTask task, std::size_t featureCount, std::vector<std::int32_t> roots,
    std::vector<std::int32_t> feature, std::vector<double> threshold,
    std::vector<std::int32_t> left, std::vector<std::int32_t> right,
    std::vector<double> leafValue) {
  const std::size_t internals = feature.size();
  if (threshold.size() != internals || left.size() != internals ||
      right.size() != internals) {
    invalid("internal-node arrays disagree in length");
  }
  if (roots.empty()) invalid("no trees");
  if (leafValue.empty()) invalid("no leaves");

  const auto checkRef = [&](std::int32_t ref) {
    if (ref >= 0) {
      if (static_cast<std::size_t>(ref) >= internals) {
        invalid("child reference past the node arena");
      }
    } else if (leafIndex(ref) >= leafValue.size()) {
      invalid("leaf reference past the leaf array");
    }
  };
  std::vector<std::int32_t> children(2 * internals);
  for (std::size_t i = 0; i < internals; ++i) {
    if (feature[i] < 0 ||
        static_cast<std::size_t>(feature[i]) >= featureCount) {
      invalid("split feature index out of range");
    }
    checkRef(left[i]);
    checkRef(right[i]);
    children[2 * i] = left[i];
    children[2 * i + 1] = right[i];
  }

  // Structural check: walking from the roots must visit every internal node
  // and every leaf exactly once. This both rejects truncated/garbled arenas
  // and proves traversal terminates (no cycles can survive exactly-once
  // visitation), so `predict` needs no step budget.
  std::vector<char> nodeSeen(internals, 0);
  std::vector<char> leafSeen(leafValue.size(), 0);
  std::vector<std::int32_t> stack;
  for (const auto root : roots) {
    checkRef(root);
    stack.push_back(root);
    while (!stack.empty()) {
      const auto ref = stack.back();
      stack.pop_back();
      if (ref < 0) {
        auto& seen = leafSeen[leafIndex(ref)];
        if (seen) invalid("leaf referenced twice");
        seen = 1;
        continue;
      }
      auto& seen = nodeSeen[static_cast<std::size_t>(ref)];
      if (seen) invalid("node referenced twice (cycle or shared subtree)");
      seen = 1;
      stack.push_back(children[2 * static_cast<std::size_t>(ref)]);
      stack.push_back(children[2 * static_cast<std::size_t>(ref) + 1]);
    }
  }
  if (std::find(nodeSeen.begin(), nodeSeen.end(), 0) != nodeSeen.end() ||
      std::find(leafSeen.begin(), leafSeen.end(), 0) != leafSeen.end()) {
    invalid("unreferenced arena entries (node/leaf counts exceed payload)");
  }

  FlattenedForest flat;
  flat.task_ = task;
  flat.featureCount_ = featureCount;
  flat.roots_ = std::move(roots);
  flat.feature_ = std::move(feature);
  flat.threshold_ = std::move(threshold);
  flat.children_ = std::move(children);
  flat.leafValue_ = std::move(leafValue);
  return flat;
}

double FlattenedForest::evalTree(std::int32_t ref, FeatureRow x) const {
  // `v <= t ? left : right`, phrased as index math inside `step`. The
  // negated form (`v > t`) would send NaN features left where the node
  // tree sends them right — the comparison must match DecisionTree::predict.
  if (quantized()) {
    return evalTreeImpl(ref, x, featureI16_.data(), thresholdF32_.data(),
                        children_.data(), leafValue_.data());
  }
  return evalTreeImpl(ref, x, feature_.data(), threshold_.data(),
                      children_.data(), leafValue_.data());
}

double FlattenedForest::predict(FeatureRow x) const {
  if (roots_.empty()) {
    throw std::logic_error("FlattenedForest::predict before flatten");
  }
  if (x.size() < featureCount_) {
    throw std::invalid_argument("FlattenedForest::predict: short feature row");
  }
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    for (const auto root : roots_) sum += evalTree(root, x);
    return sum / static_cast<double>(roots_.size());
  }
  thread_local std::vector<int> votes;
  votes.clear();
  for (const auto root : roots_) {
    votes.push_back(static_cast<int>(evalTree(root, x)));
  }
  return static_cast<double>(majorityClass(votes));
}

void FlattenedForest::predictBatch(std::span<const FeatureRow> rows,
                                   std::span<double> out) const {
  // Blocked won the bench_perf_micro comparison (BM_PredictBatchRows vs
  // BM_PredictBatchBlocked) and both arms are bit-identical, so it is the
  // default.
  predictBatch(rows, out, BatchTraversal::kBlocked);
}

void FlattenedForest::predictBatch(std::span<const FeatureRow> rows,
                                   std::span<double> out,
                                   BatchTraversal traversal) const {
  if (roots_.empty()) {
    throw std::logic_error("FlattenedForest::predictBatch before flatten");
  }
  if (rows.size() != out.size()) {
    throw std::invalid_argument(
        "FlattenedForest::predictBatch: rows/out length mismatch");
  }
  for (const auto& row : rows) {
    if (row.size() < featureCount_) {
      throw std::invalid_argument(
          "FlattenedForest::predictBatch: short feature row");
    }
  }

  const std::size_t n = rows.size();
  // One tree's leaf values for a block of rows; whichever traversal filled
  // it, row r's contribution is added in tree order, so the accumulated
  // regression mean (and the vote sequence below) is bit-identical to the
  // single-row path.
  double treeVal[kRowBlock];
  const auto evalBlock = [&](std::int32_t root, std::size_t r0,
                             std::size_t m) {
    if (quantized()) {
      evalTreeBlock(root, rows.data() + r0, m, featureI16_.data(),
                    thresholdF32_.data(), children_.data(), leafValue_.data(),
                    treeVal);
    } else {
      evalTreeBlock(root, rows.data() + r0, m, feature_.data(),
                    threshold_.data(), children_.data(), leafValue_.data(),
                    treeVal);
    }
  };

  if (task_ == TreeTask::kRegression) {
    // Tree-major: one tree's arena segment stays hot across the whole batch.
    std::fill(out.begin(), out.end(), 0.0);
    for (const auto root : roots_) {
      if (traversal == BatchTraversal::kRowWise) {
        for (std::size_t r = 0; r < n; ++r) out[r] += evalTree(root, rows[r]);
        continue;
      }
      for (std::size_t r0 = 0; r0 < n; r0 += kRowBlock) {
        const std::size_t m = std::min(kRowBlock, n - r0);
        evalBlock(root, r0, m);
        for (std::size_t j = 0; j < m; ++j) out[r0 + j] += treeVal[j];
      }
    }
    const double trees = static_cast<double>(roots_.size());
    for (auto& value : out) value /= trees;
    return;
  }

  // Classification, still tree-major into a reused scratch; vote counting
  // goes through the same sorted-run majorityClass as the single-row path.
  const std::size_t trees = roots_.size();
  thread_local std::vector<int> treeOut;  // tree-major, [t * n + r]
  treeOut.resize(trees * n);
  for (std::size_t t = 0; t < trees; ++t) {
    if (traversal == BatchTraversal::kRowWise) {
      for (std::size_t r = 0; r < n; ++r) {
        treeOut[t * n + r] = static_cast<int>(evalTree(roots_[t], rows[r]));
      }
      continue;
    }
    for (std::size_t r0 = 0; r0 < n; r0 += kRowBlock) {
      const std::size_t m = std::min(kRowBlock, n - r0);
      evalBlock(roots_[t], r0, m);
      for (std::size_t j = 0; j < m; ++j) {
        treeOut[t * n + r0 + j] = static_cast<int>(treeVal[j]);
      }
    }
  }
  thread_local std::vector<int> votes;
  for (std::size_t r = 0; r < n; ++r) {
    votes.clear();
    for (std::size_t t = 0; t < trees; ++t) votes.push_back(treeOut[t * n + r]);
    out[r] = static_cast<double>(majorityClass(votes));
  }
}

void FlattenedForest::applyLayout(const LayoutOptions& options) {
  if (roots_.empty()) {
    throw std::logic_error("FlattenedForest::applyLayout before flatten");
  }
  if (options.breadthBlockOrder) reorderBreadthBlocks();
  if (options.quantizeThresholds) quantizeThresholdArrays();
}

void FlattenedForest::reorderBreadthBlocks() {
  const std::size_t internals = feature_.size();
  if (internals == 0) return;

  // Top kBlockLevels levels of each (sub)tree become one contiguous block
  // in BFS order — up to 7 nodes, about one cache line of thresholds — and
  // the subtrees hanging below a block follow depth-first. fromParts proved
  // exactly-once reachability, so this permutation is total.
  constexpr int kBlockLevels = 3;
  std::vector<std::int32_t> newIndex(internals, -1);
  std::int32_t counter = 0;

  std::vector<std::int32_t> frontier;   // subtree roots awaiting a block
  std::vector<std::int32_t> blockRefs;  // BFS queue within one block
  for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
    if (*it >= 0) frontier.push_back(*it);
  }
  while (!frontier.empty()) {
    const std::int32_t top = frontier.back();
    frontier.pop_back();
    blockRefs.clear();
    blockRefs.push_back(top);
    int levels = 0;
    std::size_t levelBegin = 0;
    while (levels < kBlockLevels) {
      const std::size_t levelEnd = blockRefs.size();
      for (std::size_t i = levelBegin; i < levelEnd; ++i) {
        const auto node = static_cast<std::size_t>(blockRefs[i]);
        newIndex[node] = counter++;
        if (levels + 1 == kBlockLevels) continue;  // children leave the block
        for (int side = 0; side < 2; ++side) {
          const std::int32_t child = children_[2 * node + side];
          if (child >= 0) blockRefs.push_back(child);
        }
      }
      if (levels + 1 == kBlockLevels) {
        // The last in-block level's internal children seed new blocks, right
        // child first so the left subtree's block lands adjacent.
        for (std::size_t i = levelEnd; i-- > levelBegin;) {
          const auto node = static_cast<std::size_t>(blockRefs[i]);
          for (int side = 1; side >= 0; --side) {
            const std::int32_t child = children_[2 * node + side];
            if (child >= 0) frontier.push_back(child);
          }
        }
      }
      if (levelEnd == blockRefs.size()) break;  // block bottomed out early
      levelBegin = levelEnd;
      ++levels;
    }
  }

  const auto remap = [&](std::int32_t ref) {
    return ref >= 0 ? newIndex[static_cast<std::size_t>(ref)] : ref;
  };
  std::vector<std::int32_t> feature(internals);
  std::vector<double> threshold(internals);
  std::vector<std::int32_t> children(2 * internals);
  for (std::size_t i = 0; i < internals; ++i) {
    const auto to = static_cast<std::size_t>(newIndex[i]);
    feature[to] = feature_[i];
    threshold[to] = threshold_[i];
    children[2 * to] = remap(children_[2 * i]);
    children[2 * to + 1] = remap(children_[2 * i + 1]);
  }
  for (auto& root : roots_) root = remap(root);
  feature_ = std::move(feature);
  threshold_ = std::move(threshold);
  children_ = std::move(children);
}

void FlattenedForest::quantizeThresholdArrays() {
  const std::size_t internals = feature_.size();
  featureI16_.resize(internals);
  thresholdF32_.resize(internals);
  for (std::size_t i = 0; i < internals; ++i) {
    if (feature_[i] > INT16_MAX) {
      featureI16_.clear();
      thresholdF32_.clear();
      invalid("split feature index exceeds the int16 quantized layout");
    }
    featureI16_[i] = static_cast<std::int16_t>(feature_[i]);
    thresholdF32_[i] = static_cast<float>(threshold_[i]);
  }
}

}  // namespace vcaqoe::ml
