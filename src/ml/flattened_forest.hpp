#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/random_forest.hpp"

/// Cache-friendly forest evaluation.
///
/// `ml::DecisionTree` keeps each tree as a vector of 40-byte AoS nodes and
/// `RandomForest::predict` chases them one window at a time — fine for
/// training and offline evaluation, but the per-window hot path of a
/// network-scale monitor (§7) is dominated by exactly that pointer chasing.
/// `FlattenedForest` re-lays an already-trained forest into one contiguous
/// structure-of-arrays arena shared by every tree:
///
///   feature[]    int32 per internal node — split feature
///   threshold[]  double per internal node — go left when x[f] <= t
///   children[]   int32 pair per internal node — [2n] left, [2n+1] right,
///                interleaved so one cache line serves both outcomes of a
///                split and the taken child is
///                `children[2n + (x[f] <= t ? 0 : 1)]` (branchless index
///                math — comparison sense matches the node tree, so NaN
///                features go right on both layouts)
///   leafValue[]  double per leaf
///
/// A child reference >= 0 is an internal-node index into the arena; a
/// negative reference encodes a leaf as `-(leafIndex + 1)`, so traversal is
/// a branch-free-ish loop over three flat streams with the leaf test folded
/// into the sign bit. Tree roots use the same encoding (a depth-0 tree is a
/// root that is itself a leaf).
///
/// `predict` is bit-exact with `RandomForest::predict` (tested property):
/// trees are evaluated in the same order, the regression mean accumulates in
/// the same order, and classification ties break toward the smallest class
/// id exactly as the node-tree form does. `predictBatch` evaluates
/// tree-major — one tree's arena segment stays hot across the whole batch —
/// which is where the cross-flow batched inference pipeline gets its win.
namespace vcaqoe::ml {

/// One feature vector, borrowed from the caller for the duration of a call.
using FeatureRow = std::span<const double>;

class FlattenedForest {
 public:
  FlattenedForest() = default;

  /// Flattens a trained forest. Throws std::invalid_argument when the forest
  /// is untrained.
  explicit FlattenedForest(const RandomForest& forest);

  /// Reconstruction from raw arrays (deserialization). Validates every child
  /// and root reference; throws std::invalid_argument on any out-of-range
  /// reference or inconsistent array sizes.
  static FlattenedForest fromParts(TreeTask task, std::size_t featureCount,
                                   std::vector<std::int32_t> roots,
                                   std::vector<std::int32_t> feature,
                                   std::vector<double> threshold,
                                   std::vector<std::int32_t> left,
                                   std::vector<std::int32_t> right,
                                   std::vector<double> leafValue);

  bool trained() const { return !roots_.empty(); }
  TreeTask task() const { return task_; }
  std::size_t treeCount() const { return roots_.size(); }
  /// Internal (split) nodes across all trees.
  std::size_t internalNodeCount() const { return feature_.size(); }
  std::size_t leafCount() const { return leafValue_.size(); }
  std::size_t featureCount() const { return featureCount_; }

  /// Mean of tree outputs (regression) or majority vote, ties to the
  /// smallest class id (classification) — bit-exact with
  /// `RandomForest::predict` on the source forest.
  double predict(FeatureRow x) const;

  /// Batched predict: `out[i]` receives the prediction for `rows[i]`.
  /// Evaluates tree-major over the whole batch. Throws std::invalid_argument
  /// when the spans disagree in length.
  void predictBatch(std::span<const FeatureRow> rows,
                    std::span<double> out) const;

  /// Raw array access for persistence.
  const std::vector<std::int32_t>& roots() const { return roots_; }
  const std::vector<std::int32_t>& feature() const { return feature_; }
  const std::vector<double>& threshold() const { return threshold_; }
  /// Interleaved child pairs: `children()[2n]` left, `children()[2n+1]`
  /// right (the on-disk format keeps separate left/right columns).
  const std::vector<std::int32_t>& children() const { return children_; }
  std::int32_t left(std::size_t node) const { return children_[2 * node]; }
  std::int32_t right(std::size_t node) const {
    return children_[2 * node + 1];
  }
  const std::vector<double>& leafValue() const { return leafValue_; }

 private:
  double evalTree(std::int32_t ref, FeatureRow x) const;

  TreeTask task_ = TreeTask::kRegression;
  std::size_t featureCount_ = 0;
  std::vector<std::int32_t> roots_;      // one child-encoded ref per tree
  std::vector<std::int32_t> feature_;    // per internal node
  std::vector<double> threshold_;        // per internal node
  std::vector<std::int32_t> children_;   // 2 per internal node, interleaved
  std::vector<double> leafValue_;        // per leaf
};

}  // namespace vcaqoe::ml
