#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/random_forest.hpp"

/// Cache-friendly forest evaluation.
///
/// `ml::DecisionTree` keeps each tree as a vector of 40-byte AoS nodes and
/// `RandomForest::predict` chases them one window at a time — fine for
/// training and offline evaluation, but the per-window hot path of a
/// network-scale monitor (§7) is dominated by exactly that pointer chasing.
/// `FlattenedForest` re-lays an already-trained forest into one contiguous
/// structure-of-arrays arena shared by every tree:
///
///   feature[]    int32 per internal node — split feature
///   threshold[]  double per internal node — go left when x[f] <= t
///   children[]   int32 pair per internal node — [2n] left, [2n+1] right,
///                interleaved so one cache line serves both outcomes of a
///                split and the taken child is
///                `children[2n + (x[f] <= t ? 0 : 1)]` (branchless index
///                math — comparison sense matches the node tree, so NaN
///                features go right on both layouts)
///   leafValue[]  double per leaf
///
/// A child reference >= 0 is an internal-node index into the arena; a
/// negative reference encodes a leaf as `-(leafIndex + 1)`, so traversal is
/// a branch-free-ish loop over three flat streams with the leaf test folded
/// into the sign bit. Tree roots use the same encoding (a depth-0 tree is a
/// root that is itself a leaf).
///
/// `predict` is bit-exact with `RandomForest::predict` (tested property):
/// trees are evaluated in the same order, the regression mean accumulates in
/// the same order, and classification ties break toward the smallest class
/// id exactly as the node-tree form does. `predictBatch` evaluates
/// tree-major — one tree's arena segment stays hot across the whole batch —
/// which is where the cross-flow batched inference pipeline gets its win.
namespace vcaqoe::ml {

/// One feature vector, borrowed from the caller for the duration of a call.
using FeatureRow = std::span<const double>;

class FlattenedForest {
 public:
  /// Opt-in layout transforms applied on top of an already-built arena via
  /// `applyLayout`. Neither is ever on by default.
  struct LayoutOptions {
    /// Re-derive `float32` thresholds and `int16` split-feature indices and
    /// evaluate against those. Predictions may differ from the full-precision
    /// arena only for feature values falling inside a threshold's
    /// double->float rounding gap (at most 1 float ulp of the threshold, so
    /// regression outputs move by at most (max leaf - min leaf) and
    /// classification can flip only on such knife-edge rows — the tolerance
    /// contract tested by tests/simd_kernels_test.cpp). Throws
    /// std::invalid_argument when a split feature index exceeds int16.
    bool quantizeThresholds = false;
    /// Renumber internal nodes into breadth-limited blocks: each subtree's
    /// top levels become one contiguous block (about a cache line of
    /// thresholds), children blocks follow depth-first. A pure index
    /// permutation — predictions stay bit-identical.
    bool breadthBlockOrder = false;
  };

  /// How `predictBatch` walks the arena. Outputs are bit-identical either
  /// way; kBlocked advances a lane of rows one tree level per round so the
  /// data-dependent loads of ~8 rows overlap (memory-level parallelism).
  enum class BatchTraversal { kRowWise, kBlocked };

  FlattenedForest() = default;

  /// Flattens a trained forest. Throws std::invalid_argument when the forest
  /// is untrained.
  explicit FlattenedForest(const RandomForest& forest);

  /// Reconstruction from raw arrays (deserialization). Validates every child
  /// and root reference; throws std::invalid_argument on any out-of-range
  /// reference or inconsistent array sizes.
  static FlattenedForest fromParts(TreeTask task, std::size_t featureCount,
                                   std::vector<std::int32_t> roots,
                                   std::vector<std::int32_t> feature,
                                   std::vector<double> threshold,
                                   std::vector<std::int32_t> left,
                                   std::vector<std::int32_t> right,
                                   std::vector<double> leafValue);

  bool trained() const { return !roots_.empty(); }
  TreeTask task() const { return task_; }
  std::size_t treeCount() const { return roots_.size(); }
  /// Internal (split) nodes across all trees.
  std::size_t internalNodeCount() const { return feature_.size(); }
  std::size_t leafCount() const { return leafValue_.size(); }
  std::size_t featureCount() const { return featureCount_; }

  /// Mean of tree outputs (regression) or majority vote, ties to the
  /// smallest class id (classification) — bit-exact with
  /// `RandomForest::predict` on the source forest.
  double predict(FeatureRow x) const;

  /// Batched predict: `out[i]` receives the prediction for `rows[i]`.
  /// Evaluates tree-major over the whole batch (blocked traversal — the
  /// bench_perf_micro winner). Throws std::invalid_argument when the spans
  /// disagree in length.
  void predictBatch(std::span<const FeatureRow> rows,
                    std::span<double> out) const;

  /// Same, with the traversal order pinned (bench comparisons and the
  /// equivalence suite exercise both arms explicitly).
  void predictBatch(std::span<const FeatureRow> rows, std::span<double> out,
                    BatchTraversal traversal) const;

  /// Applies the opt-in layout transforms in place (reorder first, then
  /// quantize). Throws std::logic_error before flatten.
  void applyLayout(const LayoutOptions& options);

  /// True once applyLayout installed the float32/int16 arrays.
  bool quantized() const { return !thresholdF32_.empty(); }

  /// Raw array access for persistence.
  const std::vector<std::int32_t>& roots() const { return roots_; }
  const std::vector<std::int32_t>& feature() const { return feature_; }
  const std::vector<double>& threshold() const { return threshold_; }
  /// Interleaved child pairs: `children()[2n]` left, `children()[2n+1]`
  /// right (the on-disk format keeps separate left/right columns).
  const std::vector<std::int32_t>& children() const { return children_; }
  std::int32_t left(std::size_t node) const { return children_[2 * node]; }
  std::int32_t right(std::size_t node) const {
    return children_[2 * node + 1];
  }
  const std::vector<double>& leafValue() const { return leafValue_; }

 private:
  double evalTree(std::int32_t ref, FeatureRow x) const;
  void reorderBreadthBlocks();
  void quantizeThresholdArrays();

  TreeTask task_ = TreeTask::kRegression;
  std::size_t featureCount_ = 0;
  std::vector<std::int32_t> roots_;      // one child-encoded ref per tree
  std::vector<std::int32_t> feature_;    // per internal node
  std::vector<double> threshold_;        // per internal node
  std::vector<std::int32_t> children_;   // 2 per internal node, interleaved
  std::vector<double> leafValue_;        // per leaf
  // Quantized mirrors of feature_/threshold_, empty until applyLayout
  // installs them; eval reads these instead when non-empty.
  std::vector<std::int16_t> featureI16_;
  std::vector<float> thresholdF32_;
};

}  // namespace vcaqoe::ml
