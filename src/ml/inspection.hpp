#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"

/// Model inspection beyond impurity importance.
///
/// The paper reads its feature-importance figures off impurity decrease,
/// which is known to inflate high-cardinality features. Permutation
/// importance — the accuracy drop when one feature's column is shuffled —
/// is the standard cross-check; `bench_ablation_params` and the tests use
/// it to confirm the paper's importance rankings are not an artifact of the
/// importance estimator.
namespace vcaqoe::ml {

struct PermutationImportanceOptions {
  /// Shuffles per feature; the reported value is the mean error increase.
  int repeats = 3;
  std::uint64_t seed = 1;
};

/// Mean increase in error (MAE for regression, error rate for
/// classification) on `data` when each feature is permuted, in feature
/// order. Non-negative values only in expectation; small negatives are
/// possible and meaningful (the feature is noise).
std::vector<double> permutationImportance(
    const RandomForest& forest, const Dataset& data,
    const PermutationImportanceOptions& options = {});

/// (name, importance) pairs sorted descending.
std::vector<std::pair<std::string, double>> rankedPermutationImportance(
    const RandomForest& forest, const Dataset& data,
    const PermutationImportanceOptions& options = {});

}  // namespace vcaqoe::ml
