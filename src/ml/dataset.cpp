#include "ml/dataset.hpp"

#include <numeric>
#include <stdexcept>

namespace vcaqoe::ml {

void Dataset::addRow(std::vector<double> features, double target) {
  if (!featureNames.empty() && features.size() != featureNames.size()) {
    throw std::invalid_argument("Dataset::addRow: feature width mismatch");
  }
  x.push_back(std::move(features));
  y.push_back(target);
}

void Dataset::append(const Dataset& other) {
  if (!featureNames.empty() && !other.featureNames.empty() &&
      featureNames != other.featureNames) {
    throw std::invalid_argument("Dataset::append: feature names differ");
  }
  if (featureNames.empty()) featureNames = other.featureNames;
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.featureNames = featureNames;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.x.push_back(x.at(i));
    out.y.push_back(y.at(i));
  }
  return out;
}

void Dataset::validate() const {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Dataset: x/y row count mismatch");
  }
  for (const auto& row : x) {
    if (row.size() != featureNames.size()) {
      throw std::invalid_argument("Dataset: row width mismatch");
    }
  }
}

std::vector<int> kFoldAssignment(std::size_t rows, int k, common::Rng& rng) {
  if (k < 2) throw std::invalid_argument("kFoldAssignment: k must be >= 2");
  std::vector<int> assignment(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    assignment[i] = static_cast<int>(i % static_cast<std::size_t>(k));
  }
  rng.shuffle(assignment);
  return assignment;
}

FoldIndices foldIndices(const std::vector<int>& assignment, int fold) {
  FoldIndices out;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    (assignment[i] == fold ? out.test : out.train).push_back(i);
  }
  return out;
}

}  // namespace vcaqoe::ml
