#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

/// Tabular datasets for the supervised models (one row per prediction
/// window, one column per feature).
namespace vcaqoe::ml {

struct Dataset {
  std::vector<std::string> featureNames;
  /// Row-major feature matrix; every row has featureNames.size() columns.
  std::vector<std::vector<double>> x;
  /// Regression target or class id (as double) per row.
  std::vector<double> y;

  std::size_t rows() const { return x.size(); }
  std::size_t cols() const { return featureNames.empty() && !x.empty()
                                 ? x.front().size()
                                 : featureNames.size(); }

  void addRow(std::vector<double> features, double target);
  /// Appends all rows of `other` (feature names must match or be empty).
  void append(const Dataset& other);
  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;
  /// Throws std::invalid_argument if any row width disagrees with
  /// featureNames or x/y lengths differ.
  void validate() const;
};

/// K-fold assignment: returns per-row fold ids in [0, k), shuffled.
std::vector<int> kFoldAssignment(std::size_t rows, int k, common::Rng& rng);

/// Splits row indices into (train, test) for one fold.
struct FoldIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
FoldIndices foldIndices(const std::vector<int>& assignment, int fold);

}  // namespace vcaqoe::ml
