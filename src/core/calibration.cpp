#include "core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "core/evaluation.hpp"

namespace vcaqoe::core {

void HeuristicCalibrator::fit(std::span<const double> heuristic,
                              std::span<const double> truth) {
  if (heuristic.empty() || heuristic.size() != truth.size()) {
    throw std::invalid_argument("HeuristicCalibrator::fit: bad input");
  }
  const double meanH = common::mean(heuristic);
  const double meanY = common::mean(truth);
  double covHY = 0.0;
  double varH = 0.0;
  for (std::size_t i = 0; i < heuristic.size(); ++i) {
    covHY += (heuristic[i] - meanH) * (truth[i] - meanY);
    varH += (heuristic[i] - meanH) * (heuristic[i] - meanH);
  }
  if (varH < 1e-12) {
    // Constant heuristic output: only an offset is identifiable.
    slope_ = 1.0;
    offset_ = meanY - meanH;
  } else {
    slope_ = covHY / varH;
    offset_ = meanY - slope_ * meanH;
  }
  fitted_ = true;
}

void HeuristicCalibrator::fitFromRecords(
    std::span<const WindowRecord> records, Method method,
    rxstats::Metric metric) {
  const auto series = heuristicSeries(records, method, metric);
  fit(series.predicted, series.truth);
}

double HeuristicCalibrator::apply(double heuristicValue) const {
  if (!fitted_) {
    throw std::logic_error("HeuristicCalibrator::apply before fit");
  }
  return slope_ * heuristicValue + offset_;
}

std::vector<double> HeuristicCalibrator::applyAll(
    std::span<const double> heuristic) const {
  std::vector<double> out;
  out.reserve(heuristic.size());
  for (const double h : heuristic) out.push_back(apply(h));
  return out;
}

CalibrationReport evaluateCalibration(std::span<const WindowRecord> records,
                                      Method method, rxstats::Metric metric,
                                      double calibrationFraction) {
  const auto series = heuristicSeries(records, method, metric);
  const std::size_t n = series.predicted.size();
  if (calibrationFraction <= 0.0 || calibrationFraction >= 1.0 || n < 10) {
    throw std::invalid_argument("evaluateCalibration: bad split");
  }
  // Interleaved split: every k-th window calibrates, the rest test. A
  // contiguous prefix would be dominated by call ramp-up and not represent
  // steady state.
  const auto stride = static_cast<std::size_t>(
      std::max(2.0, std::round(1.0 / calibrationFraction)));
  std::vector<double> calH;
  std::vector<double> calY;
  std::vector<double> testH;
  std::vector<double> testY;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % stride == 0) {
      calH.push_back(series.predicted[i]);
      calY.push_back(series.truth[i]);
    } else {
      testH.push_back(series.predicted[i]);
      testY.push_back(series.truth[i]);
    }
  }

  HeuristicCalibrator calibrator;
  calibrator.fit(calH, calY);
  const auto calibrated = calibrator.applyAll(testH);

  CalibrationReport report;
  report.rawMae = common::meanAbsoluteError(testH, testY);
  report.calibratedMae = common::meanAbsoluteError(calibrated, testY);
  report.slope = calibrator.slope();
  report.offset = calibrator.offset();
  report.calibrationWindows = calH.size();
  report.testWindows = testH.size();
  return report;
}

}  // namespace vcaqoe::core
