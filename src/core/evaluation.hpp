#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/methods.hpp"
#include "core/session.hpp"
#include "features/feature_vector.hpp"
#include "ml/random_forest.hpp"
#include "rxstats/qoe_metrics.hpp"

/// Evaluation harness: turns window records into the numbers the paper's
/// tables and figures report (MAE / MRAE / percentile whiskers / confusion
/// matrices / importance rankings), for all four methods.
namespace vcaqoe::core {

/// Signed errors (predicted - truth) summarized the way the paper draws its
/// boxplots: MAE (or MRAE for bitrate), median, and the 10th/90th percentile
/// whiskers.
struct ErrorSummary {
  double mae = 0.0;
  double mrae = 0.0;
  double medianError = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
  std::size_t n = 0;
};

ErrorSummary summarizeErrors(std::span<const double> predicted,
                             std::span<const double> truth,
                             bool relative = false);

/// Extracts the (predicted, truth) series of a heuristic method for a
/// metric over valid records. Resolution is not supported for heuristics
/// (the paper's heuristics do not estimate it).
struct Series {
  std::vector<double> predicted;
  std::vector<double> truth;
};
Series heuristicSeries(std::span<const WindowRecord> records, Method method,
                       rxstats::Metric metric);

/// Assembles an ML dataset (features + target) from valid records.
/// Resolution targets are encoded through `codec`.
ml::Dataset buildMlDataset(std::span<const WindowRecord> records,
                           features::FeatureSet set, rxstats::Metric metric,
                           const ResolutionCodec& codec = {});

/// Result of evaluating one ML method on one metric.
struct MlEvaluation {
  Series series;  // out-of-fold (CV) or test-set (transfer) predictions
  /// Importance of every feature from a forest fit on the full training
  /// data, ranked descending.
  std::vector<std::pair<std::string, double>> importance;
};

/// 5-fold (or k-fold) cross-validated evaluation, as in §4.3.
MlEvaluation evaluateMlCv(std::span<const WindowRecord> records,
                          features::FeatureSet set, rxstats::Metric metric,
                          const ResolutionCodec& codec, int folds,
                          std::uint64_t seed,
                          const ml::ForestOptions& options = {});

/// Transferability protocol of §5.3: train on one dataset (lab), test on
/// another (real world).
MlEvaluation evaluateMlTransfer(std::span<const WindowRecord> trainRecords,
                                std::span<const WindowRecord> testRecords,
                                features::FeatureSet set,
                                rxstats::Metric metric,
                                const ResolutionCodec& codec,
                                std::uint64_t seed,
                                const ml::ForestOptions& options = {});

/// TreeTask for a metric (resolution is classification, the rest
/// regression).
ml::TreeTask taskFor(rxstats::Metric metric);

}  // namespace vcaqoe::core
