#include "core/error_anatomy.hpp"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "rtp/rtp.hpp"

namespace vcaqoe::core {

AnatomyCounts analyzeErrorAnatomy(const netflow::PacketTrace& trace,
                                  std::uint8_t videoPt,
                                  const MediaClassifierOptions& classifier,
                                  const HeuristicParams& params,
                                  common::DurationNs windowNs,
                                  std::int64_t numWindows) {
  AnatomyCounts counts;
  if (numWindows <= 0) return counts;
  counts.windows = static_cast<std::size_t>(numWindows);

  const MediaClassifier mediaClassifier(classifier);
  const auto video = mediaClassifier.filterVideo(trace);
  const auto assembly = assembleFramesIpUdp(video, params);

  // True frame id (RTP timestamp) per classified packet; packets without an
  // RTP video header (DTLS, RTX) have no true frame.
  std::vector<std::optional<std::uint32_t>> trueTs(video.size());
  for (std::size_t i = 0; i < video.size(); ++i) {
    const auto header = rtp::decode(video[i].headBytes());
    if (header && header->payloadType == videoPt) {
      trueTs[i] = header->timestamp;
    }
  }

  // Per true frame: the heuristic frames its packets landed in, its packet
  // positions (for contiguity), and its last arrival (for windowing).
  // Positions are counted over timestamp-bearing packets only, so an RTX or
  // control packet landing inside a frame does not spuriously flag the
  // frame as interleaved — only genuine frame-vs-frame mixing does.
  struct TrueFrameView {
    std::set<std::uint32_t> heuristicFrames;
    std::size_t firstPos = 0;
    std::size_t lastPos = 0;
    std::uint32_t packetCount = 0;
    common::TimeNs lastArrival = 0;
  };
  std::map<std::uint32_t, TrueFrameView> byTs;
  std::size_t tsPosition = 0;
  for (std::size_t i = 0; i < video.size(); ++i) {
    if (!trueTs[i]) continue;
    auto& view = byTs[*trueTs[i]];
    if (view.packetCount == 0) view.firstPos = tsPosition;
    view.lastPos = tsPosition;
    ++view.packetCount;
    view.heuristicFrames.insert(assembly.frameOfPacket[i]);
    view.lastArrival = std::max(view.lastArrival, video[i].arrivalNs);
    ++tsPosition;
  }

  // Per heuristic frame: the set of true frames it contains and its end.
  std::vector<std::set<std::uint32_t>> tsOfHeuristicFrame(
      assembly.frames.size());
  for (std::size_t i = 0; i < video.size(); ++i) {
    if (!trueTs[i]) continue;
    tsOfHeuristicFrame[assembly.frameOfPacket[i]].insert(*trueTs[i]);
  }

  std::vector<double> splits(static_cast<std::size_t>(numWindows), 0.0);
  std::vector<double> interleaves(static_cast<std::size_t>(numWindows), 0.0);
  std::vector<double> coalesces(static_cast<std::size_t>(numWindows), 0.0);

  for (const auto& [ts, view] : byTs) {
    const auto w = common::windowIndex(view.lastArrival, windowNs);
    if (w < 0 || w >= numWindows) continue;
    // Interleave: the frame's packets did not arrive contiguously.
    const bool contiguous =
        view.lastPos - view.firstPos + 1 == view.packetCount;
    if (!contiguous) {
      interleaves[static_cast<std::size_t>(w)] += 1.0;
    } else if (view.heuristicFrames.size() > 1) {
      // Split: a contiguous true frame broken by intra-frame size spread.
      splits[static_cast<std::size_t>(w)] += 1.0;
    }
  }
  for (std::size_t f = 0; f < assembly.frames.size(); ++f) {
    if (tsOfHeuristicFrame[f].size() <= 1) continue;
    const auto w = common::windowIndex(assembly.frames[f].endNs, windowNs);
    if (w < 0 || w >= numWindows) continue;
    // Coalesce: extra true frames swallowed by this heuristic frame.
    coalesces[static_cast<std::size_t>(w)] +=
        static_cast<double>(tsOfHeuristicFrame[f].size() - 1);
  }

  double splitSum = 0.0;
  double interleaveSum = 0.0;
  double coalesceSum = 0.0;
  for (std::int64_t w = 0; w < numWindows; ++w) {
    splitSum += splits[static_cast<std::size_t>(w)];
    interleaveSum += interleaves[static_cast<std::size_t>(w)];
    coalesceSum += coalesces[static_cast<std::size_t>(w)];
  }
  counts.splitsPerWindow = splitSum / static_cast<double>(numWindows);
  counts.interleavesPerWindow =
      interleaveSum / static_cast<double>(numWindows);
  counts.coalescesPerWindow = coalesceSum / static_cast<double>(numWindows);
  return counts;
}

AnatomyCounts combineAnatomy(std::span<const AnatomyCounts> parts) {
  AnatomyCounts total;
  double weightedSplits = 0.0;
  double weightedInterleaves = 0.0;
  double weightedCoalesces = 0.0;
  for (const auto& part : parts) {
    total.windows += part.windows;
    weightedSplits += part.splitsPerWindow * static_cast<double>(part.windows);
    weightedInterleaves +=
        part.interleavesPerWindow * static_cast<double>(part.windows);
    weightedCoalesces +=
        part.coalescesPerWindow * static_cast<double>(part.windows);
  }
  if (total.windows > 0) {
    const auto n = static_cast<double>(total.windows);
    total.splitsPerWindow = weightedSplits / n;
    total.interleavesPerWindow = weightedInterleaves / n;
    total.coalescesPerWindow = weightedCoalesces / n;
  }
  return total;
}

}  // namespace vcaqoe::core
