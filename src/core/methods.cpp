#include "core/methods.hpp"

namespace vcaqoe::core {

std::string toString(Method method) {
  switch (method) {
    case Method::kRtpMl:
      return "RTP ML";
    case Method::kIpUdpMl:
      return "IP/UDP ML";
    case Method::kRtpHeuristic:
      return "RTP Heuristic";
    case Method::kIpUdpHeuristic:
      return "IP/UDP Heuristic";
  }
  return "unknown";
}

}  // namespace vcaqoe::core
