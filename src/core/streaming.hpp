#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/frame_heuristic.hpp"
#include "core/heuristic_estimators.hpp"
#include "core/lookback_ring.hpp"
#include "core/media_classifier.hpp"
#include "features/columns.hpp"
#include "features/extractors.hpp"
#include "features/feature_vector.hpp"
#include "inference/backend.hpp"
#include "netflow/packet.hpp"

/// Streaming (single-pass, bounded-memory) per-window estimation.
///
/// §7 of the paper flags deployment at network scale as future work and
/// calls for "streaming versions of the methods". This module processes
/// packets one at a time in arrival order and emits one result per
/// completed prediction window:
///  * the ML feature vector of the configured `FeatureSet` — 14 IP/UDP
///    features or the 24-wide RTP row,
///  * the Heuristic estimates (Algorithm 1 run incrementally), and
///  * typed model predictions, when an inference backend is attached.
///
/// Memory is O(packets per window + Nmax); no trace is ever materialized.
/// Windows are finalized one window behind the stream head so that frames
/// whose packets straddle a boundary are attributed to the window of their
/// true end time, matching the batch estimator exactly (tested property).
///
/// Feature-set dispatch (`StreamingOptions::featureSet`):
///  * kIpUdp (default): video is classified by the size threshold
///    (`MediaClassifier::isVideo`) and only video arrival/size columns are
///    buffered — byte-for-byte the historical `StreamingIpUdpEstimator`
///    behavior.
///  * kRtp: video is classified by RTP payload type
///    (`ExtractionParams::videoPt`, matching the offline session path), a
///    second head-capturing `WindowColumns` record buffers *every* packet of
///    the window (RTP features read the whole window's headers), and the
///    emitted features come from `features::rtpFeatures` columnar.
///
/// Per-flow state is columnar and flat — no node-based container is touched
/// on the packet path:
///  * the Algorithm-1 lookback is a fixed-capacity `LookbackRing` (parallel
///    size[]/frameId[] arrays; the size-match scan sweeps contiguous
///    uint32_t),
///  * open frames live in a small id-sorted vector (append-only ids keep it
///    sorted; at most Nmax+1 frames are ever open),
///  * closed frames pending window attribution sit in an endNs-sorted flat
///    vector consumed from the front,
///  * per-window packets are buffered as `features::WindowColumns` records
///    recycled through a pool, so steady state does not allocate.
namespace vcaqoe::core {

struct StreamingOptions {
  common::DurationNs windowNs = common::kNanosPerSecond;
  /// Which feature family the emitted rows carry. kRtp requires
  /// `extraction.videoPt` to be set (and `rtxPt` when the VCA retransmits).
  features::FeatureSet featureSet = features::FeatureSet::kIpUdp;
  MediaClassifierOptions classifier;
  HeuristicParams heuristic;
  features::ExtractionParams extraction;
};

/// One completed window.
struct StreamingOutput {
  std::int64_t window = 0;
  std::vector<double> features;  // featureCount(options.featureSet) wide
  EstimatedQoe heuristic;
  /// Typed predictions of the attached backend; empty when none attached
  /// (or when the backend declined, e.g. the registry fallback).
  inference::PredictionSet predictions;
};

/// Builds the inference input for one completed window — the single source
/// of truth for `WindowContext` construction. The estimator's per-window
/// path and the engine's cross-flow `InferenceBatcher` both go through it,
/// so batched and unbatched predictions see identical inputs by
/// construction. The context borrows `out.features`; `out` must outlive it.
inline inference::WindowContext makeWindowContext(const StreamingOutput& out) {
  inference::WindowContext context;
  context.features = out.features;
  context.hasHeuristic = true;
  context.heuristicFps = out.heuristic.fps;
  context.heuristicBitrateKbps = out.heuristic.bitrateKbps;
  context.heuristicFrameJitterMs = out.heuristic.frameJitterMs;
  return context;
}

class StreamingEstimator {
 public:
  using Callback = std::function<void(const StreamingOutput&)>;
  using BackendPtr = std::shared_ptr<const inference::InferenceBackend>;

  /// `backend` may be null (no inference); it is shared and immutable, so
  /// any number of estimators across any number of threads may hold it.
  /// Throws std::invalid_argument on a null callback or a non-positive
  /// `windowNs` — a bad window size must fail loudly at construction, not
  /// misbucket every packet.
  StreamingEstimator(StreamingOptions options, Callback callback,
                     BackendPtr backend = nullptr);

  /// Attaches the inference backend whose input is the completed window;
  /// every window emitted afterwards carries its `predictions`.
  ///
  /// Mid-stream rule (deterministic by construction): attaching is allowed
  /// only while no window has been emitted yet — it then applies to every
  /// emitted window, a pure function of the packet stream. Attaching after
  /// the first emission throws std::logic_error; resolve the backend at
  /// flow admission (the engine does) instead of swapping it mid-flight.
  void attachBackend(BackendPtr backend);

  /// Rebinds the emission callback. Unlike `attachBackend`, this is legal at
  /// any point in the stream: the callback is a delivery channel, not an
  /// input to the computation, so swapping it cannot change what any window
  /// contains — only where it lands. The engine uses this when a flow
  /// migrates between shards (the old callback referenced the old shard's
  /// ring/batcher). Throws std::invalid_argument on a null callback.
  void rebindCallback(Callback callback);

  /// The attached backend; null when none.
  const inference::InferenceBackend* backend() const { return backend_.get(); }

  /// The feature set this estimator emits.
  features::FeatureSet featureSet() const { return options_.featureSet; }

  /// Feeds one packet; packets must arrive in non-decreasing arrival order
  /// (out-of-order feeding throws std::invalid_argument).
  void onPacket(const netflow::Packet& packet);

  /// Flushes all remaining windows (end of capture).
  void finish();

  /// Windows emitted so far.
  std::int64_t emittedWindows() const { return nextWindowToEmit_; }

 private:
  struct OpenFrame {
    std::uint64_t id = 0;
    HeuristicFrame frame;
    std::uint64_t lastTouchedPacket = 0;  // global video-packet index
  };

  /// kIpUdp: size-threshold classifier; kRtp: RTP header decodes and its
  /// payload type equals `extraction.videoPt` (the offline session rule).
  bool isVideoPacket(const netflow::Packet& packet) const;
  void ingestVideoPacket(const netflow::Packet& packet);
  void closeStaleFrames();
  /// Inserts into `closedFrames_` keeping (endNs, close order) — the flat
  /// equivalent of the old multimap emplace.
  void insertClosedFrame(const HeuristicFrame& frame);
  /// Appends one packet to the columnar buffer of `window`. kIpUdp callers
  /// only pass video packets; kRtp passes every packet (whole-window
  /// columns) with `video` flagging membership in the video columns too.
  void bufferPacket(std::int64_t window, const netflow::Packet& packet,
                    bool video);
  /// Emits every window whose content can no longer change given the
  /// current stream head (`now`); pass nullopt to flush everything.
  void emitReadyWindows(std::optional<common::TimeNs> now);

  StreamingOptions options_;
  Callback callback_;
  BackendPtr backend_;
  MediaClassifier classifier_;
  bool rtpMode_ = false;

  common::TimeNs lastArrival_ = -1;

  // Incremental Algorithm-1 state (SoA ring + flat id-sorted open set).
  LookbackRing recent_;
  std::vector<OpenFrame> openFrames_;
  std::uint64_t nextFrameId_ = 0;
  std::uint64_t videoPacketIndex_ = 0;

  // Closed frames not yet attributed to an emitted window, sorted by
  // (endNs, close order); fully pending (consumed prefixes are compacted
  // away before emitReadyWindows returns).
  std::vector<HeuristicFrame> closedFrames_;
  common::TimeNs lastEmittedFrameEnd_ = -1;

  // Columnar per-window buffers: parallel (window index, video columns)
  // queues appended in non-decreasing window order, consumed from
  // `bufferedHead_`. In kRtp mode a third parallel queue holds
  // head-capturing whole-window columns (every packet, not just video).
  // Drained records recycle through the pools.
  std::vector<std::int64_t> bufferedWindows_;
  std::vector<features::WindowColumns> bufferedColumns_;
  std::vector<features::WindowColumns> bufferedWholeColumns_;  // kRtp only
  std::size_t bufferedHead_ = 0;
  std::vector<features::WindowColumns> columnsPool_;
  std::vector<features::WindowColumns> wholeColumnsPool_;

  /// Highest window index any packet (video or not) has been seen in —
  /// empty trailing windows are still prediction intervals and must emit.
  std::int64_t lastSeenWindow_ = -1;

  std::int64_t nextWindowToEmit_ = 0;
};

/// Historical name from when the streaming path could only compute the
/// IP/UDP feature set; `StreamingOptions::featureSet` now selects the
/// family and the default (kIpUdp) keeps old call sites bit-identical.
using StreamingIpUdpEstimator = StreamingEstimator;

}  // namespace vcaqoe::core
