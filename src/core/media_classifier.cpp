#include "core/media_classifier.hpp"

#include "rtp/rtp.hpp"

namespace vcaqoe::core {

std::string_view toString(VcaClass vca) {
  switch (vca) {
    case VcaClass::kMeet:
      return "meet";
    case VcaClass::kTeams:
      return "teams";
    case VcaClass::kWebex:
      return "webex";
    case VcaClass::kUnknown:
      break;
  }
  return "unknown";
}

namespace {

VcaClass vcaOfPort(std::uint16_t port) {
  if (port >= 19305 && port <= 19309) return VcaClass::kMeet;
  if (port >= 3478 && port <= 3481) return VcaClass::kTeams;
  if (port == 9000 || port == 5004) return VcaClass::kWebex;
  return VcaClass::kUnknown;
}

}  // namespace

VcaClass MediaClassifier::classifyVca(const netflow::FlowKey& key) const {
  // The service endpoint can be either side of the observed 5-tuple
  // (upstream vs downstream capture); the client's ephemeral port never
  // collides with the relay ranges, so checking both sides is safe.
  const auto byDst = vcaOfPort(key.dstPort);
  if (byDst != VcaClass::kUnknown) return byDst;
  return vcaOfPort(key.srcPort);
}

std::vector<netflow::Packet> MediaClassifier::filterVideo(
    std::span<const netflow::Packet> packets) const {
  std::vector<netflow::Packet> video;
  video.reserve(packets.size());
  for (const auto& pkt : packets) {
    if (isVideo(pkt)) video.push_back(pkt);
  }
  return video;
}

TruthLabel groundTruthLabel(const netflow::Packet& packet,
                            std::uint8_t audioPt, std::uint8_t videoPt,
                            std::uint8_t rtxPt,
                            std::uint32_t rtxKeepaliveBytes) {
  TruthLabel label;
  const auto header = rtp::decode(packet.headBytes());
  if (!header) {
    label.kind = rtp::MediaKind::kControl;
    return label;
  }
  if (header->payloadType == audioPt) {
    label.kind = rtp::MediaKind::kAudio;
  } else if (header->payloadType == videoPt) {
    label.kind = rtp::MediaKind::kVideo;
    label.video = true;
  } else if (rtxPt != 0 && header->payloadType == rtxPt) {
    label.kind = rtp::MediaKind::kVideoRtx;
    label.keepalive = packet.sizeBytes == rtxKeepaliveBytes;
    label.video = !label.keepalive;
  } else {
    label.kind = rtp::MediaKind::kControl;
  }
  return label;
}

}  // namespace vcaqoe::core
