#include "core/media_classifier.hpp"

#include "rtp/rtp.hpp"

namespace vcaqoe::core {

std::vector<netflow::Packet> MediaClassifier::filterVideo(
    std::span<const netflow::Packet> packets) const {
  std::vector<netflow::Packet> video;
  video.reserve(packets.size());
  for (const auto& pkt : packets) {
    if (isVideo(pkt)) video.push_back(pkt);
  }
  return video;
}

TruthLabel groundTruthLabel(const netflow::Packet& packet,
                            std::uint8_t audioPt, std::uint8_t videoPt,
                            std::uint8_t rtxPt,
                            std::uint32_t rtxKeepaliveBytes) {
  TruthLabel label;
  const auto header = rtp::decode(packet.headBytes());
  if (!header) {
    label.kind = rtp::MediaKind::kControl;
    return label;
  }
  if (header->payloadType == audioPt) {
    label.kind = rtp::MediaKind::kAudio;
  } else if (header->payloadType == videoPt) {
    label.kind = rtp::MediaKind::kVideo;
    label.video = true;
  } else if (rtxPt != 0 && header->payloadType == rtxPt) {
    label.kind = rtp::MediaKind::kVideoRtx;
    label.keepalive = packet.sizeBytes == rtxKeepaliveBytes;
    label.video = !label.keepalive;
  } else {
    label.kind = rtp::MediaKind::kControl;
  }
  return label;
}

}  // namespace vcaqoe::core
