#include "core/evaluation.hpp"

#include <stdexcept>

#include "common/stats.hpp"

namespace vcaqoe::core {

ErrorSummary summarizeErrors(std::span<const double> predicted,
                             std::span<const double> truth, bool relative) {
  ErrorSummary s;
  s.n = predicted.size();
  if (predicted.empty()) return s;
  std::vector<double> errors;
  errors.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    double e = predicted[i] - truth[i];
    if (relative) {
      if (truth[i] == 0.0) continue;
      e /= truth[i];
    }
    errors.push_back(e);
  }
  s.mae = common::meanAbsoluteError(predicted, truth);
  s.mrae = common::meanRelativeAbsoluteError(predicted, truth);
  s.medianError = common::median(errors);
  s.p10 = common::percentile(errors, 10.0);
  s.p90 = common::percentile(errors, 90.0);
  return s;
}

namespace {

double truthValue(const WindowRecord& rec, rxstats::Metric metric) {
  switch (metric) {
    case rxstats::Metric::kBitrate:
      return rec.truthBitrateKbps;
    case rxstats::Metric::kFrameRate:
      return rec.truthFps;
    case rxstats::Metric::kFrameJitter:
      return rec.truthJitterMs;
    case rxstats::Metric::kResolution:
      return static_cast<double>(rec.truthFrameHeight);
  }
  return 0.0;
}

double heuristicValue(const EstimatedQoe& est, rxstats::Metric metric) {
  switch (metric) {
    case rxstats::Metric::kBitrate:
      return est.bitrateKbps;
    case rxstats::Metric::kFrameRate:
      return est.fps;
    case rxstats::Metric::kFrameJitter:
      return est.frameJitterMs;
    case rxstats::Metric::kResolution:
      throw std::invalid_argument(
          "heuristics do not estimate resolution (§3.2.1)");
  }
  return 0.0;
}

}  // namespace

Series heuristicSeries(std::span<const WindowRecord> records, Method method,
                       rxstats::Metric metric) {
  if (method != Method::kRtpHeuristic && method != Method::kIpUdpHeuristic) {
    throw std::invalid_argument("heuristicSeries: not a heuristic method");
  }
  Series out;
  for (const auto& rec : records) {
    if (!rec.truthValid) continue;
    const auto& est = method == Method::kIpUdpHeuristic ? rec.ipudpHeuristic
                                                        : rec.rtpHeuristic;
    out.predicted.push_back(heuristicValue(est, metric));
    out.truth.push_back(truthValue(rec, metric));
  }
  return out;
}

ml::Dataset buildMlDataset(std::span<const WindowRecord> records,
                           features::FeatureSet set, rxstats::Metric metric,
                           const ResolutionCodec& codec) {
  ml::Dataset data;
  data.featureNames = features::featureNames(set);
  for (const auto& rec : records) {
    if (!rec.truthValid) continue;
    const auto& feats = set == features::FeatureSet::kIpUdp
                            ? rec.ipudpFeatures
                            : rec.rtpFeatures;
    double target = truthValue(rec, metric);
    if (metric == rxstats::Metric::kResolution) {
      target = codec.encode(rec.truthFrameHeight);
    }
    data.addRow(feats, target);
  }
  return data;
}

ml::TreeTask taskFor(rxstats::Metric metric) {
  return metric == rxstats::Metric::kResolution
             ? ml::TreeTask::kClassification
             : ml::TreeTask::kRegression;
}

MlEvaluation evaluateMlCv(std::span<const WindowRecord> records,
                          features::FeatureSet set, rxstats::Metric metric,
                          const ResolutionCodec& codec, int folds,
                          std::uint64_t seed,
                          const ml::ForestOptions& options) {
  const ml::Dataset data = buildMlDataset(records, set, metric, codec);
  if (data.rows() == 0) {
    throw std::invalid_argument("evaluateMlCv: no valid records");
  }
  const auto task = taskFor(metric);
  const auto cv = ml::crossValidate(data, task, options, folds, seed);

  MlEvaluation eval;
  eval.series.predicted = cv.predicted;
  eval.series.truth = cv.truth;

  ml::RandomForest full;
  full.fit(data, task, options, seed ^ 0xABCDEF1234567ULL);
  eval.importance = full.rankedImportance();
  return eval;
}

MlEvaluation evaluateMlTransfer(std::span<const WindowRecord> trainRecords,
                                std::span<const WindowRecord> testRecords,
                                features::FeatureSet set,
                                rxstats::Metric metric,
                                const ResolutionCodec& codec,
                                std::uint64_t seed,
                                const ml::ForestOptions& options) {
  const ml::Dataset train = buildMlDataset(trainRecords, set, metric, codec);
  const ml::Dataset test = buildMlDataset(testRecords, set, metric, codec);
  if (train.rows() == 0 || test.rows() == 0) {
    throw std::invalid_argument("evaluateMlTransfer: empty split");
  }
  const auto task = taskFor(metric);
  ml::RandomForest forest;
  forest.fit(train, task, options, seed);

  MlEvaluation eval;
  eval.series.predicted = forest.predictAll(test);
  eval.series.truth = test.y;
  eval.importance = forest.rankedImportance();
  return eval;
}

}  // namespace vcaqoe::core
