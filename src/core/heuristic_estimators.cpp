#include "core/heuristic_estimators.hpp"

#include <algorithm>
#include <map>

#include "common/stats.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::core {

EstimateTimeline qoeFromFrames(std::span<const HeuristicFrame> frames,
                               common::DurationNs windowNs,
                               std::int64_t numWindows) {
  std::vector<HeuristicFrame> ordered(frames.begin(), frames.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const HeuristicFrame& a, const HeuristicFrame& b) {
              return a.endNs < b.endNs;
            });

  EstimateTimeline timeline(static_cast<std::size_t>(numWindows));
  for (std::int64_t w = 0; w < numWindows; ++w) {
    timeline[static_cast<std::size_t>(w)].window = w;
  }

  const double seconds = common::nsToSeconds(windowNs);
  std::vector<std::vector<double>> gapsByWindow(
      static_cast<std::size_t>(numWindows));

  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const auto w = common::windowIndex(ordered[i].endNs, windowNs);
    if (w < 0 || w >= numWindows) continue;
    auto& row = timeline[static_cast<std::size_t>(w)];
    ++row.frameCount;
    // Payload bits: packet sizes minus the fixed 12-byte RTP header — the
    // only application overhead inferable without parsing RTP (§5.1.3).
    const double payloadBytes =
        static_cast<double>(ordered[i].bytes) -
        12.0 * static_cast<double>(ordered[i].packetCount);
    row.bitrateKbps += payloadBytes * 8.0 / seconds / 1e3;
    if (i > 0) {
      gapsByWindow[static_cast<std::size_t>(w)].push_back(
          common::nsToMillis(ordered[i].endNs - ordered[i - 1].endNs));
    }
  }

  for (std::int64_t w = 0; w < numWindows; ++w) {
    auto& row = timeline[static_cast<std::size_t>(w)];
    row.fps = static_cast<double>(row.frameCount) / seconds;
    const auto& gaps = gapsByWindow[static_cast<std::size_t>(w)];
    row.frameJitterMs = gaps.size() >= 2 ? common::sampleStdev(gaps) : 0.0;
  }
  return timeline;
}

EstimateTimeline IpUdpHeuristicEstimator::estimate(
    const netflow::PacketTrace& trace, common::DurationNs windowNs,
    std::int64_t numWindows) const {
  const auto video = classifier_.filterVideo(trace);
  const auto assembly = assembleFramesIpUdp(video, params_);
  return qoeFromFrames(assembly.frames, windowNs, numWindows);
}

std::vector<HeuristicFrame> RtpHeuristicEstimator::assembleByTimestamp(
    std::span<const netflow::Packet> packets) const {
  struct Accumulator {
    HeuristicFrame frame;
    common::TimeNs markerArrival = -1;
  };
  std::map<std::uint32_t, Accumulator> byTs;
  for (const auto& pkt : packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != videoPt_) continue;
    auto& acc = byTs[header->timestamp];
    if (acc.frame.packetCount == 0) {
      acc.frame.firstNs = pkt.arrivalNs;
      acc.frame.endNs = pkt.arrivalNs;
    }
    acc.frame.firstNs = std::min(acc.frame.firstNs, pkt.arrivalNs);
    acc.frame.endNs = std::max(acc.frame.endNs, pkt.arrivalNs);
    acc.frame.bytes += pkt.sizeBytes;
    ++acc.frame.packetCount;
    if (header->marker) acc.markerArrival = pkt.arrivalNs;
  }

  std::vector<HeuristicFrame> frames;
  frames.reserve(byTs.size());
  for (auto& [ts, acc] : byTs) {
    // The marker bit flags the last packet of the frame; when it arrived in
    // order its arrival is the frame end (Michel et al.'s method). With
    // reordering the latest arrival bounds the completion.
    if (acc.markerArrival >= 0) {
      acc.frame.endNs = std::max(acc.frame.endNs, acc.markerArrival);
    }
    frames.push_back(acc.frame);
  }
  return frames;
}

EstimateTimeline RtpHeuristicEstimator::estimate(
    const netflow::PacketTrace& trace, common::DurationNs windowNs,
    std::int64_t numWindows) const {
  const auto frames = assembleByTimestamp(trace);
  return qoeFromFrames(frames, windowNs, numWindows);
}

}  // namespace vcaqoe::core
