#include "core/session.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/stats.hpp"
#include "features/windows.hpp"
#include "ml/metrics.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::core {

HeuristicParams defaultHeuristicParams(const std::string& vcaName) {
  HeuristicParams params;
  params.deltaMaxBytes = 2;
  if (vcaName == "meet") {
    params.lookback = 3;
  } else if (vcaName == "teams") {
    params.lookback = 2;
  } else if (vcaName == "webex") {
    params.lookback = 1;
  } else {
    params.lookback = 2;
  }
  return params;
}

double ResolutionCodec::encode(int frameHeight) const {
  return useBins ? static_cast<double>(ml::teamsResolutionBin(frameHeight))
                 : static_cast<double>(frameHeight);
}

std::string ResolutionCodec::labelName(int label) const {
  return useBins ? ml::teamsResolutionBinName(label)
                 : std::to_string(label) + "p";
}

ResolutionCodec resolutionCodecFor(const std::string& vcaName) {
  ResolutionCodec codec;
  codec.useBins = vcaName == "teams";
  return codec;
}

std::vector<WindowRecord> buildWindowRecords(
    const LabeledSession& session, const RecordBuilderOptions& options) {
  const common::DurationNs windowNs = options.windowNs;
  const auto windowSeconds =
      static_cast<std::int64_t>(windowNs / common::kNanosPerSecond);
  const auto numWindows = static_cast<std::int64_t>(
      common::secondsToNs(session.durationSec) / windowNs);
  if (numWindows <= 0) return {};

  HeuristicParams heuristicParams =
      options.heuristicFromProfile
          ? defaultHeuristicParams(session.profile.name)
          : options.heuristic;

  features::ExtractionParams extraction = options.extraction;
  extraction.videoPt = session.profile.videoPt;
  extraction.rtxPt = session.profile.rtxPt;

  // Heuristic timelines over the whole session.
  const IpUdpHeuristicEstimator ipudp(options.classifier, heuristicParams);
  const RtpHeuristicEstimator rtpHeuristic(session.profile.videoPt);
  const auto ipudpTimeline =
      ipudp.estimate(session.packets, windowNs, numWindows);
  const auto rtpTimeline =
      rtpHeuristic.estimate(session.packets, windowNs, numWindows);

  // Ground-truth rows by second index.
  std::unordered_map<std::int64_t, const rxstats::QoeRow*> truthBySecond;
  truthBySecond.reserve(session.truth.size());
  for (const auto& row : session.truth) truthBySecond[row.second] = &row;

  const MediaClassifier classifier(options.classifier);
  const auto windows = features::sliceWindows(session.packets, windowNs);

  std::vector<WindowRecord> records;
  records.reserve(static_cast<std::size_t>(numWindows));

  for (std::int64_t w = 0; w < numWindows; ++w) {
    WindowRecord rec;
    rec.sessionId = session.id;
    rec.window = w;

    // Feature extraction. Windows beyond the last packet are empty.
    features::Window window;
    window.index = w;
    window.startNs = w * windowNs;
    window.durationNs = windowNs;
    if (w < static_cast<std::int64_t>(windows.size())) {
      window = windows[static_cast<std::size_t>(w)];
    }

    // IP/UDP path: size-threshold classification.
    const auto videoByThreshold = classifier.filterVideo(window.packets);
    rec.ipudpFeatures = features::extractFeatures(
        window, videoByThreshold, features::FeatureSet::kIpUdp, extraction);

    // RTP path: payload-type classification of the primary video stream.
    std::vector<netflow::Packet> videoByPt;
    videoByPt.reserve(window.packets.size());
    for (const auto& pkt : window.packets) {
      const auto header = rtp::decode(pkt.headBytes());
      if (header && header->payloadType == session.profile.videoPt) {
        videoByPt.push_back(pkt);
      }
    }
    rec.rtpFeatures = features::extractFeatures(
        window, videoByPt, features::FeatureSet::kRtp, extraction);

    rec.ipudpHeuristic = ipudpTimeline[static_cast<std::size_t>(w)];
    rec.rtpHeuristic = rtpTimeline[static_cast<std::size_t>(w)];

    // Aggregate ground truth over the window's seconds; every second must
    // be present and valid for the window to count (the paper filters logs
    // with missing per-second rows, §4.1).
    std::vector<double> bitrates;
    std::vector<double> fpss;
    std::vector<double> jitters;
    int height = 0;
    bool allValid = true;
    for (std::int64_t s = w * windowSeconds; s < (w + 1) * windowSeconds;
         ++s) {
      const auto it = truthBySecond.find(s);
      if (it == truthBySecond.end() || !it->second->valid) {
        allValid = false;
        break;
      }
      bitrates.push_back(it->second->bitrateKbps);
      fpss.push_back(it->second->fps);
      jitters.push_back(it->second->frameJitterMs);
      height = it->second->frameHeight;
    }
    if (allValid && !bitrates.empty()) {
      rec.truthValid = true;
      rec.truthBitrateKbps = common::mean(bitrates);
      rec.truthFps = common::mean(fpss);
      rec.truthJitterMs = common::mean(jitters);
      rec.truthFrameHeight = height;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace vcaqoe::core
