#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "netflow/packet.hpp"
#include "rtp/media_kind.hpp"

/// Media classification from IP/UDP headers only (paper §3.1).
///
/// Audio packets are small ([89, 385] bytes observed), video packets large
/// (99% above 564 bytes), and RTX keep-alives sit at exactly 304 bytes; so a
/// size threshold V_min tags video packets. Everything below the threshold
/// (audio, STUN, keep-alives) is excluded from QoE inference.
namespace vcaqoe::core {

struct MediaClassifierOptions {
  /// Packets at least this large are classified as video. Between the
  /// audio/keep-alive band (<= 385) and the video band (> 564) for all three
  /// VCAs; determined "by inspecting a few VCA traces collected in the lab".
  std::uint32_t vminBytes = 450;
};

/// Which of the studied VCAs a flow belongs to — the key the warm-model
/// registry is indexed by. The paper assumes VCA traffic arrives
/// pre-classified by prior work (§2.2); `kUnknown` flows resolve to the
/// registry's fallback backend.
enum class VcaClass : std::uint8_t { kUnknown = 0, kMeet, kTeams, kWebex };

/// Stable lowercase name ("meet", "teams", "webex", "unknown") — also the
/// registry key and the on-disk model directory name.
std::string_view toString(VcaClass vca);

class MediaClassifier {
 public:
  explicit MediaClassifier(MediaClassifierOptions options = {})
      : options_(options) {}

  bool isVideo(const netflow::Packet& packet) const {
    return packet.sizeBytes >= options_.vminBytes;
  }

  /// The video-classified packets of a trace or window, in input order.
  std::vector<netflow::Packet> filterVideo(
      std::span<const netflow::Packet> packets) const;

  /// VCA verdict for a flow from its 5-tuple alone, available at
  /// flow-admission time (first packet). Uses the VCAs' well-known media
  /// port ranges on either endpoint: Meet relays on UDP 19305-19309, Teams
  /// transport relays on UDP 3478-3481, Webex media on UDP 9000 (and RTP
  /// fallback 5004). Everything else is kUnknown.
  VcaClass classifyVca(const netflow::FlowKey& key) const;

  const MediaClassifierOptions& options() const { return options_; }

 private:
  MediaClassifierOptions options_;
};

/// Ground truth for one packet, derived the way the paper derives it: parse
/// the RTP header and look up the payload type; non-RTP payloads (DTLS,
/// STUN) are control traffic.
struct TruthLabel {
  rtp::MediaKind kind = rtp::MediaKind::kControl;
  /// RTX keep-alive (exactly the profile's keep-alive size on the RTX
  /// stream): carries no video payload, so it does not count as video.
  bool keepalive = false;
  /// Carries video payload: primary video or an RTX retransmission.
  bool video = false;
};

TruthLabel groundTruthLabel(const netflow::Packet& packet,
                            std::uint8_t audioPt, std::uint8_t videoPt,
                            std::uint8_t rtxPt,
                            std::uint32_t rtxKeepaliveBytes);

}  // namespace vcaqoe::core
