#pragma once

#include <cstdint>
#include <span>

#include "core/frame_heuristic.hpp"
#include "core/media_classifier.hpp"
#include "netflow/packet.hpp"

/// Error anatomy of the IP/UDP Heuristic (paper §5.1.2, Fig 4): how often
/// the packet-size-similarity assumption fails, per prediction window, by
/// failure mode:
///  * split      — one true frame broken into several heuristic frames
///                 (intra-frame size difference above Δmax; Meet's unequal
///                 fragmentation),
///  * interleave — a true frame whose packets arrived non-contiguously
///                 (reordering mixed it with neighbours),
///  * coalesce   — one heuristic frame containing several true frames
///                 (consecutive frames of similar size glued together).
namespace vcaqoe::core {

struct AnatomyCounts {
  double splitsPerWindow = 0.0;
  double interleavesPerWindow = 0.0;
  double coalescesPerWindow = 0.0;
  std::size_t windows = 0;
};

/// Analyzes one session. `trace` is the receiver trace; true frames come
/// from the RTP timestamps (as in the paper's ground-truth analysis);
/// heuristic frames from Algorithm 1 over threshold-classified packets.
AnatomyCounts analyzeErrorAnatomy(const netflow::PacketTrace& trace,
                                  std::uint8_t videoPt,
                                  const MediaClassifierOptions& classifier,
                                  const HeuristicParams& params,
                                  common::DurationNs windowNs,
                                  std::int64_t numWindows);

/// Merges per-session counts weighted by window count.
AnatomyCounts combineAnatomy(std::span<const AnatomyCounts> parts);

}  // namespace vcaqoe::core
