#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/simd.hpp"

/// Fixed-capacity SoA ring over the last Nmax video packets — the
/// Algorithm-1 lookback state of the streaming estimator.
///
/// The batch estimator scans backwards over the trace it already holds; the
/// streaming estimator must carry the lookback itself. A deque of
/// (size, frame id) pairs does that with node-hopping and a 12-byte stride;
/// this ring keeps the two columns in parallel flat arrays so the size-match
/// scan runs 8/16 sizes per step through `common::simd::findLastMatchU32`
/// and pushes never allocate after construction.
namespace vcaqoe::core {

class LookbackRing {
 public:
  /// Throws std::invalid_argument on a zero capacity — use
  /// `HeuristicParams::effectiveLookback()`, which is always >= 1.
  explicit LookbackRing(std::size_t capacity)
      : sizes_(capacity), frameIds_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("LookbackRing: zero capacity");
    }
  }

  /// Records one video packet; the oldest entry falls off once full.
  void push(std::uint32_t sizeBytes, std::uint64_t frameId) {
    sizes_[next_] = sizeBytes;
    frameIds_[next_] = frameId;
    next_ = next_ + 1 == sizes_.size() ? 0 : next_ + 1;
    if (count_ < sizes_.size()) ++count_;
  }

  /// Algorithm 1's matching rule: the frame id of the most recent entry
  /// whose size is within `deltaMaxBytes` of `sizeBytes`, or -1 when none
  /// matches. Most-recent-first over at most two contiguous segments (the
  /// slots below the write cursor, then the wrapped tail).
  std::int64_t matchMostRecent(std::uint32_t sizeBytes,
                               std::uint32_t deltaMaxBytes) const {
    const std::int64_t hit = scanSpan(0, next_, sizeBytes, deltaMaxBytes);
    if (hit >= 0 || count_ < sizes_.size()) return hit;
    return scanSpan(next_, sizes_.size(), sizeBytes, deltaMaxBytes);
  }

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return sizes_.size(); }

  void clear() {
    next_ = 0;
    count_ = 0;
  }

 private:
  /// Most-recent match over the contiguous slot range [lo, hi): a forward
  /// span handed to the SIMD kernel (which resolves the *last* matching
  /// index), replacing the old backward `i-- > lo` per-element walk.
  std::int64_t scanSpan(std::size_t lo, std::size_t hi,
                        std::uint32_t sizeBytes,
                        std::uint32_t deltaMaxBytes) const {
    const std::ptrdiff_t at = common::simd::findLastMatchU32(
        sizes_.data() + lo, hi - lo, sizeBytes, deltaMaxBytes);
    if (at < 0) return -1;
    return static_cast<std::int64_t>(frameIds_[lo + static_cast<std::size_t>(at)]);
  }

  std::vector<std::uint32_t> sizes_;
  std::vector<std::uint64_t> frameIds_;
  std::size_t next_ = 0;   // next write slot (newest entry is at next_ - 1)
  std::size_t count_ = 0;  // live entries, <= capacity
};

}  // namespace vcaqoe::core
