#pragma once

#include <span>
#include <vector>

#include "core/methods.hpp"
#include "core/session.hpp"
#include "rxstats/qoe_metrics.hpp"

/// Calibrated heuristics.
///
/// §7 ("Cost of ML models") proposes exploring "whether direct or calibrated
/// estimations from non-machine learning methods like IP/UDP Heuristic ...
/// can be used as alternatives to labeled data". This module implements that
/// idea: a one-dimensional affine correction y ≈ a·h + b fitted between a
/// heuristic's output h and ground truth on a small calibration set, then
/// applied everywhere. It removes the heuristic's systematic biases (the
/// +7% bitrate overhead, the jitter-buffer fps offset) at a tiny fraction of
/// the labeled data a forest needs.
namespace vcaqoe::core {

/// Affine corrector fitted by least squares.
class HeuristicCalibrator {
 public:
  /// Fits y ≈ a·h + b on (heuristic, truth) pairs. Throws
  /// std::invalid_argument on empty/mismatched input; a degenerate
  /// (constant-h) fit falls back to a pure offset (a = 1).
  void fit(std::span<const double> heuristic, std::span<const double> truth);

  /// Convenience: fits from window records for one heuristic method/metric.
  void fitFromRecords(std::span<const WindowRecord> records, Method method,
                      rxstats::Metric metric);

  double apply(double heuristicValue) const;
  std::vector<double> applyAll(std::span<const double> heuristic) const;

  double slope() const { return slope_; }
  double offset() const { return offset_; }
  bool fitted() const { return fitted_; }

 private:
  double slope_ = 1.0;
  double offset_ = 0.0;
  bool fitted_ = false;
};

/// Evaluation helper: MAE of the raw heuristic vs the calibrated heuristic
/// on held-out records, using the first `calibrationFraction` of records
/// (by position) for fitting.
struct CalibrationReport {
  double rawMae = 0.0;
  double calibratedMae = 0.0;
  double slope = 1.0;
  double offset = 0.0;
  std::size_t calibrationWindows = 0;
  std::size_t testWindows = 0;
};
CalibrationReport evaluateCalibration(std::span<const WindowRecord> records,
                                      Method method, rxstats::Metric metric,
                                      double calibrationFraction = 0.2);

}  // namespace vcaqoe::core
