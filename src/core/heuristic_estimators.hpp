#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "core/frame_heuristic.hpp"
#include "core/media_classifier.hpp"
#include "netflow/packet.hpp"

/// The two heuristic QoE estimators (§3.2.1 and §3.3).
///
/// Both model the session as a sequence of frames and derive per-window
/// bitrate / frame rate / frame jitter from frame end times and sizes; they
/// differ only in how frame boundaries are found (packet-size similarity vs
/// RTP timestamp + marker bit). Neither estimates resolution (§3.2.1).
namespace vcaqoe::core {

/// Per-window heuristic estimates.
struct EstimatedQoe {
  std::int64_t window = 0;
  double bitrateKbps = 0.0;
  double fps = 0.0;
  double frameJitterMs = 0.0;
  std::uint32_t frameCount = 0;
};

using EstimateTimeline = std::vector<EstimatedQoe>;

/// Shared frames → QoE math (§3.2.1 "QoE estimation from frames"):
///  frame rate — frames whose end time falls in the window, per second;
///  bitrate    — payload bits of those frames (12-byte RTP header per packet
///               subtracted, the only overhead visible without RTP);
///  jitter     — stdev of consecutive end-time gaps within the window.
/// Produces exactly `numWindows` rows for windows [0, numWindows).
EstimateTimeline qoeFromFrames(std::span<const HeuristicFrame> frames,
                               common::DurationNs windowNs,
                               std::int64_t numWindows);

/// IP/UDP Heuristic: V_min media classification + Algorithm 1 + frame math.
class IpUdpHeuristicEstimator {
 public:
  IpUdpHeuristicEstimator(MediaClassifierOptions classifierOptions,
                          HeuristicParams params)
      : classifier_(classifierOptions), params_(params) {}

  EstimateTimeline estimate(const netflow::PacketTrace& trace,
                            common::DurationNs windowNs,
                            std::int64_t numWindows) const;

  /// The intermediate frame assembly (exposed for the error anatomy).
  HeuristicAssembly assemble(std::span<const netflow::Packet> video) const {
    return assembleFramesIpUdp(video, params_);
  }

  const MediaClassifier& classifier() const { return classifier_; }
  const HeuristicParams& params() const { return params_; }

 private:
  MediaClassifier classifier_;
  HeuristicParams params_;
};

/// RTP Heuristic (the Michel et al.-style baseline): frames are packets
/// sharing one RTP timestamp; the marker bit flags the frame end.
class RtpHeuristicEstimator {
 public:
  explicit RtpHeuristicEstimator(std::uint8_t videoPt) : videoPt_(videoPt) {}

  EstimateTimeline estimate(const netflow::PacketTrace& trace,
                            common::DurationNs windowNs,
                            std::int64_t numWindows) const;

  /// Frame table from RTP headers (also the ground-truth frame segmentation
  /// used by the error anatomy of Fig 4).
  std::vector<HeuristicFrame> assembleByTimestamp(
      std::span<const netflow::Packet> packets) const;

 private:
  std::uint8_t videoPt_;
};

}  // namespace vcaqoe::core
