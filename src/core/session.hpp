#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "core/frame_heuristic.hpp"
#include "core/heuristic_estimators.hpp"
#include "core/media_classifier.hpp"
#include "features/extractors.hpp"
#include "netflow/packet.hpp"
#include "rxstats/qoe_metrics.hpp"
#include "simcall/call_simulator.hpp"

/// Labeled sessions and per-window records.
///
/// A `LabeledSession` is one call: the receiver packet trace plus the
/// webrtc-internals-style ground truth. `buildWindowRecords` turns a session
/// into per-window rows carrying everything every method needs — both
/// feature families, both heuristics' estimates, and the aggregated ground
/// truth — so each bench computes a session exactly once.
namespace vcaqoe::core {

struct LabeledSession {
  std::uint64_t id = 0;
  netflow::PacketTrace packets;
  rxstats::QoeTimeline truth;  // per-second rows
  simcall::VcaProfile profile;
  double durationSec = 0.0;
};

/// Algorithm-1 lookback per VCA (§4.3: Nmax = 3 / 2 / 1 for Meet / Teams /
/// Webex; Δmax = 2 bytes for all).
HeuristicParams defaultHeuristicParams(const std::string& vcaName);

/// Resolution label encoding: Meet and Webex classify per distinct frame
/// height; Teams' 11 rungs are binned into low/medium/high (§5.1.5).
struct ResolutionCodec {
  bool useBins = false;
  double encode(int frameHeight) const;
  std::string labelName(int label) const;
};
ResolutionCodec resolutionCodecFor(const std::string& vcaName);

struct RecordBuilderOptions {
  common::DurationNs windowNs = common::kNanosPerSecond;
  MediaClassifierOptions classifier;
  /// Algorithm-1 parameters; by default derived per VCA from the profile.
  HeuristicParams heuristic;
  bool heuristicFromProfile = true;
  features::ExtractionParams extraction;  // PTs filled from the profile
};

/// One prediction window of one session.
struct WindowRecord {
  std::uint64_t sessionId = 0;
  std::int64_t window = 0;

  std::vector<double> ipudpFeatures;  // 14 features
  std::vector<double> rtpFeatures;    // 24 features

  // Ground truth aggregated over the window.
  double truthBitrateKbps = 0.0;
  double truthFps = 0.0;
  double truthJitterMs = 0.0;
  int truthFrameHeight = 0;
  bool truthValid = false;

  EstimatedQoe ipudpHeuristic;
  EstimatedQoe rtpHeuristic;
};

/// Builds the records of all complete windows of a session. Windows whose
/// seconds are not all present/valid in the ground truth are marked
/// truthValid = false (callers filter).
std::vector<WindowRecord> buildWindowRecords(
    const LabeledSession& session, const RecordBuilderOptions& options = {});

}  // namespace vcaqoe::core
