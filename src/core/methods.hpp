#pragma once

#include <cstdint>
#include <string>

/// The four estimation methods the paper compares (Figs 3, 6, 10).
namespace vcaqoe::core {

enum class Method : std::uint8_t {
  kRtpMl,           // random forest on RTP + flow features
  kIpUdpMl,         // random forest on IP/UDP flow + semantic features
  kRtpHeuristic,    // RTP timestamp/marker frame boundaries
  kIpUdpHeuristic,  // Algorithm 1 (packet-size similarity)
};

std::string toString(Method method);

}  // namespace vcaqoe::core
