#include "core/flow_classifier.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/time.hpp"

namespace vcaqoe::core {

namespace {

using FlowTuple =
    std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t>;

FlowTuple keyOf(const netflow::FlowKey& flow) {
  return {flow.srcIp, flow.dstIp, flow.srcPort, flow.dstPort};
}

}  // namespace

std::vector<FlowSignature> summarizeFlows(
    const std::vector<netflow::PcapRecord>& records,
    std::uint32_t videoSizeBytes) {
  struct Accumulator {
    FlowSignature sig;
    common::TimeNs first = 0;
    common::TimeNs last = 0;
    std::size_t large = 0;
    std::set<std::int64_t> activeBins;
  };
  std::map<FlowTuple, Accumulator> flows;

  for (const auto& record : records) {
    auto [it, inserted] = flows.try_emplace(keyOf(record.flow));
    auto& acc = it->second;
    if (inserted) {
      acc.sig.flow = record.flow;
      acc.first = record.packet.arrivalNs;
    }
    acc.first = std::min(acc.first, record.packet.arrivalNs);
    acc.last = std::max(acc.last, record.packet.arrivalNs);
    ++acc.sig.packets;
    acc.sig.bytes += record.packet.sizeBytes;
    if (record.packet.sizeBytes >= videoSizeBytes) ++acc.large;
    acc.activeBins.insert(
        common::windowIndex(record.packet.arrivalNs, common::millisToNs(100.0)));
  }

  std::vector<FlowSignature> out;
  out.reserve(flows.size());
  for (auto& [key, acc] : flows) {
    auto& sig = acc.sig;
    sig.durationSec = common::nsToSeconds(acc.last - acc.first);
    const double effectiveSec = std::max(sig.durationSec, 1e-3);
    sig.packetsPerSec = static_cast<double>(sig.packets) / effectiveSec;
    const auto totalBins = static_cast<double>(
        std::max<std::int64_t>(1, (acc.last - acc.first) /
                                          common::millisToNs(100.0) +
                                      1));
    sig.activityFraction =
        static_cast<double>(acc.activeBins.size()) / totalBins;
    sig.largeFraction =
        static_cast<double>(acc.large) / static_cast<double>(sig.packets);
    sig.smallFraction = 1.0 - sig.largeFraction;
    out.push_back(sig);
  }
  return out;
}

std::vector<FlowVerdict> classifyFlows(
    const std::vector<netflow::PcapRecord>& records,
    const FlowClassifierOptions& options) {
  std::vector<FlowVerdict> verdicts;
  for (const auto& sig : summarizeFlows(records, options.videoSizeBytes)) {
    FlowVerdict verdict;
    verdict.signature = sig;
    verdict.isVcaMedia = sig.durationSec >= options.minDurationSec &&
                         sig.packetsPerSec >= options.minPacketsPerSec &&
                         sig.activityFraction >= options.minActivityFraction &&
                         sig.largeFraction >= options.minLargeFraction &&
                         sig.smallFraction >= options.minSmallFraction;
    verdicts.push_back(verdict);
  }
  return verdicts;
}

std::vector<netflow::FlowKey> vcaMediaFlows(
    const std::vector<netflow::PcapRecord>& records,
    const FlowClassifierOptions& options) {
  auto verdicts = classifyFlows(records, options);
  std::sort(verdicts.begin(), verdicts.end(),
            [](const FlowVerdict& a, const FlowVerdict& b) {
              return a.signature.bytes > b.signature.bytes;
            });
  std::vector<netflow::FlowKey> out;
  for (const auto& verdict : verdicts) {
    if (verdict.isVcaMedia) out.push_back(verdict.signature.flow);
  }
  return out;
}

}  // namespace vcaqoe::core
