#include "core/streaming.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::core {

StreamingEstimator::StreamingEstimator(StreamingOptions options,
                                       Callback callback, BackendPtr backend)
    : options_(std::move(options)),
      callback_(std::move(callback)),
      backend_(std::move(backend)),
      classifier_(options_.classifier),
      rtpMode_(options_.featureSet == features::FeatureSet::kRtp),
      recent_(static_cast<std::size_t>(options_.heuristic.effectiveLookback())) {
  if (!callback_) {
    throw std::invalid_argument("StreamingEstimator: null callback");
  }
  if (options_.windowNs <= 0) {
    throw std::invalid_argument(
        "StreamingEstimator: windowNs must be positive");
  }
}

void StreamingEstimator::attachBackend(BackendPtr backend) {
  if (nextWindowToEmit_ > 0) {
    throw std::logic_error(
        "StreamingEstimator: attachBackend after a window was emitted — "
        "resolve the backend at flow admission");
  }
  backend_ = std::move(backend);
}

void StreamingEstimator::rebindCallback(Callback callback) {
  if (!callback) {
    throw std::invalid_argument("StreamingEstimator: null callback");
  }
  callback_ = std::move(callback);
}

bool StreamingEstimator::isVideoPacket(const netflow::Packet& packet) const {
  if (!rtpMode_) return classifier_.isVideo(packet);
  // The offline session path's rule: a packet is video iff its head parses
  // as RTP and the payload type matches the profile's video PT.
  const auto header = rtp::decode(packet.headBytes());
  return header.has_value() &&
         header->payloadType == options_.extraction.videoPt;
}

void StreamingEstimator::onPacket(const netflow::Packet& packet) {
  if (packet.arrivalNs < lastArrival_) {
    throw std::invalid_argument(
        "StreamingEstimator: packets must be fed in arrival order");
  }
  lastArrival_ = packet.arrivalNs;

  const auto window = common::windowIndex(packet.arrivalNs, options_.windowNs);
  if (window > lastSeenWindow_) lastSeenWindow_ = window;

  const bool video = isVideoPacket(packet);
  // kIpUdp buffers only video packets (its features read nothing else);
  // kRtp buffers every packet — the RTP features parse the whole window.
  if ((video || rtpMode_) && window >= nextWindowToEmit_) {
    bufferPacket(window, packet, video);
  }
  if (video) {
    ingestVideoPacket(packet);
    closeStaleFrames();
  }
  emitReadyWindows(packet.arrivalNs);
}

void StreamingEstimator::bufferPacket(std::int64_t window,
                                      const netflow::Packet& packet,
                                      bool video) {
  if (bufferedHead_ == bufferedWindows_.size() ||
      bufferedWindows_.back() != window) {
    // Arrival order makes window indices non-decreasing, so a window not at
    // the back is a new back entry.
    features::WindowColumns columns;
    if (!columnsPool_.empty()) {
      columns = std::move(columnsPool_.back());
      columnsPool_.pop_back();
    }
    bufferedWindows_.push_back(window);
    bufferedColumns_.push_back(std::move(columns));
    if (rtpMode_) {
      features::WindowColumns whole;
      if (!wholeColumnsPool_.empty()) {
        whole = std::move(wholeColumnsPool_.back());
        wholeColumnsPool_.pop_back();
      }
      whole.captureHeads = true;
      bufferedWholeColumns_.push_back(std::move(whole));
    }
  }
  if (rtpMode_) bufferedWholeColumns_.back().append(packet);
  if (video) bufferedColumns_.back().append(packet);
}

void StreamingEstimator::ingestVideoPacket(const netflow::Packet& packet) {
  // Algorithm 1, incremental: match against the previous Nmax video packets,
  // most recent first — one contiguous sweep over the lookback ring.
  const std::int64_t matched = recent_.matchMostRecent(
      packet.sizeBytes, options_.heuristic.deltaMaxBytes);

  std::uint64_t frameId;
  if (matched < 0) {
    frameId = nextFrameId_++;
    OpenFrame open;
    open.id = frameId;
    open.frame.firstNs = packet.arrivalNs;
    open.frame.endNs = packet.arrivalNs;
    open.frame.bytes = packet.sizeBytes;
    open.frame.packetCount = 1;
    open.lastTouchedPacket = videoPacketIndex_;
    // Ids are assigned in increasing order, so appending keeps the vector
    // sorted by id.
    openFrames_.push_back(open);
  } else {
    frameId = static_cast<std::uint64_t>(matched);
    const auto it = std::lower_bound(
        openFrames_.begin(), openFrames_.end(), frameId,
        [](const OpenFrame& open, std::uint64_t id) { return open.id < id; });
    if (it != openFrames_.end() && it->id == frameId) {
      it->frame.endNs = std::max(it->frame.endNs, packet.arrivalNs);
      it->frame.firstNs = std::min(it->frame.firstNs, packet.arrivalNs);
      it->frame.bytes += packet.sizeBytes;
      ++it->frame.packetCount;
      it->lastTouchedPacket = videoPacketIndex_;
    }
  }

  recent_.push(packet.sizeBytes, frameId);
  ++videoPacketIndex_;
}

void StreamingEstimator::insertClosedFrame(const HeuristicFrame& frame) {
  // Keep (endNs, close order): insert after every pending frame with an
  // equal or earlier end — the flat equivalent of multimap::emplace.
  const auto at = std::upper_bound(
      closedFrames_.begin(), closedFrames_.end(), frame.endNs,
      [](common::TimeNs end, const HeuristicFrame& pending) {
        return end < pending.endNs;
      });
  closedFrames_.insert(at, frame);
}

void StreamingEstimator::closeStaleFrames() {
  // A frame can only be extended through the lookback horizon; once its
  // newest packet is more than Nmax video packets old, it is final. One
  // stable in-place pass keeps the survivors in id order.
  const auto lookback =
      static_cast<std::uint64_t>(options_.heuristic.effectiveLookback());
  std::size_t keep = 0;
  for (std::size_t i = 0; i < openFrames_.size(); ++i) {
    if (videoPacketIndex_ - openFrames_[i].lastTouchedPacket > lookback) {
      insertClosedFrame(openFrames_[i].frame);
    } else {
      if (keep != i) openFrames_[keep] = openFrames_[i];
      ++keep;
    }
  }
  openFrames_.resize(keep);
}

void StreamingEstimator::emitReadyWindows(std::optional<common::TimeNs> now) {
  // Latest window that can possibly still be emitted.
  std::int64_t lastWindow = std::max(nextWindowToEmit_ - 1, lastSeenWindow_);
  if (!closedFrames_.empty()) {
    lastWindow = std::max(
        lastWindow,
        common::windowIndex(closedFrames_.back().endNs, options_.windowNs));
  }

  std::size_t consumedFrames = 0;  // emitted prefix of closedFrames_

  while (nextWindowToEmit_ <= lastWindow) {
    const std::int64_t w = nextWindowToEmit_;
    const common::TimeNs windowEnd = (w + 1) * options_.windowNs;

    if (now.has_value()) {
      if (*now < windowEnd) break;
      // An open frame whose current end is inside window w could still be
      // extended (moving it into a later window): not final yet.
      bool blocked = false;
      for (const auto& open : openFrames_) {
        if (open.frame.endNs < windowEnd) {
          blocked = true;
          break;
        }
      }
      if (blocked) break;
    }

    StreamingOutput out;
    out.window = w;

    // Heuristic metrics from closed frames ending inside this window,
    // consumed in global end order (gap chain mirrors the batch estimator).
    const double seconds = common::nsToSeconds(options_.windowNs);
    std::vector<double> gaps;
    while (consumedFrames < closedFrames_.size() &&
           closedFrames_[consumedFrames].endNs < windowEnd) {
      const HeuristicFrame& frame = closedFrames_[consumedFrames];
      ++out.heuristic.frameCount;
      out.heuristic.bitrateKbps +=
          (static_cast<double>(frame.bytes) -
           12.0 * static_cast<double>(frame.packetCount)) *
          8.0 / seconds / 1e3;
      if (lastEmittedFrameEnd_ >= 0) {
        gaps.push_back(common::nsToMillis(frame.endNs - lastEmittedFrameEnd_));
      }
      lastEmittedFrameEnd_ = frame.endNs;
      ++consumedFrames;
    }
    out.heuristic.window = w;
    out.heuristic.fps = static_cast<double>(out.heuristic.frameCount) / seconds;
    out.heuristic.frameJitterMs =
        gaps.size() >= 2 ? common::sampleStdev(gaps) : 0.0;

    // Features over the window's buffered columns. The IP/UDP set reads
    // only video arrival/size; the RTP set additionally gets the
    // head-capturing whole-window columns.
    static const features::WindowColumns kEmptyColumns;
    const bool haveColumns = bufferedHead_ < bufferedWindows_.size() &&
                             bufferedWindows_[bufferedHead_] == w;
    const features::WindowColumns& video =
        haveColumns ? bufferedColumns_[bufferedHead_] : kEmptyColumns;
    const features::WindowColumns& whole =
        (rtpMode_ && haveColumns) ? bufferedWholeColumns_[bufferedHead_]
                                  : kEmptyColumns;
    out.features =
        features::extractFeatures(whole, video, options_.windowNs,
                                  options_.featureSet, options_.extraction);
    if (backend_ != nullptr) {
      backend_->predictWindow(makeWindowContext(out), out.predictions);
    }

    callback_(out);
    if (haveColumns) {
      // Recycle the drained records: steady state allocates nothing.
      bufferedColumns_[bufferedHead_].clear();
      columnsPool_.push_back(std::move(bufferedColumns_[bufferedHead_]));
      if (rtpMode_) {
        bufferedWholeColumns_[bufferedHead_].clear();
        wholeColumnsPool_.push_back(
            std::move(bufferedWholeColumns_[bufferedHead_]));
      }
      ++bufferedHead_;
    }
    ++nextWindowToEmit_;
  }

  if (consumedFrames > 0) {
    closedFrames_.erase(closedFrames_.begin(),
                        closedFrames_.begin() +
                            static_cast<std::ptrdiff_t>(consumedFrames));
  }
  // Compact the drained prefix: fully drained resets for free; otherwise a
  // bounded prefix erase keeps the queues from growing with flow lifetime.
  if (bufferedHead_ == bufferedWindows_.size()) {
    bufferedWindows_.clear();
    bufferedColumns_.clear();
    if (rtpMode_) bufferedWholeColumns_.clear();
    bufferedHead_ = 0;
  } else if (bufferedHead_ >= 16) {
    const auto head = static_cast<std::ptrdiff_t>(bufferedHead_);
    bufferedWindows_.erase(bufferedWindows_.begin(),
                           bufferedWindows_.begin() + head);
    bufferedColumns_.erase(bufferedColumns_.begin(),
                           bufferedColumns_.begin() + head);
    if (rtpMode_) {
      bufferedWholeColumns_.erase(bufferedWholeColumns_.begin(),
                                  bufferedWholeColumns_.begin() + head);
    }
    bufferedHead_ = 0;
  }
}

void StreamingEstimator::finish() {
  for (const auto& open : openFrames_) insertClosedFrame(open.frame);
  openFrames_.clear();
  emitReadyWindows(std::nullopt);
}

}  // namespace vcaqoe::core
