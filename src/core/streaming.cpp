#include "core/streaming.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace vcaqoe::core {

StreamingIpUdpEstimator::StreamingIpUdpEstimator(StreamingOptions options,
                                                 Callback callback,
                                                 BackendPtr backend)
    : options_(std::move(options)),
      callback_(std::move(callback)),
      backend_(std::move(backend)),
      classifier_(options_.classifier) {
  if (!callback_) {
    throw std::invalid_argument("StreamingIpUdpEstimator: null callback");
  }
  if (options_.windowNs <= 0) {
    throw std::invalid_argument("StreamingIpUdpEstimator: bad window");
  }
}

void StreamingIpUdpEstimator::attachBackend(BackendPtr backend) {
  if (nextWindowToEmit_ > 0) {
    throw std::logic_error(
        "StreamingIpUdpEstimator: attachBackend after a window was emitted — "
        "resolve the backend at flow admission");
  }
  backend_ = std::move(backend);
}

void StreamingIpUdpEstimator::onPacket(const netflow::Packet& packet) {
  if (packet.arrivalNs < lastArrival_) {
    throw std::invalid_argument(
        "StreamingIpUdpEstimator: packets must be fed in arrival order");
  }
  lastArrival_ = packet.arrivalNs;

  const auto window = common::windowIndex(packet.arrivalNs, options_.windowNs);
  if (window >= nextWindowToEmit_) {
    windowPackets_[window].push_back(packet);
  }

  if (classifier_.isVideo(packet)) {
    ingestVideoPacket(packet);
    closeStaleFrames();
  }
  emitReadyWindows(packet.arrivalNs);
}

void StreamingIpUdpEstimator::ingestVideoPacket(
    const netflow::Packet& packet) {
  // Algorithm 1, incremental: match against the previous Nmax video packets,
  // most recent first.
  const auto size = static_cast<std::int64_t>(packet.sizeBytes);
  std::int64_t matched = -1;
  for (const auto& [prevSize, frameId] : recent_) {
    const auto diff = std::llabs(size - static_cast<std::int64_t>(prevSize));
    if (diff <= static_cast<std::int64_t>(options_.heuristic.deltaMaxBytes)) {
      matched = static_cast<std::int64_t>(frameId);
      break;
    }
  }

  std::uint64_t frameId;
  if (matched < 0) {
    frameId = nextFrameId_++;
    OpenFrame open;
    open.frame.firstNs = packet.arrivalNs;
    open.frame.endNs = packet.arrivalNs;
    open.frame.bytes = packet.sizeBytes;
    open.frame.packetCount = 1;
    open.lastTouchedPacket = videoPacketIndex_;
    openFrames_.emplace(frameId, open);
  } else {
    frameId = static_cast<std::uint64_t>(matched);
    auto it = openFrames_.find(frameId);
    if (it != openFrames_.end()) {
      it->second.frame.endNs =
          std::max(it->second.frame.endNs, packet.arrivalNs);
      it->second.frame.firstNs =
          std::min(it->second.frame.firstNs, packet.arrivalNs);
      it->second.frame.bytes += packet.sizeBytes;
      ++it->second.frame.packetCount;
      it->second.lastTouchedPacket = videoPacketIndex_;
    }
  }

  recent_.emplace_front(packet.sizeBytes, frameId);
  const auto lookback =
      static_cast<std::size_t>(std::max(options_.heuristic.lookback, 1));
  while (recent_.size() > lookback) recent_.pop_back();
  ++videoPacketIndex_;
}

void StreamingIpUdpEstimator::closeStaleFrames() {
  // A frame can only be extended through the lookback horizon; once its
  // newest packet is more than Nmax video packets old, it is final.
  const auto lookback =
      static_cast<std::uint64_t>(std::max(options_.heuristic.lookback, 1));
  for (auto it = openFrames_.begin(); it != openFrames_.end();) {
    if (videoPacketIndex_ - it->second.lastTouchedPacket > lookback) {
      closedFrames_.emplace(it->second.frame.endNs, it->second.frame);
      it = openFrames_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingIpUdpEstimator::emitReadyWindows(
    std::optional<common::TimeNs> now) {
  // Latest window that can possibly still be emitted.
  std::int64_t lastWindow = nextWindowToEmit_ - 1;
  if (!windowPackets_.empty()) {
    lastWindow = std::max(lastWindow, windowPackets_.rbegin()->first);
  }
  if (!closedFrames_.empty()) {
    lastWindow = std::max(
        lastWindow,
        common::windowIndex(closedFrames_.rbegin()->first, options_.windowNs));
  }

  while (nextWindowToEmit_ <= lastWindow) {
    const std::int64_t w = nextWindowToEmit_;
    const common::TimeNs windowEnd = (w + 1) * options_.windowNs;

    if (now.has_value()) {
      if (*now < windowEnd) break;
      // An open frame whose current end is inside window w could still be
      // extended (moving it into a later window): not final yet.
      bool blocked = false;
      for (const auto& [id, open] : openFrames_) {
        if (open.frame.endNs < windowEnd) {
          blocked = true;
          break;
        }
      }
      if (blocked) break;
    }

    StreamingOutput out;
    out.window = w;

    // Heuristic metrics from closed frames ending inside this window,
    // consumed in global end order (gap chain mirrors the batch estimator).
    const double seconds = common::nsToSeconds(options_.windowNs);
    std::vector<double> gaps;
    auto it = closedFrames_.begin();
    while (it != closedFrames_.end() && it->first < windowEnd) {
      const HeuristicFrame& frame = it->second;
      ++out.heuristic.frameCount;
      out.heuristic.bitrateKbps +=
          (static_cast<double>(frame.bytes) -
           12.0 * static_cast<double>(frame.packetCount)) *
          8.0 / seconds / 1e3;
      if (lastEmittedFrameEnd_ >= 0) {
        gaps.push_back(common::nsToMillis(frame.endNs - lastEmittedFrameEnd_));
      }
      lastEmittedFrameEnd_ = frame.endNs;
      it = closedFrames_.erase(it);
    }
    out.heuristic.window = w;
    out.heuristic.fps = static_cast<double>(out.heuristic.frameCount) / seconds;
    out.heuristic.frameJitterMs =
        gaps.size() >= 2 ? common::sampleStdev(gaps) : 0.0;

    // Features over the buffered window packets.
    features::Window window;
    window.index = w;
    window.startNs = w * options_.windowNs;
    window.durationNs = options_.windowNs;
    const auto bufferIt = windowPackets_.find(w);
    static const std::vector<netflow::Packet> kEmpty;
    const auto& packets =
        bufferIt != windowPackets_.end() ? bufferIt->second : kEmpty;
    window.packets = packets;
    const auto video = classifier_.filterVideo(window.packets);
    out.features = features::extractFeatures(
        window, video, features::FeatureSet::kIpUdp, options_.extraction);
    if (backend_ != nullptr) {
      backend_->predictWindow(makeWindowContext(out), out.predictions);
    }

    callback_(out);
    if (bufferIt != windowPackets_.end()) windowPackets_.erase(bufferIt);
    ++nextWindowToEmit_;
  }
}

void StreamingIpUdpEstimator::finish() {
  for (auto& [id, open] : openFrames_) {
    closedFrames_.emplace(open.frame.endNs, open.frame);
  }
  openFrames_.clear();
  emitReadyWindows(std::nullopt);
}

}  // namespace vcaqoe::core
