#include "core/frame_heuristic.hpp"

#include <cstdlib>

namespace vcaqoe::core {

HeuristicAssembly assembleFramesIpUdp(std::span<const netflow::Packet> video,
                                      const HeuristicParams& params) {
  HeuristicAssembly out;
  out.frameOfPacket.reserve(video.size());

  for (std::size_t i = 0; i < video.size(); ++i) {
    const auto size = static_cast<std::int64_t>(video[i].sizeBytes);

    // Compare with up to Nmax previously seen packets, most recent first
    // (Algorithm 1). A match assigns this packet to the matching packet's
    // frame; no match starts a new frame.
    std::int64_t matchedFrame = -1;
    const int lookback = params.effectiveLookback();
    for (int back = 1; back <= lookback && back <= static_cast<int>(i);
         ++back) {
      const auto& prev = video[i - static_cast<std::size_t>(back)];
      const auto diff =
          std::llabs(size - static_cast<std::int64_t>(prev.sizeBytes));
      if (diff <= static_cast<std::int64_t>(params.deltaMaxBytes)) {
        matchedFrame = out.frameOfPacket[i - static_cast<std::size_t>(back)];
        break;
      }
    }

    if (matchedFrame < 0) {
      HeuristicFrame frame;
      frame.firstNs = video[i].arrivalNs;
      frame.endNs = video[i].arrivalNs;
      frame.bytes = video[i].sizeBytes;
      frame.packetCount = 1;
      out.frames.push_back(frame);
      out.frameOfPacket.push_back(
          static_cast<std::uint32_t>(out.frames.size() - 1));
    } else {
      auto& frame = out.frames[static_cast<std::size_t>(matchedFrame)];
      frame.endNs = std::max(frame.endNs, video[i].arrivalNs);
      frame.firstNs = std::min(frame.firstNs, video[i].arrivalNs);
      frame.bytes += video[i].sizeBytes;
      ++frame.packetCount;
      out.frameOfPacket.push_back(static_cast<std::uint32_t>(matchedFrame));
    }
  }
  return out;
}

}  // namespace vcaqoe::core
