#pragma once

#include <vector>

#include "netflow/pcap.hpp"

/// VCA media-flow identification.
///
/// The paper's problem statement assumes "the input consists only of RTP
/// packets from the VCA" because prior work classifies VCA traffic (§2.2).
/// This module implements that assumed substrate from the same IP/UDP-only
/// observations the rest of the pipeline uses: a VCA media flow is
/// long-lived, continuously active at a high packet rate, and carries a
/// bimodal size mix with a sustained share of large (video) packets —
/// unlike DNS chatter, bursty web/QUIC downloads, ON/OFF DASH streaming, or
/// low-rate gaming traffic.
namespace vcaqoe::core {

struct FlowSignature {
  netflow::FlowKey flow;
  std::size_t packets = 0;
  std::uint64_t bytes = 0;
  double durationSec = 0.0;
  double packetsPerSec = 0.0;
  /// Fraction of 100 ms activity bins containing at least one packet —
  /// near 1 for real-time media, low for ON/OFF traffic.
  double activityFraction = 0.0;
  /// Fraction of packets at video size (>= 450 B).
  double largeFraction = 0.0;
  /// Fraction of packets at audio/control size (< 450 B).
  double smallFraction = 0.0;
};

struct FlowClassifierOptions {
  double minDurationSec = 5.0;
  double minPacketsPerSec = 40.0;
  double minActivityFraction = 0.85;
  double minLargeFraction = 0.25;
  /// Real-time media also carries small (audio/keep-alive) packets; pure
  /// bulk downloads do not.
  double minSmallFraction = 0.01;
  std::uint32_t videoSizeBytes = 450;
};

struct FlowVerdict {
  FlowSignature signature;
  bool isVcaMedia = false;
};

/// Computes per-flow signatures over a mixed capture.
std::vector<FlowSignature> summarizeFlows(
    const std::vector<netflow::PcapRecord>& records,
    std::uint32_t videoSizeBytes = 450);

/// Classifies every flow in a capture.
std::vector<FlowVerdict> classifyFlows(
    const std::vector<netflow::PcapRecord>& records,
    const FlowClassifierOptions& options = {});

/// Convenience: the flows judged to carry VCA media, ordered by byte count
/// (descending).
std::vector<netflow::FlowKey> vcaMediaFlows(
    const std::vector<netflow::PcapRecord>& records,
    const FlowClassifierOptions& options = {});

}  // namespace vcaqoe::core
