#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "netflow/packet.hpp"

/// IP/UDP frame-boundary heuristic — Algorithm 1 of the paper.
///
/// Rationale (§3.2.1): VCAs fragment a frame into (nearly) equal-sized
/// packets, and consecutive frames differ in size; so a packet whose size is
/// within Δmax of one of the previous Nmax packets belongs to that packet's
/// frame, otherwise it starts a new frame. The lookback handles out-of-order
/// arrivals at the cost of occasionally gluing similar-sized frames.
namespace vcaqoe::core {

struct HeuristicParams {
  /// Δmax_size: maximum intra-frame packet size difference (2 bytes for all
  /// three VCAs, §4.3).
  std::uint32_t deltaMaxBytes = 2;
  /// Nmax: how many previous packets to compare against (Meet 3, Teams 2,
  /// Webex 1, §4.3; sensitivity in Fig A.10).
  int lookback = 1;

  /// The validated Nmax every Algorithm-1 implementation scans with: the
  /// configured `lookback` clamped to at least 1 (comparing against zero
  /// previous packets would make every packet its own frame). The single
  /// source of truth for the clamp — batch assembly, the streaming ring,
  /// and frame-close horizons all go through it.
  int effectiveLookback() const { return lookback > 1 ? lookback : 1; }
};

/// One frame estimated from IP/UDP headers only.
struct HeuristicFrame {
  common::TimeNs firstNs = 0;  // arrival of the first packet assigned
  common::TimeNs endNs = 0;    // arrival of the last packet assigned
  std::uint64_t bytes = 0;     // sum of packet sizes (incl. 12 B RTP header)
  std::uint32_t packetCount = 0;
};

/// Output of the heuristic: the frames plus the per-packet frame assignment
/// (frameOfPacket[i] indexes into frames; used by the error-anatomy
/// analysis of Fig 4).
struct HeuristicAssembly {
  std::vector<HeuristicFrame> frames;
  std::vector<std::uint32_t> frameOfPacket;
};

/// Runs Algorithm 1 over video-classified packets in arrival order.
HeuristicAssembly assembleFramesIpUdp(std::span<const netflow::Packet> video,
                                      const HeuristicParams& params);

}  // namespace vcaqoe::core
