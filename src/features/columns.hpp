#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "netflow/packet.hpp"

/// Columnar (structure-of-arrays) packet storage for the per-window hot
/// path.
///
/// Feature extraction reads a window's packets column-wise: the flow and
/// semantic features touch only arrival times and sizes, the RTP features
/// additionally parse the captured payload heads. Buffering full
/// `netflow::Packet` records (48 bytes each, mostly head bytes the IP/UDP
/// feature set never reads) wastes cache and memory bandwidth; a
/// `WindowColumns` keeps each column contiguous and captures the head
/// columns only when the consumer's feature set needs them.
namespace vcaqoe::features {

struct WindowColumns {
  std::vector<common::TimeNs> arrivalNs;
  std::vector<std::uint32_t> sizeBytes;

  /// When set, `append` also fills the RTP head columns below; when clear
  /// (the IP/UDP feature path) no payload byte is ever stored or touched.
  bool captureHeads = false;
  std::vector<std::uint8_t> headLen;
  /// Payload prefixes, `netflow::kHeadCapacity`-strided (packet i's head
  /// occupies bytes [i*kHeadCapacity, i*kHeadCapacity + headLen[i])).
  std::vector<std::uint8_t> headBytes;

  std::size_t size() const { return arrivalNs.size(); }
  bool empty() const { return arrivalNs.empty(); }

  /// Drops the rows but keeps the capacity (and `captureHeads`), so a
  /// recycled record appends without reallocating.
  void clear() {
    arrivalNs.clear();
    sizeBytes.clear();
    headLen.clear();
    headBytes.clear();
  }

  void reserve(std::size_t rows) {
    arrivalNs.reserve(rows);
    sizeBytes.reserve(rows);
    if (captureHeads) {
      headLen.reserve(rows);
      headBytes.reserve(rows * netflow::kHeadCapacity);
    }
  }

  /// Appends one packet's columns (head columns only under `captureHeads`).
  void append(const netflow::Packet& packet) {
    arrivalNs.push_back(packet.arrivalNs);
    sizeBytes.push_back(packet.sizeBytes);
    if (captureHeads) {
      headLen.push_back(packet.headLen);
      headBytes.insert(headBytes.end(), packet.head.begin(), packet.head.end());
    }
  }

  /// Packet i's captured payload prefix (empty unless heads were captured).
  std::span<const std::uint8_t> headAt(std::size_t i) const {
    if (!captureHeads) return {};
    return {headBytes.data() + i * netflow::kHeadCapacity, headLen[i]};
  }

  /// Re-gathers this record from an AoS packet span: rows replaced,
  /// capacity kept — the one gather implementation shared by `fromPackets`
  /// and reusable scratch records.
  void assignFrom(std::span<const netflow::Packet> packets, bool heads) {
    captureHeads = heads;
    clear();
    reserve(packets.size());
    for (const auto& packet : packets) append(packet);
  }

  /// Gathers an AoS packet span into columns — the bridge the span-of-Packet
  /// extraction entry points delegate through.
  static WindowColumns fromPackets(std::span<const netflow::Packet> packets,
                                   bool captureHeads) {
    WindowColumns columns;
    columns.assignFrom(packets, captureHeads);
    return columns;
  }
};

}  // namespace vcaqoe::features
