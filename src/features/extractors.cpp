#include "features/extractors.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/simd.hpp"
#include "common/stats.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::features {

namespace {

void appendFive(std::vector<double>& out, const common::FiveNumber& f) {
  out.push_back(f.mean);
  out.push_back(f.stdev);
  out.push_back(f.median);
  out.push_back(f.min);
  out.push_back(f.max);
}

/// Gather scratch for the span-of-Packet entry points: delegating through
/// the columnar kernels keeps one implementation per feature, and the
/// reused thread-local record keeps the batch path allocation-free in
/// steady state (capacity survives clear()). `Slot` separates the two
/// records extractFeatures needs live at once.
template <int Slot>
const WindowColumns& gatherColumns(std::span<const netflow::Packet> packets,
                                   bool captureHeads) {
  thread_local WindowColumns columns;
  columns.assignFrom(packets, captureHeads);
  return columns;
}

}  // namespace

std::vector<double> flowStatistics(
    std::span<const common::TimeNs> videoArrivalNs,
    std::span<const std::uint32_t> videoSizeBytes,
    common::DurationNs windowNs) {
  const double seconds = common::nsToSeconds(windowNs);
  const std::size_t n = videoSizeBytes.size();

  // Columnar kernels over the contiguous WindowColumns arrays: widen the
  // uint32 sizes once (exact), sum bytes over the widened copy (integer
  // values, so the fixed-association SIMD sum is exact too), and convert
  // the interarrival deltas in one vector pass.
  std::vector<double> sizes(n);
  common::simd::u32ToF64(videoSizeBytes.data(), n, sizes.data());
  const double totalBytes = common::simd::sumF64(sizes.data(), n);
  std::vector<double> iats(n > 1 ? n - 1 : 0);
  common::simd::iatMillisF64(videoArrivalNs.data(), n, iats.data());

  std::vector<double> out;
  out.reserve(12);
  out.push_back(totalBytes / seconds);
  out.push_back(static_cast<double>(n) / seconds);
  appendFive(out, common::fiveNumber(sizes));
  appendFive(out, common::fiveNumber(iats));
  return out;
}

std::vector<double> flowStatistics(std::span<const netflow::Packet> video,
                                   common::DurationNs windowNs) {
  const auto& columns = gatherColumns<0>(video, /*captureHeads=*/false);
  return flowStatistics(columns.arrivalNs, columns.sizeBytes, windowNs);
}

std::vector<double> semanticFeatures(
    std::span<const common::TimeNs> videoArrivalNs,
    std::span<const std::uint32_t> videoSizeBytes,
    const ExtractionParams& params) {
  const std::size_t n = videoSizeBytes.size();
  std::unordered_set<std::uint32_t> uniqueSizes;
  uniqueSizes.reserve(n);
  std::size_t burstBoundaries = 0;
  for (std::size_t i = 0; i < n; ++i) {
    uniqueSizes.insert(videoSizeBytes[i]);
    if (i > 0 && videoArrivalNs[i] - videoArrivalNs[i - 1] >=
                     params.microburstIatNs) {
      ++burstBoundaries;
    }
  }
  // Microburst count: bursts are separated by gaps >= θ_IAT, so the number
  // of bursts is boundaries + 1 for a non-empty window.
  const double microbursts =
      n == 0 ? 0.0 : static_cast<double>(burstBoundaries + 1);
  return {static_cast<double>(uniqueSizes.size()), microbursts};
}

std::vector<double> semanticFeatures(std::span<const netflow::Packet> video,
                                     const ExtractionParams& params) {
  const auto& columns = gatherColumns<0>(video, /*captureHeads=*/false);
  return semanticFeatures(columns.arrivalNs, columns.sizeBytes, params);
}

std::vector<double> rtpFeatures(const WindowColumns& window,
                                const ExtractionParams& params) {
  std::set<std::uint32_t> videoTs;
  std::set<std::uint32_t> rtxTs;
  double markerVideo = 0.0;
  double markerRtx = 0.0;

  // Out-of-order detection over the primary video sequence numbers.
  bool haveLastSeq = false;
  std::uint16_t lastSeq = 0;
  double outOfOrder = 0.0;

  // RTP lag: completion time per frame (max arrival among a timestamp's
  // packets), then delay versus the timestamp-implied transmission time.
  std::map<std::uint32_t, common::TimeNs> frameCompletion;

  for (std::size_t i = 0; i < window.size(); ++i) {
    const auto header = rtp::decode(window.headAt(i));
    if (!header) continue;
    if (header->payloadType == params.videoPt) {
      videoTs.insert(header->timestamp);
      if (header->marker) markerVideo += 1.0;
      if (haveLastSeq &&
          rtp::sequenceDistance(lastSeq, header->sequenceNumber) <= 0) {
        outOfOrder += 1.0;
      }
      lastSeq = header->sequenceNumber;
      haveLastSeq = true;
      auto [it, inserted] =
          frameCompletion.try_emplace(header->timestamp, window.arrivalNs[i]);
      if (!inserted) it->second = std::max(it->second, window.arrivalNs[i]);
    } else if (params.rtxPt != 0 && header->payloadType == params.rtxPt) {
      rtxTs.insert(header->timestamp);
      if (header->marker) markerRtx += 1.0;
    }
  }

  std::size_t intersection = 0;
  for (const auto ts : rtxTs) {
    if (videoTs.count(ts) > 0) ++intersection;
  }
  const std::size_t unionCount = videoTs.size() + rtxTs.size() - intersection;

  // Lag series: first frame in the window is the zero-delay reference.
  std::vector<double> lagsMs;
  if (!frameCompletion.empty()) {
    // std::map iterates in timestamp order == capture order within a call.
    const auto& [ts0, t0] = *frameCompletion.begin();
    for (const auto& [ts, t] : frameCompletion) {
      const auto mediaElapsed =
          rtp::timestampDeltaToNs(ts0, ts, rtp::kVideoClockHz);
      lagsMs.push_back(common::nsToMillis((t - t0) - mediaElapsed));
    }
  }

  std::vector<double> out;
  out.reserve(12);
  out.push_back(static_cast<double>(videoTs.size()));
  out.push_back(static_cast<double>(rtxTs.size()));
  out.push_back(static_cast<double>(intersection));
  out.push_back(static_cast<double>(unionCount));
  out.push_back(markerVideo);
  out.push_back(markerRtx);
  out.push_back(outOfOrder);
  appendFive(out, common::fiveNumber(lagsMs));
  return out;
}

std::vector<double> rtpFeatures(const Window& window,
                                const ExtractionParams& params) {
  return rtpFeatures(gatherColumns<0>(window.packets, /*captureHeads=*/true),
                     params);
}

std::vector<double> extractFeatures(const WindowColumns& window,
                                    const WindowColumns& video,
                                    common::DurationNs durationNs,
                                    FeatureSet set,
                                    const ExtractionParams& params) {
  std::vector<double> out =
      flowStatistics(video.arrivalNs, video.sizeBytes, durationNs);
  const std::vector<double> extra =
      set == FeatureSet::kIpUdp
          ? semanticFeatures(video.arrivalNs, video.sizeBytes, params)
          : rtpFeatures(window, params);
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

std::vector<double> extractFeatures(const Window& window,
                                    std::span<const netflow::Packet> video,
                                    FeatureSet set,
                                    const ExtractionParams& params) {
  static const WindowColumns kNoWindow;
  const auto& videoColumns = gatherColumns<0>(video, /*captureHeads=*/false);
  // The window's full packet set (heads included) is only gathered when the
  // RTP features will actually read it.
  const auto& windowColumns =
      set == FeatureSet::kRtp
          ? gatherColumns<1>(window.packets, /*captureHeads=*/true)
          : kNoWindow;
  return extractFeatures(windowColumns, videoColumns, window.durationNs, set,
                         params);
}

}  // namespace vcaqoe::features
