#include "features/extractors.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::features {

namespace {

void appendFive(std::vector<double>& out, const common::FiveNumber& f) {
  out.push_back(f.mean);
  out.push_back(f.stdev);
  out.push_back(f.median);
  out.push_back(f.min);
  out.push_back(f.max);
}

}  // namespace

std::vector<double> flowStatistics(std::span<const netflow::Packet> video,
                                   common::DurationNs windowNs) {
  const double seconds = common::nsToSeconds(windowNs);

  double totalBytes = 0.0;
  std::vector<double> sizes;
  sizes.reserve(video.size());
  std::vector<double> iats;
  iats.reserve(video.size());
  for (std::size_t i = 0; i < video.size(); ++i) {
    totalBytes += video[i].sizeBytes;
    sizes.push_back(static_cast<double>(video[i].sizeBytes));
    if (i > 0) {
      iats.push_back(
          common::nsToMillis(video[i].arrivalNs - video[i - 1].arrivalNs));
    }
  }

  std::vector<double> out;
  out.reserve(12);
  out.push_back(totalBytes / seconds);
  out.push_back(static_cast<double>(video.size()) / seconds);
  appendFive(out, common::fiveNumber(sizes));
  appendFive(out, common::fiveNumber(iats));
  return out;
}

std::vector<double> semanticFeatures(std::span<const netflow::Packet> video,
                                     const ExtractionParams& params) {
  std::unordered_set<std::uint32_t> uniqueSizes;
  uniqueSizes.reserve(video.size());
  std::size_t burstBoundaries = 0;
  for (std::size_t i = 0; i < video.size(); ++i) {
    uniqueSizes.insert(video[i].sizeBytes);
    if (i > 0 && video[i].arrivalNs - video[i - 1].arrivalNs >=
                     params.microburstIatNs) {
      ++burstBoundaries;
    }
  }
  // Microburst count: bursts are separated by gaps >= θ_IAT, so the number
  // of bursts is boundaries + 1 for a non-empty window.
  const double microbursts =
      video.empty() ? 0.0 : static_cast<double>(burstBoundaries + 1);
  return {static_cast<double>(uniqueSizes.size()), microbursts};
}

std::vector<double> rtpFeatures(const Window& window,
                                const ExtractionParams& params) {
  std::set<std::uint32_t> videoTs;
  std::set<std::uint32_t> rtxTs;
  double markerVideo = 0.0;
  double markerRtx = 0.0;

  // Out-of-order detection over the primary video sequence numbers.
  bool haveLastSeq = false;
  std::uint16_t lastSeq = 0;
  double outOfOrder = 0.0;

  // RTP lag: completion time per frame (max arrival among a timestamp's
  // packets), then delay versus the timestamp-implied transmission time.
  std::map<std::uint32_t, common::TimeNs> frameCompletion;

  for (const auto& pkt : window.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header) continue;
    if (header->payloadType == params.videoPt) {
      videoTs.insert(header->timestamp);
      if (header->marker) markerVideo += 1.0;
      if (haveLastSeq &&
          rtp::sequenceDistance(lastSeq, header->sequenceNumber) <= 0) {
        outOfOrder += 1.0;
      }
      lastSeq = header->sequenceNumber;
      haveLastSeq = true;
      auto [it, inserted] =
          frameCompletion.try_emplace(header->timestamp, pkt.arrivalNs);
      if (!inserted) it->second = std::max(it->second, pkt.arrivalNs);
    } else if (params.rtxPt != 0 && header->payloadType == params.rtxPt) {
      rtxTs.insert(header->timestamp);
      if (header->marker) markerRtx += 1.0;
    }
  }

  std::size_t intersection = 0;
  for (const auto ts : rtxTs) {
    if (videoTs.count(ts) > 0) ++intersection;
  }
  const std::size_t unionCount = videoTs.size() + rtxTs.size() - intersection;

  // Lag series: first frame in the window is the zero-delay reference.
  std::vector<double> lagsMs;
  if (!frameCompletion.empty()) {
    // std::map iterates in timestamp order == capture order within a call.
    const auto& [ts0, t0] = *frameCompletion.begin();
    for (const auto& [ts, t] : frameCompletion) {
      const auto mediaElapsed =
          rtp::timestampDeltaToNs(ts0, ts, rtp::kVideoClockHz);
      lagsMs.push_back(common::nsToMillis((t - t0) - mediaElapsed));
    }
  }

  std::vector<double> out;
  out.reserve(12);
  out.push_back(static_cast<double>(videoTs.size()));
  out.push_back(static_cast<double>(rtxTs.size()));
  out.push_back(static_cast<double>(intersection));
  out.push_back(static_cast<double>(unionCount));
  out.push_back(markerVideo);
  out.push_back(markerRtx);
  out.push_back(outOfOrder);
  appendFive(out, common::fiveNumber(lagsMs));
  return out;
}

std::vector<double> extractFeatures(const Window& window,
                                    std::span<const netflow::Packet> video,
                                    FeatureSet set,
                                    const ExtractionParams& params) {
  std::vector<double> out = flowStatistics(video, window.durationNs);
  const std::vector<double> extra = set == FeatureSet::kIpUdp
                                        ? semanticFeatures(video, params)
                                        : rtpFeatures(window, params);
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

}  // namespace vcaqoe::features
