#pragma once

#include <string>
#include <vector>

/// Named feature vectors shared by the ML estimators, the importance
/// reports, and the benches.
namespace vcaqoe::features {

/// Which feature family a model consumes (Table 1).
enum class FeatureSet {
  /// Flow-level statistics + VCA-semantic features (14 features) — the
  /// paper's IP/UDP ML input.
  kIpUdp,
  /// Flow-level statistics + RTP-header features — the RTP ML baseline.
  kRtp,
};

/// Ordered feature names for a set. The order is the column order of every
/// dataset matrix built from that set.
const std::vector<std::string>& featureNames(FeatureSet set);

/// Number of features in a set.
std::size_t featureCount(FeatureSet set);

}  // namespace vcaqoe::features
