#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Named feature vectors shared by the ML estimators, the importance
/// reports, and the benches.
namespace vcaqoe::features {

/// Which feature family a model consumes (Table 1).
enum class FeatureSet {
  /// Flow-level statistics + VCA-semantic features (14 features) — the
  /// paper's IP/UDP ML input.
  kIpUdp,
  /// Flow-level statistics + RTP-header features — the RTP ML baseline.
  kRtp,
};

/// Ordered feature names for a set. The order is the column order of every
/// dataset matrix built from that set.
const std::vector<std::string>& featureNames(FeatureSet set);

/// Number of features in a set.
std::size_t featureCount(FeatureSet set);

/// Stable lowercase identifier for a set ("ipudp" / "rtp"). Used for
/// model-registry directory names and CLI flags.
std::string_view toString(FeatureSet set);

/// Inverse of `toString`; nullopt for unknown identifiers.
std::optional<FeatureSet> featureSetFromString(std::string_view text);

}  // namespace vcaqoe::features
