#include "features/windows.hpp"

#include <stdexcept>

namespace vcaqoe::features {

std::vector<Window> sliceWindows(const netflow::PacketTrace& trace,
                                 common::DurationNs windowNs) {
  if (windowNs <= 0) throw std::invalid_argument("windowNs must be positive");
  if (!netflow::isArrivalOrdered(trace)) {
    throw std::invalid_argument("trace must be arrival-ordered");
  }

  std::vector<Window> windows;
  if (trace.empty()) return windows;

  const std::int64_t lastIndex =
      common::windowIndex(trace.back().arrivalNs, windowNs);
  std::size_t cursor = 0;
  for (std::int64_t w = 0; w <= lastIndex; ++w) {
    const common::TimeNs start = w * windowNs;
    const common::TimeNs end = start + windowNs;
    // Packets before t=0 (none in practice) are skipped.
    while (cursor < trace.size() && trace[cursor].arrivalNs < start) ++cursor;
    std::size_t last = cursor;
    while (last < trace.size() && trace[last].arrivalNs < end) ++last;

    Window window;
    window.index = w;
    window.startNs = start;
    window.durationNs = windowNs;
    window.packets = std::span<const netflow::Packet>(trace).subspan(
        cursor, last - cursor);
    windows.push_back(window);
    cursor = last;
  }
  return windows;
}

}  // namespace vcaqoe::features
