#include "features/feature_vector.hpp"

namespace vcaqoe::features {

namespace {

const std::vector<std::string>& flowNames() {
  static const std::vector<std::string> kNames = {
      "# bytes",       "# packets",    "Size [mean]",  "Size [stdev]",
      "Size [median]", "Size [min]",   "Size [max]",   "IAT [mean]",
      "IAT [stdev]",   "IAT [median]", "IAT [min]",    "IAT [max]",
  };
  return kNames;
}

const std::vector<std::string>& semanticNames() {
  static const std::vector<std::string> kNames = {
      "# unique sizes",
      "# microbursts",
  };
  return kNames;
}

const std::vector<std::string>& rtpNames() {
  static const std::vector<std::string> kNames = {
      "# unique RTPvid TS",
      "# unique RTPrtx TS",
      "# unique RTP TS [intersect]",
      "# unique RTP TS [union]",
      "Markervid bit sum",
      "Markerrtx bit sum",
      "# out-of-order seq",
      "RTP lag [mean]",
      "RTP lag [stdev]",
      "RTP lag [median]",
      "RTP lag [min]",
      "RTP lag [max]",
  };
  return kNames;
}

std::vector<std::string> concat(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

const std::vector<std::string>& featureNames(FeatureSet set) {
  static const std::vector<std::string> kIpUdpNames =
      concat(flowNames(), semanticNames());
  static const std::vector<std::string> kRtpSetNames =
      concat(flowNames(), rtpNames());
  return set == FeatureSet::kIpUdp ? kIpUdpNames : kRtpSetNames;
}

std::size_t featureCount(FeatureSet set) { return featureNames(set).size(); }

std::string_view toString(FeatureSet set) {
  return set == FeatureSet::kIpUdp ? "ipudp" : "rtp";
}

std::optional<FeatureSet> featureSetFromString(std::string_view text) {
  if (text == "ipudp") return FeatureSet::kIpUdp;
  if (text == "rtp") return FeatureSet::kRtp;
  return std::nullopt;
}

}  // namespace vcaqoe::features
