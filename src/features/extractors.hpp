#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "features/columns.hpp"
#include "features/feature_vector.hpp"
#include "features/windows.hpp"
#include "netflow/packet.hpp"

/// Per-window feature extraction (Table 1).
///
/// * Flow-level statistics (12): bytes/s, packets/s, five statistics of
///   packet sizes, five statistics of inter-arrival times.
/// * VCA-semantic (2): number of unique packet sizes, number of microbursts.
/// * RTP-derived (12): unique RTP timestamps of the video and RTX streams
///   plus their intersection and union, marker-bit sums per stream,
///   out-of-order sequence-number count, and five statistics of the RTP lag.
///
/// The columnar overloads are the computational core: they read each column
/// (arrival times, sizes, head bytes) as a contiguous span and never touch
/// bytes the feature set does not use. The span-of-Packet entry points
/// gather into `WindowColumns` and delegate, so both layouts produce
/// bit-identical vectors by construction.
namespace vcaqoe::features {

struct ExtractionParams {
  /// Microburst threshold θ_IAT: a new burst starts when an inter-arrival
  /// gap reaches this value (§3.2.2).
  common::DurationNs microburstIatNs = common::millisToNs(3.0);
  /// Payload types identifying the video and RTX streams (RTP features
  /// only). rtxPt == 0 means the deployment has no RTX stream.
  std::uint8_t videoPt = 0;
  std::uint8_t rtxPt = 0;
};

/// 12 flow-level statistics over the given (already media-classified) video
/// packet columns. Sizes in bytes, IATs in milliseconds, volumes per second.
std::vector<double> flowStatistics(
    std::span<const common::TimeNs> videoArrivalNs,
    std::span<const std::uint32_t> videoSizeBytes,
    common::DurationNs windowNs);

/// AoS counterpart; gathers columns and delegates.
std::vector<double> flowStatistics(std::span<const netflow::Packet> video,
                                   common::DurationNs windowNs);

/// The two VCA-semantic features over classified video packet columns.
std::vector<double> semanticFeatures(
    std::span<const common::TimeNs> videoArrivalNs,
    std::span<const std::uint32_t> videoSizeBytes,
    const ExtractionParams& params);

/// AoS counterpart; gathers columns and delegates.
std::vector<double> semanticFeatures(std::span<const netflow::Packet> video,
                                     const ExtractionParams& params);

/// The 12 RTP-derived features over a whole window's columns (all packets,
/// heads captured; streams are separated by payload type internally).
std::vector<double> rtpFeatures(const WindowColumns& window,
                                const ExtractionParams& params);

/// AoS counterpart; gathers columns (with heads) and delegates.
std::vector<double> rtpFeatures(const Window& window,
                                const ExtractionParams& params);

/// Assembles the full feature vector for a set from columnar inputs:
///  kIpUdp: flowStatistics(video) + semanticFeatures(video)        (14)
///  kRtp:   flowStatistics(video) + rtpFeatures(window)            (24)
/// `video` must hold the window's video-classified packet columns. `window`
/// (all packets, heads captured) is consulted only for kRtp — the IP/UDP
/// path may pass an empty record and no payload byte is ever read.
std::vector<double> extractFeatures(const WindowColumns& window,
                                    const WindowColumns& video,
                                    common::DurationNs durationNs,
                                    FeatureSet set,
                                    const ExtractionParams& params);

/// AoS entry point: `video` must hold the window's video-classified packets
/// (threshold-based for IP/UDP, payload-type-based for RTP). Gathers the
/// columns the set needs and delegates to the columnar core.
std::vector<double> extractFeatures(const Window& window,
                                    std::span<const netflow::Packet> video,
                                    FeatureSet set,
                                    const ExtractionParams& params);

}  // namespace vcaqoe::features
