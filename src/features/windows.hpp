#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "netflow/packet.hpp"

/// Prediction-window slicing (§2.2: estimates are produced at a W-second
/// granularity; W = 1 s everywhere except the Fig 12 sweep).
namespace vcaqoe::features {

/// One prediction window over a packet trace: the half-open time interval
/// [index*W, (index+1)*W) and the packets arriving inside it.
struct Window {
  std::int64_t index = 0;
  common::TimeNs startNs = 0;
  common::DurationNs durationNs = common::kNanosPerSecond;
  std::span<const netflow::Packet> packets;
};

/// Slices an arrival-ordered trace into consecutive W-sized windows from
/// t = 0 to the last packet. Empty windows are included (a stalled call is
/// still a prediction interval). Throws std::invalid_argument if the trace
/// is not arrival-ordered or windowNs <= 0.
std::vector<Window> sliceWindows(const netflow::PacketTrace& trace,
                                 common::DurationNs windowNs);

}  // namespace vcaqoe::features
