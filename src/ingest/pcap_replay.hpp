#pragma once

#include <chrono>
#include <optional>
#include <span>
#include <string>

#include "ingest/packet_source.hpp"
#include "netflow/pcap.hpp"

namespace vcaqoe::ingest {

struct ReplayOptions {
  /// Replay speed relative to the capture's own timeline. 0 (default)
  /// replays as fast as the consumer accepts; 1.0 reproduces the capture's
  /// inter-arrival gaps in wall-clock time; 2.0 replays twice as fast.
  double paceMultiplier = 0.0;
};

/// Streams the UDP records of a classic-pcap capture, in file order, through
/// the `PacketSource` interface. File-backed construction streams with an
/// O(record) buffer (`netflow::PcapFileReader`), so replaying a multi-GB
/// capture never materializes it in memory.
class PcapReplaySource final : public PacketSource {
 public:
  /// Opens a capture file. Throws std::runtime_error on I/O failure or a
  /// malformed global header.
  explicit PcapReplaySource(const std::string& path, ReplayOptions options = {});

  /// Replays an in-memory capture (must outlive the source).
  explicit PcapReplaySource(std::span<const std::uint8_t> data,
                            ReplayOptions options = {});

  bool next(SourcePacket& out) override;

  /// Skip/clamp counters of the underlying parser (live, grows as records
  /// are pulled).
  const netflow::PcapParseStats& parseStats() const;

 private:
  void pace(common::TimeNs arrivalNs);

  ReplayOptions options_;
  std::optional<netflow::PcapFileReader> file_;
  std::optional<netflow::PcapReader> memory_;

  bool sawFirst_ = false;
  common::TimeNs firstArrivalNs_ = 0;
  std::chrono::steady_clock::time_point replayStart_;
};

}  // namespace vcaqoe::ingest
