#include "ingest/live_capture.hpp"

namespace vcaqoe::ingest {

void LiveCaptureStub::push(const netflow::FlowKey& flow,
                           const netflow::Packet& packet) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;  // late capture callbacks after teardown are dropped
    queue_.push_back(SourcePacket{flow, packet});
  }
  cv_.notify_one();
}

void LiveCaptureStub::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool LiveCaptureStub::next(SourcePacket& out) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t LiveCaptureStub::queued() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace vcaqoe::ingest
