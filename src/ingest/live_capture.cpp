#include "ingest/live_capture.hpp"

namespace vcaqoe::ingest {

void LiveCaptureStub::push(const netflow::FlowKey& flow,
                           const netflow::Packet& packet) {
  {
    common::MutexLock lock(mutex_);
    if (closed_) return;  // late capture callbacks after teardown are dropped
    queue_.push_back(SourcePacket{flow, packet});
  }
  cv_.notify_one();
}

void LiveCaptureStub::close() {
  {
    common::MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool LiveCaptureStub::next(SourcePacket& out) {
  common::MutexLock lock(mutex_);
  while (!closed_ && queue_.empty()) cv_.wait(mutex_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t LiveCaptureStub::queued() const {
  common::MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace vcaqoe::ingest
