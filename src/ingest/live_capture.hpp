#pragma once

#include <deque>

#include "common/thread_annotations.hpp"
#include "ingest/packet_source.hpp"

namespace vcaqoe::ingest {

/// Stand-in for a libpcap/AF_XDP live-capture front-end.
///
/// A real deployment registers a capture callback that decodes IP/UDP
/// headers off the wire and hands `SourcePacket`s to the pipeline; this stub
/// keeps exactly that push side (`push()` from the producer thread, `close()`
/// at teardown) while `next()` serves the consumer through the shared
/// `PacketSource` interface. Everything downstream — replay driver, engine,
/// eviction — is thereby already live-capture shaped; only the OS capture
/// hookup is missing (gated on a packet-capture capability the build
/// environment does not ship).
class LiveCaptureStub final : public PacketSource {
 public:
  /// Enqueues one observation (producer side; thread-safe).
  void push(const netflow::FlowKey& flow, const netflow::Packet& packet);

  /// Marks end of capture: `next()` drains what is queued, then returns
  /// false instead of blocking. Idempotent; thread-safe.
  void close();

  /// Blocks until an observation is available or the capture is closed.
  bool next(SourcePacket& out) override;

  /// Observations queued and not yet pulled (diagnostic).
  std::size_t queued() const;

 private:
  mutable common::Mutex mutex_;
  common::CondVar cv_;
  std::deque<SourcePacket> queue_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace vcaqoe::ingest
