#include "ingest/replay_driver.hpp"

#include <algorithm>

namespace vcaqoe::ingest {

ReplayReport replay(PacketSource& source, engine::MultiFlowEngine& engine,
                    std::size_t pollEvery, common::DurationNs pumpIntervalNs) {
  return replay(source, engine, pollEvery, pumpIntervalNs, ReplayHooks{});
}

ReplayReport replay(PacketSource& source, engine::MultiFlowEngine& engine,
                    std::size_t pollEvery, common::DurationNs pumpIntervalNs,
                    const ReplayHooks& hooks) {
  if (pollEvery == 0) pollEvery = 1;
  ReplayReport report;
  SourcePacket sp;
  bool pumped = false;
  common::TimeNs lastPumpNs = 0;
  const auto poll = [&] {
    const std::size_t before = report.results.size();
    engine.poll(report.results);
    if (hooks.onDrained && report.results.size() > before) {
      hooks.onDrained(std::span<const engine::EngineResult>(report.results)
                          .subspan(before));
    }
  };
  while (source.next(sp)) {
    if (hooks.onPacket) hooks.onPacket(sp);
    engine.onPacket(sp.flow, sp.packet);
    if (++report.packets % pollEvery == 0) poll();
    if (pumpIntervalNs > 0 &&
        (!pumped || sp.packet.arrivalNs - lastPumpNs >= pumpIntervalNs)) {
      // Live-mode idle kick at a stream-time cadence: flush pending
      // dispatch buffers and run the shard batchers' deadline checks even
      // when a flow (or the whole stream) goes quiet between windows.
      engine.pump(sp.packet.arrivalNs);
      poll();
      pumped = true;
      lastPumpNs = sp.packet.arrivalNs;
    }
  }
  auto rest = engine.finish();
  report.results.insert(report.results.end(),
                        std::make_move_iterator(rest.begin()),
                        std::make_move_iterator(rest.end()));
  // Per-flow order is already emission order (single shard per flow, FIFO
  // rings); a stable sort by flow id then window is therefore the canonical
  // order regardless of how poll() interleaved with finish().
  std::stable_sort(report.results.begin(), report.results.end(),
                   [](const engine::EngineResult& a,
                      const engine::EngineResult& b) {
                     if (a.flow != b.flow) return a.flow < b.flow;
                     return a.output.window < b.output.window;
                   });
  report.engineStats = engine.stats();
  return report;
}

}  // namespace vcaqoe::ingest
