#include "ingest/pcap_replay.hpp"

#include <thread>

namespace vcaqoe::ingest {

PcapReplaySource::PcapReplaySource(const std::string& path,
                                   ReplayOptions options)
    : options_(options), file_(std::in_place, path) {}

PcapReplaySource::PcapReplaySource(std::span<const std::uint8_t> data,
                                   ReplayOptions options)
    : options_(options), memory_(std::in_place, data) {}

bool PcapReplaySource::next(SourcePacket& out) {
  auto rec = file_ ? file_->next() : memory_->next();
  if (!rec) return false;
  if (options_.paceMultiplier > 0.0) pace(rec->packet.arrivalNs);
  out.flow = rec->flow;
  out.packet = rec->packet;
  return true;
}

void PcapReplaySource::pace(common::TimeNs arrivalNs) {
  if (!sawFirst_) {
    sawFirst_ = true;
    firstArrivalNs_ = arrivalNs;
    replayStart_ = std::chrono::steady_clock::now();
    return;
  }
  const auto elapsedCapture = arrivalNs - firstArrivalNs_;
  if (elapsedCapture <= 0) return;
  const auto target =
      replayStart_ + std::chrono::nanoseconds(static_cast<std::int64_t>(
                         static_cast<double>(elapsedCapture) /
                         options_.paceMultiplier));
  std::this_thread::sleep_until(target);
}

const netflow::PcapParseStats& PcapReplaySource::parseStats() const {
  return file_ ? file_->stats() : memory_->stats();
}

}  // namespace vcaqoe::ingest
