#pragma once

#include "netflow/packet.hpp"

/// Capture front-ends for the multi-flow engine.
///
/// Everything upstream of `MultiFlowEngine::onPacket` — capture-file replay
/// today, live capture tomorrow — implements one pull interface, so the
/// demux/shard/estimate pipeline downstream is byte-identical for replayed
/// and live traffic. The replay driver (`replay()`) is the only consumer.
namespace vcaqoe::ingest {

/// One packet observation as delivered by a capture front-end.
struct SourcePacket {
  netflow::FlowKey flow;
  netflow::Packet packet;
};

/// Pull interface over a stream of packet observations in arrival order.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  PacketSource() = default;
  PacketSource(const PacketSource&) = delete;
  PacketSource& operator=(const PacketSource&) = delete;

  /// Fills `out` with the next packet; returns false at end of stream. May
  /// block (time-paced replay, live capture waiting for traffic).
  virtual bool next(SourcePacket& out) = 0;
};

}  // namespace vcaqoe::ingest
