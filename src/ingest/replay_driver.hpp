#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/multi_flow_engine.hpp"
#include "ingest/packet_source.hpp"

namespace vcaqoe::ingest {

/// What one replay run produced.
struct ReplayReport {
  /// Packets pulled from the source and fed to the engine.
  std::uint64_t packets = 0;
  /// Every window result, in canonical (flow id, window) order.
  std::vector<engine::EngineResult> results;
  /// Engine counters snapshot taken after finish().
  engine::EngineStats engineStats;
};

/// Pumps `source` dry into `engine`, draining result rings every
/// `pollEvery` packets (keeping workers unblocked on bounded rings), then
/// finalizes the engine and returns everything in canonical
/// (flow id, window) order.
///
/// With `pumpIntervalNs > 0` the driver additionally calls
/// `engine.pump(now)` whenever stream time advances by that much — the
/// live-mode idle kick: dispatcher-side pending buffers are flushed and
/// each shard runs its inference-batcher deadline check at a bounded
/// stream-time cadence instead of waiting for dispatch-batch boundaries.
/// The cadence is checked at packet boundaries, so under a real-time paced
/// source this bounds wall-clock result latency *while packets flow*;
/// across a long capture gap the next pump fires with the packet that ends
/// the gap (a true live source would drive `pump` from a wall-clock timer —
/// see ROADMAP). Pumping changes only *when* results surface, never their
/// values or canonical order.
///
/// Canonical ordering makes the output a pure function of the packet stream:
/// replaying a written capture yields results bit-identical to feeding the
/// same packets to `onPacket` directly, for any worker count (tested
/// property — the acceptance gate of the ingest path).
ReplayReport replay(PacketSource& source, engine::MultiFlowEngine& engine,
                    std::size_t pollEvery = 1024,
                    common::DurationNs pumpIntervalNs = 0);

/// Observation hooks for instrumented replays (latency probes in the
/// benches). Purely passive: they never change what is fed or drained.
struct ReplayHooks {
  /// Called for every packet just before it is fed to the engine.
  std::function<void(const SourcePacket&)> onPacket;
  /// Called with each batch of results drained *while feeding* (poll and
  /// pump drains). The finish() tail is not reported — those windows
  /// surface only because the stream ended, so they have no meaningful
  /// dispatch latency.
  std::function<void(std::span<const engine::EngineResult>)> onDrained;
};

/// As above, with hooks (null members are skipped).
ReplayReport replay(PacketSource& source, engine::MultiFlowEngine& engine,
                    std::size_t pollEvery, common::DurationNs pumpIntervalNs,
                    const ReplayHooks& hooks);

}  // namespace vcaqoe::ingest
