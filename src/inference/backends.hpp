#pragma once

#include <memory>
#include <string>
#include <vector>

#include "inference/backend.hpp"
#include "ml/flattened_forest.hpp"
#include "ml/random_forest.hpp"

/// The concrete backends every layer now shares.
namespace vcaqoe::inference {

/// One trained forest predicting one target from a feature-set row, held
/// only as a `ml::FlattenedForest` — the contiguous SoA arena the hot path
/// scans instead of chasing the node tree — so every registry resolution
/// hands out the flat layout and the warm cache stores exactly one
/// representation per model. A node-tree `ml::RandomForest` passed in is
/// flattened at construction and discarded; both layouts produce
/// bit-identical predictions (tested property). The backend is never
/// mutated after construction, so one instance serves any number of flows.
///
/// Row-width contract: pass `expectedFeatureCount` (the
/// `features::featureCount` of the set this model will be fed) to reject a
/// mismatched model at load time — the forest's declared feature count and
/// every node's split feature index must fit the row. Without the check a
/// too-wide model would throw "short feature row" on the first window
/// mid-stream (or, with a corrupted declared count, misindex); 0 skips it.
class ForestBackend final : public InferenceBackend {
 public:
  /// Flattens and discards the node-tree form. Throws std::invalid_argument
  /// if the forest is untrained or does not fit `expectedFeatureCount`.
  ForestBackend(const ml::RandomForest& forest, QoeTarget target,
                std::string name, std::size_t expectedFeatureCount = 0);
  /// Adopts an already-flattened forest (the `.fforest` lazy-load path).
  /// Throws std::invalid_argument if it is untrained or does not fit
  /// `expectedFeatureCount`.
  ForestBackend(ml::FlattenedForest forest, QoeTarget target,
                std::string name, std::size_t expectedFeatureCount = 0);

  void predict(std::span<const double> features,
               PredictionSet& out) const override;
  void predictBatch(std::span<const FeatureRow> rows,
                    std::span<PredictionSet> out) const override;
  void predictWindowBatch(std::span<const WindowContext> contexts,
                          std::span<PredictionSet> out) const override;
  std::vector<QoeTarget> targets() const override { return {target_}; }
  const std::string& name() const override { return name_; }

  const ml::FlattenedForest& flattened() const { return flat_; }

 private:
  ml::FlattenedForest flat_;
  QoeTarget target_;
  std::string name_;
};

/// Adapts the Algorithm-1 heuristic estimates (already computed per window
/// by the streaming estimator) into a `PredictionSet`, so heuristic and ML
/// results flow through the same typed result path. From the feature vector
/// alone it predicts nothing. No vectorizable core, so the inherited
/// batched entry points (a loop over the scalar calls) are already optimal.
class HeuristicBackend final : public InferenceBackend {
 public:
  HeuristicBackend();

  void predict(std::span<const double> features,
               PredictionSet& out) const override;
  void predictWindow(const WindowContext& context,
                     PredictionSet& out) const override;
  std::vector<QoeTarget> targets() const override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Predicts nothing — the registry's default fallback, keeping "no model
/// for this flow" on the same code path as every other resolution.
class NullBackend final : public InferenceBackend {
 public:
  NullBackend();

  void predict(std::span<const double> features,
               PredictionSet& out) const override;
  void predictBatch(std::span<const FeatureRow> rows,
                    std::span<PredictionSet> out) const override;
  void predictWindowBatch(std::span<const WindowContext> contexts,
                          std::span<PredictionSet> out) const override;
  std::vector<QoeTarget> targets() const override { return {}; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Fans one window out to several backends (one per resolved target) and
/// merges their predictions. Children are shared immutable backends; later
/// children win on overlapping targets.
class CompositeBackend final : public InferenceBackend {
 public:
  explicit CompositeBackend(
      std::vector<std::shared_ptr<const InferenceBackend>> children);

  void predict(std::span<const double> features,
               PredictionSet& out) const override;
  void predictWindow(const WindowContext& context,
                     PredictionSet& out) const override;
  void predictBatch(std::span<const FeatureRow> rows,
                    std::span<PredictionSet> out) const override;
  void predictWindowBatch(std::span<const WindowContext> contexts,
                          std::span<PredictionSet> out) const override;
  std::vector<QoeTarget> targets() const override;
  const std::string& name() const override { return name_; }

 private:
  std::vector<std::shared_ptr<const InferenceBackend>> children_;
  std::string name_;
};

}  // namespace vcaqoe::inference
