#include "inference/model_registry.hpp"

#include <utility>

#include "ml/serialize.hpp"

namespace vcaqoe::inference {

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(std::move(options)), fallback_(options_.fallback) {
  if (!fallback_) fallback_ = std::make_shared<NullBackend>();
}

void ModelRegistry::registerBackend(
    const std::string& vca, QoeTarget target,
    std::shared_ptr<const InferenceBackend> backend,
    features::FeatureSet set) {
  common::WriterLock lock(mutex_);
  backends_[Key{vca, target, set}] = std::move(backend);
  composites_.clear();  // memoized sets may now compose differently
}

std::shared_ptr<const InferenceBackend> ModelRegistry::lookupOrLoad(
    const std::string& vca, QoeTarget target, features::FeatureSet set) {
  const Key key{vca, target, set};
  {
    common::ReaderLock lock(mutex_);
    const auto it = backends_.find(key);
    if (it != backends_.end()) {
      if (it->second) {
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Negative cache: a previous resolve already probed the disk.
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
  }

  common::WriterLock lock(mutex_);
  // Double-check: another thread may have loaded while we upgraded.
  const auto it = backends_.find(key);
  if (it != backends_.end()) {
    if (it->second) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
  }

  std::shared_ptr<const InferenceBackend> loaded;
  if (!options_.modelDir.empty()) {
    const std::string slug(toString(target));
    // Loaded forests must fit the feature set's row width — a mismatched
    // model is a load failure (fallback served), not a mid-stream
    // "short feature row" throw or a silent misindex.
    const std::size_t rowWidth = features::featureCount(set);
    // Flat layout first (what the hot path evaluates anyway), node-tree
    // second (flattened on load). The probes fail independently: a
    // malformed file is counted loudly but must neither take the monitor
    // down nor suppress a loadable sibling in the other layout (e.g. a
    // crash mid-write leaving a truncated .fforest beside a good .forest).
    const auto probeStem = [&](const std::string& stem,
                               const std::string& name) {
      // The opt-in quantized layout is applied before the backend adopts
      // the forest; a forest that cannot quantize (feature index past
      // int16) is a load failure like any other malformed model.
      try {
        if (auto flat = ml::tryLoadFlattenedForestFile(
                stem + ml::kFlatForestFileExtension)) {
          if (options_.quantizeModels && !flat->quantized()) {
            flat->applyLayout({.quantizeThresholds = true});
          }
          loaded = std::make_shared<ForestBackend>(std::move(*flat), target,
                                                   name, rowWidth);
          loads_.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!loaded) {
        try {
          if (auto forest =
                  ml::tryLoadForestFile(stem + ml::kForestFileExtension)) {
            ml::FlattenedForest flat(*forest);
            if (options_.quantizeModels) {
              flat.applyLayout({.quantizeThresholds = true});
            }
            loaded = std::make_shared<ForestBackend>(std::move(flat), target,
                                                     name, rowWidth);
            loads_.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          loadFailures_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    // Feature-set layout: <modelDir>/<vca>/<set>/<target>.*
    const std::string setName(features::toString(set));
    probeStem(options_.modelDir + "/" + vca + "/" + setName + "/" + slug,
              "forest:" + vca + "/" + setName + "/" + slug);
    // Pre-feature-set trees stored IP/UDP models directly under the VCA
    // directory; keep serving them for kIpUdp.
    if (!loaded && set == features::FeatureSet::kIpUdp) {
      probeStem(options_.modelDir + "/" + vca + "/" + slug,
                "forest:" + vca + "/" + slug);
    }
  }
  if (!loaded) misses_.fetch_add(1, std::memory_order_relaxed);
  backends_[key] = loaded;
  composites_.clear();  // memoized sets may now compose differently
  return loaded;
}

std::shared_ptr<const InferenceBackend> ModelRegistry::resolve(
    const std::string& vca, QoeTarget target, features::FeatureSet set) {
  auto backend = lookupOrLoad(vca, target, set);
  return backend ? backend : fallback_;
}

std::shared_ptr<const InferenceBackend> ModelRegistry::resolveSet(
    const std::string& vca, std::span<const QoeTarget> targets,
    features::FeatureSet set) {
  // Per-target probes always run, so the hit/miss/load counters see exactly
  // one resolution per (admission, target) and lazy loads happen here; the
  // composition itself is memoized below.
  std::uint32_t mask = 0;
  for (const auto target : targets) {
    mask |= 1u << static_cast<std::uint32_t>(target);
    lookupOrLoad(vca, target, set);
  }
  if (mask == 0) return fallback_;

  // Steady state (millions of admissions, a handful of model sets) must not
  // allocate a fresh composite per flow: memoize per (vca, target set,
  // feature set). The cache is cleared whenever `backends_` changes, and
  // children are built from the map under the write lock in canonical
  // target order — never from the probe results — so neither a racing
  // mutation nor the caller's target ordering can pin a different
  // composition.
  const std::tuple<std::string, std::uint32_t, features::FeatureSet> cacheKey{
      vca, mask, set};
  {
    common::ReaderLock lock(mutex_);
    const auto it = composites_.find(cacheKey);
    if (it != composites_.end()) return it->second;
  }
  common::WriterLock lock(mutex_);
  const auto cached = composites_.find(cacheKey);
  if (cached != composites_.end()) return cached->second;

  std::vector<std::shared_ptr<const InferenceBackend>> children;
  bool missing = false;
  for (const auto target : kAllTargets) {
    if ((mask & (1u << static_cast<std::uint32_t>(target))) == 0) continue;
    const auto entry = backends_.find(Key{vca, target, set});
    if (entry == backends_.end() || !entry->second) {
      missing = true;
      continue;
    }
    const auto& backend = entry->second;
    bool duplicate = false;
    for (const auto& seen : children) duplicate = duplicate || seen == backend;
    if (!duplicate) children.push_back(backend);
  }
  std::shared_ptr<const InferenceBackend> composed;
  if (children.empty()) {
    composed = fallback_;
  } else {
    // Fallback first: real models override it on overlapping targets.
    if (missing) children.insert(children.begin(), fallback_);
    composed = children.size() == 1
                   ? children.front()
                   : std::make_shared<CompositeBackend>(std::move(children));
  }
  return composites_.try_emplace(cacheKey, std::move(composed)).first->second;
}

std::size_t ModelRegistry::size() const {
  common::ReaderLock lock(mutex_);
  std::size_t positive = 0;
  for (const auto& [key, backend] : backends_) {
    if (backend) ++positive;
  }
  return positive;
}

RegistryStats ModelRegistry::stats() const {
  RegistryStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.loadFailures = loadFailures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace vcaqoe::inference
