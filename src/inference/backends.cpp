#include "inference/backends.hpp"

#include <stdexcept>

namespace vcaqoe::inference {

std::string_view toString(QoeTarget target) {
  switch (target) {
    case QoeTarget::kFrameRate:
      return "frame_rate";
    case QoeTarget::kBitrateKbps:
      return "bitrate_kbps";
    case QoeTarget::kFrameJitterMs:
      return "frame_jitter_ms";
    case QoeTarget::kResolution:
      return "resolution";
  }
  return "unknown";
}

std::optional<QoeTarget> targetFromString(std::string_view slug) {
  for (const auto target : kAllTargets) {
    if (toString(target) == slug) return target;
  }
  return std::nullopt;
}

ForestBackend::ForestBackend(ml::RandomForest forest, QoeTarget target,
                             std::string name)
    : forest_(std::move(forest)), target_(target), name_(std::move(name)) {
  if (!forest_.trained()) {
    throw std::invalid_argument("ForestBackend: forest is untrained");
  }
  if (name_.empty()) {
    name_ = "forest:" + std::string(toString(target_));
  }
}

void ForestBackend::predict(std::span<const double> features,
                            PredictionSet& out) const {
  out.set(target_, forest_.predict(features));
}

HeuristicBackend::HeuristicBackend() : name_("heuristic") {}

void HeuristicBackend::predict(std::span<const double>,
                               PredictionSet&) const {
  // Algorithm 1 works on frame boundaries, which the 14 IP/UDP features do
  // not carry — only the full-window path can fill anything.
}

void HeuristicBackend::predictWindow(const WindowContext& context,
                                     PredictionSet& out) const {
  if (!context.hasHeuristic) return;
  out.set(QoeTarget::kFrameRate, context.heuristicFps);
  out.set(QoeTarget::kBitrateKbps, context.heuristicBitrateKbps);
  out.set(QoeTarget::kFrameJitterMs, context.heuristicFrameJitterMs);
}

std::vector<QoeTarget> HeuristicBackend::targets() const {
  return {QoeTarget::kFrameRate, QoeTarget::kBitrateKbps,
          QoeTarget::kFrameJitterMs};
}

NullBackend::NullBackend() : name_("null") {}

void NullBackend::predict(std::span<const double>, PredictionSet&) const {}

CompositeBackend::CompositeBackend(
    std::vector<std::shared_ptr<const InferenceBackend>> children)
    : children_(std::move(children)) {
  for (const auto& child : children_) {
    if (!child) throw std::invalid_argument("CompositeBackend: null child");
    if (!name_.empty()) name_ += "+";
    name_ += child->name();
  }
  if (name_.empty()) name_ = "composite:empty";
}

void CompositeBackend::predict(std::span<const double> features,
                               PredictionSet& out) const {
  for (const auto& child : children_) child->predict(features, out);
}

void CompositeBackend::predictWindow(const WindowContext& context,
                                     PredictionSet& out) const {
  for (const auto& child : children_) child->predictWindow(context, out);
}

std::vector<QoeTarget> CompositeBackend::targets() const {
  std::vector<QoeTarget> merged;
  for (const auto target : kAllTargets) {
    for (const auto& child : children_) {
      const auto childTargets = child->targets();
      bool found = false;
      for (const auto t : childTargets) found = found || t == target;
      if (found) {
        merged.push_back(target);
        break;
      }
    }
  }
  return merged;
}

}  // namespace vcaqoe::inference
