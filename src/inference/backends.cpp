#include "inference/backends.hpp"

#include <stdexcept>

namespace vcaqoe::inference {

std::string_view toString(QoeTarget target) {
  switch (target) {
    case QoeTarget::kFrameRate:
      return "frame_rate";
    case QoeTarget::kBitrateKbps:
      return "bitrate_kbps";
    case QoeTarget::kFrameJitterMs:
      return "frame_jitter_ms";
    case QoeTarget::kResolution:
      return "resolution";
  }
  return "unknown";
}

std::optional<QoeTarget> targetFromString(std::string_view slug) {
  for (const auto target : kAllTargets) {
    if (toString(target) == slug) return target;
  }
  return std::nullopt;
}

void InferenceBackend::checkBatchShape(std::size_t rows, std::size_t outs) {
  if (rows != outs) {
    throw std::invalid_argument(
        "InferenceBackend: batch rows/out length mismatch");
  }
}

namespace {

/// Load-time row-width validation: the forest's declared feature count and
/// every node's split feature index must fit the `expected`-wide rows this
/// backend will be fed. `expected == 0` skips the check (caller vouches).
void checkFeatureWidth(const ml::FlattenedForest& flat, std::size_t expected,
                       const std::string& name) {
  if (expected == 0) return;
  std::int32_t maxIndex = -1;
  for (const auto index : flat.feature()) {
    if (index > maxIndex) maxIndex = index;
  }
  if (flat.featureCount() > expected ||
      maxIndex >= static_cast<std::int32_t>(expected)) {
    throw std::invalid_argument(
        "ForestBackend: model '" + name + "' declares " +
        std::to_string(flat.featureCount()) +
        " features (max split index " + std::to_string(maxIndex) +
        ") but the target feature set rows are " + std::to_string(expected) +
        " wide");
  }
}

}  // namespace

ForestBackend::ForestBackend(const ml::RandomForest& forest, QoeTarget target,
                             std::string name,
                             std::size_t expectedFeatureCount)
    : target_(target), name_(std::move(name)) {
  if (!forest.trained()) {
    throw std::invalid_argument("ForestBackend: forest is untrained");
  }
  flat_ = ml::FlattenedForest(forest);
  if (name_.empty()) {
    name_ = "forest:" + std::string(toString(target_));
  }
  checkFeatureWidth(flat_, expectedFeatureCount, name_);
}

ForestBackend::ForestBackend(ml::FlattenedForest forest, QoeTarget target,
                             std::string name,
                             std::size_t expectedFeatureCount)
    : flat_(std::move(forest)), target_(target), name_(std::move(name)) {
  if (!flat_.trained()) {
    throw std::invalid_argument("ForestBackend: forest is untrained");
  }
  if (name_.empty()) {
    name_ = "forest:" + std::string(toString(target_));
  }
  checkFeatureWidth(flat_, expectedFeatureCount, name_);
}

void ForestBackend::predict(std::span<const double> features,
                            PredictionSet& out) const {
  out.set(target_, flat_.predict(features));
}

void ForestBackend::predictBatch(std::span<const FeatureRow> rows,
                                 std::span<PredictionSet> out) const {
  checkBatchShape(rows.size(), out.size());
  if (rows.empty()) return;
  // The backend is const and shared across workers, so reusable scratch
  // lives per thread — the batcher flushes on the hot path and must not
  // pay an allocation per flush in steady state.
  thread_local std::vector<double> values;
  values.resize(rows.size());
  flat_.predictBatch(rows, values);
  for (std::size_t i = 0; i < rows.size(); ++i) out[i].set(target_, values[i]);
}

void ForestBackend::predictWindowBatch(std::span<const WindowContext> contexts,
                                       std::span<PredictionSet> out) const {
  checkBatchShape(contexts.size(), out.size());
  if (contexts.empty()) return;
  thread_local std::vector<FeatureRow> rows;
  rows.clear();
  rows.reserve(contexts.size());
  for (const auto& context : contexts) rows.push_back(context.features);
  predictBatch(rows, out);
}

HeuristicBackend::HeuristicBackend() : name_("heuristic") {}

void HeuristicBackend::predict(std::span<const double>,
                               PredictionSet&) const {
  // Algorithm 1 works on frame boundaries, which the 14 IP/UDP features do
  // not carry — only the full-window path can fill anything.
}

void HeuristicBackend::predictWindow(const WindowContext& context,
                                     PredictionSet& out) const {
  if (!context.hasHeuristic) return;
  out.set(QoeTarget::kFrameRate, context.heuristicFps);
  out.set(QoeTarget::kBitrateKbps, context.heuristicBitrateKbps);
  out.set(QoeTarget::kFrameJitterMs, context.heuristicFrameJitterMs);
}

std::vector<QoeTarget> HeuristicBackend::targets() const {
  return {QoeTarget::kFrameRate, QoeTarget::kBitrateKbps,
          QoeTarget::kFrameJitterMs};
}

NullBackend::NullBackend() : name_("null") {}

void NullBackend::predict(std::span<const double>, PredictionSet&) const {}

void NullBackend::predictBatch(std::span<const FeatureRow> rows,
                               std::span<PredictionSet> out) const {
  checkBatchShape(rows.size(), out.size());
}

void NullBackend::predictWindowBatch(std::span<const WindowContext> contexts,
                                     std::span<PredictionSet> out) const {
  checkBatchShape(contexts.size(), out.size());
}

CompositeBackend::CompositeBackend(
    std::vector<std::shared_ptr<const InferenceBackend>> children)
    : children_(std::move(children)) {
  for (const auto& child : children_) {
    if (!child) throw std::invalid_argument("CompositeBackend: null child");
    if (!name_.empty()) name_ += "+";
    name_ += child->name();
  }
  if (name_.empty()) name_ = "composite:empty";
}

void CompositeBackend::predict(std::span<const double> features,
                               PredictionSet& out) const {
  for (const auto& child : children_) child->predict(features, out);
}

void CompositeBackend::predictWindow(const WindowContext& context,
                                     PredictionSet& out) const {
  for (const auto& child : children_) child->predictWindow(context, out);
}

void CompositeBackend::predictBatch(std::span<const FeatureRow> rows,
                                    std::span<PredictionSet> out) const {
  // Child-major (each child sweeps the whole batch) keeps one child's arena
  // hot; per row the children still apply in order, so later children win
  // on overlapping targets exactly like the scalar path.
  checkBatchShape(rows.size(), out.size());
  for (const auto& child : children_) child->predictBatch(rows, out);
}

void CompositeBackend::predictWindowBatch(
    std::span<const WindowContext> contexts,
    std::span<PredictionSet> out) const {
  checkBatchShape(contexts.size(), out.size());
  for (const auto& child : children_) child->predictWindowBatch(contexts, out);
}

std::vector<QoeTarget> CompositeBackend::targets() const {
  std::vector<QoeTarget> merged;
  for (const auto target : kAllTargets) {
    for (const auto& child : children_) {
      const auto childTargets = child->targets();
      bool found = false;
      for (const auto t : childTargets) found = found || t == target;
      if (found) {
        merged.push_back(target);
        break;
      }
    }
  }
  return merged;
}

}  // namespace vcaqoe::inference
