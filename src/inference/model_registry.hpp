#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_annotations.hpp"
#include "features/feature_vector.hpp"
#include "inference/backends.hpp"

/// Warm-model registry keyed by (VCA classification, target, feature set).
///
/// A monitoring point serves millions of flows but only a handful of
/// distinct models (one per VCA per QoE target per feature family). The
/// registry holds each model once as an immutable
/// `shared_ptr<const InferenceBackend>`; every flow that classifies to the
/// same VCA and runs the same feature set shares the same backend instance.
/// Models are loaded lazily from a `ml::serialize` directory the first time
/// a (vca, target, set) triple is requested — the layout is
/// `<modelDir>/<vca>/<set>/<target>.fforest` (flattened, probed first) or
/// `<target>.forest` (node tree, flattened on load; e.g.
/// `models/teams/rtp/frame_rate.fforest`). For kIpUdp the pre-feature-set
/// layout `<modelDir>/<vca>/<target>.*` is probed as a backward-compatible
/// fallback, so existing model trees keep serving. Loaded forests are
/// width-validated against the feature set's row
/// (`features::featureCount(set)`); a mismatched model counts as a load
/// failure and the fallback is served instead of misindexing mid-stream.
/// Both positive and negative lookups are cached. Counting contract:
/// every `resolve`/`resolveSet` charges one hit, miss, or load per
/// requested target, so steady-state admission cost is one shared-lock map
/// probe *per target* plus one memoized-composition probe; the disk is
/// never re-touched after the first probe of a key.
namespace vcaqoe::inference {

/// Resolution counters, exported through `EngineStats`.
struct RegistryStats {
  /// Resolutions served by a cached backend.
  std::uint64_t hits = 0;
  /// Resolutions with no model anywhere (fallback served).
  std::uint64_t misses = 0;
  /// Lazy loads from disk that produced a backend.
  std::uint64_t loads = 0;
  /// Model files that existed but failed to parse or fit the feature set.
  std::uint64_t loadFailures = 0;
};

struct ModelRegistryOptions {
  /// Root of the on-disk model tree; empty disables lazy loading.
  std::string modelDir;
  /// Served when a (vca, target, set) has no model. Null means `NullBackend`
  /// (predict nothing); a `HeuristicBackend` here degrades missing models
  /// to Algorithm-1 estimates instead.
  std::shared_ptr<const InferenceBackend> fallback;
  /// Opt-in (never on by default): apply the quantized FlattenedForest
  /// layout — float32 thresholds, int16 split-feature indices — to every
  /// lazily loaded model. Predictions then carry the documented quantization
  /// tolerance (see ml::FlattenedForest::LayoutOptions) in exchange for a
  /// smaller, faster arena. Models whose files carry the `layout quantized`
  /// marker are quantized regardless of this flag.
  bool quantizeModels = false;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Installs (or replaces) the backend for one (vca, target, set) key.
  void registerBackend(
      const std::string& vca, QoeTarget target,
      std::shared_ptr<const InferenceBackend> backend,
      features::FeatureSet set = features::FeatureSet::kIpUdp);

  /// Resolves one (vca, target, set): cached backend, else lazy disk load,
  /// else the fallback. Never returns null. Safe to call concurrently from
  /// any number of threads.
  std::shared_ptr<const InferenceBackend> resolve(
      const std::string& vca, QoeTarget target,
      features::FeatureSet set = features::FeatureSet::kIpUdp);

  /// Resolves several targets for one (VCA, feature set) into a single
  /// backend a per-flow estimator can hold: the lone resolved backend, a
  /// `CompositeBackend` over several, or the fallback when nothing
  /// resolved. Children compose in canonical `QoeTarget` order regardless
  /// of the order of `targets`, and when any target went unresolved the
  /// fallback joins the composite first, so real models win on overlapping
  /// targets. Compositions are memoized per (vca, target set, feature set);
  /// steady state allocates nothing.
  std::shared_ptr<const InferenceBackend> resolveSet(
      const std::string& vca, std::span<const QoeTarget> targets,
      features::FeatureSet set = features::FeatureSet::kIpUdp);

  const std::shared_ptr<const InferenceBackend>& fallback() const {
    return fallback_;
  }

  /// Distinct (vca, target, set) keys currently cached (positive entries
  /// only).
  std::size_t size() const;

  RegistryStats stats() const;

 private:
  using Key = std::tuple<std::string, QoeTarget, features::FeatureSet>;

  /// Cached resolution: null backend pointer = known-missing (negative
  /// cache; the fallback is served without re-probing the disk).
  std::shared_ptr<const InferenceBackend> lookupOrLoad(
      const std::string& vca, QoeTarget target, features::FeatureSet set);

  ModelRegistryOptions options_;
  std::shared_ptr<const InferenceBackend> fallback_;

  mutable common::SharedMutex mutex_;
  std::map<Key, std::shared_ptr<const InferenceBackend>> backends_
      GUARDED_BY(mutex_);
  /// Memoized `resolveSet` composites keyed by (vca, target bitmask,
  /// feature set), so steady-state flow admission allocates nothing.
  /// Invalidated whenever `backends_` changes (registration or lazy load).
  std::map<std::tuple<std::string, std::uint32_t, features::FeatureSet>,
           std::shared_ptr<const InferenceBackend>>
      composites_ GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> loadFailures_{0};
};

}  // namespace vcaqoe::inference
