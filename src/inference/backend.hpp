#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// Multi-target inference surface.
///
/// The paper's deliverable is per-window prediction of *several* QoE metrics
/// (frame rate, bitrate, frame jitter, resolution) from IP/UDP features,
/// with different trained models per VCA (§4.3, §5). An `InferenceBackend`
/// is one immutable predictor shared by every flow that resolved to it; a
/// `PredictionSet` is the typed per-window result that replaces the old
/// anonymous `optional<double>`. Backends are stateless with respect to the
/// stream: `predict` is const and safe to call concurrently from every
/// engine worker.
namespace vcaqoe::inference {

/// A named prediction target — one per QoE metric the paper estimates.
enum class QoeTarget : std::uint8_t {
  kFrameRate = 0,   ///< frames per second (regression)
  kBitrateKbps,     ///< received video kbps (regression)
  kFrameJitterMs,   ///< stdev of inter-frame gaps in ms (regression)
  kResolution,      ///< frame-height class (classification)
};

inline constexpr std::size_t kNumTargets = 4;

inline constexpr std::array<QoeTarget, kNumTargets> kAllTargets = {
    QoeTarget::kFrameRate, QoeTarget::kBitrateKbps, QoeTarget::kFrameJitterMs,
    QoeTarget::kResolution};

/// Stable slug ("frame_rate", "bitrate_kbps", ...) — also the on-disk model
/// file stem the `ModelRegistry` looks for.
std::string_view toString(QoeTarget target);

/// Inverse of `toString`; nullopt on an unknown slug.
std::optional<QoeTarget> targetFromString(std::string_view slug);

/// Typed per-window predictions, one optional value per `QoeTarget`.
///
/// Value semantics, trivially copyable, and comparable bit-for-bit — the
/// engine's determinism contract ("sharded output identical to sequential")
/// extends to predictions through this operator==.
class PredictionSet {
 public:
  void set(QoeTarget target, double value) {
    values_[index(target)] = value;
    mask_ |= bit(target);
  }

  bool has(QoeTarget target) const { return (mask_ & bit(target)) != 0; }

  std::optional<double> get(QoeTarget target) const {
    if (!has(target)) return std::nullopt;
    return values_[index(target)];
  }

  /// Number of targets set.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto target : kAllTargets) n += has(target) ? 1 : 0;
    return n;
  }

  bool empty() const { return mask_ == 0; }

  void clear() {
    mask_ = 0;
    values_.fill(0.0);
  }

  friend bool operator==(const PredictionSet& a, const PredictionSet& b) {
    if (a.mask_ != b.mask_) return false;
    for (const auto target : kAllTargets) {
      if (a.has(target) && a.values_[index(target)] != b.values_[index(target)])
        return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t index(QoeTarget target) {
    return static_cast<std::size_t>(target);
  }
  static constexpr std::uint8_t bit(QoeTarget target) {
    return static_cast<std::uint8_t>(1u << index(target));
  }

  std::array<double, kNumTargets> values_{};
  std::uint8_t mask_ = 0;
};

/// One window's feature vector, borrowed from the caller for the duration
/// of a call (same shape as `ml::FeatureRow`).
using FeatureRow = std::span<const double>;

/// Everything a backend may look at for one completed window. Plain doubles
/// (not core types) keep this module below `core` in the dependency graph.
struct WindowContext {
  /// The window's IP/UDP feature vector (14 features, Table 1).
  std::span<const double> features;
  /// Algorithm-1 heuristic estimates for the same window, when the caller
  /// computed them (the streaming estimator always does).
  bool hasHeuristic = false;
  double heuristicFps = 0.0;
  double heuristicBitrateKbps = 0.0;
  double heuristicFrameJitterMs = 0.0;
};

/// One immutable multi-target predictor.
///
/// Implementations must be safe for concurrent `predict` calls: the
/// `ModelRegistry` hands the same `shared_ptr<const InferenceBackend>` to
/// every flow (on every worker thread) that resolves to it.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  /// Predicts from the feature vector alone, filling (never clearing) `out`.
  virtual void predict(std::span<const double> features,
                       PredictionSet& out) const = 0;

  /// Full-window entry point; the default forwards to `predict(features)`.
  /// Backends that adapt non-feature signals (the heuristic estimates)
  /// override this one.
  virtual void predictWindow(const WindowContext& context,
                             PredictionSet& out) const {
    predict(context.features, out);
  }

  /// Batched entry point: fills `out[i]` from `rows[i]`. The default loops
  /// over `predict`, so every backend is batch-callable; backends with a
  /// vectorizable core (the flattened forests) override it to amortize the
  /// per-window dispatch. Results must be bit-identical to calling
  /// `predict` per row — the engine's determinism contract extends through
  /// this path. Throws std::invalid_argument when the spans disagree in
  /// length.
  virtual void predictBatch(std::span<const FeatureRow> rows,
                            std::span<PredictionSet> out) const {
    checkBatchShape(rows.size(), out.size());
    for (std::size_t i = 0; i < rows.size(); ++i) predict(rows[i], out[i]);
  }

  /// Batched full-window entry point, the one the engine's per-shard
  /// `InferenceBatcher` calls. Same contract as `predictBatch`, defaulting
  /// to a loop over `predictWindow`.
  virtual void predictWindowBatch(std::span<const WindowContext> contexts,
                                  std::span<PredictionSet> out) const {
    checkBatchShape(contexts.size(), out.size());
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      predictWindow(contexts[i], out[i]);
    }
  }

  /// The targets this backend fills.
  virtual std::vector<QoeTarget> targets() const = 0;

  /// Stable human-readable identity ("forest:teams/frame_rate",
  /// "heuristic", "null"), surfaced in dashboards and per-flow stats.
  virtual const std::string& name() const = 0;

 protected:
  /// Shared length guard for the batched entry points.
  static void checkBatchShape(std::size_t rows, std::size_t outs);
};

}  // namespace vcaqoe::inference
