#include "common/json_writer.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vcaqoe::common {

JsonValue::JsonValue(std::uint64_t value) {
  if (value <=
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    type_ = Type::kInt;
    int_ = static_cast<std::int64_t>(value);
  } else {
    type_ = Type::kDouble;
    double_ = static_cast<double>(value);
  }
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

JsonValue& JsonValue::push(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return items_.back();
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kObject) return members_.size();
  if (type_ == Type::kArray) return items_.size();
  return 0;
}

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // std::to_chars emits the shortest representation that round-trips.
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, result.ptr);
  // Keep the double-ness visible: "2" would parse back as an integer.
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[24];
      const auto result = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, result.ptr);
      break;
    }
    case Type::kDouble:
      out += jsonNumber(double_);
      break;
    case Type::kString:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      break;
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += jsonEscape(key);
        out += indent > 0 ? "\": " : "\":";
        value.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& item : items_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        item.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------- parser

namespace {

/// Strict recursive-descent JSON parser. Tracks a byte cursor for error
/// messages and caps nesting depth (the schema files are shallow; a depth
/// bomb must not overflow the stack).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue value;
    if (!parseValue(value, 0)) {
      fail("invalid JSON value");
    } else {
      skipWhitespace();
      if (pos_ != text_.size()) fail("trailing characters after document");
    }
    if (!error_.empty()) {
      if (error) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at byte " + std::to_string(pos_);
    }
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skipWhitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') return parseString(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber(out);
    if (literal("true")) {
      out = JsonValue(true);
      return true;
    }
    if (literal("false")) {
      out = JsonValue(false);
      return true;
    }
    if (literal("null")) {
      out = JsonValue();
      return true;
    }
    fail("unexpected character");
    return false;
  }

  bool parseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skipWhitespace();
    if (consume('}')) return true;
    for (;;) {
      skipWhitespace();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parseString(key)) {
        fail("expected object key string");
        return false;
      }
      skipWhitespace();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return false;
      }
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.set(key.asString(), std::move(value));
      skipWhitespace();
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skipWhitespace();
    if (consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.push(std::move(value));
      skipWhitespace();
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  /// One \uXXXX unit (cursor past the 'u'); 0xFFFFFFFF on error.
  std::uint32_t parseHex4() {
    if (pos_ + 4 > text_.size()) return 0xFFFFFFFF;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return 0xFFFFFFFF;
    }
    pos_ += 4;
    return value;
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parseString(JsonValue& out) {
    ++pos_;  // '"'
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        out = JsonValue(std::move(value));
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        value += c;
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          std::uint32_t cp = parseHex4();
          if (cp == 0xFFFFFFFF) {
            fail("invalid \\u escape");
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (!literal("\\u")) {
              fail("unpaired surrogate");
              return false;
            }
            const std::uint32_t low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate");
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
            return false;
          }
          appendUtf8(value, cp);
          break;
        }
        default:
          fail("invalid escape character");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  /// Resolves a grammar-valid number token that from_chars reported out of
  /// double range: overflow clamps to +/-HUGE_VAL, underflow to +/-0.0.
  static double outOfRangeValue(std::string_view token) {
    const bool negative = !token.empty() && token.front() == '-';
    // Count significant integer digits (leading '-' / zeros stripped).
    std::size_t i = negative ? 1 : 0;
    while (i < token.size() && token[i] == '0') ++i;
    std::int64_t intDigits = 0;
    while (i < token.size() && token[i] >= '0' && token[i] <= '9') {
      ++i;
      ++intDigits;
    }
    // Explicit exponent, clamped so absurd exponents cannot overflow the
    // arithmetic below.
    std::int64_t exponent = 0;
    const std::size_t e = token.find_first_of("eE");
    if (e != std::string_view::npos) {
      const bool expNegative = token[e + 1] == '-';
      std::size_t d = e + 1 + (expNegative || token[e + 1] == '+' ? 1 : 0);
      for (; d < token.size(); ++d) {
        exponent = std::min<std::int64_t>(exponent * 10 + (token[d] - '0'),
                                          std::int64_t{1} << 40);
      }
      if (expNegative) exponent = -exponent;
    }
    // Decimal magnitude ~ exponent + integer-digit count; doubles overflow
    // past ~1e308 and underflow below ~1e-324, so the sign of the estimate
    // is decisive for any out-of-range token.
    const bool overflow = exponent + intDigits > 0;
    const double magnitude = overflow ? HUGE_VAL : 0.0;
    return negative ? -magnitude : magnitude;
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    // Validate against the JSON grammar (stricter than strtod: no leading
    // '+', no leading zeros, no hex, no "inf"/"nan").
    if (consume('-') && pos_ >= text_.size()) {
      fail("invalid number");
      return false;
    }
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (consume('0')) {
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        fail("leading zero in number");
        return false;
      }
    } else if (digits() == 0) {
      fail("invalid number");
      return false;
    }
    bool isInt = true;
    if (consume('.')) {
      isInt = false;
      if (digits() == 0) {
        fail("expected digits after decimal point");
        return false;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isInt = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        fail("expected digits in exponent");
        return false;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (isInt) {
      std::int64_t value = 0;
      const auto result =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        out = JsonValue(value);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec == std::errc::result_out_of_range) {
      // JSON numbers beyond double range clamp to +/-HUGE_VAL like strtod
      // (underflow clamps to +/-0). libstdc++'s from_chars leaves `value`
      // untouched here — "-1e999999" would silently become 0.0 — so decide
      // overflow vs underflow from the token's decimal exponent ourselves.
      // The two regimes are hundreds of decimal orders apart, so the crude
      // exponent estimate below cannot pick the wrong side.
      out = JsonValue(outOfRangeValue(token));
      return true;
    }
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("invalid number");
      return false;
    }
    out = JsonValue(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

}  // namespace vcaqoe::common
