#pragma once

#include <cstddef>
#include <cstdint>

/// Runtime-dispatched SIMD kernels for the SoA hot paths.
///
/// PRs 4/5 laid the estimator state out as contiguous columns —
/// `LookbackRing`'s parallel `uint32 sizes[]`, `WindowColumns`'s
/// `int64 arrivalNs[]` / `uint32 sizeBytes[]`, the `FlattenedForest`
/// arena — precisely so these sweeps could go wide. This header is the
/// one place that goes wide: a small set of kernels with an always-built
/// scalar reference implementation and SSE2/AVX2 (x86-64) or NEON
/// (aarch64) arms selected at runtime.
///
/// ## Dispatch
///
/// `activeLevel()` picks the best arm the CPU supports, once, at first
/// use. Setting `VCAQOE_FORCE_SCALAR=1` in the environment pins every
/// kernel to the scalar reference (the debugging/bisection escape
/// hatch); tests pin arms explicitly with `forceLevel()`. AVX2 code is
/// compiled via function-level target attributes, so the binary still
/// runs on baseline x86-64 — the AVX2 arm is simply never selected
/// there.
///
/// ## Bit-identity contract
///
/// Every kernel returns *bit-identical* results on every arm, including
/// the scalar reference (tested by `tests/simd_kernels_test.cpp` across
/// alignments, tail lengths, and NaN placement). Floating-point
/// reductions achieve this by fixing the association order as part of
/// the kernel's definition, independent of ISA:
///
///   * spans shorter than 8 elements use a plain sequential left fold
///     (so tiny windows keep their historical values exactly);
///   * longer spans accumulate into 4 logical lanes — lane j holds
///     elements j, j+4, j+8, ... of the first floor(n/4)*4 elements —
///     combined as `(lane0 + lane2) + (lane1 + lane3)`, then the
///     remaining tail folds in sequentially.
///
/// The scalar reference implements that exact lane structure, a 128-bit
/// arm runs lanes {0,1} and {2,3} in two registers, a 256-bit arm runs
/// all four in one; all agree bitwise. Min/max kernels follow the x86
/// MINPD/MAXPD rule on unordered compares (`acc = acc < x ? acc : x`,
/// so a NaN input replaces the accumulator and a later number replaces
/// a NaN accumulator) on every arm, scalar included.
namespace vcaqoe::common::simd {

/// Dispatch arms, poorest to richest. kSse2 and kAvx2 exist on x86-64
/// only, kNeon on aarch64 only; kScalar exists everywhere and is the
/// reference implementation.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Stable lower-case name ("scalar", "sse2", "avx2", "neon") — the
/// value benches persist under the `simd` config key.
const char* toString(Level level);

/// Richest arm this binary carries code for on this architecture
/// (compile-time property; ignores the CPU and the environment).
Level compiledLevel();

/// The arm kernels dispatch to right now: runtime CPU detection,
/// downgraded to kScalar when VCAQOE_FORCE_SCALAR is set to a non-empty
/// value other than "0", overridden entirely while a forceLevel() pin
/// is active.
Level activeLevel();

/// True when this CPU (and this binary) can execute `level`.
bool supported(Level level);

/// Test hook: pin dispatch to `level` until clearForcedLevel(). Unsupported
/// levels pin to kScalar instead (never to an arm that would fault).
void forceLevel(Level level);

/// Drops the forceLevel() pin; environment + CPU detection rule again.
void clearForcedLevel();

/// Index of the most recent match in a contiguous span: the largest
/// i in [0, n) with |sizes[i] - sizeBytes| <= deltaMaxBytes (exact
/// unsigned arithmetic), or -1 when nothing matches. This is the
/// Algorithm-1 size-match sweep of `core::LookbackRing`.
std::ptrdiff_t findLastMatchU32(const std::uint32_t* sizes, std::size_t n,
                                std::uint32_t sizeBytes,
                                std::uint32_t deltaMaxBytes);

/// Fixed-association sum (see the bit-identity contract above); 0.0 for
/// an empty span.
double sumF64(const double* xs, std::size_t n);

struct MinMaxF64 {
  double min = 0.0;
  double max = 0.0;
};

/// Min/max in one pass under the MINPD/MAXPD unordered-compare rule;
/// {0, 0} for an empty span.
MinMaxF64 minMaxF64(const double* xs, std::size_t n);

/// Fixed-association sum of (xs[i] - mu)^2 — the second central moment
/// numerator shared by the stdev kernels; 0.0 for an empty span.
double centralMoment2F64(const double* xs, std::size_t n, double mu);

/// Interarrival deltas in milliseconds: writes n - 1 values,
/// outMillis[i] = double(arrivalNs[i + 1] - arrivalNs[i]) / 1e6 —
/// exactly `nsToMillis` applied to each delta (elementwise, so
/// bit-identity needs no association contract). No-op for n < 2.
void iatMillisF64(const std::int64_t* arrivalNs, std::size_t n,
                  double* outMillis);

/// Elementwise exact widening: out[i] = double(xs[i]).
void u32ToF64(const std::uint32_t* xs, std::size_t n, double* out);

}  // namespace vcaqoe::common::simd
