#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define VCAQOE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define VCAQOE_SIMD_NEON 1
#include <arm_neon.h>
#endif

// This translation unit must be compiled with FP contraction off (see
// src/common/CMakeLists.txt): the scalar reference's `acc += d * d` would
// otherwise fuse into an FMA under -march=native and drift a half-ulp from
// the mul+add the vector arms issue, breaking the bit-identity contract.

namespace vcaqoe::common::simd {

namespace {

/// Threshold below which every reduction kernel is a plain sequential
/// fold — part of the public bit-identity contract (tiny windows keep
/// their pre-SIMD values exactly).
constexpr std::size_t kSequentialCutover = 8;

/// MINPD semantics: the accumulator survives only an ordered win.
inline double minOp(double acc, double x) { return acc < x ? acc : x; }
/// MAXPD semantics.
inline double maxOp(double acc, double x) { return acc > x ? acc : x; }

bool envForceScalar() {
  // Read once at first activeLevel() call, before workers spawn; nothing in
  // this codebase mutates the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("VCAQOE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Level detectLevel() {
#if defined(VCAQOE_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kSse2;  // baseline for x86-64
#elif defined(VCAQOE_SIMD_NEON)
  return Level::kNeon;  // baseline for aarch64
#else
  return Level::kScalar;
#endif
}

/// -1 when no pin is active, otherwise the pinned Level.
std::atomic<int> g_forcedLevel{-1};

}  // namespace

const char* toString(Level level) {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

Level compiledLevel() {
#if defined(VCAQOE_SIMD_X86)
  return Level::kAvx2;  // built via target attributes, gated at runtime
#elif defined(VCAQOE_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

bool supported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
#if defined(VCAQOE_SIMD_X86)
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(VCAQOE_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(VCAQOE_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level activeLevel() {
  const int forced = g_forcedLevel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level detected =
      envForceScalar() ? Level::kScalar : detectLevel();
  return detected;
}

void forceLevel(Level level) {
  g_forcedLevel.store(supported(level) ? static_cast<int>(level)
                                       : static_cast<int>(Level::kScalar),
                      std::memory_order_relaxed);
}

void clearForcedLevel() {
  g_forcedLevel.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference arm. These definitions ARE the kernel contracts: every
// vector arm below must reproduce them bit for bit.
// ---------------------------------------------------------------------------

namespace ref {

std::ptrdiff_t findLastMatchU32(const std::uint32_t* sizes, std::size_t n,
                                std::uint32_t sizeBytes,
                                std::uint32_t deltaMaxBytes) {
  for (std::size_t i = n; i > 0;) {
    --i;
    const std::uint32_t prev = sizes[i];
    const std::uint32_t diff =
        prev > sizeBytes ? prev - sizeBytes : sizeBytes - prev;
    if (diff <= deltaMaxBytes) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

double sumF64(const double* xs, std::size_t n) {
  if (n == 0) return 0.0;
  if (n < kSequentialCutover) {
    double s = xs[0];
    for (std::size_t i = 1; i < n; ++i) s += xs[i];
    return s;
  }
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  double a0 = xs[0];
  double a1 = xs[1];
  double a2 = xs[2];
  double a3 = xs[3];
  for (std::size_t i = 4; i < n4; i += 4) {
    a0 += xs[i];
    a1 += xs[i + 1];
    a2 += xs[i + 2];
    a3 += xs[i + 3];
  }
  double s = (a0 + a2) + (a1 + a3);
  for (std::size_t i = n4; i < n; ++i) s += xs[i];
  return s;
}

MinMaxF64 minMaxF64(const double* xs, std::size_t n) {
  if (n == 0) return {};
  if (n < kSequentialCutover) {
    double mn = xs[0];
    double mx = xs[0];
    for (std::size_t i = 1; i < n; ++i) {
      mn = minOp(mn, xs[i]);
      mx = maxOp(mx, xs[i]);
    }
    return {mn, mx};
  }
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  double mn0 = xs[0];
  double mn1 = xs[1];
  double mn2 = xs[2];
  double mn3 = xs[3];
  double mx0 = mn0;
  double mx1 = mn1;
  double mx2 = mn2;
  double mx3 = mn3;
  for (std::size_t i = 4; i < n4; i += 4) {
    mn0 = minOp(mn0, xs[i]);
    mn1 = minOp(mn1, xs[i + 1]);
    mn2 = minOp(mn2, xs[i + 2]);
    mn3 = minOp(mn3, xs[i + 3]);
    mx0 = maxOp(mx0, xs[i]);
    mx1 = maxOp(mx1, xs[i + 1]);
    mx2 = maxOp(mx2, xs[i + 2]);
    mx3 = maxOp(mx3, xs[i + 3]);
  }
  double mn = minOp(minOp(mn0, mn2), minOp(mn1, mn3));
  double mx = maxOp(maxOp(mx0, mx2), maxOp(mx1, mx3));
  for (std::size_t i = n4; i < n; ++i) {
    mn = minOp(mn, xs[i]);
    mx = maxOp(mx, xs[i]);
  }
  return {mn, mx};
}

double centralMoment2F64(const double* xs, std::size_t n, double mu) {
  if (n == 0) return 0.0;
  if (n < kSequentialCutover) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = xs[i] - mu;
      s += d * d;
    }
    return s;
  }
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    const double d0 = xs[i] - mu;
    const double d1 = xs[i + 1] - mu;
    const double d2 = xs[i + 2] - mu;
    const double d3 = xs[i + 3] - mu;
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double s = (a0 + a2) + (a1 + a3);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = xs[i] - mu;
    s += d * d;
  }
  return s;
}

void iatMillisF64(const std::int64_t* arrivalNs, std::size_t n,
                  double* outMillis) {
  for (std::size_t i = 1; i < n; ++i) {
    outMillis[i - 1] =
        static_cast<double>(arrivalNs[i] - arrivalNs[i - 1]) / 1e6;
  }
}

void u32ToF64(const std::uint32_t* xs, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

}  // namespace ref

// ---------------------------------------------------------------------------
// x86-64 arms. SSE2 is the x86-64 baseline and compiles unconditionally;
// AVX2 bodies carry a function-level target attribute so this file builds
// without -mavx2 and the arm is only ever *called* after cpuid says yes.
// ---------------------------------------------------------------------------

#if defined(VCAQOE_SIMD_X86)

namespace sse2 {

/// Lane mask of |v - target| <= deltaMax over 4 uint32 lanes. SSE2 has no
/// unsigned compares, so both orderings use the sign-bias trick
/// (x ^ 0x80000000 maps unsigned order onto signed order).
inline int matchMask4(__m128i v, __m128i target, __m128i biasedDelta,
                      __m128i bias) {
  const __m128i vb = _mm_xor_si128(v, bias);
  const __m128i tb = _mm_xor_si128(target, bias);
  // diff = |v - target| via a blend of the two subtraction orders.
  const __m128i vGreater = _mm_cmpgt_epi32(vb, tb);
  const __m128i vMinusT = _mm_sub_epi32(v, target);
  const __m128i tMinusV = _mm_sub_epi32(target, v);
  const __m128i diff = _mm_or_si128(_mm_and_si128(vGreater, vMinusT),
                                    _mm_andnot_si128(vGreater, tMinusV));
  // match lanes = NOT (diff > deltaMax), unsigned.
  const __m128i over =
      _mm_cmpgt_epi32(_mm_xor_si128(diff, bias), biasedDelta);
  return _mm_movemask_ps(_mm_castsi128_ps(over)) ^ 0xF;
}

std::ptrdiff_t findLastMatchU32(const std::uint32_t* sizes, std::size_t n,
                                std::uint32_t sizeBytes,
                                std::uint32_t deltaMaxBytes) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i target = _mm_set1_epi32(static_cast<int>(sizeBytes));
  const __m128i biasedDelta = _mm_xor_si128(
      _mm_set1_epi32(static_cast<int>(deltaMaxBytes)), bias);
  std::size_t i = n;
  while (i >= 4) {
    i -= 4;
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sizes + i));
    const int mask = matchMask4(v, target, biasedDelta, bias);
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + (31 - __builtin_clz(
                                                        static_cast<unsigned>(
                                                            mask)));
    }
  }
  return ref::findLastMatchU32(sizes, i, sizeBytes, deltaMaxBytes);
}

double sumF64(const double* xs, std::size_t n) {
  if (n < kSequentialCutover) return ref::sumF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  __m128d accA = _mm_loadu_pd(xs);      // lanes {0, 1}
  __m128d accB = _mm_loadu_pd(xs + 2);  // lanes {2, 3}
  for (std::size_t i = 4; i < n4; i += 4) {
    accA = _mm_add_pd(accA, _mm_loadu_pd(xs + i));
    accB = _mm_add_pd(accB, _mm_loadu_pd(xs + i + 2));
  }
  const __m128d pair = _mm_add_pd(accA, accB);  // (a0+a2, a1+a3)
  double s = _mm_cvtsd_f64(pair) +
             _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (std::size_t i = n4; i < n; ++i) s += xs[i];
  return s;
}

MinMaxF64 minMaxF64(const double* xs, std::size_t n) {
  if (n < kSequentialCutover) return ref::minMaxF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  __m128d mnA = _mm_loadu_pd(xs);
  __m128d mnB = _mm_loadu_pd(xs + 2);
  __m128d mxA = mnA;
  __m128d mxB = mnB;
  for (std::size_t i = 4; i < n4; i += 4) {
    const __m128d a = _mm_loadu_pd(xs + i);
    const __m128d b = _mm_loadu_pd(xs + i + 2);
    mnA = _mm_min_pd(mnA, a);
    mnB = _mm_min_pd(mnB, b);
    mxA = _mm_max_pd(mxA, a);
    mxB = _mm_max_pd(mxB, b);
  }
  const __m128d mnPair = _mm_min_pd(mnA, mnB);
  const __m128d mxPair = _mm_max_pd(mxA, mxB);
  double mn = minOp(_mm_cvtsd_f64(mnPair),
                    _mm_cvtsd_f64(_mm_unpackhi_pd(mnPair, mnPair)));
  double mx = maxOp(_mm_cvtsd_f64(mxPair),
                    _mm_cvtsd_f64(_mm_unpackhi_pd(mxPair, mxPair)));
  for (std::size_t i = n4; i < n; ++i) {
    mn = minOp(mn, xs[i]);
    mx = maxOp(mx, xs[i]);
  }
  return {mn, mx};
}

double centralMoment2F64(const double* xs, std::size_t n, double mu) {
  if (n < kSequentialCutover) return ref::centralMoment2F64(xs, n, mu);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  const __m128d mean2 = _mm_set1_pd(mu);
  __m128d accA = _mm_setzero_pd();
  __m128d accB = _mm_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d dA = _mm_sub_pd(_mm_loadu_pd(xs + i), mean2);
    const __m128d dB = _mm_sub_pd(_mm_loadu_pd(xs + i + 2), mean2);
    accA = _mm_add_pd(accA, _mm_mul_pd(dA, dA));
    accB = _mm_add_pd(accB, _mm_mul_pd(dB, dB));
  }
  const __m128d pair = _mm_add_pd(accA, accB);
  double s = _mm_cvtsd_f64(pair) +
             _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (std::size_t i = n4; i < n; ++i) {
    const double d = xs[i] - mu;
    s += d * d;
  }
  return s;
}

}  // namespace sse2

namespace avx2 {

__attribute__((target("avx2"))) inline int matchMask8(
    __m256i v, __m256i target, __m256i deltaMax) {
  const __m256i hi = _mm256_max_epu32(v, target);
  const __m256i lo = _mm256_min_epu32(v, target);
  const __m256i diff = _mm256_sub_epi32(hi, lo);
  // diff <= deltaMax  <=>  min(diff, deltaMax) == diff (unsigned).
  const __m256i match =
      _mm256_cmpeq_epi32(_mm256_min_epu32(diff, deltaMax), diff);
  return _mm256_movemask_ps(_mm256_castsi256_ps(match));
}

__attribute__((target("avx2"))) std::ptrdiff_t findLastMatchU32(
    const std::uint32_t* sizes, std::size_t n, std::uint32_t sizeBytes,
    std::uint32_t deltaMaxBytes) {
  const __m256i target = _mm256_set1_epi32(static_cast<int>(sizeBytes));
  const __m256i deltaMax = _mm256_set1_epi32(static_cast<int>(deltaMaxBytes));
  std::size_t i = n;
  while (i >= 8) {
    i -= 8;
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sizes + i));
    const int mask = matchMask8(v, target, deltaMax);
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + (31 - __builtin_clz(
                                                        static_cast<unsigned>(
                                                            mask)));
    }
  }
  return ref::findLastMatchU32(sizes, i, sizeBytes, deltaMaxBytes);
}

__attribute__((target("avx2"))) double sumF64(const double* xs,
                                              std::size_t n) {
  if (n < kSequentialCutover) return ref::sumF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  __m256d acc = _mm256_loadu_pd(xs);  // lanes {0, 1, 2, 3}
  for (std::size_t i = 4; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  double s = _mm_cvtsd_f64(pair) +
             _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (std::size_t i = n4; i < n; ++i) s += xs[i];
  return s;
}

__attribute__((target("avx2"))) MinMaxF64 minMaxF64(const double* xs,
                                                    std::size_t n) {
  if (n < kSequentialCutover) return ref::minMaxF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  __m256d mnAcc = _mm256_loadu_pd(xs);
  __m256d mxAcc = mnAcc;
  for (std::size_t i = 4; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(xs + i);
    mnAcc = _mm256_min_pd(mnAcc, v);
    mxAcc = _mm256_max_pd(mxAcc, v);
  }
  const __m128d mnPair = _mm_min_pd(_mm256_castpd256_pd128(mnAcc),
                                    _mm256_extractf128_pd(mnAcc, 1));
  const __m128d mxPair = _mm_max_pd(_mm256_castpd256_pd128(mxAcc),
                                    _mm256_extractf128_pd(mxAcc, 1));
  double mn = minOp(_mm_cvtsd_f64(mnPair),
                    _mm_cvtsd_f64(_mm_unpackhi_pd(mnPair, mnPair)));
  double mx = maxOp(_mm_cvtsd_f64(mxPair),
                    _mm_cvtsd_f64(_mm_unpackhi_pd(mxPair, mxPair)));
  for (std::size_t i = n4; i < n; ++i) {
    mn = minOp(mn, xs[i]);
    mx = maxOp(mx, xs[i]);
  }
  return {mn, mx};
}

__attribute__((target("avx2"))) double centralMoment2F64(const double* xs,
                                                         std::size_t n,
                                                         double mu) {
  if (n < kSequentialCutover) return ref::centralMoment2F64(xs, n, mu);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  const __m256d mean4 = _mm256_set1_pd(mu);
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(xs + i), mean4);
    // Explicit mul + add (not FMA): the contract is the scalar mul/add.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  double s = _mm_cvtsd_f64(pair) +
             _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (std::size_t i = n4; i < n; ++i) {
    const double d = xs[i] - mu;
    s += d * d;
  }
  return s;
}

/// int64 -> double via the 2^52 mantissa trick, exact for 0 <= v < 2^52.
/// Out-of-range groups (a backwards or >52-day timestamp jump) fall back
/// to the scalar cast, so every lane matches `static_cast<double>` bitwise.
__attribute__((target("avx2"))) void iatMillisF64(
    const std::int64_t* arrivalNs, std::size_t n, double* outMillis) {
  if (n < 2) return;
  const std::size_t deltas = n - 1;
  const __m256d magicD = _mm256_set1_pd(4503599627370496.0);  // 2^52
  const __m256i magicI = _mm256_castpd_si256(magicD);
  const __m256d divisor = _mm256_set1_pd(1e6);
  const __m256i limit = _mm256_set1_epi64x((INT64_C(1) << 52) - 1);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= deltas; i += 4) {
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arrivalNs + i));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(arrivalNs + i + 1));
    const __m256i d = _mm256_sub_epi64(hi, lo);
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(zero, d),
                                        _mm256_cmpgt_epi64(d, limit));
    if (_mm256_testz_si256(bad, bad) == 0) {
      for (std::size_t j = i; j < i + 4; ++j) {
        outMillis[j] =
            static_cast<double>(arrivalNs[j + 1] - arrivalNs[j]) / 1e6;
      }
      continue;
    }
    const __m256d wide =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(d, magicI)),
                      magicD);
    _mm256_storeu_pd(outMillis + i, _mm256_div_pd(wide, divisor));
  }
  for (; i < deltas; ++i) {
    outMillis[i] = static_cast<double>(arrivalNs[i + 1] - arrivalNs[i]) / 1e6;
  }
}

/// uint32 -> double, exact via zero-extend + the 2^52 trick (a uint32 always
/// fits the 52-bit mantissa window).
__attribute__((target("avx2"))) void u32ToF64(const std::uint32_t* xs,
                                              std::size_t n, double* out) {
  const __m256d magicD = _mm256_set1_pd(4503599627370496.0);  // 2^52
  const __m256i magicI = _mm256_castpd_si256(magicD);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i narrow =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + i));
    const __m256i wide = _mm256_cvtepu32_epi64(narrow);
    _mm256_storeu_pd(
        out + i,
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(wide, magicI)),
                      magicD));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

}  // namespace avx2

#endif  // VCAQOE_SIMD_X86

// ---------------------------------------------------------------------------
// aarch64 NEON arm. Min/max use explicit compare+select (not FMIN/FMAX,
// whose NaN rule differs) so unordered compares behave exactly like the
// scalar reference / MINPD.
// ---------------------------------------------------------------------------

#if defined(VCAQOE_SIMD_NEON)

namespace neon {

inline float64x2_t minOp2(float64x2_t acc, float64x2_t x) {
  return vbslq_f64(vcltq_f64(acc, x), acc, x);
}

inline float64x2_t maxOp2(float64x2_t acc, float64x2_t x) {
  return vbslq_f64(vcgtq_f64(acc, x), acc, x);
}

std::ptrdiff_t findLastMatchU32(const std::uint32_t* sizes, std::size_t n,
                                std::uint32_t sizeBytes,
                                std::uint32_t deltaMaxBytes) {
  const uint32x4_t target = vdupq_n_u32(sizeBytes);
  const uint32x4_t deltaMax = vdupq_n_u32(deltaMaxBytes);
  std::size_t i = n;
  while (i >= 4) {
    i -= 4;
    const uint32x4_t v = vld1q_u32(sizes + i);
    const uint32x4_t match = vcleq_u32(vabdq_u32(v, target), deltaMax);
    // Narrow each 32-bit lane to 16 mask bits; a set lane shows up as a
    // nibble-of-ones block in the 64-bit view.
    const uint64_t bits = vget_lane_u64(
        vreinterpret_u64_u16(vshrn_n_u32(match, 16)), 0);
    if (bits != 0) {
      const int lane = (63 - __builtin_clzll(bits)) / 16;
      return static_cast<std::ptrdiff_t>(i) + lane;
    }
  }
  return ref::findLastMatchU32(sizes, i, sizeBytes, deltaMaxBytes);
}

double sumF64(const double* xs, std::size_t n) {
  if (n < kSequentialCutover) return ref::sumF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  float64x2_t accA = vld1q_f64(xs);      // lanes {0, 1}
  float64x2_t accB = vld1q_f64(xs + 2);  // lanes {2, 3}
  for (std::size_t i = 4; i < n4; i += 4) {
    accA = vaddq_f64(accA, vld1q_f64(xs + i));
    accB = vaddq_f64(accB, vld1q_f64(xs + i + 2));
  }
  const float64x2_t pair = vaddq_f64(accA, accB);
  double s = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (std::size_t i = n4; i < n; ++i) s += xs[i];
  return s;
}

MinMaxF64 minMaxF64(const double* xs, std::size_t n) {
  if (n < kSequentialCutover) return ref::minMaxF64(xs, n);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  float64x2_t mnA = vld1q_f64(xs);
  float64x2_t mnB = vld1q_f64(xs + 2);
  float64x2_t mxA = mnA;
  float64x2_t mxB = mnB;
  for (std::size_t i = 4; i < n4; i += 4) {
    const float64x2_t a = vld1q_f64(xs + i);
    const float64x2_t b = vld1q_f64(xs + i + 2);
    mnA = minOp2(mnA, a);
    mnB = minOp2(mnB, b);
    mxA = maxOp2(mxA, a);
    mxB = maxOp2(mxB, b);
  }
  const float64x2_t mnPair = minOp2(mnA, mnB);
  const float64x2_t mxPair = maxOp2(mxA, mxB);
  double mn = minOp(vgetq_lane_f64(mnPair, 0), vgetq_lane_f64(mnPair, 1));
  double mx = maxOp(vgetq_lane_f64(mxPair, 0), vgetq_lane_f64(mxPair, 1));
  for (std::size_t i = n4; i < n; ++i) {
    mn = minOp(mn, xs[i]);
    mx = maxOp(mx, xs[i]);
  }
  return {mn, mx};
}

double centralMoment2F64(const double* xs, std::size_t n, double mu) {
  if (n < kSequentialCutover) return ref::centralMoment2F64(xs, n, mu);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  const float64x2_t mean2 = vdupq_n_f64(mu);
  float64x2_t accA = vdupq_n_f64(0.0);
  float64x2_t accB = vdupq_n_f64(0.0);
  for (std::size_t i = 0; i < n4; i += 4) {
    const float64x2_t dA = vsubq_f64(vld1q_f64(xs + i), mean2);
    const float64x2_t dB = vsubq_f64(vld1q_f64(xs + i + 2), mean2);
    accA = vaddq_f64(accA, vmulq_f64(dA, dA));
    accB = vaddq_f64(accB, vmulq_f64(dB, dB));
  }
  const float64x2_t pair = vaddq_f64(accA, accB);
  double s = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = xs[i] - mu;
    s += d * d;
  }
  return s;
}

void iatMillisF64(const std::int64_t* arrivalNs, std::size_t n,
                  double* outMillis) {
  if (n < 2) return;
  const std::size_t deltas = n - 1;
  const float64x2_t divisor = vdupq_n_f64(1e6);
  std::size_t i = 0;
  for (; i + 2 <= deltas; i += 2) {
    const int64x2_t lo = vld1q_s64(arrivalNs + i);
    const int64x2_t hi = vld1q_s64(arrivalNs + i + 1);
    // vcvtq rounds to nearest, matching static_cast<double> bitwise.
    const float64x2_t wide = vcvtq_f64_s64(vsubq_s64(hi, lo));
    vst1q_f64(outMillis + i, vdivq_f64(wide, divisor));
  }
  for (; i < deltas; ++i) {
    outMillis[i] = static_cast<double>(arrivalNs[i + 1] - arrivalNs[i]) / 1e6;
  }
}

void u32ToF64(const std::uint32_t* xs, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t wide = vmovl_u32(vld1_u32(xs + i));
    vst1q_f64(out + i, vcvtq_f64_u64(wide));  // exact: uint32 fits 52 bits
  }
  for (; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

}  // namespace neon

#endif  // VCAQOE_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

std::ptrdiff_t findLastMatchU32(const std::uint32_t* sizes, std::size_t n,
                                std::uint32_t sizeBytes,
                                std::uint32_t deltaMaxBytes) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) {
    return avx2::findLastMatchU32(sizes, n, sizeBytes, deltaMaxBytes);
  }
  if (level == Level::kSse2) {
    return sse2::findLastMatchU32(sizes, n, sizeBytes, deltaMaxBytes);
  }
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) {
    return neon::findLastMatchU32(sizes, n, sizeBytes, deltaMaxBytes);
  }
#else
  (void)level;
#endif
  return ref::findLastMatchU32(sizes, n, sizeBytes, deltaMaxBytes);
}

double sumF64(const double* xs, std::size_t n) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) return avx2::sumF64(xs, n);
  if (level == Level::kSse2) return sse2::sumF64(xs, n);
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) return neon::sumF64(xs, n);
#else
  (void)level;
#endif
  return ref::sumF64(xs, n);
}

MinMaxF64 minMaxF64(const double* xs, std::size_t n) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) return avx2::minMaxF64(xs, n);
  if (level == Level::kSse2) return sse2::minMaxF64(xs, n);
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) return neon::minMaxF64(xs, n);
#else
  (void)level;
#endif
  return ref::minMaxF64(xs, n);
}

double centralMoment2F64(const double* xs, std::size_t n, double mu) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) return avx2::centralMoment2F64(xs, n, mu);
  if (level == Level::kSse2) return sse2::centralMoment2F64(xs, n, mu);
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) return neon::centralMoment2F64(xs, n, mu);
#else
  (void)level;
#endif
  return ref::centralMoment2F64(xs, n, mu);
}

void iatMillisF64(const std::int64_t* arrivalNs, std::size_t n,
                  double* outMillis) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) {
    avx2::iatMillisF64(arrivalNs, n, outMillis);
    return;
  }
  // SSE2 lacks the 64-bit compares the range guard needs; scalar is the
  // honest arm there.
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) {
    neon::iatMillisF64(arrivalNs, n, outMillis);
    return;
  }
#else
  (void)level;
#endif
  ref::iatMillisF64(arrivalNs, n, outMillis);
}

void u32ToF64(const std::uint32_t* xs, std::size_t n, double* out) {
  const Level level = activeLevel();
#if defined(VCAQOE_SIMD_X86)
  if (level == Level::kAvx2) {
    avx2::u32ToF64(xs, n, out);
    return;
  }
  // Zero-extending u32 loads predate SSE4.1; scalar converts exactly anyway.
#elif defined(VCAQOE_SIMD_NEON)
  if (level == Level::kNeon) {
    neon::u32ToF64(xs, n, out);
    return;
  }
#else
  (void)level;
#endif
  ref::u32ToF64(xs, n, out);
}

}  // namespace vcaqoe::common::simd
