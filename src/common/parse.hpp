#pragma once

#include <charconv>
#include <cmath>
#include <optional>
#include <string_view>

/// Strict numeric parsing for CLI flags and environment knobs.
///
/// `std::atoi`/`std::atof` turn garbage into silent zeros — `--workers abc`
/// became 0 workers and `VCAQOE_BENCH_TREES=forty` trained a 0-tree forest.
/// These helpers parse with `std::from_chars` and succeed only when the
/// whole input is consumed and the value is in range, so callers can tell
/// "0" from "not a number" and reject the latter loudly.
namespace vcaqoe::common {

/// Full-consume integer parse (decimal, optional leading '-'; no leading
/// whitespace, no trailing characters, no overflow). nullopt on anything
/// else.
inline std::optional<long long> parseInt(std::string_view text) {
  long long value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// Full-consume finite-double parse (decimal or scientific; no leading
/// whitespace or '+', no trailing characters, no "inf"/"nan", no
/// overflow-to-infinity). nullopt on anything else.
inline std::optional<double> parseDouble(std::string_view text) {
  double value = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size() ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace vcaqoe::common
