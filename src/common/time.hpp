#pragma once

#include <cstdint>

/// Time utilities shared by every subsystem.
///
/// All simulation and trace timestamps are integer nanoseconds since an
/// arbitrary epoch (usually call start). Integer time keeps packet ordering
/// and window bucketing exact and makes every experiment bit-reproducible.
namespace vcaqoe::common {

/// Absolute time in nanoseconds since the trace epoch.
using TimeNs = std::int64_t;

/// A span of time in nanoseconds.
using DurationNs = std::int64_t;

inline constexpr DurationNs kNanosPerMicro = 1'000;
inline constexpr DurationNs kNanosPerMilli = 1'000'000;
inline constexpr DurationNs kNanosPerSecond = 1'000'000'000;

/// Converts whole (or fractional) seconds to nanoseconds.
constexpr DurationNs secondsToNs(double seconds) {
  return static_cast<DurationNs>(seconds * static_cast<double>(kNanosPerSecond));
}

/// Converts milliseconds to nanoseconds.
constexpr DurationNs millisToNs(double millis) {
  return static_cast<DurationNs>(millis * static_cast<double>(kNanosPerMilli));
}

/// Converts microseconds to nanoseconds.
constexpr DurationNs microsToNs(double micros) {
  return static_cast<DurationNs>(micros * static_cast<double>(kNanosPerMicro));
}

/// Converts nanoseconds to fractional seconds.
constexpr double nsToSeconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSecond);
}

/// Converts nanoseconds to fractional milliseconds.
constexpr double nsToMillis(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerMilli);
}

/// Index of the one-second bucket containing `t` (floor semantics; negative
/// times land in negative buckets).
constexpr std::int64_t secondIndex(TimeNs t) {
  std::int64_t q = t / kNanosPerSecond;
  if (t < 0 && t % kNanosPerSecond != 0) --q;
  return q;
}

/// Index of the `windowNs`-sized bucket containing `t`.
constexpr std::int64_t windowIndex(TimeNs t, DurationNs windowNs) {
  std::int64_t q = t / windowNs;
  if (t < 0 && t % windowNs != 0) --q;
  return q;
}

}  // namespace vcaqoe::common
