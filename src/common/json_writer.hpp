#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

/// Dependency-free JSON document building, serialization, and (strict)
/// parsing.
///
/// The benchmark trajectory (`BENCH_*.json`, see bench/bench_report.hpp)
/// needs machine-readable output with exact numeric round-trips, and the
/// monitord stats endpoint on the roadmap will need the same; neither
/// justifies vendoring a JSON library. `JsonValue` is a small ordered DOM:
/// objects keep insertion order (so emitted files diff cleanly across
/// runs), numbers remember whether they were integers (counters serialize
/// exactly, doubles serialize with the shortest representation that parses
/// back bit-identical), and `parse` is a strict reader used by the schema
/// checks and the golden tests — no trailing garbage, no NaN/Infinity, no
/// comments.
///
/// Child storage is deque-backed, so references returned by `set`/`push`
/// stay valid while more children are appended (replacing an existing key
/// reuses its slot). That is what lets callers build a scenario in place:
///
///   JsonValue doc = JsonValue::object();
///   auto& rows = doc.set("scenarios", JsonValue::array());
///   auto& row = rows.push(JsonValue::object());
///   row.set("name", "flows_64");
///   row.set("pkts_per_s", 5.27e6);
namespace vcaqoe::common {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}
  JsonValue(std::int64_t value) : type_(Type::kInt), int_(value) {}
  JsonValue(int value) : JsonValue(static_cast<std::int64_t>(value)) {}
  JsonValue(unsigned value) : JsonValue(static_cast<std::int64_t>(value)) {}
  JsonValue(std::uint64_t value);  ///< becomes kDouble above INT64_MAX
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)
      : type_(Type::kString), string_(value) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}

  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool isString() const { return type_ == Type::kString; }
  bool isObject() const { return type_ == Type::kObject; }
  bool isArray() const { return type_ == Type::kArray; }

  bool asBool() const { return bool_; }
  /// Numeric value as double (exact for kInt up to 2^53).
  double asDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  std::int64_t asInt() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  const std::string& asString() const { return string_; }

  // ---- object interface (no-ops / empty on other types)

  /// Inserts or replaces `key`; returns the stored value so nested
  /// objects/arrays can be built in place. Insertion order is preserved.
  JsonValue& set(std::string key, JsonValue value);
  /// The value under `key`, or nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  // ---- array interface

  /// Appends and returns the stored element (stable reference, see above).
  JsonValue& push(JsonValue value);

  /// Object/array child count (0 for scalars).
  std::size_t size() const;
  /// Array element access; `index` must be < size().
  const JsonValue& at(std::size_t index) const { return items_[index]; }
  /// Object entry access in insertion order; `index` must be < size().
  const std::pair<std::string, JsonValue>& entry(std::size_t index) const {
    return members_[index];
  }

  // ---- serialization / parsing

  /// Serializes the document. `indent > 0` pretty-prints with that many
  /// spaces per level; `indent == 0` emits the compact form. Non-finite
  /// doubles serialize as `null` (JSON has no NaN/Infinity).
  std::string dump(int indent = 2) const;

  /// Strict parse of exactly one JSON document (trailing non-whitespace is
  /// an error). On failure returns nullopt and, when `error` is non-null,
  /// stores a message with the byte offset.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Deques so child references survive appends (documented guarantee).
  std::deque<std::pair<std::string, JsonValue>> members_;  // objects
  std::deque<JsonValue> items_;                            // arrays
};

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included): `"`, `\`, and control characters; everything else (including
/// UTF-8 multibyte sequences) passes through.
std::string jsonEscape(std::string_view text);

/// Shortest decimal representation of `value` that strtod parses back to
/// the same bits ("1.5", not "1.5000000000000000"). Non-finite values
/// yield "null". Always locale-independent, always contains a '.' or an
/// exponent so readers keep the double-ness.
std::string jsonNumber(double value);

}  // namespace vcaqoe::common
