#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// Minimal fixed-width text-table renderer used by the bench binaries to
/// print paper-style tables (confusion matrices, MAE grids, ...).
namespace vcaqoe::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats a fraction as "12.34%".
  static std::string pct(double fraction, int precision = 2);

  /// Renders with aligned columns; first column left-aligned, rest right.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

/// Prints a section banner used to delimit experiments in bench output.
std::string banner(const std::string& title);

}  // namespace vcaqoe::common
