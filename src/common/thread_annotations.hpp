#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang thread-safety analysis wrappers.
///
/// The engine is genuinely concurrent (sharded workers, SPSC rings, a
/// shared lazily-loading ModelRegistry), and the only dynamic check CI can
/// run is TSan — which needs the buggy interleaving to actually happen.
/// Clang's `-Wthread-safety` closes the other half: lock-protected state is
/// annotated `GUARDED_BY` its lock, and any access outside the lock is a
/// *compile error* on every clang build (the warning rides
/// `vcaqoe_warnings`, promoted to an error in the TSan CI job).
///
/// The macros expand to nothing on compilers without the attributes (GCC,
/// MSVC), so the annotated code builds everywhere; only clang enforces.
/// Use the `Mutex`/`SharedMutex` wrappers below instead of the std types
/// for any new lock — the std types carry no capability annotations on
/// libstdc++, so the analysis cannot see them.
///
/// Thread *confinement* (state owned by exactly one thread, e.g. the
/// engine dispatcher's flow table or a shard worker's estimators) has no
/// annotation — the analysis only models locks. Confined state is
/// documented at the member and covered dynamically by the TSan stress
/// suites.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define VCAQOE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(VCAQOE_THREAD_ANNOTATION)
#define VCAQOE_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// A type that acts as a lock (applies to the wrapper classes below).
#define CAPABILITY(x) VCAQOE_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires in its constructor and releases in its destructor.
#define SCOPED_CAPABILITY VCAQOE_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the given lock.
#define GUARDED_BY(x) VCAQOE_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by the given lock.
#define PT_GUARDED_BY(x) VCAQOE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function precondition: caller holds the lock(s) exclusively.
#define REQUIRES(...) \
  VCAQOE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function precondition: caller holds the lock(s) at least shared.
#define REQUIRES_SHARED(...) \
  VCAQOE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the lock(s) and returns holding them.
#define ACQUIRE(...) VCAQOE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VCAQOE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the lock(s) the caller held on entry.
#define RELEASE(...) VCAQOE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VCAQOE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the lock only when returning the given value.
#define TRY_ACQUIRE(...) \
  VCAQOE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called *without* the lock held (deadlock guard).
#define EXCLUDES(...) VCAQOE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given lock.
#define RETURN_CAPABILITY(x) VCAQOE_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — document why at every use.
#define NO_THREAD_SAFETY_ANALYSIS \
  VCAQOE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vcaqoe::common {

/// `std::mutex` with a thread-safety capability. BasicLockable, so it works
/// directly with `CondVar` below and with std scoped helpers (which the
/// analysis cannot see — prefer `MutexLock`).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped exclusive lock over `Mutex`, visible to the analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// `std::shared_mutex` with a thread-safety capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive (writer) lock over `SharedMutex`.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock over `SharedMutex`.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable for `Mutex` (`std::condition_variable_any`, which
/// takes any BasicLockable — the annotated Mutex qualifies directly, no
/// `unique_lock` adapter that would hide the lock from the analysis).
/// Callers loop on their predicate with the mutex held, exactly like the
/// raw std API:
///
///   MutexLock lock(mutex);
///   while (!ready) cv.wait(mutex);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
  void wait(Mutex& mutex) REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vcaqoe::common
