#pragma once

#include <stdexcept>
#include <thread>

/// Load measurement / concurrency helpers shared by the engine's shard
/// load accounting and every module that sizes a thread pool.
namespace vcaqoe::common {

/// `std::thread::hardware_concurrency()` with the standard-permitted 0
/// ("not computable") mapped to `fallback`. Every pool-sizing call site
/// goes through this one helper so the degenerate platform behaves the
/// same everywhere instead of five slightly different guards.
inline unsigned hardwareThreadsOr(unsigned fallback) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : fallback;
}

/// Exponentially weighted moving average over an irregular sample stream —
/// the shard-load smoother (per-dispatch-batch processing time). First
/// sample seeds the average; after that `value = alpha*sample +
/// (1-alpha)*value`. Plain (non-atomic) by design: the owner updates it on
/// its own thread and publishes the double's bits through an atomic when
/// another thread needs to read it.
class LoadEwma {
 public:
  /// Throws std::invalid_argument unless 0 < alpha <= 1.
  explicit LoadEwma(double alpha = 0.2) : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
      throw std::invalid_argument("LoadEwma: alpha must be in (0, 1]");
    }
  }

  void update(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
      return;
    }
    value_ = alpha_ * sample + (1.0 - alpha_) * value_;
  }

  /// 0.0 until the first sample.
  double value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace vcaqoe::common
