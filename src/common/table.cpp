#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace vcaqoe::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "| " : " ");
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      } else {
        os << std::right << std::setw(static_cast<int>(width[c])) << cell;
      }
      os << " |";
    }
    os << '\n';
  };

  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

std::string banner(const std::string& title) {
  std::string line(title.size() + 8, '=');
  return line + "\n==  " + title + "  ==\n" + line + "\n";
}

}  // namespace vcaqoe::common
