#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Descriptive statistics shared by the feature extractor, the evaluation
/// harness, and the bench reporters.
namespace vcaqoe::common {

/// The five order/moment statistics the paper computes over packet sizes and
/// inter-arrival times (Table 1).
struct FiveNumber {
  double mean = 0.0;
  double stdev = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes mean of `xs`; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than two samples.
double sampleStdev(std::span<const double> xs);

/// Population standard deviation (n denominator); 0 for an empty span.
double populationStdev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. 0 for an empty span.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// All five statistics in one pass (plus one sort).
FiveNumber fiveNumber(std::span<const double> xs);

/// Streaming mean/variance/min/max via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than two samples.
  double variance() const;
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF evaluation helper used by the figure benches: returns the
/// fraction of samples <= x.
double empiricalCdf(std::span<const double> sortedXs, double x);

/// Mean absolute error between predictions and truth (sizes must match).
double meanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> truth);

/// Mean relative absolute error: mean(|pred - truth| / truth) over samples
/// with truth != 0 (the paper's MRAE for bitrate).
double meanRelativeAbsoluteError(std::span<const double> predicted,
                                 std::span<const double> truth);

/// Fraction of samples with |pred - truth| <= tolerance (e.g. "within 2 FPS").
double fractionWithinAbsolute(std::span<const double> predicted,
                              std::span<const double> truth, double tolerance);

/// Fraction of samples with |pred - truth| <= frac * |truth| (e.g. "within
/// 25% of ground truth bitrate").
double fractionWithinRelative(std::span<const double> predicted,
                              std::span<const double> truth, double frac);

}  // namespace vcaqoe::common
