#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace vcaqoe::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return simd::sumF64(xs.data(), xs.size()) / static_cast<double>(xs.size());
}

namespace {
double centralMoment2(std::span<const double> xs, double mu) {
  return simd::centralMoment2F64(xs.data(), xs.size(), mu);
}
}  // namespace

double sampleStdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  return std::sqrt(centralMoment2(xs, mu) / static_cast<double>(xs.size() - 1));
}

double populationStdev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double mu = mean(xs);
  return std::sqrt(centralMoment2(xs, mu) / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

FiveNumber fiveNumber(std::span<const double> xs) {
  FiveNumber f;
  if (xs.empty()) return f;
  f.mean = mean(xs);
  f.stdev = sampleStdev(xs);
  f.median = median(xs);
  const auto [lo, hi] = simd::minMaxF64(xs.data(), xs.size());
  f.min = lo;
  f.max = hi;
  return f;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double empiricalCdf(std::span<const double> sortedXs, double x) {
  if (sortedXs.empty()) return 0.0;
  const auto it = std::upper_bound(sortedXs.begin(), sortedXs.end(), x);
  return static_cast<double>(it - sortedXs.begin()) /
         static_cast<double>(sortedXs.size());
}

namespace {
void requireSameSize(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("prediction/truth size mismatch");
  }
}
}  // namespace

double meanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> truth) {
  requireSameSize(predicted, truth);
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    s += std::abs(predicted[i] - truth[i]);
  }
  return s / static_cast<double>(predicted.size());
}

double meanRelativeAbsoluteError(std::span<const double> predicted,
                                 std::span<const double> truth) {
  requireSameSize(predicted, truth);
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] == 0.0) continue;
    s += std::abs(predicted[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

double fractionWithinAbsolute(std::span<const double> predicted,
                              std::span<const double> truth, double tolerance) {
  requireSameSize(predicted, truth);
  if (predicted.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::abs(predicted[i] - truth[i]) <= tolerance) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

double fractionWithinRelative(std::span<const double> predicted,
                              std::span<const double> truth, double frac) {
  requireSameSize(predicted, truth);
  if (predicted.empty()) return 0.0;
  std::size_t hit = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] == 0.0) continue;
    ++n;
    if (std::abs(predicted[i] - truth[i]) <= frac * std::abs(truth[i])) ++hit;
  }
  return n ? static_cast<double>(hit) / static_cast<double>(n) : 0.0;
}

}  // namespace vcaqoe::common
