#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

/// Deterministic random-number facade.
///
/// Every stochastic component takes an explicit `Rng` (or a seed) so that
/// datasets, network conditions, and model training are reproducible run to
/// run. Never use global random state.
namespace vcaqoe::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stdev) {
    if (stdev <= 0.0) return mean;
    std::normal_distribution<double> d(mean, stdev);
    return d(engine_);
  }

  /// Gaussian clamped to [lo, hi].
  double truncatedNormal(double mean, double stdev, double lo, double hi) {
    return std::clamp(normal(mean, stdev), lo, hi);
  }

  /// True with probability p (p outside [0,1] is clamped).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Pareto-like heavy-tailed positive sample with given scale and shape.
  double pareto(double scale, double shape) {
    double u = uniform(1e-12, 1.0);
    return scale / std::pow(u, 1.0 / shape);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weightedIndex(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derives an independent child generator; use to give each sub-component
  /// its own stream so adding draws in one place does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vcaqoe::common
