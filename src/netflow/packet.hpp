#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"

/// Wire-level packet observations.
///
/// A `Packet` is what a passive monitoring point at an access node records
/// for one UDP datagram of a VCA session: arrival time, UDP payload size, and
/// (optionally) the first few payload bytes. The paper's IP/UDP methods use
/// only `arrivalNs` and `sizeBytes`; the RTP baselines additionally parse the
/// RTP header out of `head`.
namespace vcaqoe::netflow {

/// Maximum number of UDP payload prefix bytes captured per packet. 20 bytes
/// is enough for the fixed 12-byte RTP header plus margin, mirroring a
/// monitoring system with a small snap length.
inline constexpr std::size_t kHeadCapacity = 20;

/// UDP 5-tuple (protocol implied) identifying a flow in a trace.
struct FlowKey {
  std::uint32_t srcIp = 0;
  std::uint32_t dstIp = 0;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Hash functor for `FlowKey` (splitmix64 finalizer over the packed
/// 5-tuple). One definition shared by the engine's `FlowTable`, the capture
/// reader's flow maps, and any other per-flow container.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept;
};

/// One observed UDP datagram.
struct Packet {
  /// Arrival time at the observation point (receiver side), ns since epoch.
  common::TimeNs arrivalNs = 0;
  /// Sender departure time; simulation ground truth, 0 when read from pcap.
  common::TimeNs departureNs = 0;
  /// UDP payload length in bytes (excludes IP/UDP headers; includes the RTP
  /// header when the payload is RTP). This is the packet "size" every method
  /// in the paper operates on.
  std::uint32_t sizeBytes = 0;
  /// Number of valid bytes in `head`.
  std::uint8_t headLen = 0;
  /// First `headLen` bytes of the UDP payload.
  std::array<std::uint8_t, kHeadCapacity> head{};

  /// The captured payload prefix as a span.
  std::span<const std::uint8_t> headBytes() const {
    return {head.data(), headLen};
  }

  /// Copies up to kHeadCapacity bytes of `payloadPrefix` into `head`.
  void setHead(std::span<const std::uint8_t> payloadPrefix);
};

/// A receiver-side packet trace in arrival order (the unit the estimators
/// consume; the paper calls this "a single VCA session").
using PacketTrace = std::vector<Packet>;

/// Returns true if the trace is sorted by arrival time (stable order).
bool isArrivalOrdered(const PacketTrace& trace);

/// Stable-sorts a trace by arrival time.
void sortByArrival(PacketTrace& trace);

}  // namespace vcaqoe::netflow
