#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

/// Network-byte-order (big-endian) serialization primitives used by the
/// IPv4/UDP/RTP codecs and the pcap reader/writer.
namespace vcaqoe::netflow {

/// Appends big-endian encoded integers to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads big-endian encoded integers from a byte buffer with bounds checks.
/// Out-of-range reads throw std::out_of_range (malformed capture input is an
/// error the caller must surface, not UB).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    require(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw std::out_of_range("ByteReader: truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// RFC 1071 Internet checksum over `data` (used by the IPv4 header codec).
std::uint16_t internetChecksum(std::span<const std::uint8_t> data);

}  // namespace vcaqoe::netflow
