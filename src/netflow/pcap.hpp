#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netflow/ip.hpp"
#include "netflow/packet.hpp"

/// Classic-pcap (libpcap) capture file reader/writer.
///
/// Files are written with the nanosecond-resolution magic (0xA1B23C4D) and
/// LINKTYPE_RAW (101, raw IPv4) so timestamps round-trip exactly. A small
/// snap length is used deliberately: the monitoring model of the paper only
/// needs IP/UDP headers plus at most the 12-byte RTP prefix.
namespace vcaqoe::netflow {

inline constexpr std::uint32_t kPcapMagicNano = 0xA1B23C4D;
inline constexpr std::uint32_t kPcapMagicMicro = 0xA1B2C3D4;
inline constexpr std::uint32_t kLinktypeRawIpv4 = 101;

/// One record as stored in a capture: the flow it belongs to plus the packet
/// observation derived from the headers.
struct PcapRecord {
  FlowKey flow;
  Packet packet;
};

/// Serializes packets into an in-memory pcap byte stream.
class PcapWriter {
 public:
  /// `snaplen` bounds the stored bytes per packet (link-layer onwards).
  explicit PcapWriter(std::uint32_t snaplen = kIpv4HeaderSize +
                                              kUdpHeaderSize + kHeadCapacity);

  /// Appends one UDP datagram. Payload bytes beyond `packet.headLen` are not
  /// available and are captured as a truncated record (caplen < origlen),
  /// exactly like a snap-length-limited real capture.
  void write(const FlowKey& flow, const Packet& packet);

  /// The complete file contents (global header + records so far).
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

  /// Writes the buffer to a file. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::uint32_t snaplen_;
  std::vector<std::uint8_t> buffer_;
};

/// Parses an in-memory pcap byte stream. Throws std::runtime_error on
/// malformed global/record headers; skips non-IPv4/UDP records.
std::vector<PcapRecord> parsePcap(std::span<const std::uint8_t> data);

/// Loads a capture file from disk. Throws std::runtime_error on I/O failure.
std::vector<PcapRecord> loadPcap(const std::string& path);

/// Convenience: extracts only the packets of the given flow, in file order.
PacketTrace packetsForFlow(const std::vector<PcapRecord>& records,
                           const FlowKey& flow);

/// Convenience: the flow with the most packets in the capture (a VCA media
/// flow dominates its session's traffic).
FlowKey dominantFlow(const std::vector<PcapRecord>& records);

}  // namespace vcaqoe::netflow
