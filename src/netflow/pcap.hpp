#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "netflow/ip.hpp"
#include "netflow/packet.hpp"

/// Classic-pcap (libpcap) capture file reader/writer.
///
/// Files are written with the nanosecond-resolution magic (0xA1B23C4D) and
/// LINKTYPE_RAW (101, raw IPv4) so timestamps round-trip exactly. A small
/// snap length is used deliberately: the monitoring model of the paper only
/// needs IP/UDP headers plus at most the 12-byte RTP prefix.
///
/// Parsing is deliberately forgiving at the record level: a capture taken at
/// an ISP vantage point contains truncated tails (capture stopped mid-write),
/// non-UDP traffic, and occasionally corrupt headers. A malformed *record*
/// is skipped and counted in `PcapParseStats`, never fatal — only a malformed
/// *file* (bad magic, unsupported linktype, short global header) throws.
namespace vcaqoe::netflow {

inline constexpr std::uint32_t kPcapMagicNano = 0xA1B23C4D;
inline constexpr std::uint32_t kPcapMagicMicro = 0xA1B2C3D4;
inline constexpr std::uint32_t kLinktypeRawIpv4 = 101;
inline constexpr std::size_t kPcapGlobalHeaderSize = 24;
inline constexpr std::size_t kPcapRecordHeaderSize = 16;

/// One record as stored in a capture: the flow it belongs to plus the packet
/// observation derived from the headers.
struct PcapRecord {
  FlowKey flow;
  Packet packet;
};

/// What a parse pass accepted and skipped. Skips are silent per record (one
/// bad record must not discard a multi-hour capture) but observable here.
struct PcapParseStats {
  /// UDP records decoded and handed to the caller.
  std::uint64_t recordsYielded = 0;
  /// Skipped: not IPv4/UDP, or the IP/UDP headers did not decode.
  std::uint64_t skippedNonUdp = 0;
  /// Skipped: the UDP length field was below the 8-byte header size (would
  /// otherwise underflow into a ~4 GB payload size) or larger than the
  /// checksum-verified IP payload (would inflate it up to ~65 KB).
  std::uint64_t skippedBadUdpLength = 0;
  /// Timestamps whose fractional part was >= one second and was saturated to
  /// keep `arrivalNs` monotonic-safe.
  std::uint64_t clampedTimestamps = 0;
  /// The byte stream ended mid-record (or a record claimed more bytes than
  /// remain). Parsing stops there; records before the cut are kept.
  std::uint64_t truncatedRecords = 0;
};

/// Serializes packets into an in-memory pcap byte stream.
class PcapWriter {
 public:
  /// `snaplen` bounds the stored bytes per packet (link-layer onwards).
  explicit PcapWriter(std::uint32_t snaplen = kIpv4HeaderSize +
                                              kUdpHeaderSize + kHeadCapacity);

  /// Appends one UDP datagram. Payload bytes beyond `packet.headLen` are not
  /// available and are captured as a truncated record (caplen < origlen),
  /// exactly like a snap-length-limited real capture.
  ///
  /// Throws std::invalid_argument when `packet.arrivalNs` does not fit the
  /// format's unsigned 32-bit seconds field (before 1970 or past 2106):
  /// silently truncating would round-trip to a different timestamp.
  void write(const FlowKey& flow, const Packet& packet);

  /// The complete file contents (global header + records so far).
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

  /// Writes the buffer to a file. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::uint32_t snaplen_;
  std::vector<std::uint8_t> buffer_;
};

/// Incremental pull parser over an in-memory pcap byte stream. The global
/// header is validated on construction (throws std::runtime_error on bad
/// magic, short header, or unsupported linktype); `next()` then yields one
/// UDP record at a time, skipping malformed records per `PcapParseStats`.
class PcapReader {
 public:
  explicit PcapReader(std::span<const std::uint8_t> data);

  /// The next UDP record, or nullopt at end of stream.
  std::optional<PcapRecord> next();

  const PcapParseStats& stats() const { return stats_; }
  bool nanosecondResolution() const { return nano_; }
  bool byteSwapped() const { return swap_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = kPcapGlobalHeaderSize;
  bool swap_ = false;
  bool nano_ = false;
  bool done_ = false;
  PcapParseStats stats_;
};

/// Streams records straight from a capture file with an O(record) buffer —
/// a multi-GB capture never needs to be materialized in memory. Same
/// validation and skip semantics as `PcapReader`.
class PcapFileReader {
 public:
  /// Throws std::runtime_error when the file cannot be opened or its global
  /// header is malformed.
  explicit PcapFileReader(const std::string& path);

  /// The next UDP record, or nullopt at end of file.
  std::optional<PcapRecord> next();

  const PcapParseStats& stats() const { return stats_; }
  bool nanosecondResolution() const { return nano_; }
  bool byteSwapped() const { return swap_; }

 private:
  std::ifstream in_;
  bool swap_ = false;
  bool nano_ = false;
  bool done_ = false;
  std::vector<std::uint8_t> wire_;  // per-record scratch, reused
  PcapParseStats stats_;
};

/// Parses an in-memory pcap byte stream into a vector (convenience wrapper
/// over `PcapReader` for small captures; prefer the readers for streaming).
/// Throws std::runtime_error on a malformed global header; malformed records
/// are skipped and counted in `*stats` when provided.
std::vector<PcapRecord> parsePcap(std::span<const std::uint8_t> data,
                                  PcapParseStats* stats = nullptr);

/// Loads a capture file from disk (streamed, then collected). Throws
/// std::runtime_error on I/O failure or a malformed global header.
std::vector<PcapRecord> loadPcap(const std::string& path,
                                 PcapParseStats* stats = nullptr);

/// Convenience: extracts only the packets of the given flow, in file order.
PacketTrace packetsForFlow(const std::vector<PcapRecord>& records,
                           const FlowKey& flow);

/// Convenience: the flow with the most packets in the capture (a VCA media
/// flow dominates its session's traffic). Ties break to the first-seen flow,
/// so the result is a deterministic function of record order.
FlowKey dominantFlow(const std::vector<PcapRecord>& records);

}  // namespace vcaqoe::netflow
