#include "netflow/packet.hpp"

#include <algorithm>

namespace vcaqoe::netflow {

namespace {

/// splitmix64 finalizer — cheap, well-distributed mixing for the 5-tuple.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  const std::uint64_t ips =
      (static_cast<std::uint64_t>(key.srcIp) << 32) | key.dstIp;
  const std::uint64_t ports =
      (static_cast<std::uint64_t>(key.srcPort) << 16) | key.dstPort;
  return static_cast<std::size_t>(mix64(mix64(ips) ^ ports));
}

void Packet::setHead(std::span<const std::uint8_t> payloadPrefix) {
  headLen = static_cast<std::uint8_t>(
      std::min(payloadPrefix.size(), kHeadCapacity));
  std::copy_n(payloadPrefix.begin(), headLen, head.begin());
}

bool isArrivalOrdered(const PacketTrace& trace) {
  return std::is_sorted(trace.begin(), trace.end(),
                        [](const Packet& a, const Packet& b) {
                          return a.arrivalNs < b.arrivalNs;
                        });
}

void sortByArrival(PacketTrace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.arrivalNs < b.arrivalNs;
                   });
}

}  // namespace vcaqoe::netflow
