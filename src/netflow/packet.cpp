#include "netflow/packet.hpp"

#include <algorithm>

namespace vcaqoe::netflow {

void Packet::setHead(std::span<const std::uint8_t> payloadPrefix) {
  headLen = static_cast<std::uint8_t>(
      std::min(payloadPrefix.size(), kHeadCapacity));
  std::copy_n(payloadPrefix.begin(), headLen, head.begin());
}

bool isArrivalOrdered(const PacketTrace& trace) {
  return std::is_sorted(trace.begin(), trace.end(),
                        [](const Packet& a, const Packet& b) {
                          return a.arrivalNs < b.arrivalNs;
                        });
}

void sortByArrival(PacketTrace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.arrivalNs < b.arrivalNs;
                   });
}

}  // namespace vcaqoe::netflow
