#include "netflow/pcap.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "netflow/bytes.hpp"

namespace vcaqoe::netflow {

namespace {

// pcap headers are in the writer's native order; we always emit little-endian
// and accept either on read.

void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t u32At(const std::uint8_t* p, bool swap) {
  if (swap) {
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
  }
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

struct PcapFormat {
  bool swap = false;
  bool nano = false;
};

/// Validates the 24-byte global header; throws on anything this reader
/// cannot interpret (a wrong magic means the rest of the framing is noise).
PcapFormat parseGlobalHeader(std::span<const std::uint8_t> data) {
  if (data.size() < kPcapGlobalHeaderSize) {
    throw std::runtime_error("pcap: file too short");
  }
  PcapFormat format;
  const std::uint32_t magicLe = u32At(data.data(), /*swap=*/false);
  if (magicLe == kPcapMagicNano) {
    format.nano = true;
  } else if (magicLe == kPcapMagicMicro) {
    format.nano = false;
  } else {
    const std::uint32_t magicBe = __builtin_bswap32(magicLe);
    if (magicBe == kPcapMagicNano) {
      format.nano = true;
      format.swap = true;
    } else if (magicBe == kPcapMagicMicro) {
      format.swap = true;
    } else {
      throw std::runtime_error("pcap: bad magic");
    }
  }
  const std::uint32_t linktype = u32At(data.data() + 20, format.swap);
  if (linktype != kLinktypeRawIpv4) {
    throw std::runtime_error("pcap: unsupported linktype " +
                             std::to_string(linktype));
  }
  return format;
}

struct RecordHeader {
  std::uint32_t tsSec = 0;
  std::uint32_t tsFrac = 0;
  std::uint32_t capLen = 0;
  std::uint32_t origLen = 0;
};

RecordHeader parseRecordHeader(const std::uint8_t* p, bool swap) {
  RecordHeader h;
  h.tsSec = u32At(p, swap);
  h.tsFrac = u32At(p + 4, swap);
  h.capLen = u32At(p + 8, swap);
  h.origLen = u32At(p + 12, swap);
  return h;
}

/// Decodes one captured record's wire bytes into a PcapRecord, or skips it
/// (updating `stats`) when the headers are not a well-formed IPv4/UDP pair.
std::optional<PcapRecord> decodeRecord(std::span<const std::uint8_t> wire,
                                       const RecordHeader& header, bool nano,
                                       PcapParseStats& stats) {
  std::size_t ipLen = 0;
  const auto ip = decodeIpv4(wire, ipLen);
  if (!ip || ip->protocol != kIpProtoUdp) {
    ++stats.skippedNonUdp;
    return std::nullopt;
  }
  const auto rest = wire.subspan(ipLen);
  if (rest.size() < kUdpHeaderSize) {
    ++stats.skippedNonUdp;
    return std::nullopt;
  }
  // Check the UDP length field before deriving a payload size from it: a
  // corrupt length below the 8-byte header would underflow
  // `length - kUdpHeaderSize` into a ~4 GB sizeBytes, and one above the
  // checksum-verified IP payload would inflate it up to ~65 KB. The UDP
  // header carries no checksum over its own length here (0 = unused is
  // legal), so the IP total length is the trustworthy bound.
  const std::uint16_t udpLength =
      static_cast<std::uint16_t>((rest[4] << 8) | rest[5]);
  const std::size_t ipPayload =
      ip->totalLength >= ipLen ? ip->totalLength - ipLen : 0;
  if (udpLength < kUdpHeaderSize || udpLength > ipPayload) {
    ++stats.skippedBadUdpLength;
    return std::nullopt;
  }
  const auto udp = decodeUdp(rest);
  if (!udp) {
    ++stats.skippedNonUdp;
    return std::nullopt;
  }

  PcapRecord rec;
  rec.flow.srcIp = ip->srcAddr;
  rec.flow.dstIp = ip->dstAddr;
  rec.flow.srcPort = udp->srcPort;
  rec.flow.dstPort = udp->dstPort;

  // A corrupt fractional part >= one second would spill into the next
  // second and break the non-decreasing arrival order the estimators
  // require; saturate it just below the carry instead.
  const std::uint32_t fracLimit = nano ? 999'999'999u : 999'999u;
  std::uint32_t frac = header.tsFrac;
  if (frac > fracLimit) {
    frac = fracLimit;
    ++stats.clampedTimestamps;
  }
  rec.packet.arrivalNs =
      static_cast<common::TimeNs>(header.tsSec) * common::kNanosPerSecond +
      (nano ? frac : frac * static_cast<common::TimeNs>(1000));
  rec.packet.sizeBytes = static_cast<std::uint32_t>(udp->length) -
                         static_cast<std::uint32_t>(kUdpHeaderSize);
  const std::size_t payloadOffset = ipLen + kUdpHeaderSize;
  if (wire.size() > payloadOffset) {
    rec.packet.setHead(wire.subspan(payloadOffset));
  }
  ++stats.recordsYielded;
  return rec;
}

}  // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen) : snaplen_(snaplen) {
  le32(buffer_, kPcapMagicNano);
  le16(buffer_, 2);  // version major
  le16(buffer_, 4);  // version minor
  le32(buffer_, 0);  // thiszone
  le32(buffer_, 0);  // sigfigs
  le32(buffer_, snaplen_);
  le32(buffer_, kLinktypeRawIpv4);
}

void PcapWriter::write(const FlowKey& flow, const Packet& packet) {
  const auto ts = packet.arrivalNs;
  if (ts < 0 ||
      ts / common::kNanosPerSecond >
          static_cast<common::TimeNs>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument(
        "pcap: arrivalNs outside the format's unsigned 32-bit seconds range "
        "(1970..2106) would not round-trip");
  }

  // Assemble the on-wire bytes we actually have: IPv4 + UDP headers plus the
  // captured payload prefix.
  std::vector<std::uint8_t> wire;
  wire.reserve(kIpv4HeaderSize + kUdpHeaderSize + packet.headLen);

  Ipv4Header ip;
  ip.totalLength = static_cast<std::uint16_t>(
      kIpv4HeaderSize + kUdpHeaderSize + packet.sizeBytes);
  ip.srcAddr = flow.srcIp;
  ip.dstAddr = flow.dstIp;
  encodeIpv4(ip, wire);

  UdpHeader udp;
  udp.srcPort = flow.srcPort;
  udp.dstPort = flow.dstPort;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + packet.sizeBytes);
  encodeUdp(udp, wire);

  auto headSpan = packet.headBytes();
  wire.insert(wire.end(), headSpan.begin(), headSpan.end());

  const std::uint32_t origLen = static_cast<std::uint32_t>(
      kIpv4HeaderSize + kUdpHeaderSize + packet.sizeBytes);
  const std::uint32_t capLen =
      std::min({static_cast<std::uint32_t>(wire.size()), snaplen_, origLen});

  le32(buffer_, static_cast<std::uint32_t>(ts / common::kNanosPerSecond));
  le32(buffer_, static_cast<std::uint32_t>(ts % common::kNanosPerSecond));
  le32(buffer_, capLen);
  le32(buffer_, origLen);
  buffer_.insert(buffer_.end(), wire.begin(), wire.begin() + capLen);
}

void PcapWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw std::runtime_error("pcap: write failed for " + path);
}

PcapReader::PcapReader(std::span<const std::uint8_t> data) : data_(data) {
  const auto format = parseGlobalHeader(data_);
  swap_ = format.swap;
  nano_ = format.nano;
}

std::optional<PcapRecord> PcapReader::next() {
  while (!done_) {
    const std::size_t remaining = data_.size() - pos_;
    if (remaining == 0) {
      done_ = true;
      break;
    }
    if (remaining < kPcapRecordHeaderSize) {
      ++stats_.truncatedRecords;
      done_ = true;
      break;
    }
    const auto header = parseRecordHeader(data_.data() + pos_, swap_);
    if (header.capLen > remaining - kPcapRecordHeaderSize) {
      // The record claims more bytes than the stream holds: a cut-off tail
      // (or lost framing). Keep everything parsed so far, drop the rest.
      ++stats_.truncatedRecords;
      done_ = true;
      break;
    }
    const auto wire =
        data_.subspan(pos_ + kPcapRecordHeaderSize, header.capLen);
    pos_ += kPcapRecordHeaderSize + header.capLen;
    if (auto rec = decodeRecord(wire, header, nano_, stats_)) return rec;
  }
  return std::nullopt;
}

PcapFileReader::PcapFileReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("pcap: cannot open " + path);
  std::uint8_t header[kPcapGlobalHeaderSize];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    throw std::runtime_error("pcap: file too short");
  }
  const auto format = parseGlobalHeader({header, sizeof(header)});
  swap_ = format.swap;
  nano_ = format.nano;
}

std::optional<PcapRecord> PcapFileReader::next() {
  // A record larger than this is not something our writer (or any sane
  // snaplen) produces; treat it as lost framing rather than allocating GBs.
  constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

  while (!done_) {
    std::uint8_t header[kPcapRecordHeaderSize];
    in_.read(reinterpret_cast<char*>(header), sizeof(header));
    const auto got = in_.gcount();
    if (got == 0) {
      done_ = true;
      break;
    }
    if (got != static_cast<std::streamsize>(sizeof(header))) {
      ++stats_.truncatedRecords;
      done_ = true;
      break;
    }
    const auto rec = parseRecordHeader(header, swap_);
    if (rec.capLen > kMaxRecordBytes) {
      ++stats_.truncatedRecords;
      done_ = true;
      break;
    }
    wire_.resize(rec.capLen);
    in_.read(reinterpret_cast<char*>(wire_.data()), rec.capLen);
    if (in_.gcount() != static_cast<std::streamsize>(rec.capLen)) {
      ++stats_.truncatedRecords;
      done_ = true;
      break;
    }
    if (auto parsed = decodeRecord(wire_, rec, nano_, stats_)) return parsed;
  }
  return std::nullopt;
}

std::vector<PcapRecord> parsePcap(std::span<const std::uint8_t> data,
                                  PcapParseStats* stats) {
  PcapReader reader(data);
  std::vector<PcapRecord> records;
  while (auto rec = reader.next()) records.push_back(std::move(*rec));
  if (stats != nullptr) *stats = reader.stats();
  return records;
}

std::vector<PcapRecord> loadPcap(const std::string& path,
                                 PcapParseStats* stats) {
  PcapFileReader reader(path);
  std::vector<PcapRecord> records;
  while (auto rec = reader.next()) records.push_back(std::move(*rec));
  if (stats != nullptr) *stats = reader.stats();
  return records;
}

PacketTrace packetsForFlow(const std::vector<PcapRecord>& records,
                           const FlowKey& flow) {
  PacketTrace trace;
  for (const auto& rec : records) {
    if (rec.flow == flow) trace.push_back(rec.packet);
  }
  return trace;
}

FlowKey dominantFlow(const std::vector<PcapRecord>& records) {
  // O(1) per record via the shared 5-tuple hash; first-seen order is kept on
  // the side so ties resolve deterministically (never by hash iteration).
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> indexOf;
  std::vector<std::pair<FlowKey, std::size_t>> counts;
  for (const auto& rec : records) {
    const auto [it, inserted] = indexOf.try_emplace(rec.flow, counts.size());
    if (inserted) counts.emplace_back(rec.flow, 0);
    ++counts[it->second].second;
  }
  FlowKey best{};
  std::size_t bestCount = 0;
  for (const auto& [key, count] : counts) {
    if (count > bestCount) {
      bestCount = count;
      best = key;
    }
  }
  return best;
}

}  // namespace vcaqoe::netflow
