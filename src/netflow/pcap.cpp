#include "netflow/pcap.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>
#include <tuple>

#include "netflow/bytes.hpp"

namespace vcaqoe::netflow {

namespace {

// pcap headers are in the writer's native order; we always emit little-endian
// and accept either on read.

void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

class EndianReader {
 public:
  EndianReader(std::span<const std::uint8_t> data, bool swap)
      : data_(data), swap_(swap) {}

  std::uint16_t u16() {
    require(2);
    std::uint16_t v;
    if (swap_) {
      v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    } else {
      v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    }
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    if (swap_) {
      v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
          static_cast<std::uint32_t>(data_[pos_ + 3]);
    } else {
      v = static_cast<std::uint32_t>(data_[pos_]) |
          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
          (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    }
    pos_ += 4;
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw std::runtime_error("pcap: truncated file");
  }

  std::span<const std::uint8_t> data_;
  bool swap_;
  std::size_t pos_ = 0;
};

}  // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen) : snaplen_(snaplen) {
  le32(buffer_, kPcapMagicNano);
  le16(buffer_, 2);  // version major
  le16(buffer_, 4);  // version minor
  le32(buffer_, 0);  // thiszone
  le32(buffer_, 0);  // sigfigs
  le32(buffer_, snaplen_);
  le32(buffer_, kLinktypeRawIpv4);
}

void PcapWriter::write(const FlowKey& flow, const Packet& packet) {
  // Assemble the on-wire bytes we actually have: IPv4 + UDP headers plus the
  // captured payload prefix.
  std::vector<std::uint8_t> wire;
  wire.reserve(kIpv4HeaderSize + kUdpHeaderSize + packet.headLen);

  Ipv4Header ip;
  ip.totalLength = static_cast<std::uint16_t>(
      kIpv4HeaderSize + kUdpHeaderSize + packet.sizeBytes);
  ip.srcAddr = flow.srcIp;
  ip.dstAddr = flow.dstIp;
  encodeIpv4(ip, wire);

  UdpHeader udp;
  udp.srcPort = flow.srcPort;
  udp.dstPort = flow.dstPort;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + packet.sizeBytes);
  encodeUdp(udp, wire);

  auto headSpan = packet.headBytes();
  wire.insert(wire.end(), headSpan.begin(), headSpan.end());

  const std::uint32_t origLen = static_cast<std::uint32_t>(
      kIpv4HeaderSize + kUdpHeaderSize + packet.sizeBytes);
  const std::uint32_t capLen =
      std::min({static_cast<std::uint32_t>(wire.size()), snaplen_, origLen});

  const auto ts = packet.arrivalNs;
  le32(buffer_, static_cast<std::uint32_t>(ts / common::kNanosPerSecond));
  le32(buffer_, static_cast<std::uint32_t>(ts % common::kNanosPerSecond));
  le32(buffer_, capLen);
  le32(buffer_, origLen);
  buffer_.insert(buffer_.end(), wire.begin(), wire.begin() + capLen);
}

void PcapWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw std::runtime_error("pcap: write failed for " + path);
}

std::vector<PcapRecord> parsePcap(std::span<const std::uint8_t> data) {
  if (data.size() < 24) throw std::runtime_error("pcap: file too short");

  // Determine byte order and resolution from the magic number.
  const std::uint32_t magicLe = static_cast<std::uint32_t>(data[0]) |
                                (static_cast<std::uint32_t>(data[1]) << 8) |
                                (static_cast<std::uint32_t>(data[2]) << 16) |
                                (static_cast<std::uint32_t>(data[3]) << 24);
  bool swap = false;
  bool nano = false;
  if (magicLe == kPcapMagicNano) {
    nano = true;
  } else if (magicLe == kPcapMagicMicro) {
    nano = false;
  } else {
    const std::uint32_t magicBe = __builtin_bswap32(magicLe);
    if (magicBe == kPcapMagicNano) {
      nano = true;
      swap = true;
    } else if (magicBe == kPcapMagicMicro) {
      swap = true;
    } else {
      throw std::runtime_error("pcap: bad magic");
    }
  }

  EndianReader r(data, swap);
  r.u32();  // magic (already inspected)
  r.u16();  // version major
  r.u16();  // version minor
  r.u32();  // thiszone
  r.u32();  // sigfigs
  r.u32();  // snaplen
  const std::uint32_t linktype = r.u32();
  if (linktype != kLinktypeRawIpv4) {
    throw std::runtime_error("pcap: unsupported linktype " +
                             std::to_string(linktype));
  }

  std::vector<PcapRecord> records;
  while (r.remaining() > 0) {
    if (r.remaining() < 16) throw std::runtime_error("pcap: truncated record");
    const std::uint32_t tsSec = r.u32();
    const std::uint32_t tsFrac = r.u32();
    const std::uint32_t capLen = r.u32();
    r.u32();  // origLen (redundant with the IP total length we parse below)
    auto wire = r.bytes(capLen);

    std::size_t ipLen = 0;
    auto ip = decodeIpv4(wire, ipLen);
    if (!ip || ip->protocol != kIpProtoUdp) continue;
    auto udp = decodeUdp(wire.subspan(ipLen));
    if (!udp) continue;

    PcapRecord rec;
    rec.flow.srcIp = ip->srcAddr;
    rec.flow.dstIp = ip->dstAddr;
    rec.flow.srcPort = udp->srcPort;
    rec.flow.dstPort = udp->dstPort;
    rec.packet.arrivalNs =
        static_cast<common::TimeNs>(tsSec) * common::kNanosPerSecond +
        (nano ? tsFrac : tsFrac * 1000LL);
    rec.packet.sizeBytes =
        static_cast<std::uint32_t>(udp->length - kUdpHeaderSize);
    const std::size_t payloadOffset = ipLen + kUdpHeaderSize;
    if (wire.size() > payloadOffset) {
      rec.packet.setHead(wire.subspan(payloadOffset));
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<PcapRecord> loadPcap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open " + path);
  std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  return parsePcap(data);
}

PacketTrace packetsForFlow(const std::vector<PcapRecord>& records,
                           const FlowKey& flow) {
  PacketTrace trace;
  for (const auto& rec : records) {
    if (rec.flow == flow) trace.push_back(rec.packet);
  }
  return trace;
}

FlowKey dominantFlow(const std::vector<PcapRecord>& records) {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t,
                      std::uint16_t>,
           std::size_t>
      counts;
  for (const auto& rec : records) {
    ++counts[{rec.flow.srcIp, rec.flow.dstIp, rec.flow.srcPort,
              rec.flow.dstPort}];
  }
  FlowKey best{};
  std::size_t bestCount = 0;
  for (const auto& [key, count] : counts) {
    if (count > bestCount) {
      bestCount = count;
      best = FlowKey{std::get<0>(key), std::get<1>(key), std::get<2>(key),
                     std::get<3>(key)};
    }
  }
  return best;
}

}  // namespace vcaqoe::netflow
