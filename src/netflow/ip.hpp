#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <span>
#include <vector>

/// Minimal IPv4 + UDP header codecs.
///
/// These exist so the library can ingest and emit real capture files (pcap)
/// rather than only in-memory simulation output — a monitoring deployment
/// parses exactly these headers (§2.2 of the paper: "existing network
/// monitoring systems can readily extract such information at scale").
namespace vcaqoe::netflow {

inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::size_t kIpv4HeaderSize = 20;  // no options
inline constexpr std::size_t kUdpHeaderSize = 8;

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t totalLength = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint32_t srcAddr = 0;
  std::uint32_t dstAddr = 0;

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

struct UdpHeader {
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

/// Serializes a 20-byte option-less IPv4 header with a valid checksum.
void encodeIpv4(const Ipv4Header& h, std::vector<std::uint8_t>& out);

/// Parses an IPv4 header. Returns nullopt on truncation, wrong version, or
/// checksum mismatch. On success `consumed` is set to the header length
/// (IHL*4, options skipped).
std::optional<Ipv4Header> decodeIpv4(std::span<const std::uint8_t> data,
                                     std::size_t& consumed);

/// Serializes an 8-byte UDP header (checksum left as provided; 0 = unused,
/// which is legal for UDP over IPv4).
void encodeUdp(const UdpHeader& h, std::vector<std::uint8_t>& out);

/// Parses a UDP header; nullopt on truncation or length < 8.
std::optional<UdpHeader> decodeUdp(std::span<const std::uint8_t> data);

/// Renders a dotted-quad string for logging.
std::string ipToString(std::uint32_t addr);

/// Parses "a.b.c.d"; returns nullopt on malformed input.
std::optional<std::uint32_t> parseIp(const std::string& dotted);

}  // namespace vcaqoe::netflow
