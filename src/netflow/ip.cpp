#include "netflow/ip.hpp"

#include <charconv>
#include <string>

#include "netflow/bytes.hpp"

namespace vcaqoe::netflow {

void encodeIpv4(const Ipv4Header& h, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(h.tos);
  w.u16(h.totalLength);
  w.u16(h.identification);
  w.u16(0);  // flags / fragment offset: DF not set, no fragmentation
  w.u8(h.ttl);
  w.u8(h.protocol);
  w.u16(0);  // checksum placeholder
  w.u32(h.srcAddr);
  w.u32(h.dstAddr);
  const std::uint16_t csum = internetChecksum(
      std::span<const std::uint8_t>(out).subspan(start, kIpv4HeaderSize));
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum);
}

std::optional<Ipv4Header> decodeIpv4(std::span<const std::uint8_t> data,
                                     std::size_t& consumed) {
  if (data.size() < kIpv4HeaderSize) return std::nullopt;
  const std::uint8_t versionIhl = data[0];
  if ((versionIhl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(versionIhl & 0x0F) * 4;
  if (ihl < kIpv4HeaderSize || data.size() < ihl) return std::nullopt;
  if (internetChecksum(data.subspan(0, ihl)) != 0) return std::nullopt;

  ByteReader r(data);
  Ipv4Header h;
  r.skip(1);
  h.tos = r.u8();
  h.totalLength = r.u16();
  h.identification = r.u16();
  r.skip(2);  // flags / fragment offset
  h.ttl = r.u8();
  h.protocol = r.u8();
  r.skip(2);  // checksum (verified above)
  h.srcAddr = r.u32();
  h.dstAddr = r.u32();
  consumed = ihl;
  return h;
}

void encodeUdp(const UdpHeader& h, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u16(h.srcPort);
  w.u16(h.dstPort);
  w.u16(h.length);
  w.u16(h.checksum);
}

std::optional<UdpHeader> decodeUdp(std::span<const std::uint8_t> data) {
  if (data.size() < kUdpHeaderSize) return std::nullopt;
  ByteReader r(data);
  UdpHeader h;
  h.srcPort = r.u16();
  h.dstPort = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  if (h.length < kUdpHeaderSize) return std::nullopt;
  return h;
}

std::string ipToString(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xFF) + "." +
         std::to_string((addr >> 16) & 0xFF) + "." +
         std::to_string((addr >> 8) & 0xFF) + "." +
         std::to_string(addr & 0xFF);
}

std::optional<std::uint32_t> parseIp(const std::string& dotted) {
  std::uint32_t addr = 0;
  const char* p = dotted.data();
  const char* end = dotted.data() + dotted.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    addr = (addr << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return addr;
}

}  // namespace vcaqoe::netflow
