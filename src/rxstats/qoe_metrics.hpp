#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// The four QoE metrics of the paper (§2.1) and the per-second ground-truth
/// row format modeled on Chrome's webrtc-internals stats.
namespace vcaqoe::rxstats {

enum class Metric : std::uint8_t {
  kBitrate,     // kbps received, regression target
  kFrameRate,   // frames decoded per second, regression target
  kFrameJitter, // stdev of inter-frame delay (ms), regression target
  kResolution,  // frame height, classification target
};

std::string toString(Metric m);

/// One second of application-level ground truth, as webrtc-internals would
/// report it.
struct QoeRow {
  std::int64_t second = 0;       // seconds since call start
  double bitrateKbps = 0.0;      // video payload bits received / 1 s
  double fps = 0.0;              // frames decoded in this second
  double frameJitterMs = 0.0;    // stdev of inter-decode gaps
  int frameHeight = 0;           // height of the last decoded frame
  bool valid = false;            // at least one decoded frame this second

  friend bool operator==(const QoeRow&, const QoeRow&) = default;
};

using QoeTimeline = std::vector<QoeRow>;

/// Extracts the per-second series of one metric as doubles (resolution is
/// returned as the numeric frame height).
std::vector<double> metricSeries(const QoeTimeline& rows, Metric m);

}  // namespace vcaqoe::rxstats
