#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "netflow/packet.hpp"
#include "simcall/call_simulator.hpp"

/// Receiver-side frame reassembly from RTP packets.
///
/// This is the ground-truth path: like the paper's analysis of RTP captures,
/// frames are identified by their RTP timestamp (every packet of a frame
/// shares one timestamp, the marker bit tags the last packet). Completeness
/// is judged against the sender frame table, with RTX recoveries counted in.
namespace vcaqoe::rxstats {

/// One reassembled video frame at the receiver.
struct ReceivedFrame {
  std::uint32_t rtpTimestamp = 0;
  common::TimeNs captureNs = 0;        // sender capture time (truth)
  common::TimeNs firstArrivalNs = 0;
  common::TimeNs completeNs = 0;       // arrival of the last needed packet
  std::uint32_t payloadBytes = 0;      // media payload received (excl. RTP)
  std::uint16_t packetsReceived = 0;   // primary-stream packets
  std::uint16_t packetsExpected = 0;   // from the sender frame table
  std::uint16_t rtxRecovered = 0;      // losses recovered via RTX
  int frameHeight = 0;
  bool keyframe = false;               // from the sender frame table
  bool complete = false;               // fully received (after RTX)
  bool sawMarker = false;
};

/// Reassembles the video frames of a simulated call. Packets must be the
/// receiver trace (arrival-ordered); `videoPt`/`rtxPt` select the streams.
std::vector<ReceivedFrame> assembleFrames(
    const netflow::PacketTrace& packets,
    const std::vector<simcall::SentFrame>& sentFrames, std::uint8_t videoPt,
    std::uint8_t rtxPt);

}  // namespace vcaqoe::rxstats
