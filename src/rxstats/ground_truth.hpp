#pragma once

#include <vector>

#include "rxstats/frame_assembly.hpp"
#include "rxstats/jitter_buffer.hpp"
#include "rxstats/qoe_metrics.hpp"
#include "simcall/call_simulator.hpp"

/// Ground-truth QoE extraction: the simulation's stand-in for Chrome's
/// webrtc-internals per-second log (§4.1).
namespace vcaqoe::rxstats {

struct GroundTruthOptions {
  JitterBuffer::Options jitterBuffer;
  /// Seconds trimmed from the start (call setup / ramp is logged by
  /// webrtc-internals but our evaluation, like the paper's filtering of
  /// short logs, skips the connect transient).
  int warmupSeconds = 2;
};

/// Builds the per-second ground-truth timeline for a simulated call:
///   bitrate  — video payload bits received per second (arrival-based),
///   fps      — frames decoded per second (post jitter buffer),
///   jitter   — stdev of consecutive decode gaps within the second,
///   height   — height of the last frame decoded in the second.
/// Rows cover [warmupSeconds, floor(callDuration)) and are marked invalid
/// for seconds with no decoded frame.
QoeTimeline buildGroundTruth(const simcall::CallResult& call,
                             double durationSec,
                             const GroundTruthOptions& options = {},
                             std::uint64_t seed = 1);

}  // namespace vcaqoe::rxstats
