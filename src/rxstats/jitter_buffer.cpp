#include "rxstats/jitter_buffer.hpp"

#include <algorithm>
#include <cmath>

namespace vcaqoe::rxstats {

std::vector<DecodedFrame> JitterBuffer::playout(
    const std::vector<ReceivedFrame>& frames, common::Rng& rng) const {
  std::vector<DecodedFrame> decoded;
  decoded.reserve(frames.size());

  bool first = true;
  common::TimeNs baseArrival = 0;
  common::TimeNs baseCapture = 0;
  double jitterEstimateNs = 0.0;
  double targetDelayNs = static_cast<double>(options_.minTargetDelayNs);
  common::TimeNs lastDecode = 0;
  double lastLatenessNs = 0.0;

  bool referenceBroken = false;
  common::TimeNs decoderBusyUntil = 0;
  for (const auto& frame : frames) {
    // Delta frames reference the previous frame: after an unrecovered loss
    // nothing decodes until the next (PLI-triggered) keyframe arrives.
    if (!frame.complete) {
      referenceBroken = true;
      continue;
    }
    if (frame.keyframe) referenceBroken = false;
    if (referenceBroken) continue;

    // Decoder capacity: service time proportional to the frame's pixels
    // (16:9). When the decoder is too far behind, the frame is skipped —
    // skipping a delta frame is safe for the model (references decode-only).
    common::DurationNs decodeServiceNs = 0;
    if (options_.decodePixelsPerSec > 0.0) {
      const double pixels = static_cast<double>(frame.frameHeight) *
                            frame.frameHeight * 16.0 / 9.0;
      decodeServiceNs = static_cast<common::DurationNs>(
          pixels / options_.decodePixelsPerSec *
          static_cast<double>(common::kNanosPerSecond));
      const common::TimeNs startDecode =
          std::max(frame.completeNs, decoderBusyUntil);
      if (startDecode - frame.completeNs > options_.decodeSkipThresholdNs) {
        continue;  // decoder overloaded: frame dropped before decode
      }
      decoderBusyUntil = startDecode + decodeServiceNs;
    }
    if (first) {
      baseArrival = frame.completeNs;
      baseCapture = frame.captureNs;
      first = false;
    }
    // How late the frame is relative to its nominal (capture-paced) slot.
    const auto expected = baseArrival + (frame.captureNs - baseCapture);
    const double latenessNs =
        static_cast<double>(frame.completeNs - expected);

    // RFC 3550-style interarrival jitter estimate over frame completions.
    const double d = std::abs(latenessNs - lastLatenessNs);
    lastLatenessNs = latenessNs;
    jitterEstimateNs += options_.jitterGain * (d - jitterEstimateNs);

    // Target delay: rises immediately when jitter spikes, decays slowly.
    const double wanted = options_.jitterMultiplier * jitterEstimateNs;
    if (wanted > targetDelayNs) {
      targetDelayNs = wanted;
    } else {
      targetDelayNs += 0.05 * (wanted - targetDelayNs);
    }
    targetDelayNs = std::clamp(
        targetDelayNs, static_cast<double>(options_.minTargetDelayNs),
        static_cast<double>(options_.maxTargetDelayNs));

    // Scheduled playout: the buffer holds frames to their smoothed slot but
    // can never emit before the frame has arrived and been decoded.
    const auto decodeLatency =
        decodeServiceNs +
        static_cast<common::DurationNs>(
            static_cast<double>(options_.decodeDelayNs) * rng.uniform(0.6, 1.6));
    const common::TimeNs scheduled =
        expected + static_cast<common::DurationNs>(targetDelayNs);
    common::TimeNs decodeAt =
        std::max(frame.completeNs + decodeLatency, scheduled);
    // Renderer cannot emit two frames at once.
    if (!decoded.empty()) {
      decodeAt = std::max(decodeAt, lastDecode + common::millisToNs(1.0));
    }
    lastDecode = decodeAt;

    decoded.push_back(DecodedFrame{decodeAt, frame.frameHeight,
                                   frame.payloadBytes});
  }
  return decoded;
}

}  // namespace vcaqoe::rxstats
