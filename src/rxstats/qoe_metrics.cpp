#include "rxstats/qoe_metrics.hpp"

namespace vcaqoe::rxstats {

std::string toString(Metric m) {
  switch (m) {
    case Metric::kBitrate:
      return "bitrate";
    case Metric::kFrameRate:
      return "frame_rate";
    case Metric::kFrameJitter:
      return "frame_jitter";
    case Metric::kResolution:
      return "resolution";
  }
  return "unknown";
}

std::vector<double> metricSeries(const QoeTimeline& rows, Metric m) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    switch (m) {
      case Metric::kBitrate:
        out.push_back(row.bitrateKbps);
        break;
      case Metric::kFrameRate:
        out.push_back(row.fps);
        break;
      case Metric::kFrameJitter:
        out.push_back(row.frameJitterMs);
        break;
      case Metric::kResolution:
        out.push_back(static_cast<double>(row.frameHeight));
        break;
    }
  }
  return out;
}

}  // namespace vcaqoe::rxstats
