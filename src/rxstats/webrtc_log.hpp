#pragma once

#include <string>

#include "rxstats/qoe_metrics.hpp"

/// webrtc-internals-style JSON logs.
///
/// The paper's ground truth comes from Chrome's webrtc-internals dumps
/// (§4.1); its public dataset pairs each pcap with such a JSON log. This
/// module writes and parses the equivalent artifact for simulated calls, so
/// the example programs and tests can exercise the same pcap + JSON-log
/// workflow as the released vcaml tooling — including the paper's caveat
/// that logs report only start/end times and per-second series have to be
/// aligned by assumption.
namespace vcaqoe::rxstats {

struct WebrtcLog {
  std::string vca;             // "meet" / "teams" / "webex"
  std::int64_t startSecond = 0;  // first per-second sample (after warmup)
  QoeTimeline rows;

  friend bool operator==(const WebrtcLog&, const WebrtcLog&) = default;
};

/// Serializes the log as pretty-printed JSON with one array per stat
/// (framesPerSecond, bitrateKbps, frameJitterMs, frameHeight, valid).
std::string writeWebrtcLog(const WebrtcLog& log);

/// Writes to a file; throws std::runtime_error on I/O failure.
void saveWebrtcLog(const WebrtcLog& log, const std::string& path);

/// Parses a log produced by writeWebrtcLog (tolerates arbitrary whitespace
/// and key order). Throws std::runtime_error on malformed input or
/// mismatched series lengths.
WebrtcLog parseWebrtcLog(const std::string& json);

/// Loads from a file; throws std::runtime_error on I/O failure.
WebrtcLog loadWebrtcLog(const std::string& path);

}  // namespace vcaqoe::rxstats
