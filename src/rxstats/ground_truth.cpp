#include "rxstats/ground_truth.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::rxstats {

QoeTimeline buildGroundTruth(const simcall::CallResult& call,
                             double durationSec,
                             const GroundTruthOptions& options,
                             std::uint64_t seed) {
  const auto frames = assembleFrames(call.packets, call.sentFrames,
                                     call.profile.videoPt, call.profile.rtxPt);
  common::Rng rng(seed);
  const JitterBuffer buffer(options.jitterBuffer);
  const auto decoded = buffer.playout(frames, rng);

  const auto totalSeconds = static_cast<std::int64_t>(durationSec);
  QoeTimeline rows;

  // Received video bits per second (arrival-based, primary stream).
  // webrtc-internals reports the *media* bitrate: FEC protection and codec
  // metadata riding inside the payload are not counted. This is why the
  // paper's heuristics systematically overestimate bitrate (§5.1.3) — the
  // overhead is invisible from the network.
  constexpr double kCodecMetadataOverhead = 0.02;
  const double mediaFraction =
      1.0 / ((1.0 + call.profile.fecOverhead) * (1.0 + kCodecMetadataOverhead));
  std::vector<double> bitsPerSecond(static_cast<std::size_t>(totalSeconds),
                                    0.0);
  for (const auto& pkt : call.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != call.profile.videoPt) continue;
    const auto sec = common::secondIndex(pkt.arrivalNs);
    if (sec < 0 || sec >= totalSeconds) continue;
    bitsPerSecond[static_cast<std::size_t>(sec)] +=
        8.0 * static_cast<double>(pkt.sizeBytes - rtp::kRtpHeaderSize) *
        mediaFraction;
  }

  // Decode times bucketed by second.
  std::vector<std::vector<const DecodedFrame*>> bySecond(
      static_cast<std::size_t>(totalSeconds));
  for (const auto& frame : decoded) {
    const auto sec = common::secondIndex(frame.decodeNs);
    if (sec < 0 || sec >= totalSeconds) continue;
    bySecond[static_cast<std::size_t>(sec)].push_back(&frame);
  }

  // For jitter we need the gap to the previous decoded frame even across the
  // second boundary; walk the decode sequence once.
  std::vector<std::vector<double>> gapsBySecond(
      static_cast<std::size_t>(totalSeconds));
  for (std::size_t i = 1; i < decoded.size(); ++i) {
    const auto sec = common::secondIndex(decoded[i].decodeNs);
    if (sec < 0 || sec >= totalSeconds) continue;
    gapsBySecond[static_cast<std::size_t>(sec)].push_back(
        common::nsToMillis(decoded[i].decodeNs - decoded[i - 1].decodeNs));
  }

  int lastHeight = 0;
  for (std::int64_t sec = 0; sec < totalSeconds; ++sec) {
    const auto& inSecond = bySecond[static_cast<std::size_t>(sec)];
    if (!inSecond.empty()) lastHeight = inSecond.back()->frameHeight;
    if (sec < options.warmupSeconds) continue;

    QoeRow row;
    row.second = sec;
    row.bitrateKbps = bitsPerSecond[static_cast<std::size_t>(sec)] / 1e3;
    row.fps = static_cast<double>(inSecond.size());
    const auto& gaps = gapsBySecond[static_cast<std::size_t>(sec)];
    row.frameJitterMs = gaps.size() >= 2 ? common::sampleStdev(gaps) : 0.0;
    row.frameHeight = lastHeight;
    row.valid = !inSecond.empty();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace vcaqoe::rxstats
