#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "rxstats/frame_assembly.hpp"

/// Adaptive jitter buffer + decoder model.
///
/// webrtc-internals reports frame statistics *after* the jitter buffer and
/// decoder, not at packet arrival. The paper leans on this repeatedly: all
/// methods "overestimate" frame jitter because the buffer smooths playout
/// (§5.1.4, Fig 8), and the heuristics cannot calibrate away buffer delays
/// while the ML methods partially can (§5.1.2). This model reproduces that
/// application-level transformation.
namespace vcaqoe::rxstats {

/// Playout record for one decoded frame.
struct DecodedFrame {
  common::TimeNs decodeNs = 0;  // when the frame left the buffer/decoder
  int frameHeight = 0;
  std::uint32_t payloadBytes = 0;
};

struct JitterBufferOptions {
  /// Floor of the adaptive target delay.
  common::DurationNs minTargetDelayNs = common::millisToNs(10.0);
  /// Ceiling of the adaptive target delay.
  common::DurationNs maxTargetDelayNs = common::millisToNs(300.0);
  /// Multiplier on the jitter estimate when setting the target delay.
  double jitterMultiplier = 2.5;
  /// EWMA gain for the inter-arrival jitter estimate (RFC 3550-flavoured).
  double jitterGain = 1.0 / 16.0;
  /// Mean decoder latency; a small random component is added per frame.
  common::DurationNs decodeDelayNs = common::millisToNs(4.0);
  /// Decoder throughput in pixels/second; 0 = unconstrained. The paper's
  /// real-world vantage points are Raspberry Pis whose decoder cannot keep
  /// up with 540/720p at 30 fps — decoded fps sags below the network frame
  /// rate, which is the regime lab-trained models have never seen (§5.3).
  double decodePixelsPerSec = 0.0;
  /// A frame is skipped when the decoder falls further behind than this.
  common::DurationNs decodeSkipThresholdNs = common::millisToNs(50.0);
};

class JitterBuffer {
 public:
  using Options = JitterBufferOptions;

  explicit JitterBuffer(Options options = {}) : options_(options) {}

  /// Plays out the complete frames of a call and returns their decode times,
  /// in decode order. Incomplete frames are dropped (they reduce fps, as in
  /// the real pipeline).
  std::vector<DecodedFrame> playout(const std::vector<ReceivedFrame>& frames,
                                    common::Rng& rng) const;

 private:
  Options options_;
};

}  // namespace vcaqoe::rxstats
