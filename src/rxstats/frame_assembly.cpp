#include "rxstats/frame_assembly.hpp"

#include <algorithm>
#include <unordered_map>

#include "rtp/rtp.hpp"

namespace vcaqoe::rxstats {

std::vector<ReceivedFrame> assembleFrames(
    const netflow::PacketTrace& packets,
    const std::vector<simcall::SentFrame>& sentFrames, std::uint8_t videoPt,
    std::uint8_t rtxPt) {
  // Index the sender truth by RTP timestamp.
  std::unordered_map<std::uint32_t, const simcall::SentFrame*> truth;
  truth.reserve(sentFrames.size());
  for (const auto& f : sentFrames) truth[f.rtpTimestamp] = &f;

  std::unordered_map<std::uint32_t, ReceivedFrame> building;
  building.reserve(sentFrames.size());

  for (const auto& pkt : packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header) continue;  // DTLS/STUN
    const bool primary = header->payloadType == videoPt;
    const bool rtx = rtxPt != 0 && header->payloadType == rtxPt;
    if (!primary && !rtx) continue;
    const auto truthIt = truth.find(header->timestamp);
    if (truthIt == truth.end()) continue;  // RTX keep-alive, not a frame

    ReceivedFrame& frame = building[header->timestamp];
    if (frame.packetsReceived == 0 && frame.rtxRecovered == 0) {
      frame.rtpTimestamp = header->timestamp;
      frame.captureNs = truthIt->second->captureNs;
      frame.firstArrivalNs = pkt.arrivalNs;
      frame.packetsExpected = truthIt->second->packetCount;
      frame.frameHeight = truthIt->second->frameHeight;
      frame.keyframe = truthIt->second->keyframe;
    }
    frame.firstArrivalNs = std::min(frame.firstArrivalNs, pkt.arrivalNs);
    frame.payloadBytes +=
        pkt.sizeBytes - static_cast<std::uint32_t>(rtp::kRtpHeaderSize);
    if (primary) {
      ++frame.packetsReceived;
      frame.sawMarker = frame.sawMarker || header->marker;
    } else {
      ++frame.rtxRecovered;
    }
    if (frame.packetsReceived + frame.rtxRecovered >= frame.packetsExpected &&
        !frame.complete) {
      frame.complete = true;
      frame.completeNs = pkt.arrivalNs;
    }
  }

  std::vector<ReceivedFrame> frames;
  frames.reserve(building.size());
  for (auto& [ts, frame] : building) {
    if (!frame.complete) {
      // Record the best-known completion bound for diagnostics.
      frame.completeNs = frame.firstArrivalNs;
    }
    frames.push_back(frame);
  }
  std::sort(frames.begin(), frames.end(),
            [](const ReceivedFrame& a, const ReceivedFrame& b) {
              return a.captureNs < b.captureNs;
            });
  return frames;
}

}  // namespace vcaqoe::rxstats
