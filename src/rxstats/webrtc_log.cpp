#include "rxstats/webrtc_log.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vcaqoe::rxstats {

namespace {

void appendSeries(std::ostringstream& out, const char* key,
                  const std::vector<double>& values, bool last = false) {
  out << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    // Round-trippable formatting without trailing-zero noise.
    std::ostringstream v;
    v.precision(10);
    v << values[i];
    out << v.str();
  }
  out << "]" << (last ? "" : ",") << '\n';
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("webrtc log: " + what);
}

/// Minimal recursive-descent parser for the subset of JSON this format
/// uses: one flat object with string/number/array-of-number values.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  struct Value {
    std::string string;
    double number = 0.0;
    std::vector<double> array;
    enum class Kind { kString, kNumber, kArray } kind = Kind::kNumber;
  };

  std::map<std::string, Value> parseObject() {
    std::map<std::string, Value> out;
    skipWs();
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      out[key] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return out;
  }

 private:
  char peek() const {
    if (pos_ >= text_.size()) malformed("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      malformed(std::string("expected '") + c + "' at offset " +
                std::to_string(pos_));
    }
    ++pos_;
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) out += text_[pos_++];
      else out += c;
    }
    ++pos_;  // closing quote
    return out;
  }

  double parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) malformed("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  Value parseValue() {
    Value v;
    const char c = peek();
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string = parseString();
    } else if (c == '[') {
      v.kind = Value::Kind::kArray;
      ++pos_;
      skipWs();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        skipWs();
        v.array.push_back(parseNumber());
        skipWs();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
    } else {
      v.kind = Value::Kind::kNumber;
      v.number = parseNumber();
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string writeWebrtcLog(const WebrtcLog& log) {
  std::vector<double> fps;
  std::vector<double> bitrate;
  std::vector<double> jitter;
  std::vector<double> height;
  std::vector<double> valid;
  for (const auto& row : log.rows) {
    fps.push_back(row.fps);
    bitrate.push_back(row.bitrateKbps);
    jitter.push_back(row.frameJitterMs);
    height.push_back(static_cast<double>(row.frameHeight));
    valid.push_back(row.valid ? 1.0 : 0.0);
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"vca\": \"" << log.vca << "\",\n";
  out << "  \"startSecond\": " << log.startSecond << ",\n";
  appendSeries(out, "framesPerSecond", fps);
  appendSeries(out, "bitrateKbps", bitrate);
  appendSeries(out, "frameJitterMs", jitter);
  appendSeries(out, "frameHeight", height);
  appendSeries(out, "valid", valid, /*last=*/true);
  out << "}\n";
  return out.str();
}

void saveWebrtcLog(const WebrtcLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("webrtc log: cannot open " + path);
  out << writeWebrtcLog(log);
  if (!out) throw std::runtime_error("webrtc log: write failed " + path);
}

WebrtcLog parseWebrtcLog(const std::string& json) {
  MiniJsonParser parser(json);
  const auto object = parser.parseObject();

  const auto requireArray = [&](const char* key) -> const std::vector<double>& {
    const auto it = object.find(key);
    if (it == object.end() ||
        it->second.kind != MiniJsonParser::Value::Kind::kArray) {
      malformed(std::string("missing array '") + key + "'");
    }
    return it->second.array;
  };

  WebrtcLog log;
  if (const auto it = object.find("vca");
      it != object.end() &&
      it->second.kind == MiniJsonParser::Value::Kind::kString) {
    log.vca = it->second.string;
  } else {
    malformed("missing 'vca'");
  }
  if (const auto it = object.find("startSecond");
      it != object.end() &&
      it->second.kind == MiniJsonParser::Value::Kind::kNumber) {
    log.startSecond = static_cast<std::int64_t>(it->second.number);
  } else {
    malformed("missing 'startSecond'");
  }

  const auto& fps = requireArray("framesPerSecond");
  const auto& bitrate = requireArray("bitrateKbps");
  const auto& jitter = requireArray("frameJitterMs");
  const auto& height = requireArray("frameHeight");
  const auto& valid = requireArray("valid");
  if (fps.size() != bitrate.size() || fps.size() != jitter.size() ||
      fps.size() != height.size() || fps.size() != valid.size()) {
    malformed("series length mismatch");
  }

  for (std::size_t i = 0; i < fps.size(); ++i) {
    QoeRow row;
    row.second = log.startSecond + static_cast<std::int64_t>(i);
    row.fps = fps[i];
    row.bitrateKbps = bitrate[i];
    row.frameJitterMs = jitter[i];
    row.frameHeight = static_cast<int>(std::lround(height[i]));
    row.valid = valid[i] != 0.0;
    log.rows.push_back(row);
  }
  return log;
}

WebrtcLog loadWebrtcLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("webrtc log: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parseWebrtcLog(buffer.str());
}

}  // namespace vcaqoe::rxstats
