#include "engine/multi_flow_engine.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace vcaqoe::engine {

namespace {

/// Best-effort round-robin core pinning for shard worker `index`. Failure
/// (e.g. a cpuset restricting the process below hardware_concurrency) is
/// ignored: pinning is a throughput hint, never a correctness dependency.
void pinThreadRoundRobin([[maybe_unused]] std::thread& thread,
                         [[maybe_unused]] std::size_t index) {
#if defined(__linux__)
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cpus), &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#endif
}

}  // namespace

MultiFlowEngine::MultiFlowEngine(EngineOptions options)
    : options_(std::move(options)),
      classifier_(options_.streaming.classifier) {
  if (options_.streaming.windowNs <= 0) {
    // Estimators are created lazily on the workers; a bad window size must
    // fail here, at engine construction, not as a worker error mid-stream.
    throw std::invalid_argument("MultiFlowEngine: windowNs must be positive");
  }
  int workers = options_.numWorkers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  if (options_.dispatchBatch == 0) options_.dispatchBatch = 1;

  shards_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->results =
        std::make_unique<SpscRing<EngineResult>>(options_.resultRingCapacity);
    shard->pending.reserve(options_.dispatchBatch);
    // No registry means no backend can ever resolve: routing windows
    // through the batcher would add copy/latency for zero predictions.
    if (options_.inferenceBatch > 1 && options_.registry) {
      InferenceBatcher::Options batcherOptions;
      batcherOptions.batchSize = options_.inferenceBatch;
      batcherOptions.flushNs = std::max<common::DurationNs>(
          options_.inferenceFlushNs, 0);
      auto* raw = shard.get();
      shard->batcher = std::make_unique<InferenceBatcher>(
          batcherOptions,
          [this, raw](FlowId flow, core::StreamingOutput&& out) {
            pushResult(*raw, EngineResult{flow, std::move(out)});
          });
    }
    shards_.push_back(std::move(shard));
  }
  runningWorkers_.store(workers, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { workerLoop(*raw); });
  }
  if (options_.pinWorkers) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      pinThreadRoundRobin(shards_[i]->thread, i);
    }
  }
}

MultiFlowEngine::~MultiFlowEngine() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; worker errors are lost at this point.
  }
}

void MultiFlowEngine::onPacket(const netflow::FlowKey& key,
                               const netflow::Packet& packet) {
  if (finished_) {
    throw std::logic_error("MultiFlowEngine: onPacket after finish");
  }
  const FlowId flow = flowTable_.intern(key);
  core::StreamingEstimator::BackendPtr admissionBackend;
  features::FeatureSet admissionSet = options_.streaming.featureSet;
  const bool admitted = flow >= flowStats_.size();
  if (admitted) {
    // First packet of a fresh flow generation: resolve the flow's feature
    // set and inference backend now, while the 5-tuple is at hand — a
    // returning (evicted) flow is a fresh generation and re-resolves here
    // too.
    FlowStats stats;
    stats.key = key;
    stats.firstArrivalNs = packet.arrivalNs;
    if (options_.featureSetResolver) {
      admissionSet = options_.featureSetResolver(key);
    }
    stats.featureSet = admissionSet;
    admissionBackend = resolveBackend(key, stats, admissionSet);
    flowStats_.push_back(std::move(stats));
    lruPrev_.push_back(kNoFlow);
    lruNext_.push_back(kNoFlow);
    lruLinkTail(flow);
  } else {
    lruUnlink(flow);
    lruLinkTail(flow);
  }
  FlowStats& stats = flowStats_[flow];
  ++stats.packets;
  stats.bytes += packet.sizeBytes;
  stats.lastArrivalNs = packet.arrivalNs;

  // Static shard assignment: a flow lives on one shard for its whole life,
  // so per-flow packet order survives the fan-out. (A re-interned generation
  // may land on a different shard; its id is fresh, so no state aliases.)
  Shard& shard = *shards_[flow % shards_.size()];
  shard.pending.push_back(Item{flow, /*evict=*/false, /*kick=*/false, packet,
                               std::move(admissionBackend), admissionSet});
  ++packetsIngested_;
  if (packet.arrivalNs > clock_) clock_ = packet.arrivalNs;
  if (options_.idleTimeoutNs > 0) evictIdleFlows();
  if (shard.pending.size() >= options_.dispatchBatch) flushPending(shard);
}

core::StreamingEstimator::BackendPtr MultiFlowEngine::resolveBackend(
    const netflow::FlowKey& key, FlowStats& stats,
    features::FeatureSet set) const {
  if (!options_.registry) return nullptr;
  std::string vca;
  if (options_.vcaResolver) {
    vca = options_.vcaResolver(key);
  } else {
    vca = std::string(core::toString(classifier_.classifyVca(key)));
  }
  auto backend = options_.registry->resolveSet(
      vca,
      options_.targets.empty()
          ? std::span<const inference::QoeTarget>(inference::kAllTargets)
          : std::span<const inference::QoeTarget>(options_.targets),
      set);
  stats.vca = std::move(vca);
  stats.backend = backend;
  return backend;
}

void MultiFlowEngine::lruLinkTail(FlowId flow) {
  lruPrev_[flow] = lruTail_;
  lruNext_[flow] = kNoFlow;
  if (lruTail_ != kNoFlow) {
    lruNext_[lruTail_] = flow;
  } else {
    lruHead_ = flow;
  }
  lruTail_ = flow;
}

void MultiFlowEngine::lruUnlink(FlowId flow) {
  if (lruPrev_[flow] != kNoFlow) {
    lruNext_[lruPrev_[flow]] = lruNext_[flow];
  } else {
    lruHead_ = lruNext_[flow];
  }
  if (lruNext_[flow] != kNoFlow) {
    lruPrev_[lruNext_[flow]] = lruPrev_[flow];
  } else {
    lruTail_ = lruPrev_[flow];
  }
  lruPrev_[flow] = kNoFlow;
  lruNext_[flow] = kNoFlow;
}

void MultiFlowEngine::evictIdleFlows() {
  // The LRU head is the least recently dispatched flow. Per-flow last
  // arrival is checked against the engine clock, so a globally
  // arrival-ordered stream evicts exactly the flows whose silence exceeds
  // the timeout.
  while (lruHead_ != kNoFlow &&
         flowStats_[lruHead_].lastArrivalNs + options_.idleTimeoutNs <=
             clock_) {
    evictFlow(lruHead_);
  }
}

void MultiFlowEngine::evictFlow(FlowId flow) {
  lruUnlink(flow);
  flowStats_[flow].evicted = true;
  ++flowsEvicted_;
  flowTable_.erase(flow);
  // The control item rides the same FIFO as the flow's packets, so the
  // worker finalizes the estimator only after every dispatched packet of
  // this generation has been processed.
  Shard& shard = *shards_[flow % shards_.size()];
  shard.pending.push_back(
      Item{flow, /*evict=*/true, /*kick=*/false, netflow::Packet{}, nullptr});
  if (shard.pending.size() >= options_.dispatchBatch) flushPending(shard);
}

void MultiFlowEngine::pump(common::TimeNs nowNs) {
  if (finished_) {
    throw std::logic_error("MultiFlowEngine: pump after finish");
  }
  if (nowNs > clock_) clock_ = nowNs;
  if (options_.idleTimeoutNs > 0) evictIdleFlows();
  netflow::Packet kick;
  kick.arrivalNs = clock_;  // the shard clock is monotone like the engine's
  for (auto& shard : shards_) {
    // The kick rides the same FIFO as packets, so the worker observes it —
    // and runs the batcher deadline check — only after everything
    // dispatched before the pump.
    shard->pending.push_back(
        Item{kNoFlow, /*evict=*/false, /*kick=*/true, kick, nullptr});
    flushPending(*shard);
  }
}

void MultiFlowEngine::flushPending(Shard& shard) {
  if (shard.pending.empty()) return;
  std::vector<Item> batch;
  batch.reserve(options_.dispatchBatch);
  batch.swap(shard.pending);
  {
    common::MutexLock lock(shard.mutex);
    shard.batches.push_back(std::move(batch));
  }
  shard.cv.notify_one();
  ++batchesDispatched_;
}

void MultiFlowEngine::workerLoop(Shard& shard) {
  for (;;) {
    std::vector<Item> batch;
    {
      common::MutexLock lock(shard.mutex);
      while (!shard.done && shard.batches.empty()) shard.cv.wait(shard.mutex);
      if (shard.batches.empty()) break;  // done and drained
      batch = std::move(shard.batches.front());
      shard.batches.pop_front();
    }
    if (shard.error.empty()) {
      try {
        processBatch(shard, batch);
      } catch (const std::exception& e) {
        shard.error = e.what();
      } catch (...) {
        shard.error = "unknown worker exception";
      }
    }
  }
  if (shard.error.empty()) {
    try {
      // FlowId order: finalization output order is a function of the input
      // stream, not of map insertion races (there are none, but be explicit).
      for (auto& [flow, estimator] : shard.estimators) {
        (void)flow;
        estimator.finish();
      }
      if (shard.batcher) shard.batcher->flush();
    } catch (const std::exception& e) {
      shard.error = e.what();
    } catch (...) {
      shard.error = "unknown worker exception";
    }
  }
  runningWorkers_.fetch_sub(1, std::memory_order_release);
}

void MultiFlowEngine::processBatch(Shard& shard,
                                   const std::vector<Item>& batch) {
  bool evicted = false;
  for (const Item& item : batch) {
    if (item.kick) {
      // Pump control item: advance the shard's stream clock so the
      // batcher's deadline check below sees the pumped time.
      if (item.packet.arrivalNs > shard.streamClock) {
        shard.streamClock = item.packet.arrivalNs;
      }
      continue;
    }
    if (item.evict) {
      const auto evictee = shard.estimators.find(item.flow);
      if (evictee != shard.estimators.end()) {
        // Finalize-on-evict: the flow's trailing windows are emitted
        // through the normal result path before the state is dropped.
        evictee->second.finish();
        shard.estimators.erase(evictee);
        evicted = true;
      }
      continue;
    }
    if (item.packet.arrivalNs > shard.streamClock) {
      shard.streamClock = item.packet.arrivalNs;
    }
    auto it = shard.estimators.find(item.flow);
    if (it == shard.estimators.end()) {
      const FlowId flow = item.flow;
      // item.backend and item.featureSet were resolved at admission and
      // ride the generation's first packet; the FIFO guarantees that packet
      // creates the estimator.
      core::StreamingOptions streaming = options_.streaming;
      streaming.featureSet = item.featureSet;
      if (shard.batcher) {
        // Batched inference: the estimator emits prediction-less windows
        // (no backend attached) and the admission backend rides the
        // batcher callback instead, which re-attaches batched predictions.
        it = shard.estimators
                 .try_emplace(
                     flow, std::move(streaming),
                     [&shard, flow, backend = item.backend](
                         const core::StreamingOutput& out) {
                       shard.batcher->add(flow, out, backend,
                                          shard.streamClock);
                     },
                     nullptr)
                 .first;
      } else {
        it = shard.estimators
                 .try_emplace(flow, std::move(streaming),
                              [this, &shard, flow](
                                  const core::StreamingOutput& out) {
                                pushResult(shard, EngineResult{flow, out});
                              },
                              item.backend)
                 .first;
      }
    }
    it->second.onPacket(item.packet);
  }
  if (shard.batcher) {
    if (evicted) {
      // Eviction drains the batcher (the finalize leg of its flush
      // policy): evicted flows' trailing windows must reach poll() even
      // if this shard then goes quiet past the deadline horizon. Once per
      // dispatch batch — an idle sweep evicting K flows shares one flush.
      shard.batcher->flush();
    } else {
      // Dispatch-batch boundary: the deadline half of the flush policy
      // (the size half triggers inside add()).
      shard.batcher->onClock(shard.streamClock);
    }
  }
}

void MultiFlowEngine::pushResult(Shard& shard, EngineResult result) {
  // Back-pressure: the ring is bounded, so a worker that outruns the
  // dispatcher parks until poll()/finish() makes room.
  while (!shard.results->tryPush(std::move(result))) {
    std::this_thread::yield();
  }
}

std::size_t MultiFlowEngine::poll(std::vector<EngineResult>& out) {
  const std::size_t before = out.size();
  drainInto(out);
  const std::size_t drained = out.size() - before;
  resultsMerged_ += drained;
  return drained;
}

void MultiFlowEngine::drainInto(std::vector<EngineResult>& out) {
  for (auto& shard : shards_) {
    while (auto result = shard->results->tryPop()) {
      ++flowStats_[result->flow].windowsEmitted;
      if (flowStats_[result->flow].featureSet == features::FeatureSet::kRtp) {
        ++windowsRtp_;
      } else {
        ++windowsIpUdp_;
      }
      out.push_back(std::move(*result));
    }
  }
}

std::vector<EngineResult> MultiFlowEngine::finish() {
  if (finished_) return {};
  finished_ = true;

  for (auto& shard : shards_) {
    flushPending(*shard);
    {
      common::MutexLock lock(shard->mutex);
      shard->done = true;
    }
    shard->cv.notify_one();
  }

  // Keep draining while the pool winds down: a worker blocked on a full
  // result ring can only exit once we make room.
  std::vector<EngineResult> merged;
  while (runningWorkers_.load(std::memory_order_acquire) > 0) {
    drainInto(merged);
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  drainInto(merged);
  throwIfWorkerFailed();

  // Deterministic merge: bucket by flow (per-flow order is already correct,
  // single shard per flow), then concatenate in flow-id order.
  std::vector<std::vector<EngineResult>> byFlow(flowTable_.size());
  for (auto& result : merged) {
    byFlow[result.flow].push_back(std::move(result));
  }
  std::vector<EngineResult> ordered;
  ordered.reserve(merged.size());
  for (auto& bucket : byFlow) {
    for (auto& result : bucket) ordered.push_back(std::move(result));
  }
  resultsMerged_ += ordered.size();
  return ordered;
}

void MultiFlowEngine::throwIfWorkerFailed() const {
  for (const auto& shard : shards_) {
    if (!shard->error.empty()) {
      throw std::runtime_error("MultiFlowEngine worker failed: " +
                               shard->error);
    }
  }
}

EngineStats MultiFlowEngine::stats() const {
  EngineStats stats;
  stats.packetsIngested = packetsIngested_;
  stats.batchesDispatched = batchesDispatched_;
  stats.resultsMerged = resultsMerged_;
  stats.flows = flowTable_.size();
  stats.activeFlows = flowTable_.activeSize();
  stats.flowsEvicted = flowsEvicted_;
  stats.windowsIpUdp = windowsIpUdp_;
  stats.windowsRtp = windowsRtp_;
  for (const auto& shard : shards_) {
    if (!shard->batcher) continue;
    stats.batchedWindows += shard->batcher->batchedWindows();
    stats.inferenceBatches += shard->batcher->inferenceBatches();
  }
  if (options_.registry) stats.registry = options_.registry->stats();
  return stats;
}

}  // namespace vcaqoe::engine
