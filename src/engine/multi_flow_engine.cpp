#include "engine/multi_flow_engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace vcaqoe::engine {

namespace {

/// Best-effort round-robin core pinning for shard worker `index`. Failure
/// (e.g. a cpuset restricting the process below hardware_concurrency) is
/// ignored: pinning is a throughput hint, never a correctness dependency.
void pinThreadRoundRobin([[maybe_unused]] std::thread& thread,
                         [[maybe_unused]] std::size_t index) {
#if defined(__linux__)
  // Deliberately not hardwareThreadsOr: when the CPU count is unknowable,
  // pinning every worker to CPU 0 would be worse than not pinning at all.
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cpus), &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#endif
}

/// How many dispatch batches between migration scans: the imbalance scan
/// walks the live-flow list, so it must not run per packet. Low enough to
/// react within a few batches, high enough to amortize the walk.
constexpr std::uint64_t kMigrateScanEveryBatches = 4;

}  // namespace

std::optional<Placement> placementFromString(std::string_view text) {
  if (text == "hash") return Placement::kHash;
  if (text == "least-loaded") return Placement::kLeastLoaded;
  return std::nullopt;
}

MultiFlowEngine::MultiFlowEngine(EngineOptions options)
    : options_(std::move(options)),
      classifier_(options_.streaming.classifier) {
  if (options_.streaming.windowNs <= 0) {
    // Estimators are created lazily on the workers; a bad window size must
    // fail here, at engine construction, not as a worker error mid-stream.
    throw std::invalid_argument("MultiFlowEngine: windowNs must be positive");
  }
  int workers = options_.numWorkers;
  if (workers <= 0) {
    workers = static_cast<int>(common::hardwareThreadsOr(1));
  }
  if (options_.dispatchBatch == 0) options_.dispatchBatch = 1;
  if (options_.expectedFlows > 0) flowTable_.reserve(options_.expectedFlows);

  shards_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->results =
        std::make_unique<SpscRing<EngineResult>>(options_.resultRingCapacity);
    shard->pending.reserve(options_.dispatchBatch);
    // No registry means no backend can ever resolve: routing windows
    // through the batcher would add copy/latency for zero predictions.
    if (options_.inferenceBatch > 1 && options_.registry) {
      InferenceBatcher::Options batcherOptions;
      batcherOptions.batchSize = options_.inferenceBatch;
      batcherOptions.flushNs = std::max<common::DurationNs>(
          options_.inferenceFlushNs, 0);
      auto* raw = shard.get();
      shard->batcher = std::make_unique<InferenceBatcher>(
          batcherOptions,
          [this, raw](FlowId flow, core::StreamingOutput&& out) {
            pushResult(*raw, EngineResult{flow, std::move(out)});
          });
    }
    shards_.push_back(std::move(shard));
  }
  runningWorkers_.store(workers, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { workerLoop(*raw); });
  }
  if (options_.pinWorkers) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      pinThreadRoundRobin(shards_[i]->thread, i);
    }
  }
}

MultiFlowEngine::~MultiFlowEngine() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; worker errors are lost at this point.
  }
}

void MultiFlowEngine::onPacket(const netflow::FlowKey& key,
                               const netflow::Packet& packet) {
  if (finished_) {
    throw std::logic_error("MultiFlowEngine: onPacket after finish");
  }
  maybeCompleteMigration();
  FlowId flow;
  if (const auto cached = demuxCache_.lookup(key)) {
    // Bursty interleaves make this the common case: one array compare
    // instead of the flow-table hash probe.
    flow = *cached;
  } else {
    flow = flowTable_.intern(key);
    demuxCache_.remember(key, flow);
  }
  core::StreamingEstimator::BackendPtr admissionBackend;
  features::FeatureSet admissionSet = options_.streaming.featureSet;
  const bool admitted = flow >= flowStats_.size();
  if (admitted) {
    // First packet of a fresh flow generation: resolve the flow's feature
    // set and inference backend now, while the 5-tuple is at hand — a
    // returning (evicted) flow is a fresh generation and re-resolves here
    // too.
    FlowStats stats;
    stats.key = key;
    stats.firstArrivalNs = packet.arrivalNs;
    if (options_.featureSetResolver) {
      admissionSet = options_.featureSetResolver(key);
    }
    stats.featureSet = admissionSet;
    admissionBackend = resolveBackend(key, stats, admissionSet);
    flowStats_.push_back(std::move(stats));
    lruPrev_.push_back(kNoFlow);
    lruNext_.push_back(kNoFlow);
    lruLinkTail(flow);
    const std::size_t placed = placeNewFlow(flow);
    shardOf_.push_back(static_cast<std::uint32_t>(placed));
    ++shards_[placed]->residentFlows;
  } else {
    lruUnlink(flow);
    lruLinkTail(flow);
  }
  FlowStats& stats = flowStats_[flow];
  ++stats.packets;
  stats.bytes += packet.sizeBytes;
  stats.lastArrivalNs = packet.arrivalNs;
  ++packetsIngested_;
  if (packet.arrivalNs > clock_) clock_ = packet.arrivalNs;
  if (options_.idleTimeoutNs > 0) evictIdleFlows();

  if (migration_ && migration_->flow == flow) {
    // The flow is mid-handover: park the packet so its stream has a clean
    // cut — everything before the kMigrateOut runs on the source shard,
    // everything parked here replays on the target right after the
    // estimator lands there.
    migration_->parked.push_back(packet);
    return;
  }

  // A flow lives on exactly one shard at a time (`shardOf_`), so per-flow
  // packet order survives the fan-out under any placement policy. (A
  // re-interned generation may land on a different shard; its id is fresh,
  // so no state aliases.)
  Shard& shard = *shards_[shardOf_[flow]];
  Item item;
  item.flow = flow;
  item.packet = packet;
  item.backend = std::move(admissionBackend);
  item.featureSet = admissionSet;
  shard.pending.push_back(std::move(item));
  ++shard.packetsDispatched;
  if (shard.pending.size() >= options_.dispatchBatch) {
    flushPending(shard);
    // Dispatch-batch boundary: the migration safe point.
    maybeStartMigration();
  }
}

core::StreamingEstimator::BackendPtr MultiFlowEngine::resolveBackend(
    const netflow::FlowKey& key, FlowStats& stats,
    features::FeatureSet set) const {
  if (!options_.registry) return nullptr;
  std::string vca;
  if (options_.vcaResolver) {
    vca = options_.vcaResolver(key);
  } else {
    vca = std::string(core::toString(classifier_.classifyVca(key)));
  }
  auto backend = options_.registry->resolveSet(
      vca,
      options_.targets.empty()
          ? std::span<const inference::QoeTarget>(inference::kAllTargets)
          : std::span<const inference::QoeTarget>(options_.targets),
      set);
  stats.vca = std::move(vca);
  stats.backend = backend;
  return backend;
}

std::uint64_t MultiFlowEngine::shardBacklog(const Shard& shard) const {
  const std::uint64_t processed =
      shard.packetsProcessed.load(std::memory_order_relaxed);
  // The worker's counter trails the dispatcher's, so this never wraps; the
  // guard is belt-and-braces against a torn read on exotic platforms.
  return shard.packetsDispatched > processed
             ? shard.packetsDispatched - processed
             : 0;
}

std::size_t MultiFlowEngine::placeNewFlow(FlowId flow) const {
  if (options_.placement == Placement::kHash || shards_.size() == 1) {
    return flow % shards_.size();
  }
  // Least-loaded: backlog dominates under load; resident flows break ties
  // between idle shards so a quiet start still spreads round-robin-ish.
  std::size_t best = 0;
  std::uint64_t bestScore = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t score =
        shardBacklog(*shards_[i]) + shards_[i]->residentFlows;
    if (score < bestScore) {
      bestScore = score;
      best = i;
    }
  }
  return best;
}

void MultiFlowEngine::maybeStartMigration() {
  if (!options_.migrateFlows || migration_ || shards_.size() < 2) return;
  if (batchesDispatched_ - lastMigrateScanBatch_ < kMigrateScanEveryBatches) {
    return;
  }
  lastMigrateScanBatch_ = batchesDispatched_;
  std::size_t maxShard = 0;
  std::size_t minShard = 0;
  std::uint64_t maxBacklog = 0;
  std::uint64_t minBacklog = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t backlog = shardBacklog(*shards_[i]);
    if (backlog > maxBacklog) {
      maxBacklog = backlog;
      maxShard = i;
    }
    if (backlog < minBacklog) {
      minBacklog = backlog;
      minShard = i;
    }
  }
  if (maxShard == minShard) return;
  // Trigger policy: enough work queued for the move to matter at all, and
  // the configured skew ratio exceeded (min+1 so an idle shard divides).
  if (maxBacklog < options_.dispatchBatch) return;
  if (static_cast<double>(maxBacklog) <
      options_.migrateImbalance * static_cast<double>(minBacklog + 1)) {
    return;
  }
  if (shards_[maxShard]->residentFlows < 2) {
    // Moving a shard's only flow just relocates the hotspot.
    return;
  }
  // Victim: the heaviest live flow on the overloaded shard. The LRU chain
  // links exactly the live flows, so the walk is bounded by concurrency,
  // and the scan-throttle above keeps it off the per-packet path.
  FlowId victim = kNoFlow;
  std::uint64_t victimPackets = 0;
  for (FlowId f = lruHead_; f != kNoFlow; f = lruNext_[f]) {
    if (shardOf_[f] != maxShard) continue;
    if (flowStats_[f].packets > victimPackets) {
      victim = f;
      victimPackets = flowStats_[f].packets;
    }
  }
  if (victim == kNoFlow) return;

  auto ticket = std::make_shared<MigrationTicket>();
  PendingMigration migration;
  migration.flow = victim;
  migration.from = maxShard;
  migration.to = minShard;
  migration.ticket = ticket;
  migration_ = std::move(migration);

  // The quiesce request rides the source FIFO behind every packet of the
  // flow dispatched so far; flush immediately so the worker reaches it
  // without waiting for the pending buffer to fill.
  Shard& src = *shards_[maxShard];
  Item item;
  item.flow = victim;
  item.kind = Item::Kind::kMigrateOut;
  item.ticket = std::move(ticket);
  src.pending.push_back(std::move(item));
  flushPending(src);
}

void MultiFlowEngine::maybeCompleteMigration() {
  if (!migration_ ||
      !migration_->ticket->ready.load(std::memory_order_acquire)) {
    return;
  }
  Shard& src = *shards_[migration_->from];
  Shard& dst = *shards_[migration_->to];
  const FlowId flow = migration_->flow;
  // Every window the flow emitted on the source sits in its ring now (the
  // worker flushed the batcher before publishing the ticket). Stash the
  // ring so the next poll()/finish() delivers these ahead of anything the
  // target emits — per-flow order survives the shard switch.
  drainShard(src, stash_);

  Item install;
  install.flow = flow;
  install.kind = Item::Kind::kMigrateIn;
  install.ticket = migration_->ticket;
  install.backend = flowStats_[flow].backend;
  install.featureSet = flowStats_[flow].featureSet;
  dst.pending.push_back(std::move(install));
  // Replay the packets parked during the handover, in arrival order,
  // behind the install item; subsequent packets route here directly.
  for (const auto& packet : migration_->parked) {
    Item item;
    item.flow = flow;
    item.packet = packet;
    dst.pending.push_back(std::move(item));
    ++dst.packetsDispatched;
  }
  shardOf_[flow] = static_cast<std::uint32_t>(migration_->to);
  --src.residentFlows;
  ++dst.residentFlows;
  ++src.migrationsOut;
  ++dst.migrationsIn;
  ++migrationsDone_;
  migration_.reset();
  if (dst.pending.size() >= options_.dispatchBatch) flushPending(dst);
}

void MultiFlowEngine::lruLinkTail(FlowId flow) {
  lruPrev_[flow] = lruTail_;
  lruNext_[flow] = kNoFlow;
  if (lruTail_ != kNoFlow) {
    lruNext_[lruTail_] = flow;
  } else {
    lruHead_ = flow;
  }
  lruTail_ = flow;
}

void MultiFlowEngine::lruUnlink(FlowId flow) {
  if (lruPrev_[flow] != kNoFlow) {
    lruNext_[lruPrev_[flow]] = lruNext_[flow];
  } else {
    lruHead_ = lruNext_[flow];
  }
  if (lruNext_[flow] != kNoFlow) {
    lruPrev_[lruNext_[flow]] = lruPrev_[flow];
  } else {
    lruTail_ = lruPrev_[flow];
  }
  lruPrev_[flow] = kNoFlow;
  lruNext_[flow] = kNoFlow;
}

void MultiFlowEngine::evictIdleFlows() {
  // The LRU head is the least recently dispatched flow. Per-flow last
  // arrival is checked against the engine clock, so a globally
  // arrival-ordered stream evicts exactly the flows whose silence exceeds
  // the timeout.
  while (lruHead_ != kNoFlow &&
         flowStats_[lruHead_].lastArrivalNs + options_.idleTimeoutNs <=
             clock_) {
    if (migration_ && migration_->flow == lruHead_) {
      // Mid-handover: its estimator is in flight between shards, so there
      // is nowhere to send an evict item yet. The next sweep (migrations
      // resolve within a few batches) reclaims it.
      break;
    }
    evictFlow(lruHead_);
  }
}

void MultiFlowEngine::evictFlow(FlowId flow) {
  lruUnlink(flow);
  flowStats_[flow].evicted = true;
  ++flowsEvicted_;
  // The demux cache must never serve a retired generation.
  demuxCache_.forget(flowTable_.keyOf(flow));
  flowTable_.erase(flow);
  // The control item rides the same FIFO as the flow's packets, so the
  // worker finalizes the estimator only after every dispatched packet of
  // this generation has been processed.
  Shard& shard = *shards_[shardOf_[flow]];
  --shard.residentFlows;
  Item item;
  item.flow = flow;
  item.kind = Item::Kind::kEvict;
  shard.pending.push_back(std::move(item));
  if (shard.pending.size() >= options_.dispatchBatch) flushPending(shard);
}

void MultiFlowEngine::pump(common::TimeNs nowNs) {
  if (finished_) {
    throw std::logic_error("MultiFlowEngine: pump after finish");
  }
  maybeCompleteMigration();
  if (nowNs > clock_) clock_ = nowNs;
  if (options_.idleTimeoutNs > 0) evictIdleFlows();
  netflow::Packet kick;
  kick.arrivalNs = clock_;  // the shard clock is monotone like the engine's
  for (auto& shard : shards_) {
    // The kick rides the same FIFO as packets, so the worker observes it —
    // and runs the batcher deadline check — only after everything
    // dispatched before the pump.
    Item item;
    item.flow = kNoFlow;
    item.kind = Item::Kind::kKick;
    item.packet = kick;
    shard->pending.push_back(std::move(item));
    flushPending(*shard);
  }
}

void MultiFlowEngine::flushPending(Shard& shard) {
  if (shard.pending.empty()) return;
  std::vector<Item> batch;
  batch.reserve(options_.dispatchBatch);
  batch.swap(shard.pending);
  {
    common::MutexLock lock(shard.mutex);
    shard.batches.push_back(std::move(batch));
  }
  shard.cv.notify_one();
  ++batchesDispatched_;
}

void MultiFlowEngine::workerLoop(Shard& shard) {
  for (;;) {
    std::vector<Item> batch;
    {
      common::MutexLock lock(shard.mutex);
      while (!shard.done && shard.batches.empty()) shard.cv.wait(shard.mutex);
      if (shard.batches.empty()) break;  // done and drained
      batch = std::move(shard.batches.front());
      shard.batches.pop_front();
    }
    if (shard.error.empty()) {
      try {
        processBatch(shard, batch);
      } catch (const std::exception& e) {
        shard.error = e.what();
      } catch (...) {
        shard.error = "unknown worker exception";
      }
    }
  }
  if (shard.error.empty()) {
    try {
      // FlowId order: finalization output order is a function of the input
      // stream, not of map insertion races (there are none, but be explicit).
      for (auto& [flow, estimator] : shard.estimators) {
        (void)flow;
        estimator.finish();
      }
      if (shard.batcher) shard.batcher->flush();
    } catch (const std::exception& e) {
      shard.error = e.what();
    } catch (...) {
      shard.error = "unknown worker exception";
    }
  }
  runningWorkers_.fetch_sub(1, std::memory_order_release);
}

void MultiFlowEngine::processBatch(Shard& shard,
                                   const std::vector<Item>& batch) {
  const auto wallStart = std::chrono::steady_clock::now();
  std::uint64_t packetItems = 0;
  bool evicted = false;
  for (const Item& item : batch) {
    switch (item.kind) {
      case Item::Kind::kKick:
        // Pump control item: advance the shard's stream clock so the
        // batcher's deadline check below sees the pumped time.
        if (item.packet.arrivalNs > shard.streamClock) {
          shard.streamClock = item.packet.arrivalNs;
        }
        continue;
      case Item::Kind::kEvict: {
        const auto evictee = shard.estimators.find(item.flow);
        if (evictee != shard.estimators.end()) {
          // Finalize-on-evict: the flow's trailing windows are emitted
          // through the normal result path before the state is dropped.
          evictee->second.finish();
          shard.estimators.erase(evictee);
          evicted = true;
        }
        continue;
      }
      case Item::Kind::kMigrateOut: {
        // Quiesce: the FIFO guarantees every dispatched packet of the flow
        // was processed above/before this item. Flush the batcher so every
        // window the flow emitted here reaches the ring, hand the estimator
        // over, publish. The dispatcher picks the ticket up at its next
        // safe point.
        if (shard.batcher) shard.batcher->flush();
        auto node = shard.estimators.extract(item.flow);
        if (node.empty()) {
          throw std::logic_error(
              "MultiFlowEngine: migrate-out for a flow with no estimator");
        }
        item.ticket->estimator.emplace(std::move(node.mapped()));
        item.ticket->ready.store(true, std::memory_order_release);
        continue;
      }
      case Item::Kind::kMigrateIn: {
        // Install: `ready` was acquire-checked by the dispatcher before it
        // routed this item, so the estimator is here, fully quiesced.
        if (!item.ticket->estimator.has_value()) {
          throw std::logic_error(
              "MultiFlowEngine: migrate-in with an empty ticket");
        }
        core::StreamingEstimator estimator =
            std::move(*item.ticket->estimator);
        item.ticket->estimator.reset();
        const FlowId flow = item.flow;
        // Rebind the emission callback to THIS shard — the old one
        // referenced the source shard's ring/batcher. Same capture shapes
        // as estimator creation below.
        if (shard.batcher) {
          estimator.rebindCallback(
              [&shard, flow, backend = item.backend](
                  const core::StreamingOutput& out) {
                shard.batcher->add(flow, out, backend, shard.streamClock);
              });
        } else {
          estimator.rebindCallback(
              [this, &shard, flow](const core::StreamingOutput& out) {
                pushResult(shard, EngineResult{flow, out});
              });
        }
        shard.estimators.try_emplace(flow, std::move(estimator));
        continue;
      }
      case Item::Kind::kPacket:
        break;
    }
    ++packetItems;
    if (item.packet.arrivalNs > shard.streamClock) {
      shard.streamClock = item.packet.arrivalNs;
    }
    auto it = shard.estimators.find(item.flow);
    if (it == shard.estimators.end()) {
      const FlowId flow = item.flow;
      // item.backend and item.featureSet were resolved at admission and
      // ride the generation's first packet; the FIFO guarantees that packet
      // creates the estimator.
      core::StreamingOptions streaming = options_.streaming;
      streaming.featureSet = item.featureSet;
      if (shard.batcher) {
        // Batched inference: the estimator emits prediction-less windows
        // (no backend attached) and the admission backend rides the
        // batcher callback instead, which re-attaches batched predictions.
        it = shard.estimators
                 .try_emplace(
                     flow, std::move(streaming),
                     [&shard, flow, backend = item.backend](
                         const core::StreamingOutput& out) {
                       shard.batcher->add(flow, out, backend,
                                          shard.streamClock);
                     },
                     nullptr)
                 .first;
      } else {
        it = shard.estimators
                 .try_emplace(flow, std::move(streaming),
                              [this, &shard, flow](
                                  const core::StreamingOutput& out) {
                                pushResult(shard, EngineResult{flow, out});
                              },
                              item.backend)
                 .first;
      }
    }
    it->second.onPacket(item.packet);
  }
  if (shard.batcher) {
    if (evicted) {
      // Eviction drains the batcher (the finalize leg of its flush
      // policy): evicted flows' trailing windows must reach poll() even
      // if this shard then goes quiet past the deadline horizon. Once per
      // dispatch batch — an idle sweep evicting K flows shares one flush.
      shard.batcher->flush();
    } else {
      // Dispatch-batch boundary: the deadline half of the flush policy
      // (the size half triggers inside add()).
      shard.batcher->onClock(shard.streamClock);
    }
  }
  // Publish this batch's load sample (relaxed: the dispatcher's placement
  // heuristics tolerate stale values; only tear-freedom matters).
  if (packetItems > 0) {
    shard.packetsProcessed.fetch_add(packetItems, std::memory_order_relaxed);
  }
  const double batchNs =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - wallStart)
                              .count());
  shard.batchEwma.update(batchNs);
  shard.batchEwmaNsBits.store(std::bit_cast<std::uint64_t>(
                                  shard.batchEwma.value()),
                              std::memory_order_relaxed);
}

void MultiFlowEngine::pushResult(Shard& shard, EngineResult result) {
  // Back-pressure: the ring is bounded, so a worker that outruns the
  // dispatcher parks until poll()/finish() makes room.
  while (!shard.results->tryPush(std::move(result))) {
    std::this_thread::yield();
  }
}

std::size_t MultiFlowEngine::poll(std::vector<EngineResult>& out) {
  if (!finished_) maybeCompleteMigration();
  const std::size_t before = out.size();
  // Results stashed at a migration handover go first: they are the
  // migrated flow's source-side windows, which must precede anything its
  // new shard emits.
  for (auto& result : stash_) out.push_back(std::move(result));
  stash_.clear();
  drainInto(out);
  const std::size_t drained = out.size() - before;
  resultsMerged_ += drained;
  return drained;
}

void MultiFlowEngine::drainShard(Shard& shard,
                                 std::vector<EngineResult>& out) {
  while (auto result = shard.results->tryPop()) {
    ++flowStats_[result->flow].windowsEmitted;
    if (flowStats_[result->flow].featureSet == features::FeatureSet::kRtp) {
      ++windowsRtp_;
    } else {
      ++windowsIpUdp_;
    }
    out.push_back(std::move(*result));
  }
}

void MultiFlowEngine::drainInto(std::vector<EngineResult>& out) {
  for (auto& shard : shards_) drainShard(*shard, out);
}

std::vector<EngineResult> MultiFlowEngine::finish() {
  if (finished_) return {};
  finished_ = true;

  // Resolve an in-flight migration first: the parked packets must reach
  // the target shard before the pools wind down. Keep draining while we
  // wait — the source worker may be parked on a full result ring.
  std::vector<EngineResult> merged;
  while (migration_) {
    maybeCompleteMigration();
    if (migration_) {
      drainInto(merged);
      std::this_thread::yield();
    }
  }
  for (auto& result : stash_) merged.push_back(std::move(result));
  stash_.clear();

  for (auto& shard : shards_) {
    flushPending(*shard);
    {
      common::MutexLock lock(shard->mutex);
      shard->done = true;
    }
    shard->cv.notify_one();
  }

  // Keep draining while the pool winds down: a worker blocked on a full
  // result ring can only exit once we make room.
  while (runningWorkers_.load(std::memory_order_acquire) > 0) {
    drainInto(merged);
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  drainInto(merged);
  throwIfWorkerFailed();

  // Deterministic merge: bucket by flow (per-flow order is already correct
  // — one shard at a time per flow, and migration stashes preserved it),
  // then concatenate in flow-id order.
  std::vector<std::vector<EngineResult>> byFlow(flowTable_.size());
  for (auto& result : merged) {
    byFlow[result.flow].push_back(std::move(result));
  }
  std::vector<EngineResult> ordered;
  ordered.reserve(merged.size());
  for (auto& bucket : byFlow) {
    for (auto& result : bucket) ordered.push_back(std::move(result));
  }
  resultsMerged_ += ordered.size();
  return ordered;
}

void MultiFlowEngine::throwIfWorkerFailed() const {
  for (const auto& shard : shards_) {
    if (!shard->error.empty()) {
      throw std::runtime_error("MultiFlowEngine worker failed: " +
                               shard->error);
    }
  }
}

EngineStats MultiFlowEngine::stats() const {
  EngineStats stats;
  stats.packetsIngested = packetsIngested_;
  stats.batchesDispatched = batchesDispatched_;
  stats.resultsMerged = resultsMerged_;
  stats.flows = flowTable_.size();
  stats.activeFlows = flowTable_.activeSize();
  stats.flowsEvicted = flowsEvicted_;
  stats.windowsIpUdp = windowsIpUdp_;
  stats.windowsRtp = windowsRtp_;
  for (const auto& shard : shards_) {
    if (!shard->batcher) continue;
    stats.batchedWindows += shard->batcher->batchedWindows();
    stats.inferenceBatches += shard->batcher->inferenceBatches();
  }
  if (options_.registry) stats.registry = options_.registry->stats();
  stats.shardLoads.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardLoadStats load;
    load.packetsDispatched = shard->packetsDispatched;
    load.packetsProcessed =
        shard->packetsProcessed.load(std::memory_order_relaxed);
    load.backlog = shardBacklog(*shard);
    load.residentFlows = shard->residentFlows;
    load.ewmaBatchNs =
        std::bit_cast<double>(shard->batchEwmaNsBits.load(
            std::memory_order_relaxed));
    load.migrationsIn = shard->migrationsIn;
    load.migrationsOut = shard->migrationsOut;
    stats.shardLoads.push_back(load);
  }
  stats.migrations = migrationsDone_;
  stats.demuxCacheLookups = demuxCache_.lookups();
  stats.demuxCacheHits = demuxCache_.hits();
  return stats;
}

}  // namespace vcaqoe::engine
