#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/load.hpp"
#include "common/thread_annotations.hpp"
#include "core/streaming.hpp"
#include "engine/flow_table.hpp"
#include "engine/inference_batcher.hpp"
#include "engine/spsc_ring.hpp"
#include "inference/model_registry.hpp"
#include "netflow/packet.hpp"

/// Sharded multi-flow streaming inference.
///
/// §7 of the paper asks for network-scale deployment of the streaming
/// methods. `MultiFlowEngine` is that step: it takes the interleaved packet
/// stream of many concurrent VCA sessions, demultiplexes it by 5-tuple with a
/// `FlowTable` (fronted by a direct-mapped last-flow cache), and shards the
/// flows across a fixed pool of worker threads. Each shard owns one
/// `core::StreamingEstimator` per flow and an SPSC result ring; the caller
/// thread merges the rings into one result stream. Placement is
/// load-adaptive on request (`EngineOptions::placement`, `migrateFlows`):
/// the dispatcher samples per-shard load counters lock-free, admits new
/// flows to the least-loaded shard, and migrates a resident flow off an
/// overloaded shard at dispatch-batch boundaries — all without changing any
/// flow's output.
/// Flows may run different feature sets side by side
/// (`EngineOptions::featureSetResolver`); each flow's set is fixed at
/// admission for its whole generation.
///
/// Determinism contract (tested property): for every flow, the sequence of
/// `StreamingOutput`s produced by the engine is bit-identical to feeding that
/// flow's packets through a standalone `StreamingEstimator` configured with
/// the flow's resolved feature set, regardless of worker count or thread
/// timing. `finish()` additionally orders the merged stream by
/// (flow id, window), which is a pure function of the input.
///
/// Flow lifecycle: with `idleTimeoutNs` set, a flow whose last packet is
/// older than the timeout (against the engine clock — the max arrival seen)
/// is evicted: its estimator is finalized on its shard (the trailing window
/// results are emitted like any other result) and both the estimator and the
/// `FlowTable` hash entry are freed. The *heavy* per-flow state (estimator
/// windows/frames, table entry) is thus bounded by concurrent flows; what a
/// long run accumulates is one constant-size `FlowStats` record plus the
/// retired id per generation — deliberately retained so the dashboard can
/// still report sessions that went idle and were reclaimed. A returning
/// flow is a fresh generation with a fresh id and estimator.
namespace vcaqoe::engine {

/// Whether `EngineOptions::pinWorkers` can take effect on this platform
/// (pthread_setaffinity_np). The flag is accepted everywhere; off-platform
/// it is a no-op.
#if defined(__linux__)
inline constexpr bool kWorkerPinningSupported = true;
#else
inline constexpr bool kWorkerPinningSupported = false;
#endif

/// How the dispatcher picks a shard for a newly admitted flow. Placement is
/// pure routing: the determinism contract is per-flow, so any policy (and
/// any migration afterwards) yields bit-identical per-flow output — only
/// which worker runs the flow changes. Covered by the placement legs of the
/// determinism suites.
enum class Placement {
  /// Static `flow % shards` — the seed behavior and the default.
  kHash,
  /// Least-loaded shard by the live load score (backlog + resident flows),
  /// sampled lock-free from the per-shard counters.
  kLeastLoaded,
};

constexpr std::string_view toString(Placement placement) {
  return placement == Placement::kLeastLoaded ? "least-loaded" : "hash";
}

/// Parses the CLI spelling ("hash" | "least-loaded"); nullopt on anything
/// else so callers can reject unknown values loudly.
std::optional<Placement> placementFromString(std::string_view text);

struct EngineOptions {
  /// Per-flow streaming estimator configuration (window size, feature set,
  /// Algorithm 1 parameters, feature extraction).
  core::StreamingOptions streaming;
  /// Per-flow feature-set resolution at admission: returns the feature
  /// family the flow's estimator computes (and the registry key leg its
  /// models resolve under). Null means every flow runs
  /// `streaming.featureSet`. Like `vcaResolver`, it sees the 5-tuple —
  /// e.g. route flows of an RTP-speaking VCA's media port to kRtp and
  /// everything else to kIpUdp.
  std::function<features::FeatureSet(const netflow::FlowKey&)>
      featureSetResolver;
  /// Worker threads (= shards). 0 or negative means hardware_concurrency.
  int numWorkers = 4;
  /// Pin each shard's worker thread to one CPU, round-robin over the
  /// online CPUs (shard i -> CPU i mod N). Best effort and Linux-only
  /// (`kWorkerPinningSupported`); elsewhere, and on affinity errors, the
  /// engine runs unpinned. Purely a placement hint for the scheduler:
  /// output is bit-identical pinned or unpinned at any worker count
  /// (covered by the determinism suites).
  bool pinWorkers = false;
  /// Packets buffered per shard on the dispatcher side before the batch is
  /// handed to the worker; amortizes queue synchronization.
  std::size_t dispatchBatch = 256;
  /// Capacity of each shard's result ring. Workers back-pressure (yield)
  /// when their ring is full and nobody drains it.
  std::size_t resultRingCapacity = 4096;
  /// Warm-model registry shared across flows (and engines): at flow
  /// admission the flow's VCA classification keys a `resolveSet` for
  /// `targets`, and the resolved immutable backend serves the flow for its
  /// whole generation. Null disables inference entirely.
  std::shared_ptr<inference::ModelRegistry> registry;
  /// Targets resolved per flow at admission. Empty = every `QoeTarget`.
  /// Ignored without a registry.
  std::vector<inference::QoeTarget> targets;
  /// Overrides the VCA classification used as the registry key. Default:
  /// the `MediaClassifier` port-prior verdict on the flow's 5-tuple.
  std::function<std::string(const netflow::FlowKey&)> vcaResolver;
  /// Evict flows idle longer than this, measured in stream time (the max
  /// packet arrival seen so far). 0 disables eviction.
  common::DurationNs idleTimeoutNs = 0;
  /// Cross-flow inference batching: windows emitted on a shard are held (up
  /// to this many) and predicted with one `predictWindowBatch` per backend
  /// instead of one virtual call per window. <= 1 keeps per-window
  /// inference inside the estimator; ignored without a registry (nothing
  /// to predict). Output is bit-identical either way; batching only
  /// changes how the same predictions are computed.
  std::size_t inferenceBatch = 1;
  /// Stream-time bound on how long a window may sit in a shard's batch
  /// before a flush is forced (checked at dispatch-batch boundaries). 0 =
  /// flush at every dispatch-batch boundary (lowest latency). Ignored
  /// without batching.
  common::DurationNs inferenceFlushNs = 0;
  /// Shard selection for newly admitted flows. `kLeastLoaded` reads the
  /// per-shard load counters (lock-free) and admits to the least-loaded
  /// shard, so a burst of new sessions spreads by actual load instead of id
  /// arithmetic. Per-flow output is bit-identical either way.
  Placement placement = Placement::kHash;
  /// Rebalance live flows: when the dispatcher observes backlog imbalance
  /// beyond `migrateImbalance` at a dispatch-batch boundary, it migrates
  /// one resident flow from the most- to the least-loaded shard through a
  /// quiesce-and-handover protocol that preserves per-flow order (and
  /// therefore bit-identical output — see "Migration safe points" in the
  /// README). Off by default: a uniform workload never needs it, and the
  /// elephant-flow case it exists for is opt-in observable via
  /// `EngineStats::migrations`.
  bool migrateFlows = false;
  /// Migration trigger: the max shard backlog must exceed this multiple of
  /// the min backlog (plus one, so an idle shard doesn't divide by zero)
  /// before a migration is considered. Values <= 1 effectively migrate on
  /// any imbalance; the default demands a 4x skew.
  double migrateImbalance = 4.0;
  /// Expected concurrent flows, used to pre-size the `FlowTable` (buckets
  /// and id sidecars) so steady ingest never rehashes. 0 = no pre-sizing.
  std::size_t expectedFlows = 0;
};

/// Flush deadline that lets a batch of `batch` windows actually fill: a
/// flow completes roughly one window per second of stream time, so any
/// shorter deadline (or the default flush-every-dispatch-boundary, 0) caps
/// the effective batch below the configured size. The benches and the
/// monitor CLI use this when they want the size knob to bind; keep 0 when
/// result latency matters more than batch occupancy.
constexpr common::DurationNs scaledInferenceFlushNs(std::size_t batch) {
  return batch > 1
             ? static_cast<common::DurationNs>(batch) * common::kNanosPerSecond
             : 0;
}

/// One completed window of one flow.
struct EngineResult {
  FlowId flow = 0;
  core::StreamingOutput output;
};

/// Per-flow accounting kept by the dispatcher for the lifetime of the
/// engine. It survives eviction — an ISP dashboard can still report a
/// session that went idle and was reclaimed.
struct FlowStats {
  netflow::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  ///< sum of UDP payload sizes
  std::uint64_t windowsEmitted = 0;
  common::TimeNs firstArrivalNs = 0;
  common::TimeNs lastArrivalNs = 0;
  bool evicted = false;
  /// Feature family this flow generation's estimator computed (resolved at
  /// admission; also the registry key leg its models resolved under).
  features::FeatureSet featureSet = features::FeatureSet::kIpUdp;
  /// VCA classification that keyed the registry at admission ("" without a
  /// registry; the built-in verdicts are SSO-short, so no per-flow heap).
  std::string vca;
  /// The shared immutable backend the flow resolved to at admission (null
  /// without a registry). Held by pointer — a handful of instances serve
  /// millions of generations, so this adds no per-flow allocation; use
  /// `backendName()` for dashboards.
  std::shared_ptr<const inference::InferenceBackend> backend;

  std::string_view backendName() const {
    return backend ? std::string_view(backend->name()) : std::string_view();
  }
};

/// One shard's load vector, sampled by the dispatcher from the counters the
/// worker publishes (lock-free: the worker-side counters are relaxed
/// atomics, the dispatcher-side ones are dispatcher-confined).
struct ShardLoadStats {
  /// Packets the dispatcher has queued to this shard (pending + batched).
  std::uint64_t packetsDispatched = 0;
  /// Packets the shard's worker has finished processing.
  std::uint64_t packetsProcessed = 0;
  /// `packetsDispatched - packetsProcessed` at sampling time.
  std::uint64_t backlog = 0;
  /// Live flows currently placed on this shard.
  std::size_t residentFlows = 0;
  /// EWMA of per-dispatch-batch wall-clock processing time on the worker.
  double ewmaBatchNs = 0.0;
  /// Flows this shard received / gave up through migration.
  std::uint64_t migrationsIn = 0;
  std::uint64_t migrationsOut = 0;
};

/// Counters for observability / benches.
struct EngineStats {
  std::uint64_t packetsIngested = 0;
  std::uint64_t batchesDispatched = 0;
  std::uint64_t resultsMerged = 0;
  /// Flows ever seen (including evicted generations).
  std::size_t flows = 0;
  /// Flows currently resident in the table / on the shards.
  std::size_t activeFlows = 0;
  std::uint64_t flowsEvicted = 0;
  /// Cross-flow batching counters (all zero with `inferenceBatch <= 1`):
  /// windows routed through the per-shard batchers and `predictWindowBatch`
  /// calls issued (one per distinct backend per flush).
  std::uint64_t batchedWindows = 0;
  std::uint64_t inferenceBatches = 0;
  /// Windows drained per feature family (split of `resultsMerged` by the
  /// emitting flow's resolved set).
  std::uint64_t windowsIpUdp = 0;
  std::uint64_t windowsRtp = 0;
  /// Model-registry resolution counters (all zero without a registry).
  inference::RegistryStats registry;
  /// Per-shard load vector (one entry per worker, in shard order).
  std::vector<ShardLoadStats> shardLoads;
  /// Completed flow migrations (== sum of shard migrationsIn).
  std::uint64_t migrations = 0;
  /// Dispatcher demux cache: per-packet 5-tuple lookups served by the
  /// direct-mapped last-flow cache vs falling through to `FlowTable`.
  std::uint64_t demuxCacheLookups = 0;
  std::uint64_t demuxCacheHits = 0;
};

class MultiFlowEngine {
 public:
  explicit MultiFlowEngine(EngineOptions options);

  /// Joins the workers; results never drained are discarded.
  ~MultiFlowEngine();

  MultiFlowEngine(const MultiFlowEngine&) = delete;
  MultiFlowEngine& operator=(const MultiFlowEngine&) = delete;

  /// Feeds one packet of the interleaved stream. Packets of the same flow
  /// must arrive in non-decreasing arrival order (the per-flow estimator
  /// enforces this); distinct flows may interleave arbitrarily.
  void onPacket(const netflow::FlowKey& key, const netflow::Packet& packet);

  /// Drains every result currently available into `out` and returns how many
  /// were appended. Per-flow order is preserved; interleaving across flows
  /// reflects completion order. Must be called from the dispatcher thread.
  std::size_t poll(std::vector<EngineResult>& out);

  /// Live-mode idle kick: advances the engine clock to `nowNs` (monotone —
  /// an older time is ignored), runs idle-flow eviction against it, flushes
  /// every dispatcher-side pending buffer, and has each shard advance its
  /// stream clock and run the inference batcher's deadline check — all
  /// without requiring a new packet or `finish()`. On a quiet stream this
  /// is what bounds result latency: completed windows held by the per-shard
  /// batcher (and packets parked in `pending`) otherwise wait for the next
  /// dispatch batch. Call it periodically from the dispatcher thread (a
  /// paced replay or a live capture's timer); results surface via `poll`.
  /// Throws std::logic_error after `finish()`.
  void pump(common::TimeNs nowNs);

  /// Flushes all pending batches, finalizes every per-flow estimator, joins
  /// the pool, and returns all not-yet-polled results ordered by
  /// (flow id, window). Idempotent; the engine accepts no packets afterwards.
  std::vector<EngineResult> finish();

  const FlowTable& flows() const { return flowTable_; }
  int numWorkers() const { return static_cast<int>(shards_.size()); }
  EngineStats stats() const;

  /// The shard currently hosting `flow` (id must be < flows().size()).
  /// Placement-policy observability: with `Placement::kHash` and no
  /// migration this is exactly `flow % numWorkers()` for a flow's whole
  /// life; under kLeastLoaded/migration it reflects the live assignment.
  std::size_t shardOf(FlowId flow) const { return shardOf_[flow]; }

  /// Accounting for every flow generation ever seen, indexed by `FlowId`.
  /// `windowsEmitted` counts results as they are drained (poll/finish).
  const std::vector<FlowStats>& flowStats() const { return flowStats_; }

 private:
  /// One migrating flow's handover cell, shared between the source worker,
  /// the dispatcher, and the target worker. The source moves the quiesced
  /// estimator in and release-stores `ready`; the dispatcher acquire-loads
  /// `ready` before routing the cell onward; the target takes the estimator
  /// out. Each side touches `estimator` strictly on its own side of the
  /// `ready` edge (then the batch-queue mutex), so the cell needs no lock.
  struct MigrationTicket {
    std::atomic<bool> ready{false};
    std::optional<core::StreamingEstimator> estimator;
  };

  struct Item {
    enum class Kind : std::uint8_t {
      kPacket,
      /// Finalize and drop the flow's estimator (idle eviction).
      kEvict,
      /// Advance the shard's stream clock to `packet.arrivalNs` (the pump's
      /// `nowNs` rides the packet field) so the batcher deadline check that
      /// follows the batch sees the pumped time.
      kKick,
      /// Quiesce `flow` on this (source) shard: flush the batcher, extract
      /// the estimator into `ticket`, publish `ready`.
      kMigrateOut,
      /// Install `flow` on this (target) shard: take the estimator from
      /// `ticket`, rebind its emission callback to this shard.
      kMigrateIn,
    };

    FlowId flow = 0;
    Kind kind = Kind::kPacket;
    netflow::Packet packet;
    /// Set only on a flow generation's first packet (the backend the
    /// dispatcher resolved at admission, attached when the worker creates
    /// the estimator; a returning re-interned flow re-resolves) and on
    /// kMigrateIn (re-captured into the target shard's batcher callback).
    core::StreamingEstimator::BackendPtr backend;
    /// Meaningful on the admission packet only (the item that creates the
    /// estimator): the flow's resolved feature set.
    features::FeatureSet featureSet = features::FeatureSet::kIpUdp;
    /// Set on kMigrateOut / kMigrateIn only.
    std::shared_ptr<MigrationTicket> ticket;
  };

  /// Thread-ownership map (enforced by `-Wthread-safety` on the guarded
  /// members, by the TSan stress suites on the confined ones):
  ///  * `mutex`-guarded: `batches`, `done` — the dispatcher->worker handoff.
  ///  * dispatcher-confined: `pending` (flushed into `batches` under the
  ///    lock).
  ///  * worker-confined after construction: `estimators`, `batcher`,
  ///    `streamClock`.
  ///  * `error` is written by the worker and read by the dispatcher only
  ///    after the pool is joined (`finish`), so the join is the fence.
  ///  * `results` is the SPSC ring: worker produces, dispatcher consumes.
  struct Shard {
    // Input side (mutex-guarded batch queue, dispatcher -> worker).
    common::Mutex mutex;
    common::CondVar cv;
    std::deque<std::vector<Item>> batches GUARDED_BY(mutex);
    bool done GUARDED_BY(mutex) = false;

    // Dispatcher-side buffer, flushed to `batches` when full.
    std::vector<Item> pending;

    // Output side (lock-free SPSC ring, worker -> dispatcher).
    std::unique_ptr<SpscRing<EngineResult>> results;

    // Worker-owned per-flow estimators (keyed by FlowId for deterministic
    // finalization order).
    std::map<FlowId, core::StreamingEstimator> estimators;

    // Worker-owned cross-flow inference batcher (null when
    // `inferenceBatch <= 1`): estimators emit prediction-less windows into
    // it and it re-attaches batched predictions before the result ring.
    std::unique_ptr<InferenceBatcher> batcher;
    // Worker-side stream clock (max arrival processed on this shard),
    // driving the batcher's deadline flush.
    common::TimeNs streamClock = std::numeric_limits<common::TimeNs>::min();

    // --- Load accounting ---------------------------------------------
    // Worker-published, dispatcher-sampled (relaxed atomics: the values
    // steer placement heuristics, never correctness, so no ordering is
    // needed beyond the counters being tear-free).
    std::atomic<std::uint64_t> packetsProcessed{0};
    /// EWMA of per-dispatch-batch processing wall time, published as the
    /// double's bit pattern (worker bit_casts in, readers bit_cast out).
    std::atomic<std::uint64_t> batchEwmaNsBits{0};
    // Worker-confined smoother behind `batchEwmaNsBits`.
    common::LoadEwma batchEwma{0.2};
    // Dispatcher-confined counters.
    std::uint64_t packetsDispatched = 0;
    std::size_t residentFlows = 0;
    std::uint64_t migrationsIn = 0;
    std::uint64_t migrationsOut = 0;

    std::string error;  // first exception message seen by the worker
    std::thread thread;
  };

  static constexpr FlowId kNoFlow = std::numeric_limits<FlowId>::max();

  /// Registry resolution for a newly admitted flow (dispatcher side).
  core::StreamingEstimator::BackendPtr resolveBackend(
      const netflow::FlowKey& key, FlowStats& stats,
      features::FeatureSet set) const;

  void workerLoop(Shard& shard);
  void processBatch(Shard& shard, const std::vector<Item>& batch);
  void pushResult(Shard& shard, EngineResult result);
  void flushPending(Shard& shard);
  void drainShard(Shard& shard, std::vector<EngineResult>& out);
  void drainInto(std::vector<EngineResult>& out);
  void throwIfWorkerFailed() const;

  // Flow lifecycle (dispatcher side only).
  void lruLinkTail(FlowId flow);
  void lruUnlink(FlowId flow);
  void evictIdleFlows();
  void evictFlow(FlowId flow);

  // Load-adaptive placement (dispatcher side only).
  std::uint64_t shardBacklog(const Shard& shard) const;
  std::size_t placeNewFlow(FlowId flow) const;
  void maybeStartMigration();
  void maybeCompleteMigration();

  /// One in-flight migration, dispatcher-owned. While set, packets of the
  /// migrating flow are parked here (in arrival order) instead of being
  /// routed, so the flow's stream has a clean cut: everything before the
  /// kMigrateOut runs on the source, everything after the handover on the
  /// target, nothing in between.
  struct PendingMigration {
    FlowId flow = kNoFlow;
    std::size_t from = 0;
    std::size_t to = 0;
    std::shared_ptr<MigrationTicket> ticket;
    std::vector<netflow::Packet> parked;
  };

  EngineOptions options_;
  /// VCA verdicts for registry keys at flow admission (default resolver).
  core::MediaClassifier classifier_;
  FlowTable flowTable_;
  /// Dispatcher-side direct-mapped 5-tuple → id cache in front of
  /// `flowTable_.intern` (invalidated on eviction).
  FlowDemuxCache demuxCache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int> runningWorkers_{0};
  bool finished_ = false;

  std::uint64_t packetsIngested_ = 0;
  std::uint64_t batchesDispatched_ = 0;
  std::uint64_t resultsMerged_ = 0;
  std::uint64_t flowsEvicted_ = 0;
  std::uint64_t windowsIpUdp_ = 0;
  std::uint64_t windowsRtp_ = 0;

  // Per-flow accounting plus an intrusive LRU over live flows, both indexed
  // by FlowId. `clock_` is the engine's notion of "now": the max arrival
  // seen across all flows.
  std::vector<FlowStats> flowStats_;
  std::vector<FlowId> lruPrev_;
  std::vector<FlowId> lruNext_;
  FlowId lruHead_ = kNoFlow;
  FlowId lruTail_ = kNoFlow;
  common::TimeNs clock_ = std::numeric_limits<common::TimeNs>::min();

  /// Live flow → shard assignment, indexed by FlowId (the `shardOf`
  /// indirection that replaced the hardcoded modulo). Entries of evicted
  /// generations are stale but never read — a fresh generation appends.
  std::vector<std::uint32_t> shardOf_;
  std::optional<PendingMigration> migration_;
  /// Results pulled off a migration source's ring at handover, delivered
  /// ahead of everything else by the next poll()/finish() so the migrated
  /// flow's source-side windows precede its target-side ones.
  std::vector<EngineResult> stash_;
  std::uint64_t migrationsDone_ = 0;
  /// Batch count at the last migration scan, throttling the O(live flows)
  /// victim search to at most once per few dispatch batches.
  std::uint64_t lastMigrateScanBatch_ = 0;
};

}  // namespace vcaqoe::engine
