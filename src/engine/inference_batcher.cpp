#include "engine/inference_batcher.hpp"

#include <stdexcept>
#include <utility>

namespace vcaqoe::engine {

InferenceBatcher::InferenceBatcher(Options options, Sink sink)
    : options_(options), sink_(std::move(sink)) {
  if (!sink_) {
    throw std::invalid_argument("InferenceBatcher: null sink");
  }
  if (options_.batchSize == 0) {
    throw std::invalid_argument("InferenceBatcher: zero batch size");
  }
  entries_.reserve(options_.batchSize);
}

void InferenceBatcher::add(FlowId flow, core::StreamingOutput output,
                           BackendPtr backend, common::TimeNs clockNs) {
  entries_.push_back(
      Entry{flow, std::move(output), std::move(backend), clockNs});
  batchedWindows_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() >= options_.batchSize) flush();
}

void InferenceBatcher::onClock(common::TimeNs clockNs) {
  if (entries_.empty()) return;
  // Entries arrive in clock order, so the front is the oldest. Age is
  // computed by subtraction (clockNs >= emitClockNs always) — the additive
  // form would signed-overflow for a huge "never flush" flushNs sentinel
  // combined with epoch-scale timestamps.
  if (options_.flushNs <= 0 ||
      clockNs - entries_.front().emitClockNs >= options_.flushNs) {
    flush();
  }
}

void InferenceBatcher::flush() {
  if (entries_.empty()) return;

  // One predictWindowBatch per distinct (backend, feature width) group,
  // groups formed in first-appearance order. The width leg keeps mixed
  // feature sets apart — the shared fallback backend can serve kIpUdp and
  // kRtp flows at once, and one call must not mix 14- and 24-wide rows. A
  // shard hosts flows of a handful of distinct groups (one per VCA model
  // set per feature family), so the scan is short.
  seen_.clear();
  for (const auto& entry : entries_) {
    const auto* backend = entry.backend.get();
    if (backend == nullptr) continue;
    const std::size_t width = entry.output.features.size();
    bool known = false;
    for (const auto& s : seen_) {
      known = known || (s.first == backend && s.second == width);
    }
    if (known) continue;
    seen_.emplace_back(backend, width);

    groupIndex_.clear();
    contexts_.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].backend.get() != backend ||
          entries_[i].output.features.size() != width) {
        continue;
      }
      groupIndex_.push_back(i);
      // core::makeWindowContext is the same builder the unbatched
      // estimator path uses — identical inference inputs by construction.
      contexts_.push_back(core::makeWindowContext(entries_[i].output));
    }
    results_.assign(groupIndex_.size(), inference::PredictionSet{});
    backend->predictWindowBatch(contexts_, results_);
    for (std::size_t j = 0; j < groupIndex_.size(); ++j) {
      entries_[groupIndex_[j]].output.predictions = results_[j];
    }
    inferenceBatches_.fetch_add(1, std::memory_order_relaxed);
  }

  // Forward in emission order: per-flow result order — the half of the
  // determinism contract poll() exposes — survives the batching.
  for (auto& entry : entries_) {
    sink_(entry.flow, std::move(entry.output));
  }
  entries_.clear();
}

}  // namespace vcaqoe::engine
