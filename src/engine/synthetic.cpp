#include "engine/synthetic.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::engine {

netflow::FlowKey syntheticFlowKey(std::uint32_t index) {
  netflow::FlowKey key;
  key.srcIp = 0x0A000000u + index;
  key.dstIp = 0xC0A80001u;
  key.srcPort = static_cast<std::uint16_t>(20000 + (index % 40000));
  key.dstPort = 3478;
  return key;
}

netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs) {
  common::Rng rng(seed);
  netflow::PacketTrace trace;
  trace.reserve(static_cast<std::size_t>(std::max(packets, 0)));
  common::TimeNs t = startNs;
  std::uint32_t frameSize = 1100;
  int inFrame = 0;
  for (int i = 0; i < packets; ++i) {
    t += common::microsToNs(rng.uniform(200.0, 2500.0));
    netflow::Packet packet;
    packet.arrivalNs = t;
    if (rng.bernoulli(0.15)) {
      packet.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(90, 380));
    } else {
      if (inFrame == 0) {
        frameSize = static_cast<std::uint32_t>(rng.uniformInt(600, 1300));
        inFrame = static_cast<int>(rng.uniformInt(1, 4));
      }
      packet.sizeBytes = static_cast<std::uint32_t>(
          std::max<std::int64_t>(500, frameSize + rng.uniformInt(-20, 20)));
      --inFrame;
    }
    trace.push_back(packet);
  }
  return trace;
}

netflow::PacketTrace syntheticRtpFlowTrace(std::uint64_t seed, int packets,
                                           common::TimeNs startNs,
                                           std::uint16_t videoSeqStart) {
  common::Rng rng(seed);
  netflow::PacketTrace trace;
  trace.reserve(static_cast<std::size_t>(std::max(packets, 0)));
  common::TimeNs t = startNs;
  std::uint32_t frameSize = 1100;
  int inFrame = 0;

  // Independent RTP streams sharing the flow, like a real WebRTC transport.
  std::uint16_t videoSeq = videoSeqStart;
  std::uint32_t videoTs = 90'000;  // one frame in; advanced per frame
  std::uint16_t rtxSeq = 7;
  std::uint32_t rtxTs = videoTs;
  std::uint16_t audioSeq = 501;
  std::uint32_t audioTs = 48'000;

  std::vector<std::uint8_t> head;
  const auto stamp = [&](netflow::Packet& packet, const rtp::RtpHeader& h) {
    head.clear();
    rtp::encode(h, head);
    packet.setHead(head);
  };

  for (int i = 0; i < packets; ++i) {
    t += common::microsToNs(rng.uniform(200.0, 2500.0));
    netflow::Packet packet;
    packet.arrivalNs = t;
    rtp::RtpHeader h;
    if (rng.bernoulli(0.15)) {
      packet.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(90, 380));
      h.payloadType = kSyntheticAudioPt;
      h.sequenceNumber = audioSeq++;
      audioTs += 960;  // 20 ms of 48 kHz audio
      h.timestamp = audioTs;
      h.ssrc = 0xAAAA0001u;
    } else if (rng.bernoulli(0.05)) {
      // Retransmission of a recent video frame on the RTX stream.
      packet.sizeBytes = static_cast<std::uint32_t>(
          std::max<std::int64_t>(500, frameSize + rng.uniformInt(-20, 20)));
      h.payloadType = kSyntheticRtxPt;
      h.sequenceNumber = rtxSeq++;
      h.timestamp = rtxTs;
      h.ssrc = 0xBBBB0001u;
    } else {
      if (inFrame == 0) {
        frameSize = static_cast<std::uint32_t>(rng.uniformInt(600, 1300));
        inFrame = static_cast<int>(rng.uniformInt(1, 4));
        rtxTs = videoTs;  // RTX replays the frame before this one
        videoTs += static_cast<std::uint32_t>(
            rtp::kVideoClockHz / 30 + rng.uniformInt(-60, 60));
      }
      packet.sizeBytes = static_cast<std::uint32_t>(
          std::max<std::int64_t>(500, frameSize + rng.uniformInt(-20, 20)));
      h.payloadType = kSyntheticVideoPt;
      h.sequenceNumber = videoSeq++;  // uint16 wraps naturally
      h.timestamp = videoTs;
      h.ssrc = 0xCCCC0001u;
      --inFrame;
      h.marker = inFrame == 0;  // last packet of the frame
    }
    stamp(packet, h);
    trace.push_back(packet);
  }
  return trace;
}

ml::RandomForest syntheticForest(int trees, int depth, double leafBase,
                                 int featureCount) {
  const int kFeatures = std::max(featureCount, 1);
  trees = std::max(trees, 1);
  depth = std::max(depth, 0);

  std::vector<ml::DecisionTree> built;
  built.reserve(static_cast<std::size_t>(trees));
  for (int t = 0; t < trees; ++t) {
    // Complete binary tree in level order: nodes [0, 2^depth - 1) are
    // internal, the trailing 2^depth are leaves.
    const std::int32_t internal = (1 << depth) - 1;
    const std::int32_t total = (1 << (depth + 1)) - 1;
    std::vector<ml::DecisionTree::Node> nodes(
        static_cast<std::size_t>(total));
    for (std::int32_t n = 0; n < total; ++n) {
      auto& node = nodes[static_cast<std::size_t>(n)];
      if (n < internal) {
        node.featureIndex = (n + t) % kFeatures;
        // Thresholds landing inside the typical feature ranges so both
        // branches are actually taken on synthetic traffic.
        node.threshold = 50.0 + 37.0 * ((n * 7 + t * 13) % 29);
        node.left = 2 * n + 1;
        node.right = 2 * n + 2;
      } else {
        node.featureIndex = -1;
        node.value =
            leafBase + 0.01 * static_cast<double>((t * 31 + n * 7) % 97 -
                                                  (t == 0 && n == 0 ? 0 : 48));
      }
    }
    built.push_back(
        ml::DecisionTree::fromNodes(std::move(nodes), ml::TreeTask::kRegression,
                                    {}));
  }

  std::vector<std::string> names;
  names.reserve(kFeatures);
  for (int f = 0; f < kFeatures; ++f) {
    names.push_back("synthetic_feature_" + std::to_string(f));
  }
  return ml::RandomForest::fromParts(
      ml::TreeTask::kRegression, std::move(names), std::move(built),
      std::vector<double>(kFeatures, 1.0 / kFeatures));
}

}  // namespace vcaqoe::engine
