#include "engine/synthetic.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vcaqoe::engine {

netflow::FlowKey syntheticFlowKey(std::uint32_t index) {
  netflow::FlowKey key;
  key.srcIp = 0x0A000000u + index;
  key.dstIp = 0xC0A80001u;
  key.srcPort = static_cast<std::uint16_t>(20000 + (index % 40000));
  key.dstPort = 3478;
  return key;
}

netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs) {
  common::Rng rng(seed);
  netflow::PacketTrace trace;
  trace.reserve(static_cast<std::size_t>(std::max(packets, 0)));
  common::TimeNs t = startNs;
  std::uint32_t frameSize = 1100;
  int inFrame = 0;
  for (int i = 0; i < packets; ++i) {
    t += common::microsToNs(rng.uniform(200.0, 2500.0));
    netflow::Packet packet;
    packet.arrivalNs = t;
    if (rng.bernoulli(0.15)) {
      packet.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(90, 380));
    } else {
      if (inFrame == 0) {
        frameSize = static_cast<std::uint32_t>(rng.uniformInt(600, 1300));
        inFrame = static_cast<int>(rng.uniformInt(1, 4));
      }
      packet.sizeBytes = static_cast<std::uint32_t>(
          std::max<std::int64_t>(500, frameSize + rng.uniformInt(-20, 20)));
      --inFrame;
    }
    trace.push_back(packet);
  }
  return trace;
}

ml::RandomForest syntheticForest(int trees, int depth, double leafBase) {
  constexpr int kFeatures = 14;
  trees = std::max(trees, 1);
  depth = std::max(depth, 0);

  std::vector<ml::DecisionTree> built;
  built.reserve(static_cast<std::size_t>(trees));
  for (int t = 0; t < trees; ++t) {
    // Complete binary tree in level order: nodes [0, 2^depth - 1) are
    // internal, the trailing 2^depth are leaves.
    const std::int32_t internal = (1 << depth) - 1;
    const std::int32_t total = (1 << (depth + 1)) - 1;
    std::vector<ml::DecisionTree::Node> nodes(
        static_cast<std::size_t>(total));
    for (std::int32_t n = 0; n < total; ++n) {
      auto& node = nodes[static_cast<std::size_t>(n)];
      if (n < internal) {
        node.featureIndex = (n + t) % kFeatures;
        // Thresholds landing inside the typical feature ranges so both
        // branches are actually taken on synthetic traffic.
        node.threshold = 50.0 + 37.0 * ((n * 7 + t * 13) % 29);
        node.left = 2 * n + 1;
        node.right = 2 * n + 2;
      } else {
        node.featureIndex = -1;
        node.value =
            leafBase + 0.01 * static_cast<double>((t * 31 + n * 7) % 97 -
                                                  (t == 0 && n == 0 ? 0 : 48));
      }
    }
    built.push_back(
        ml::DecisionTree::fromNodes(std::move(nodes), ml::TreeTask::kRegression,
                                    {}));
  }

  std::vector<std::string> names;
  names.reserve(kFeatures);
  for (int f = 0; f < kFeatures; ++f) {
    names.push_back("synthetic_feature_" + std::to_string(f));
  }
  return ml::RandomForest::fromParts(
      ml::TreeTask::kRegression, std::move(names), std::move(built),
      std::vector<double>(kFeatures, 1.0 / kFeatures));
}

}  // namespace vcaqoe::engine
