#include "engine/synthetic.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vcaqoe::engine {

netflow::FlowKey syntheticFlowKey(std::uint32_t index) {
  netflow::FlowKey key;
  key.srcIp = 0x0A000000u + index;
  key.dstIp = 0xC0A80001u;
  key.srcPort = static_cast<std::uint16_t>(20000 + (index % 40000));
  key.dstPort = 3478;
  return key;
}

netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs) {
  common::Rng rng(seed);
  netflow::PacketTrace trace;
  trace.reserve(static_cast<std::size_t>(std::max(packets, 0)));
  common::TimeNs t = startNs;
  std::uint32_t frameSize = 1100;
  int inFrame = 0;
  for (int i = 0; i < packets; ++i) {
    t += common::microsToNs(rng.uniform(200.0, 2500.0));
    netflow::Packet packet;
    packet.arrivalNs = t;
    if (rng.bernoulli(0.15)) {
      packet.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(90, 380));
    } else {
      if (inFrame == 0) {
        frameSize = static_cast<std::uint32_t>(rng.uniformInt(600, 1300));
        inFrame = static_cast<int>(rng.uniformInt(1, 4));
      }
      packet.sizeBytes = static_cast<std::uint32_t>(
          std::max<std::int64_t>(500, frameSize + rng.uniformInt(-20, 20)));
      --inFrame;
    }
    trace.push_back(packet);
  }
  return trace;
}

}  // namespace vcaqoe::engine
