#include "engine/flow_table.hpp"

namespace vcaqoe::engine {

FlowId FlowTable::intern(const netflow::FlowKey& key) {
  const auto next = static_cast<FlowId>(keys_.size());
  const auto [it, inserted] = ids_.try_emplace(key, next);
  if (inserted) keys_.push_back(key);
  return it->second;
}

std::optional<FlowId> FlowTable::find(const netflow::FlowKey& key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void FlowTable::erase(FlowId id) {
  const auto it = ids_.find(keys_[id]);
  // Generation check: only drop the mapping if it still points at this id —
  // a newer generation of the same key must survive an erase of the old one.
  if (it != ids_.end() && it->second == id) ids_.erase(it);
}

}  // namespace vcaqoe::engine
