#include "engine/flow_table.hpp"

namespace vcaqoe::engine {

namespace {

/// splitmix64 finalizer — cheap, well-distributed mixing for the 5-tuple.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t FlowKeyHash::operator()(const netflow::FlowKey& key) const noexcept {
  const std::uint64_t ips =
      (static_cast<std::uint64_t>(key.srcIp) << 32) | key.dstIp;
  const std::uint64_t ports =
      (static_cast<std::uint64_t>(key.srcPort) << 16) | key.dstPort;
  return static_cast<std::size_t>(mix64(mix64(ips) ^ ports));
}

FlowId FlowTable::intern(const netflow::FlowKey& key) {
  const auto next = static_cast<FlowId>(keys_.size());
  const auto [it, inserted] = ids_.try_emplace(key, next);
  if (inserted) keys_.push_back(key);
  return it->second;
}

std::optional<FlowId> FlowTable::find(const netflow::FlowKey& key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vcaqoe::engine
