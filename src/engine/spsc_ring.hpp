#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <limits>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

/// Bounded single-producer / single-consumer ring buffer.
///
/// Each engine shard owns one of these: the shard's worker thread is the only
/// producer and the caller thread draining results is the only consumer, so a
/// pair of acquire/release indices is all the synchronization needed — no
/// mutex on the result hot path.
namespace vcaqoe::engine {

/// Destructive-interference padding. A constant (not
/// std::hardware_destructive_interference_size) so the ABI does not depend
/// on tuning flags; 64 bytes covers x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// Largest accepted capacity: the highest power of two a std::size_t can
  /// hold. Above it there is no power-of-two to round up to (the old
  /// round-up loop shifted past the top bit and spun forever).
  static constexpr std::size_t kMaxCapacity =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);

  /// Capacity is rounded up to a power of two; 0 and 1 clamp to the
  /// minimum of 2 (full/empty are distinguished by indices, not a spare
  /// slot, but a 1-slot ring serializes producer and consumer). Throws
  /// std::length_error above kMaxCapacity.
  explicit SpscRing(std::size_t capacity) {
    if (capacity > kMaxCapacity) {
      throw std::length_error(
          "SpscRing: capacity " + std::to_string(capacity) +
          " exceeds the largest representable power of two");
    }
    const std::size_t rounded = std::max<std::size_t>(std::bit_ceil(capacity), 2);
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full, in which case
  /// `value` is left untouched — a back-pressure loop may retry
  /// `tryPush(std::move(v))` without losing the payload. (The previous
  /// by-value signature moved the argument before the capacity check, so a
  /// failed push on a full ring gutted the value and the retry delivered a
  /// moved-from shell.)
  bool tryPush(T&& value) { return pushImpl(std::move(value)); }
  bool tryPush(const T& value) { return pushImpl(value); }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> tryPop() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto head = head_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> value(std::move(slots_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side snapshot; racy by nature, exact once the producer stopped.
  std::size_t sizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  template <typename U>
  bool pushImpl(U&& value) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) return false;
    slots_[head & mask_] = std::forward<U>(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace vcaqoe::engine
