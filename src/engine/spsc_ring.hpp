#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

/// Bounded single-producer / single-consumer ring buffer.
///
/// Each engine shard owns one of these: the shard's worker thread is the only
/// producer and the caller thread draining results is the only consumer, so a
/// pair of acquire/release indices is all the synchronization needed — no
/// mutex on the result hot path.
namespace vcaqoe::engine {

/// Destructive-interference padding. A constant (not
/// std::hardware_destructive_interference_size) so the ABI does not depend
/// on tuning flags; 64 bytes covers x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool tryPush(T value) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> tryPop() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto head = head_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> value(std::move(slots_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side snapshot; racy by nature, exact once the producer stopped.
  std::size_t sizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace vcaqoe::engine
