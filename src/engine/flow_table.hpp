#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netflow/packet.hpp"

/// Flow demultiplexing for interleaved multi-session packet streams.
///
/// A monitoring point at an access node sees one interleaved stream of UDP
/// datagrams from thousands of concurrent VCA sessions. The `FlowTable`
/// assigns each distinct 5-tuple a dense `FlowId` in first-seen order, so
/// downstream sharding and result merging are deterministic functions of the
/// input stream (never of thread timing or hash-table iteration order).
///
/// Ids are generational: `erase` forgets the key→id mapping but the id is
/// never reused — a flow that returns after eviction is interned under a
/// fresh id. Sidecar state keyed by `FlowId` (shard estimators, per-flow
/// stats) therefore can never alias a live flow with a dead one, and
/// id-indexed vectors only ever grow.
namespace vcaqoe::engine {

/// Dense per-table flow index, assigned in first-seen order starting at 0.
using FlowId = std::uint32_t;

/// 5-tuple hash shared with the capture-side flow maps.
using FlowKeyHash = netflow::FlowKeyHash;

class FlowTable {
 public:
  /// The hash map runs at half the default load factor: the per-packet
  /// demux lookup is the dispatcher's hottest probe, and shorter chains
  /// buy more than the extra bucket memory costs at engine scale.
  FlowTable() { ids_.max_load_factor(0.5F); }

  /// Pre-sizes both the hash map (buckets for `expectedFlows` at the
  /// tuned load factor) and the id→key sidecar, so a monitor that knows
  /// its concurrency target never rehashes on the packet path.
  void reserve(std::size_t expectedFlows) {
    ids_.reserve(expectedFlows);
    keys_.reserve(expectedFlows);
  }

  /// Returns the id of `key`, assigning the next dense id on first sight
  /// (or on first sight after an erase — evicted generations stay retired).
  FlowId intern(const netflow::FlowKey& key);

  /// Returns the *live* id of `key`, or nullopt if never seen or erased.
  std::optional<FlowId> find(const netflow::FlowKey& key) const;

  /// The 5-tuple that was interned as `id` (id must be < size()). Valid for
  /// erased ids too — stats exported after eviction still need the key.
  const netflow::FlowKey& keyOf(FlowId id) const { return keys_[id]; }

  /// Total flows ever interned == one past the highest id handed out.
  /// Includes erased generations, so id-indexed sidecars never shrink.
  std::size_t size() const { return keys_.size(); }

  /// Flows currently resident (interned and not erased).
  std::size_t activeSize() const { return ids_.size(); }

  bool empty() const { return keys_.empty(); }

  /// Retires `id`: the key→id mapping is dropped so the key re-interns under
  /// a fresh id. No-op when `id` was already erased or superseded by a newer
  /// generation of the same key.
  void erase(FlowId id);

 private:
  std::unordered_map<netflow::FlowKey, FlowId, FlowKeyHash> ids_;
  std::vector<netflow::FlowKey> keys_;
};

/// Direct-mapped last-flow cache in front of `FlowTable::intern`.
///
/// Interleaved capture streams are bursty per flow — a video sender emits
/// packet trains, so consecutive packets usually repeat one of a handful of
/// recent 5-tuples. A tiny direct-mapped array (slot = key hash mod
/// `kSlots`) turns that burstiness into an O(1) compare instead of an
/// unordered_map probe. Strictly a dispatcher-side accelerator: on a miss
/// the caller falls back to `intern` and refills the slot; `forget` must be
/// called when an id is erased (eviction) so a retired generation can never
/// be served. Single-threaded by design, like the dispatcher itself.
class FlowDemuxCache {
 public:
  static constexpr std::size_t kSlots = 64;  // power of two (mask indexing)

  /// The cached live id of `key`, or nullopt on miss/collision.
  std::optional<FlowId> lookup(const netflow::FlowKey& key) {
    ++lookups_;
    const Entry& entry = slots_[slotOf(key)];
    if (entry.valid && entry.key == key) {
      ++hits_;
      return entry.id;
    }
    return std::nullopt;
  }

  /// Installs `key` → `id`, displacing whatever shared the slot.
  void remember(const netflow::FlowKey& key, FlowId id) {
    slots_[slotOf(key)] = Entry{key, id, true};
  }

  /// Invalidates `key`'s slot (no-op if a colliding key displaced it).
  void forget(const netflow::FlowKey& key) {
    Entry& entry = slots_[slotOf(key)];
    if (entry.valid && entry.key == key) entry.valid = false;
  }

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }

 private:
  struct Entry {
    netflow::FlowKey key;
    FlowId id = 0;
    bool valid = false;
  };

  static std::size_t slotOf(const netflow::FlowKey& key) {
    return FlowKeyHash{}(key) & (kSlots - 1);
  }

  std::array<Entry, kSlots> slots_{};
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace vcaqoe::engine
