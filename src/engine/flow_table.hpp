#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netflow/packet.hpp"

/// Flow demultiplexing for interleaved multi-session packet streams.
///
/// A monitoring point at an access node sees one interleaved stream of UDP
/// datagrams from thousands of concurrent VCA sessions. The `FlowTable`
/// assigns each distinct 5-tuple a dense `FlowId` in first-seen order, so
/// downstream sharding and result merging are deterministic functions of the
/// input stream (never of thread timing or hash-table iteration order).
namespace vcaqoe::engine {

/// Dense per-table flow index, assigned in first-seen order starting at 0.
using FlowId = std::uint32_t;

struct FlowKeyHash {
  std::size_t operator()(const netflow::FlowKey& key) const noexcept;
};

class FlowTable {
 public:
  /// Returns the id of `key`, assigning the next dense id on first sight.
  FlowId intern(const netflow::FlowKey& key);

  /// Returns the id of `key` without interning, or nullopt if never seen.
  std::optional<FlowId> find(const netflow::FlowKey& key) const;

  /// The 5-tuple that was interned as `id` (id must be < size()).
  const netflow::FlowKey& keyOf(FlowId id) const { return keys_[id]; }

  /// Number of distinct flows seen.
  std::size_t size() const { return keys_.size(); }

  bool empty() const { return keys_.empty(); }

 private:
  std::unordered_map<netflow::FlowKey, FlowId, FlowKeyHash> ids_;
  std::vector<netflow::FlowKey> keys_;
};

}  // namespace vcaqoe::engine
