#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netflow/packet.hpp"

/// Flow demultiplexing for interleaved multi-session packet streams.
///
/// A monitoring point at an access node sees one interleaved stream of UDP
/// datagrams from thousands of concurrent VCA sessions. The `FlowTable`
/// assigns each distinct 5-tuple a dense `FlowId` in first-seen order, so
/// downstream sharding and result merging are deterministic functions of the
/// input stream (never of thread timing or hash-table iteration order).
///
/// Ids are generational: `erase` forgets the key→id mapping but the id is
/// never reused — a flow that returns after eviction is interned under a
/// fresh id. Sidecar state keyed by `FlowId` (shard estimators, per-flow
/// stats) therefore can never alias a live flow with a dead one, and
/// id-indexed vectors only ever grow.
namespace vcaqoe::engine {

/// Dense per-table flow index, assigned in first-seen order starting at 0.
using FlowId = std::uint32_t;

/// 5-tuple hash shared with the capture-side flow maps.
using FlowKeyHash = netflow::FlowKeyHash;

class FlowTable {
 public:
  /// Returns the id of `key`, assigning the next dense id on first sight
  /// (or on first sight after an erase — evicted generations stay retired).
  FlowId intern(const netflow::FlowKey& key);

  /// Returns the *live* id of `key`, or nullopt if never seen or erased.
  std::optional<FlowId> find(const netflow::FlowKey& key) const;

  /// The 5-tuple that was interned as `id` (id must be < size()). Valid for
  /// erased ids too — stats exported after eviction still need the key.
  const netflow::FlowKey& keyOf(FlowId id) const { return keys_[id]; }

  /// Total flows ever interned == one past the highest id handed out.
  /// Includes erased generations, so id-indexed sidecars never shrink.
  std::size_t size() const { return keys_.size(); }

  /// Flows currently resident (interned and not erased).
  std::size_t activeSize() const { return ids_.size(); }

  bool empty() const { return keys_.empty(); }

  /// Retires `id`: the key→id mapping is dropped so the key re-interns under
  /// a fresh id. No-op when `id` was already erased or superseded by a newer
  /// generation of the same key.
  void erase(FlowId id);

 private:
  std::unordered_map<netflow::FlowKey, FlowId, FlowKeyHash> ids_;
  std::vector<netflow::FlowKey> keys_;
};

}  // namespace vcaqoe::engine
