#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "core/streaming.hpp"
#include "engine/flow_table.hpp"
#include "inference/backend.hpp"

/// Cross-flow window batching in front of inference.
///
/// Per-window model evaluation is the dominant with-model cost of the
/// engine's hot path, and evaluating one window at a time wastes the
/// flattened forest's batch form (`predictWindowBatch` keeps one tree's
/// arena segment hot across a whole batch of rows). Each engine shard owns
/// one `InferenceBatcher`: per-flow estimators emit windows *without*
/// predictions, the batcher collects them — across every flow on the shard
/// — into a bounded batch, runs one `predictWindowBatch` per distinct
/// (backend, feature width) group when the batch flushes, re-attaches the
/// results, and forwards the completed windows to the result ring in their
/// original emission order. Grouping by feature width as well as backend
/// matters with mixed feature sets: the shared fallback backend can serve
/// both kIpUdp and kRtp flows, and a single batch must not hand a backend
/// 14- and 24-wide rows in one call.
///
/// Flush policy (all deterministic functions of the input stream):
///  * size        — the batch reached `batchSize` windows;
///  * deadline    — a held window is older than `flushNs` against the
///                  shard's stream clock (checked at dispatch-batch
///                  boundaries); `flushNs == 0` tightens this to "flush at
///                  every dispatch-batch boundary", the lowest-latency
///                  setting;
///  * finalize    — end of stream / flow eviction drains what remains.
///
/// Because a backend's batched prediction is bit-identical to its scalar
/// prediction (the `InferenceBackend` contract) and forwarding preserves
/// per-flow emission order, engine output with batching enabled is
/// bit-identical to the unbatched engine at any worker count — the
/// determinism contract every prior PR defends survives the batching.
namespace vcaqoe::engine {

class InferenceBatcher {
 public:
  using BackendPtr = std::shared_ptr<const inference::InferenceBackend>;
  /// Receives completed (predictions attached) windows in emission order.
  using Sink = std::function<void(FlowId, core::StreamingOutput&&)>;

  struct Options {
    /// Windows collected before a flush is forced. Must be >= 1.
    std::size_t batchSize = 32;
    /// Stream-time age bound on held windows; 0 flushes at every
    /// `onClock` call (dispatch-batch boundary).
    common::DurationNs flushNs = 0;
  };

  /// Throws std::invalid_argument on a null sink or zero batch size.
  InferenceBatcher(Options options, Sink sink);

  /// Queues one emitted window. `backend` may be null (no inference — the
  /// window passes through untouched at the next flush). `clockNs` is the
  /// shard's stream clock at emission, used for the deadline flush.
  void add(FlowId flow, core::StreamingOutput output, BackendPtr backend,
           common::TimeNs clockNs);

  /// Deadline check at a dispatch-batch boundary: flushes everything when
  /// the oldest held window's age reaches `flushNs` (or unconditionally
  /// when `flushNs` is 0).
  void onClock(common::TimeNs clockNs);

  /// Runs inference over everything held and forwards it. Called on size /
  /// deadline triggers and at stream finalization.
  void flush();

  std::size_t pending() const { return entries_.size(); }

  /// `predictWindowBatch` calls issued (one per distinct backend per flush).
  std::uint64_t inferenceBatches() const {
    return inferenceBatches_.load(std::memory_order_relaxed);
  }
  /// Windows that were routed through the batcher.
  std::uint64_t batchedWindows() const {
    return batchedWindows_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    FlowId flow = 0;
    core::StreamingOutput output;
    BackendPtr backend;
    common::TimeNs emitClockNs = 0;
  };

  Options options_;
  Sink sink_;
  std::vector<Entry> entries_;

  // Flush-local scratch, reused so steady state does not allocate.
  std::vector<inference::WindowContext> contexts_;
  std::vector<inference::PredictionSet> results_;
  std::vector<std::size_t> groupIndex_;
  std::vector<std::pair<const inference::InferenceBackend*, std::size_t>>
      seen_;  // (backend, feature row width) groups already flushed

  // Relaxed atomics: bumped on the worker thread, read by stats() on the
  // dispatcher.
  std::atomic<std::uint64_t> inferenceBatches_{0};
  std::atomic<std::uint64_t> batchedWindows_{0};
};

}  // namespace vcaqoe::engine
