#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "ml/random_forest.hpp"
#include "netflow/packet.hpp"

/// Deterministic synthetic multi-flow traffic for engine tests, benches, and
/// demos: one place for the traffic model so the flows the engine is tested
/// against are exactly the flows it is benchmarked against.
namespace vcaqoe::engine {

/// A distinct, stable 5-tuple for flow `index` (client behind 10.0.0.0/8
/// talking to one media server).
netflow::FlowKey syntheticFlowKey(std::uint32_t index);

/// A video-call-shaped flow: mostly large "video" packets whose sizes
/// cluster per frame (Algorithm 1's matching signal), with sub-V_min
/// "audio" packets sprinkled in. Arrival-ordered, starting at `startNs`.
netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs);

/// RTP payload types stamped by `syntheticRtpFlowTrace` — the constants a
/// kRtp consumer (bench, monitor demo) feeds into
/// `features::ExtractionParams::videoPt`/`rtxPt`.
inline constexpr std::uint8_t kSyntheticVideoPt = 96;
inline constexpr std::uint8_t kSyntheticRtxPt = 97;
inline constexpr std::uint8_t kSyntheticAudioPt = 111;

/// The RTP-headed variant of `syntheticFlowTrace`: the same call shape, but
/// every packet carries a real encoded RTP fixed header in its payload
/// head. Video packets (pt `kSyntheticVideoPt`) share one timestamp per
/// frame with the marker bit on the frame's last packet; a sprinkle of
/// retransmissions (pt `kSyntheticRtxPt`) replays recent video timestamps
/// on their own sequence stream; audio packets use `kSyntheticAudioPt`.
/// `videoSeqStart` seeds the video sequence counter — start near 65535 to
/// exercise wraparound windows.
netflow::PacketTrace syntheticRtpFlowTrace(std::uint64_t seed, int packets,
                                           common::TimeNs startNs,
                                           std::uint16_t videoSeqStart = 1);

/// A deterministic hand-built regression forest over `featureCount`-wide
/// rows (default: the 14 IP/UDP features; pass 24 for the RTP set) — no
/// training, exact reproducibility: `trees` complete binary trees of
/// `depth` levels, splits cycling through the features with thresholds
/// varied per node, leaf values spread deterministically around `leafBase`.
/// With `trees == 1 && depth == 0` the forest predicts exactly `leafBase`
/// for every input — handy for per-VCA selection tests; deeper shapes give
/// benches realistic per-window inference cost.
ml::RandomForest syntheticForest(int trees, int depth, double leafBase,
                                 int featureCount = 14);

}  // namespace vcaqoe::engine
