#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "netflow/packet.hpp"

/// Deterministic synthetic multi-flow traffic for engine tests, benches, and
/// demos: one place for the traffic model so the flows the engine is tested
/// against are exactly the flows it is benchmarked against.
namespace vcaqoe::engine {

/// A distinct, stable 5-tuple for flow `index` (client behind 10.0.0.0/8
/// talking to one media server).
netflow::FlowKey syntheticFlowKey(std::uint32_t index);

/// A video-call-shaped flow: mostly large "video" packets whose sizes
/// cluster per frame (Algorithm 1's matching signal), with sub-V_min
/// "audio" packets sprinkled in. Arrival-ordered, starting at `startNs`.
netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs);

}  // namespace vcaqoe::engine
