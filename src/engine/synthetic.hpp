#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "ml/random_forest.hpp"
#include "netflow/packet.hpp"

/// Deterministic synthetic multi-flow traffic for engine tests, benches, and
/// demos: one place for the traffic model so the flows the engine is tested
/// against are exactly the flows it is benchmarked against.
namespace vcaqoe::engine {

/// A distinct, stable 5-tuple for flow `index` (client behind 10.0.0.0/8
/// talking to one media server).
netflow::FlowKey syntheticFlowKey(std::uint32_t index);

/// A video-call-shaped flow: mostly large "video" packets whose sizes
/// cluster per frame (Algorithm 1's matching signal), with sub-V_min
/// "audio" packets sprinkled in. Arrival-ordered, starting at `startNs`.
netflow::PacketTrace syntheticFlowTrace(std::uint64_t seed, int packets,
                                        common::TimeNs startNs);

/// A deterministic hand-built regression forest over the 14 IP/UDP
/// features — no training, exact reproducibility: `trees` complete binary
/// trees of `depth` levels, splits cycling through the features with
/// thresholds varied per node, leaf values spread deterministically around
/// `leafBase`. With `trees == 1 && depth == 0` the forest predicts exactly
/// `leafBase` for every input — handy for per-VCA selection tests; deeper
/// shapes give benches realistic per-window inference cost.
ml::RandomForest syntheticForest(int trees, int depth, double leafBase);

}  // namespace vcaqoe::engine
