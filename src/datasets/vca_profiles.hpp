#pragma once

#include <string>
#include <vector>

#include "simcall/profile.hpp"

/// Concrete sender models for the three studied VCAs, in their two
/// deployments (the paper found different payload-type numbering and QoE
/// regimes between the lab and the real-world captures, §5.2).
///
/// Calibration targets taken from the paper:
///  * Meet — VP8/VP9; resolution ladder 180/270/360 in-lab plus 540/720 in
///    the wild; a size-growing fraction of unequally fragmented frames
///    (4.26% of frames violate Δmax in-lab, 14.48% real-world).
///  * Teams — H.264; PT 111/102/103 in-lab, video 100 / RTX 101 real-world;
///    11 resolution rungs 90..720; in-lab median bitrate ≈ 1700 kbps.
///  * Webex — H.264; in-lab median bitrate ≈ 500 kbps; resolutions
///    {180, 360}, single rung in the wild; no RTX stream in the wild;
///    coarse encoder quantization (frequent frame-size collisions → the
///    coalesce errors of Fig 4).
namespace vcaqoe::datasets {

enum class Deployment { kLab, kRealWorld };

simcall::VcaProfile meetProfile(Deployment deployment);
simcall::VcaProfile teamsProfile(Deployment deployment);
simcall::VcaProfile webexProfile(Deployment deployment);

/// All three profiles for a deployment, in paper order (Meet, Teams, Webex).
std::vector<simcall::VcaProfile> allProfiles(Deployment deployment);

/// Profile by name ("meet", "teams", "webex"); throws on unknown name.
simcall::VcaProfile profileByName(const std::string& name,
                                  Deployment deployment);

}  // namespace vcaqoe::datasets
