#pragma once

#include <cstdint>
#include <vector>

#include "core/session.hpp"
#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"
#include "rxstats/ground_truth.hpp"

/// Dataset generation: the simulation counterpart of the paper's two data
/// collections (§4.2) — in-lab calls under NDT-derived emulated conditions,
/// and real-world calls from 15 household vantage points.
namespace vcaqoe::datasets {

/// Simulates one labeled call end to end (sender models → link emulator →
/// receiver trace → webrtc-internals ground truth).
core::LabeledSession simulateSession(
    const simcall::VcaProfile& profile,
    const netem::ConditionSchedule& schedule, double durationSec,
    std::uint64_t seed, std::uint64_t sessionId,
    const rxstats::GroundTruthOptions& truthOptions = {});

/// Ground-truth options modeling the Raspberry Pi receivers of the
/// real-world deployment: H.264 decodes in hardware, but Meet's VP9 is
/// software-decoded and cannot sustain 720p at 30 fps.
rxstats::GroundTruthOptions raspberryPiReceiver(
    const simcall::VcaProfile& profile);

struct LabDatasetOptions {
  /// Calls per VCA; the paper's lab dataset is ≈11k/15k/13k seconds —
  /// scaled down by default to keep benches fast. Seconds scale linearly.
  int callsPerVca = 30;
  double minCallSec = 50.0;
  double maxCallSec = 80.0;
  std::uint64_t seed = 20231024;  // IMC'23 presentation date
};

/// In-lab dataset: calls for all three VCAs under synthetic NDT-like
/// dynamic conditions (<10 Mbps).
std::vector<core::LabeledSession> generateLabDataset(
    const LabDatasetOptions& options = {});

struct RealWorldDatasetOptions {
  /// Scale factor on the paper's call counts (320 Meet / 178 Teams /
  /// 417 Webex). 0.15 keeps bench runtime reasonable.
  double callCountScale = 0.15;
  double minCallSec = 15.0;  // §4.2: 15-25 s calls every 30 minutes
  double maxCallSec = 25.0;
  std::uint64_t seed = 19991231;
};

/// Real-world dataset: short calls cycling over the 15 household profiles.
std::vector<core::LabeledSession> generateRealWorldDataset(
    const RealWorldDatasetOptions& options = {});

/// Builds window records for many sessions (concatenated, in session
/// order). Sessions are processed in parallel.
std::vector<core::WindowRecord> recordsForSessions(
    const std::vector<core::LabeledSession>& sessions,
    const core::RecordBuilderOptions& options = {});

/// Filters sessions of one VCA.
std::vector<core::LabeledSession> sessionsForVca(
    const std::vector<core::LabeledSession>& sessions,
    const std::string& vcaName);

}  // namespace vcaqoe::datasets
