#include "datasets/vca_profiles.hpp"

#include <stdexcept>

namespace vcaqoe::datasets {

simcall::VcaProfile meetProfile(Deployment deployment) {
  simcall::VcaProfile p;
  p.name = "meet";
  p.codec = "VP9";
  p.audioPt = 111;
  if (deployment == Deployment::kLab) {
    p.videoPt = 96;
    p.rtxPt = 97;
  } else {
    p.videoPt = 98;
    p.rtxPt = 99;
  }
  p.ladder = {{180, 0.0},   {270, 350.0},  {360, 700.0},
              {540, 1600.0}, {720, 2600.0}};
  // In the lab the receiving viewport capped Meet at 360p (only 3 heights
  // observed, §5.1.5); real-world calls also reached 540/720 (§5.2.4).
  p.maxFrameHeight = deployment == Deployment::kLab ? 360 : 720;
  p.startKbps = 400.0;
  p.minTargetKbps = 60.0;
  p.maxTargetKbps = deployment == Deployment::kLab ? 2'000.0 : 4'000.0;
  // VP8/VP9 packetization: unequal fragmentation whose probability grows
  // with frame size — calibrated to ≈4% of frames in-lab (≈5-6 kB frames)
  // and ≈14% real-world (≈13-15 kB frames).
  p.unequalBaseProb = 0.030;
  p.unequalRefBytes = 4'000.0;
  p.unequalSpread = 0.18;
  p.frameSizeCv = 0.24;
  p.frameSizeQuantumBytes = 1;
  return p;
}

simcall::VcaProfile teamsProfile(Deployment deployment) {
  simcall::VcaProfile p;
  p.name = "teams";
  p.codec = "H.264";
  p.audioPt = 111;
  if (deployment == Deployment::kLab) {
    p.videoPt = 102;  // §3.1: PT=102 video, PT=103 retransmissions
    p.rtxPt = 103;
  } else {
    p.videoPt = 100;  // §5.2: video 100, RTX 101 in the wild
    p.rtxPt = 101;
  }
  // Eleven distinct frame heights from 90 to 720 (§5.1.5). The 404 and 480
  // rungs sit close together in bitrate: the paper finds 70% of "medium"
  // intervals at 404p and heavy medium/high confusion (Table 4), which
  // requires overlapping operating ranges around the 480 bin boundary.
  p.ladder = {{90, 0.0},     {120, 120.0},  {180, 220.0},  {240, 350.0},
              {270, 450.0},  {300, 550.0},  {360, 700.0},  {404, 900.0},
              {480, 1'350.0}, {540, 1'650.0}, {720, 2'400.0}};
  p.maxFrameHeight = 720;
  p.startKbps = 500.0;
  p.minTargetKbps = 80.0;
  p.maxTargetKbps = 3'000.0;  // in-lab median bitrate ≈ 1700 kbps
  p.unequalBaseProb = 0.0;    // H.264: equal-size fragmentation
  p.frameSizeCv = 0.22;
  p.frameSizeQuantumBytes = 2;
  // Teams picks among its 11 rungs with visible content/CPU influence:
  // adjacent-rung overlap drives the paper's medium/high confusion.
  p.ladderChoiceNoise = 0.40;
  return p;
}

simcall::VcaProfile webexProfile(Deployment deployment) {
  simcall::VcaProfile p;
  p.name = "webex";
  p.codec = "H.264";
  p.audioPt = 101;
  p.videoPt = deployment == Deployment::kLab ? 102 : 100;
  // No retransmission stream observed in the real-world Webex data (§5.2).
  p.rtxPt = deployment == Deployment::kLab ? 103 : 0;
  p.ladder = {{180, 0.0}, {360, 400.0}};
  p.maxFrameHeight = 360;
  p.startKbps = 300.0;
  p.minTargetKbps = 60.0;
  // In-lab median bitrate ≈ 500 kbps; the wild runs a single 360p rung with
  // somewhat more headroom.
  p.maxTargetKbps = deployment == Deployment::kLab ? 750.0 : 850.0;
  p.unequalBaseProb = 0.0;
  p.frameSizeCv = 0.17;
  // Coarse rate-control quantization: consecutive frames often land on the
  // same size bucket, producing the frame coalescing of Fig 4.
  p.frameSizeQuantumBytes = 32;
  return p;
}

std::vector<simcall::VcaProfile> allProfiles(Deployment deployment) {
  return {meetProfile(deployment), teamsProfile(deployment),
          webexProfile(deployment)};
}

simcall::VcaProfile profileByName(const std::string& name,
                                  Deployment deployment) {
  if (name == "meet") return meetProfile(deployment);
  if (name == "teams") return teamsProfile(deployment);
  if (name == "webex") return webexProfile(deployment);
  throw std::invalid_argument("unknown VCA profile: " + name);
}

}  // namespace vcaqoe::datasets
