#include "datasets/generators.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/load.hpp"
#include "rxstats/ground_truth.hpp"
#include "simcall/call_simulator.hpp"

namespace vcaqoe::datasets {

core::LabeledSession simulateSession(
    const simcall::VcaProfile& profile,
    const netem::ConditionSchedule& schedule, double durationSec,
    std::uint64_t seed, std::uint64_t sessionId,
    const rxstats::GroundTruthOptions& truthOptions) {
  simcall::CallSimulator simulator(profile, schedule, seed);
  simcall::CallResult call = simulator.run(durationSec);

  core::LabeledSession session;
  session.id = sessionId;
  session.truth = rxstats::buildGroundTruth(call, durationSec, truthOptions,
                                            seed ^ 0x6A09E667F3BCC908ULL);
  session.packets = std::move(call.packets);
  session.profile = call.profile;
  session.durationSec = durationSec;
  return session;
}

std::vector<core::LabeledSession> generateLabDataset(
    const LabDatasetOptions& options) {
  common::Rng rng(options.seed);
  std::vector<core::LabeledSession> sessions;
  std::uint64_t id = 0;

  struct Job {
    simcall::VcaProfile profile;
    netem::ConditionSchedule schedule;
    double durationSec;
    std::uint64_t seed;
    std::uint64_t id;
  };
  std::vector<Job> jobs;
  for (const auto& profile : allProfiles(Deployment::kLab)) {
    netem::NdtTraceSynthesizer synth(rng.engine()());
    for (int call = 0; call < options.callsPerVca; ++call) {
      Job job;
      job.profile = profile;
      job.durationSec = rng.uniform(options.minCallSec, options.maxCallSec);
      job.schedule = synth.synthesize(
          static_cast<std::size_t>(std::ceil(job.durationSec)));
      job.seed = rng.engine()();
      job.id = id++;
      jobs.push_back(std::move(job));
    }
  }

  sessions.resize(jobs.size());
  const std::size_t threads = common::hardwareThreadsOr(1);
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        const Job& job = jobs[i];
        sessions[i] = simulateSession(job.profile, job.schedule,
                                      job.durationSec, job.seed, job.id);
      }
    });
  }
  for (auto& th : pool) th.join();
  return sessions;
}

rxstats::GroundTruthOptions raspberryPiReceiver(
    const simcall::VcaProfile& profile) {
  rxstats::GroundTruthOptions options;
  // The RPi hardware-decodes H.264 (Teams, Webex) at any rung, but Meet's
  // VP9 falls back to ~24 Mpixel/s software decode: 540p keeps 30 fps,
  // 720p saturates at ~26 fps with skip bursts. This codec asymmetry is
  // what makes the real-world Meet regime unlike anything in the lab data
  // (§5.3).
  if (profile.codec == "VP9") {
    options.jitterBuffer.decodePixelsPerSec = 24e6;
  }
  return options;
}

std::vector<core::LabeledSession> generateRealWorldDataset(
    const RealWorldDatasetOptions& options) {
  common::Rng rng(options.seed);
  const auto& households = netem::householdProfiles();

  struct Job {
    simcall::VcaProfile profile;
    netem::ConditionSchedule schedule;
    double durationSec;
    std::uint64_t seed;
    std::uint64_t id;
  };
  std::vector<Job> jobs;
  std::uint64_t id = 1'000'000;  // distinct id space from the lab dataset

  const auto profiles = allProfiles(Deployment::kRealWorld);
  const int paperCounts[3] = {320, 178, 417};  // Meet, Teams, Webex (§4.2)
  for (std::size_t v = 0; v < profiles.size(); ++v) {
    const int calls = std::max(
        1, static_cast<int>(std::lround(paperCounts[v] *
                                        options.callCountScale)));
    for (int call = 0; call < calls; ++call) {
      Job job;
      job.profile = profiles[v];
      job.durationSec = rng.uniform(options.minCallSec, options.maxCallSec);
      const auto& household = households[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(households.size()) - 1))];
      common::Rng scheduleRng(rng.engine()());
      job.schedule = netem::householdSchedule(
          household, static_cast<std::size_t>(std::ceil(job.durationSec)) + 1,
          scheduleRng);
      job.seed = rng.engine()();
      job.id = id++;
      jobs.push_back(std::move(job));
    }
  }

  std::vector<core::LabeledSession> sessions(jobs.size());
  const std::size_t threads = common::hardwareThreadsOr(1);
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        const Job& job = jobs[i];
        sessions[i] = simulateSession(job.profile, job.schedule,
                                      job.durationSec, job.seed, job.id,
                                      raspberryPiReceiver(job.profile));
      }
    });
  }
  for (auto& th : pool) th.join();
  return sessions;
}

std::vector<core::WindowRecord> recordsForSessions(
    const std::vector<core::LabeledSession>& sessions,
    const core::RecordBuilderOptions& options) {
  std::vector<std::vector<core::WindowRecord>> perSession(sessions.size());
  const std::size_t threads = common::hardwareThreadsOr(1);
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < sessions.size();
           i = next.fetch_add(1)) {
        perSession[i] = core::buildWindowRecords(sessions[i], options);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::vector<core::WindowRecord> all;
  for (auto& records : perSession) {
    all.insert(all.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return all;
}

std::vector<core::LabeledSession> sessionsForVca(
    const std::vector<core::LabeledSession>& sessions,
    const std::string& vcaName) {
  std::vector<core::LabeledSession> out;
  for (const auto& session : sessions) {
    if (session.profile.name == vcaName) out.push_back(session);
  }
  return out;
}

}  // namespace vcaqoe::datasets
