#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Per-VCA sender model parameters.
///
/// Each of the three studied applications (Meet, Teams, Webex) is described
/// by one `VcaProfile`. The values of the three concrete profiles (and their
/// lab vs real-world deployment variants) live in `datasets/vca_profiles`;
/// this header defines the knobs the simulator understands.
namespace vcaqoe::simcall {

/// One rung of the resolution ladder: the encoder sends `frameHeight` once
/// its target bitrate exceeds `minKbps` (with hysteresis).
struct ResolutionRung {
  int frameHeight = 0;
  double minKbps = 0.0;
};

struct VcaProfile {
  std::string name;   // "meet", "teams", "webex"
  std::string codec;  // "VP9" or "H.264" — documentation only

  // --- RTP payload types (differ between lab and real-world deployments,
  // §5.2: e.g. Teams video 102 in lab but 100 in the wild). rtxPt == 0 means
  // the deployment runs no retransmission stream (real-world Webex).
  std::uint8_t audioPt = 111;
  std::uint8_t videoPt = 102;
  std::uint8_t rtxPt = 103;

  // --- Audio (OPUS): one packet per ptime during talkspurts, sizes inside
  // the paper's observed [89, 385] byte band. The capture setups of the
  // paper stream a (mostly silent) looped video, so OPUS runs in DTX most
  // of the time — audio is only ~3% of packets (Fig 1). During silence only
  // sparse comfort-noise packets are sent.
  double audioPtimeMs = 20.0;
  std::uint32_t audioMinBytes = 89;
  std::uint32_t audioMaxBytes = 385;
  /// Fraction of call time with voice activity (talkspurts).
  double audioActivityFactor = 0.05;
  /// Mean talkspurt length; silence periods scale with the activity factor.
  double audioTalkspurtMeanSec = 1.5;
  /// Comfort-noise packet interval while silent (OPUS DTX ≈ 400 ms).
  double audioDtxIntervalMs = 400.0;

  // --- Video encoder.
  double maxFps = 30.0;
  double startKbps = 400.0;    // initial ramp-up target
  double minTargetKbps = 60.0;
  double maxTargetKbps = 2'800.0;
  std::vector<ResolutionRung> ladder;  // ascending by minKbps
  int maxFrameHeight = 10'000;         // deployment cap (viewport size)

  /// Maximum video payload bytes per packet, excluding the 12-byte RTP
  /// header (≈1200-byte MTU budget typical of WebRTC).
  std::uint32_t mtuPayloadBytes = 1'164;
  /// Smallest frame the encoder emits; keeps single-packet frames above the
  /// audio size band (paper Fig 1: 99% of video packets > 564 B).
  std::uint32_t minFrameBytes = 600;

  /// Meet's VP8/VP9 packetization fragments some frames into unequal-sized
  /// packets (paper §5.1.2 case 2 / §5.2.1). The probability a frame is
  /// fragmented unevenly grows with frame size:
  ///   p = unequalBaseProb * (frameBytes / unequalRefBytes)^1.2, clamped to 1.
  /// Zero disables (Teams/Webex H.264 equal-size fragmentation).
  double unequalBaseProb = 0.0;
  double unequalRefBytes = 4'000.0;
  /// Max relative deviation of packet sizes within an unequal frame.
  double unequalSpread = 0.15;

  /// Frame sizes are quantized to this many bytes (encoder rate-control
  /// granularity). Coarser quantization makes consecutive frames collide in
  /// size more often — the coalesce error of Fig 4 (largest for Webex).
  std::uint32_t frameSizeQuantumBytes = 1;

  double keyframeIntervalSec = 10.0;
  double keyframeSizeMultiplier = 3.5;
  /// Coefficient of variation of per-frame size around the rate target.
  double frameSizeCv = 0.22;
  /// AR(1) correlation of the content-complexity process.
  double contentCorrelation = 0.55;
  /// Probability per frame of a scene change (complexity jump).
  double sceneChangeProb = 0.01;

  /// FEC bandwidth overhead folded into frame payload (RFC 5109-style
  /// protection is why frames are split into equal-size packets).
  double fecOverhead = 0.05;

  // --- Retransmission stream. Keep-alives dominate it: the paper finds RTX
  // ≈ 8% of video packets with 92% being 304-byte keep-alives, i.e. about
  // 11 keep-alives per second on a ~155 pkt/s video stream.
  std::uint32_t rtxKeepaliveBytes = 304;
  double rtxKeepaliveIntervalMs = 90.0;
  int rtxMaxRetries = 1;

  // --- Rate controller (GCC-flavoured). The controller reacts to the loss
  // the *application* experiences after FEC and RTX recovery, not the raw
  // network loss — which is why real VCAs keep their rate up under heavy
  // random loss (the regime of Fig 11) while decoded frame rate becomes
  // erratic.
  double increaseFactor = 1.08;   // multiplicative increase when clean
  double decreaseFactor = 0.85;   // on congestion
  double lossDecreaseGain = 2.0;  // extra decrease per unit residual loss
  /// RTCP feedback cadence driving the controller. Real GCC updates every
  /// few RTTs and probes aggressively at call start — a 15-25 s call
  /// reaches multi-Mbps targets within its first half, which is what lets
  /// the paper's real-world Meet calls hit 540/720p (§5.2.4).
  double feedbackIntervalMs = 200.0;
  /// Fraction of raw network loss that survives FEC + RTX recovery and is
  /// visible to the congestion controller.
  double residualLossFactor = 0.3;

  /// Hysteresis for ladder switching: move up only when the target exceeds
  /// the rung threshold by this factor for `ladderUpHoldSec` seconds.
  double ladderUpFactor = 1.25;
  double ladderUpHoldSec = 1.0;
  /// Probability that a committed ladder switch lands one rung away from
  /// the bitrate-implied target (content/CPU-driven resolution choice).
  /// This makes operating bitrates of adjacent rungs overlap — the source
  /// of the paper's medium/high resolution confusion for Teams (Table 4).
  double ladderChoiceNoise = 0.0;
};

/// Highest ladder rung (≤ maxFrameHeight) affordable at `targetKbps`;
/// ladder must be non-empty and sorted ascending by minKbps.
const ResolutionRung& rungForBitrate(const VcaProfile& profile,
                                     double targetKbps);

}  // namespace vcaqoe::simcall
