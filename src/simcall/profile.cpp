#include "simcall/profile.hpp"

#include <stdexcept>

namespace vcaqoe::simcall {

const ResolutionRung& rungForBitrate(const VcaProfile& profile,
                                     double targetKbps) {
  if (profile.ladder.empty()) {
    throw std::invalid_argument("VcaProfile.ladder must not be empty");
  }
  const ResolutionRung* best = &profile.ladder.front();
  for (const auto& rung : profile.ladder) {
    if (rung.frameHeight > profile.maxFrameHeight) continue;
    if (targetKbps >= rung.minKbps) best = &rung;
  }
  return *best;
}

}  // namespace vcaqoe::simcall
