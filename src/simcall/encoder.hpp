#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "simcall/profile.hpp"

/// Sender-side video pipeline models: congestion-controlled target bitrate
/// (GCC-flavoured) and a variable-bitrate encoder frame-size process.
namespace vcaqoe::simcall {

/// Delay/loss-based rate controller in the spirit of WebRTC's Google
/// Congestion Control: multiplicative increase while the path is clean,
/// sharp decrease on loss or queue build-up, capped near the measured
/// delivery rate under congestion.
class RateController {
 public:
  explicit RateController(const VcaProfile& profile);

  /// Applies one feedback report (typically once per second).
  void onFeedback(double lossRate, double deliveryRateKbps,
                  double queueDelayMs);

  double targetKbps() const { return targetKbps_; }

 private:
  const VcaProfile& profile_;
  double targetKbps_;
};

/// What the encoder produced for one captured frame.
struct FrameSpec {
  std::uint32_t sizeBytes = 0;  // video payload incl. FEC, excl. RTP headers
  bool keyframe = false;
  int frameHeight = 0;
  double fps = 0.0;  // capture rate in effect when this frame was produced
};

/// Variable-bitrate encoder model: produces per-frame sizes around the rate
/// target with AR(1)-correlated content complexity, scene changes, periodic
/// keyframes, resolution-ladder selection with upward hysteresis, and frame
/// rate degradation at very low bitrates.
class VideoEncoderModel {
 public:
  VideoEncoderModel(const VcaProfile& profile, common::Rng rng);

  /// Produces the next frame at capture time `now` given the controller's
  /// current target.
  FrameSpec encodeFrame(common::TimeNs now, double targetKbps);

  /// Capture interval implied by the current frame rate.
  common::DurationNs frameIntervalNs() const;

  /// Forces the next encoded frame to be a keyframe (receiver PLI after an
  /// unrecoverable loss).
  void requestKeyframe() { keyframeRequested_ = true; }

  double currentFps() const { return currentFps_; }
  int currentFrameHeight() const { return currentHeight_; }

 private:
  void updateFps(double targetKbps);
  void updateResolution(common::TimeNs now, double targetKbps);
  /// Perturbs a committed ladder choice by one rung with the profile's
  /// ladderChoiceNoise probability.
  int applyChoiceNoise(int height);

  const VcaProfile& profile_;
  common::Rng rng_;

  double currentFps_;
  int currentHeight_;
  double contentFactor_ = 1.0;
  common::TimeNs lastKeyframeNs_ = 0;
  bool firstFrame_ = true;
  bool keyframeRequested_ = false;

  // Ladder-up hysteresis state.
  int pendingHeight_ = 0;
  common::TimeNs pendingSinceNs_ = 0;
};

/// Frame rate below which encoders stop degrading further.
inline constexpr double kMinVideoFps = 4.0;
/// Target bitrate under which the frame rate starts degrading.
inline constexpr double kFpsDegradeKbps = 250.0;

}  // namespace vcaqoe::simcall
