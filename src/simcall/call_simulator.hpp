#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "netem/conditions.hpp"
#include "netem/link.hpp"
#include "netflow/packet.hpp"
#include "rtp/media_kind.hpp"
#include "rtp/rtp.hpp"
#include "simcall/encoder.hpp"
#include "simcall/profile.hpp"

/// End-to-end VCA call simulation.
///
/// Drives the sender models (encoder, packetizer, audio, RTX, DTLS/STUN)
/// against a `netem::LinkEmulator` and records what the receiver-side
/// monitoring point observes, plus the sender-side ground truth the
/// evaluation needs (frame table). This substitutes for the paper's live
/// Meet/Teams/Webex calls.
namespace vcaqoe::simcall {

/// Sender-side truth for one captured video frame.
struct SentFrame {
  std::uint32_t rtpTimestamp = 0;
  common::TimeNs captureNs = 0;
  std::uint32_t payloadBytes = 0;  // total video payload (excl. RTP headers)
  int frameHeight = 0;
  bool keyframe = false;
  std::uint16_t packetCount = 0;
  double encoderFps = 0.0;  // capture rate in effect
};

/// Everything a simulated call produces.
struct CallResult {
  /// Receiver-side observations, sorted by arrival time. Lost packets are
  /// absent — the monitor never sees them.
  netflow::PacketTrace packets;
  /// Ground-truth frame table at the sender.
  std::vector<SentFrame> sentFrames;
  /// The profile and schedule used (for downstream labeling).
  VcaProfile profile;
  netem::LinkStats linkStats;
};

/// Fixed SSRCs so streams are identifiable in tests and traces.
inline constexpr std::uint32_t kVideoSsrc = 0x56494445;  // "VIDE"
inline constexpr std::uint32_t kAudioSsrc = 0x41554449;  // "AUDI"
inline constexpr std::uint32_t kRtxSsrc = 0x52545821;    // "RTX!"

class CallSimulator {
 public:
  CallSimulator(VcaProfile profile, netem::ConditionSchedule schedule,
                std::uint64_t seed);

  /// Offsets SSRCs and RTP timestamp bases so several senders multiplexed
  /// onto one flow (multi-party conferencing, §7) stay distinguishable and
  /// collision-free. Call before run().
  void setParticipantIndex(std::uint32_t participant);

  /// Simulates a call of `durationSec` seconds and returns the trace plus
  /// ground truth.
  CallResult run(double durationSec);

 private:
  struct PendingRtx {
    common::TimeNs dueNs;
    std::uint32_t sizeBytes;
    std::uint32_t rtpTimestamp;
    int retriesLeft;
  };

  void emitDtlsHandshake();
  void emitStunCheck(common::TimeNs t);
  void emitAudioPacket(common::TimeNs t);
  common::DurationNs nextAudioInterval(common::TimeNs now);
  void emitVideoFrame(common::TimeNs t);
  void emitRtxKeepalive(common::TimeNs t);
  void sendRtpPacket(common::TimeNs departNs, std::uint32_t payloadBytes,
                     const rtp::RtpHeader& header, bool isVideo);
  void sendOpaquePacket(common::TimeNs departNs, std::uint32_t payloadBytes,
                        std::uint8_t firstByte);
  void flushDueRtx(common::TimeNs now);
  void schedulePli(common::TimeNs dueNs);

  VcaProfile profile_;
  common::Rng rng_;
  netem::LinkEmulator link_;
  RateController rate_;
  VideoEncoderModel encoder_;

  CallResult result_;
  std::vector<PendingRtx> rtxQueue_;

  bool audioTalking_ = false;
  common::TimeNs audioStateUntil_ = 0;

  /// Pending receiver PLI: a keyframe is forced once simulation time
  /// reaches this point (receiver noticed an unrecoverable loss ~RTT ago).
  common::TimeNs keyframeDueNs_ = -1;

  std::uint16_t videoSeq_ = 1;
  std::uint16_t audioSeq_ = 1;
  std::uint16_t rtxSeq_ = 1;
  std::uint32_t videoTsBase_ = 90'000;  // arbitrary non-zero bases
  std::uint32_t audioTsBase_ = 48'000;
  std::uint32_t videoSsrc_ = kVideoSsrc;
  std::uint32_t audioSsrc_ = kAudioSsrc;
  std::uint32_t rtxSsrc_ = kRtxSsrc;
  double currentRttMs_ = 50.0;
};

}  // namespace vcaqoe::simcall
