#pragma once

#include <vector>

#include "netem/conditions.hpp"
#include "simcall/call_simulator.hpp"
#include "simcall/profile.hpp"

/// Application modes beyond the paper's two-person camera call (§7 "Impact
/// of application modes"): screen sharing and multi-party conferencing.
/// The paper leaves quantifying these to future work; this module provides
/// the simulation substrate and the mode ablation bench measures the
/// impact on estimation accuracy.
namespace vcaqoe::simcall {

/// Derives a screen-share sender from a camera profile: low capture rate,
/// highly variable frame sizes (static screen, bursts on scroll/redraw),
/// longer keyframe spacing.
VcaProfile screenShareVariant(VcaProfile base);

struct MultiPartyOptions {
  /// Remote senders whose media is forwarded onto the observed downlink.
  int participants = 4;
  /// SFU-style per-sender bitrate budget: each sender is capped at
  /// profile.maxTargetKbps / participants (receive-side bandwidth split).
  bool splitBitrateBudget = true;
};

struct MultiPartyResult {
  /// The merged downlink trace (all senders on one UDP flow), sorted by
  /// arrival.
  netflow::PacketTrace packets;
  /// Per-participant results (frame tables etc.); index 0 is the
  /// "speaker" whose QoE the mode bench evaluates.
  std::vector<CallResult> perParticipant;
};

/// Simulates an SFU-forwarded multi-party call: each remote sender runs an
/// independent encoder/rate-control loop over its share of the access-link
/// capacity, and all streams arrive on one flow. Approximation: the shared
/// bottleneck is modeled by dividing the per-second capacity among senders
/// rather than a single shared queue (documented in DESIGN.md).
MultiPartyResult simulateMultiPartyCall(const VcaProfile& profile,
                                        const netem::ConditionSchedule& schedule,
                                        double durationSec, std::uint64_t seed,
                                        const MultiPartyOptions& options = {});

}  // namespace vcaqoe::simcall
