#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "simcall/profile.hpp"

/// Frame packetization.
///
/// The paper's key IP/UDP insight (§3.2.1) rests on how VCAs fragment a
/// frame into packets: FEC is most bandwidth-efficient over equal-length
/// packets, so a frame's packets are (nearly) equal-sized, while consecutive
/// frames differ in size. This module reproduces that mechanism, including
/// Meet's unequal VP8/VP9 fragmentation of a size-dependent fraction of
/// frames.
namespace vcaqoe::simcall {

/// Splits `frameBytes` of encoded payload into per-packet payload sizes
/// (excluding the 12-byte RTP header).
///
/// Equal mode: n = ceil(frameBytes / mtu) packets whose sizes differ by at
/// most one byte (remainder spread). Unequal mode (probability grows with
/// frame size per `profile.unequalBaseProb`): packet sizes deviate by up to
/// `profile.unequalSpread` relative while preserving the total.
std::vector<std::uint32_t> packetizeFrame(const VcaProfile& profile,
                                          std::uint32_t frameBytes,
                                          common::Rng& rng);

/// Probability that a frame of `frameBytes` is fragmented unequally (the
/// mechanism behind the paper's 4.26% lab / 14.48% real-world Meet split
/// errors: bigger frames violate equal-size fragmentation more often).
double unequalFragmentationProb(const VcaProfile& profile,
                                std::uint32_t frameBytes);

}  // namespace vcaqoe::simcall
