#pragma once

#include <vector>

#include "common/rng.hpp"
#include "netflow/packet.hpp"
#include "netflow/pcap.hpp"

/// Background (non-VCA) traffic generators.
///
/// The paper assumes the VCA session's packets have already been isolated
/// by a traffic classifier (§2.2, citing prior work). This module provides
/// the other side of that problem: realistic non-VCA flows to mix into a
/// capture so the flow classifier (core/flow_classifier) has something to
/// reject — DNS chatter, web-browsing bursts, DASH-style video downloads,
/// and low-rate gaming traffic.
namespace vcaqoe::simcall {

enum class BackgroundKind {
  kDns,            // sparse small request/response datagrams
  kWebBrowsing,    // short QUIC-like bursts of large packets
  kVideoStreaming, // DASH: multi-second ON/OFF chunks of MTU packets
  kGaming,         // small packets at a steady tick rate
};

/// One synthetic background flow over [0, durationSec).
std::vector<netflow::PcapRecord> generateBackgroundFlow(
    BackgroundKind kind, const netflow::FlowKey& flow, double durationSec,
    common::Rng& rng);

/// A bundle of mixed background flows with distinct 5-tuples.
std::vector<netflow::PcapRecord> generateBackgroundMix(double durationSec,
                                                       std::uint64_t seed);

}  // namespace vcaqoe::simcall
