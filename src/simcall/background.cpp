#include "simcall/background.hpp"

#include <algorithm>

namespace vcaqoe::simcall {

namespace {

netflow::PcapRecord makeRecord(const netflow::FlowKey& flow,
                               common::TimeNs arrival, std::uint32_t size) {
  netflow::PcapRecord record;
  record.flow = flow;
  record.packet.arrivalNs = arrival;
  record.packet.sizeBytes = size;
  return record;
}

void generateDns(std::vector<netflow::PcapRecord>& out,
                 const netflow::FlowKey& flow, double durationSec,
                 common::Rng& rng) {
  common::TimeNs t = common::secondsToNs(rng.uniform(0.0, 1.0));
  const common::TimeNs end = common::secondsToNs(durationSec);
  while (t < end) {
    out.push_back(makeRecord(
        flow, t, static_cast<std::uint32_t>(rng.uniformInt(60, 180))));
    t += common::secondsToNs(rng.exponential(2.0));
  }
}

void generateWebBrowsing(std::vector<netflow::PcapRecord>& out,
                         const netflow::FlowKey& flow, double durationSec,
                         common::Rng& rng) {
  // Page loads: a burst of large packets every few seconds, then silence.
  common::TimeNs t = common::secondsToNs(rng.uniform(0.0, 2.0));
  const common::TimeNs end = common::secondsToNs(durationSec);
  while (t < end) {
    const int burstPackets = static_cast<int>(rng.uniformInt(20, 250));
    common::TimeNs burstT = t;
    for (int i = 0; i < burstPackets && burstT < end; ++i) {
      out.push_back(makeRecord(
          flow, burstT,
          static_cast<std::uint32_t>(rng.uniformInt(1'100, 1'400))));
      burstT += common::microsToNs(rng.uniform(30.0, 400.0));
    }
    t = burstT + common::secondsToNs(rng.exponential(4.0));
  }
}

void generateVideoStreaming(std::vector<netflow::PcapRecord>& out,
                            const netflow::FlowKey& flow, double durationSec,
                            common::Rng& rng) {
  // DASH: ~2 s chunks downloaded at line rate every ~4 s (ON/OFF pattern —
  // the tell that separates VoD from real-time conferencing).
  common::TimeNs t = common::secondsToNs(rng.uniform(0.0, 1.0));
  const common::TimeNs end = common::secondsToNs(durationSec);
  while (t < end) {
    const auto chunkBytes = rng.uniformInt(700'000, 2'000'000);
    std::int64_t sent = 0;
    common::TimeNs chunkT = t;
    while (sent < chunkBytes && chunkT < end) {
      out.push_back(makeRecord(flow, chunkT, 1'400));
      sent += 1'400;
      chunkT += common::microsToNs(rng.uniform(100.0, 180.0));
    }
    t += common::secondsToNs(rng.uniform(3.5, 5.0));
  }
}

void generateGaming(std::vector<netflow::PcapRecord>& out,
                    const netflow::FlowKey& flow, double durationSec,
                    common::Rng& rng) {
  // 30-60 Hz ticks of small state updates.
  const double tickMs = rng.uniform(16.0, 33.0);
  common::TimeNs t = 0;
  const common::TimeNs end = common::secondsToNs(durationSec);
  while (t < end) {
    out.push_back(makeRecord(
        flow, t, static_cast<std::uint32_t>(rng.uniformInt(60, 220))));
    t += common::millisToNs(tickMs * rng.uniform(0.9, 1.1));
  }
}

}  // namespace

std::vector<netflow::PcapRecord> generateBackgroundFlow(
    BackgroundKind kind, const netflow::FlowKey& flow, double durationSec,
    common::Rng& rng) {
  std::vector<netflow::PcapRecord> out;
  switch (kind) {
    case BackgroundKind::kDns:
      generateDns(out, flow, durationSec, rng);
      break;
    case BackgroundKind::kWebBrowsing:
      generateWebBrowsing(out, flow, durationSec, rng);
      break;
    case BackgroundKind::kVideoStreaming:
      generateVideoStreaming(out, flow, durationSec, rng);
      break;
    case BackgroundKind::kGaming:
      generateGaming(out, flow, durationSec, rng);
      break;
  }
  return out;
}

std::vector<netflow::PcapRecord> generateBackgroundMix(double durationSec,
                                                       std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<netflow::PcapRecord> all;
  const BackgroundKind kinds[] = {
      BackgroundKind::kDns, BackgroundKind::kWebBrowsing,
      BackgroundKind::kVideoStreaming, BackgroundKind::kGaming};
  std::uint16_t port = 40'000;
  for (const auto kind : kinds) {
    netflow::FlowKey flow;
    flow.srcIp = 0x08080800u + static_cast<std::uint32_t>(port % 251);
    flow.dstIp = 0xC0A80117u;  // 192.168.1.23
    flow.srcPort = static_cast<std::uint16_t>(kind == BackgroundKind::kDns
                                                  ? 53
                                                  : 443);
    flow.dstPort = port++;
    auto records = generateBackgroundFlow(kind, flow, durationSec, rng);
    all.insert(all.end(), records.begin(), records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const netflow::PcapRecord& a, const netflow::PcapRecord& b) {
              return a.packet.arrivalNs < b.packet.arrivalNs;
            });
  return all;
}

}  // namespace vcaqoe::simcall
