#include "simcall/packetizer.hpp"

#include <algorithm>
#include <cmath>

namespace vcaqoe::simcall {

double unequalFragmentationProb(const VcaProfile& profile,
                                std::uint32_t frameBytes) {
  if (profile.unequalBaseProb <= 0.0) return 0.0;
  const double ratio =
      static_cast<double>(frameBytes) / profile.unequalRefBytes;
  return std::min(1.0, profile.unequalBaseProb * std::pow(ratio, 1.2));
}

std::vector<std::uint32_t> packetizeFrame(const VcaProfile& profile,
                                          std::uint32_t frameBytes,
                                          common::Rng& rng) {
  const std::uint32_t mtu = std::max<std::uint32_t>(profile.mtuPayloadBytes, 64);
  const std::uint32_t n = std::max<std::uint32_t>(
      1, (frameBytes + mtu - 1) / mtu);

  std::vector<std::uint32_t> sizes(n, frameBytes / n);
  // Spread the remainder one byte at a time: intra-frame difference <= 1.
  for (std::uint32_t i = 0; i < frameBytes % n; ++i) ++sizes[i];

  if (n > 1 && rng.bernoulli(unequalFragmentationProb(profile, frameBytes))) {
    // Unequal fragmentation: VP8/VP9 partition boundaries leave one (rarely
    // two) packets — typically the tail — off the equal size, while the
    // rest of the frame stays uniform. One odd packet costs Algorithm 1
    // exactly one false boundary, which is what Fig 4's ~0.7 splits per
    // window for Meet implies.
    const int deviating = n >= 5 && rng.bernoulli(0.25) ? 2 : 1;
    for (int k = 0; k < deviating; ++k) {
      // Bias towards the last packet (the partition tail).
      const auto i =
          k == 0 && rng.bernoulli(0.7)
              ? n - 1
              : static_cast<std::uint32_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
      const auto maxShift =
          static_cast<std::int64_t>(sizes[i] * profile.unequalSpread);
      if (maxShift < 3) continue;
      const std::int64_t magnitude = rng.uniformInt(3, maxShift);
      const std::int64_t shift = rng.bernoulli(0.5) ? magnitude : -magnitude;
      const std::int64_t resized =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(sizes[i]) + shift,
                                   64, static_cast<std::int64_t>(mtu));
      sizes[i] = static_cast<std::uint32_t>(resized);
    }
  }
  return sizes;
}

}  // namespace vcaqoe::simcall
