#include "simcall/call_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "rtp/rtp.hpp"
#include "simcall/packetizer.hpp"

namespace vcaqoe::simcall {

namespace {

/// First byte of a DTLS handshake record (content type 22). The top two bits
/// are 0, so RTP parsing (version must be 2) correctly rejects these.
constexpr std::uint8_t kDtlsHandshakeByte = 22;
/// First byte of a STUN binding request (0b00...); also non-RTP.
constexpr std::uint8_t kStunByte = 0x00;

}  // namespace

CallSimulator::CallSimulator(VcaProfile profile,
                             netem::ConditionSchedule schedule,
                             std::uint64_t seed)
    : profile_(std::move(profile)),
      rng_(seed),
      link_(std::move(schedule), seed ^ 0x9E3779B97F4A7C15ULL),
      rate_(profile_),
      encoder_(profile_, common::Rng(seed ^ 0xC2B2AE3D27D4EB4FULL)) {}

void CallSimulator::sendRtpPacket(common::TimeNs departNs,
                                  std::uint32_t payloadBytes,
                                  const rtp::RtpHeader& header, bool isVideo) {
  const std::uint32_t wireBytes =
      payloadBytes + static_cast<std::uint32_t>(rtp::kRtpHeaderSize);
  auto arrival = link_.send(departNs, wireBytes);
  if (!arrival) {
    if (isVideo && profile_.rtxPt != 0) {
      // Receiver NACKs after roughly one RTT; sender retransmits on the RTX
      // stream with the same media timestamp.
      rtxQueue_.push_back(PendingRtx{
          departNs + common::millisToNs(currentRttMs_ +
                                        rng_.uniform(2.0, 15.0)),
          payloadBytes, header.timestamp, profile_.rtxMaxRetries});
    } else if (isVideo) {
      // No RTX stream: the receiver cannot recover the frame and sends a
      // PLI once it notices the gap (~one RTT later).
      schedulePli(departNs + common::millisToNs(currentRttMs_));
    }
    return;
  }
  netflow::Packet pkt;
  pkt.departureNs = departNs;
  pkt.arrivalNs = *arrival;
  pkt.sizeBytes = wireBytes;
  std::vector<std::uint8_t> head;
  rtp::encode(header, head);
  pkt.setHead(head);
  result_.packets.push_back(pkt);
}

void CallSimulator::sendOpaquePacket(common::TimeNs departNs,
                                     std::uint32_t payloadBytes,
                                     std::uint8_t firstByte) {
  auto arrival = link_.send(departNs, payloadBytes);
  if (!arrival) return;
  netflow::Packet pkt;
  pkt.departureNs = departNs;
  pkt.arrivalNs = *arrival;
  pkt.sizeBytes = payloadBytes;
  std::uint8_t prefix[4] = {firstByte, 0x00, 0x00, 0x01};
  pkt.setHead(prefix);
  result_.packets.push_back(pkt);
}

void CallSimulator::emitDtlsHandshake() {
  // Downstream half of a DTLS 1.2 handshake: HelloVerify, ServerHello +
  // Certificate flight, ServerHelloDone, ChangeCipherSpec/Finished. Sizes
  // chosen to straddle the video-size threshold — the large certificate
  // flights are what Table 2 shows being misclassified as video.
  const std::uint32_t sizes[] = {60, 1152, 1020, 330, 91, 258};
  common::TimeNs t = common::millisToNs(rng_.uniform(5.0, 30.0));
  for (const std::uint32_t size : sizes) {
    sendOpaquePacket(t, size, kDtlsHandshakeByte);
    t += common::millisToNs(rng_.uniform(4.0, 25.0));
  }
}

void CallSimulator::emitStunCheck(common::TimeNs t) {
  sendOpaquePacket(t, static_cast<std::uint32_t>(rng_.uniformInt(60, 130)),
                   kStunByte);
}

void CallSimulator::emitAudioPacket(common::TimeNs t) {
  rtp::RtpHeader h;
  h.payloadType = profile_.audioPt;
  h.marker = false;
  h.sequenceNumber = audioSeq_++;
  h.timestamp =
      audioTsBase_ +
      static_cast<std::uint32_t>(common::nsToSeconds(t) * rtp::kAudioClockHz);
  h.ssrc = audioSsrc_;
  // The profile's [min, max] band is the observed on-wire UDP payload size
  // (Fig 1), which includes the 12-byte RTP header. Comfort-noise frames
  // (DTX) sit at the bottom of the band.
  const auto wireSize =
      audioTalking_
          ? static_cast<std::uint32_t>(rng_.uniformInt(
                profile_.audioMinBytes, profile_.audioMaxBytes))
          : static_cast<std::uint32_t>(rng_.uniformInt(
                profile_.audioMinBytes,
                std::min(profile_.audioMinBytes + 40,
                         profile_.audioMaxBytes)));
  sendRtpPacket(t, wireSize - static_cast<std::uint32_t>(rtp::kRtpHeaderSize),
                h, /*isVideo=*/false);
}

common::DurationNs CallSimulator::nextAudioInterval(common::TimeNs now) {
  // Two-state voice-activity model: talkspurts send a packet every ptime,
  // silence sends sparse DTX comfort noise.
  if (now >= audioStateUntil_) {
    audioTalking_ = !audioTalking_;
    const double activity = std::clamp(profile_.audioActivityFactor, 0.01, 1.0);
    const double meanSec =
        audioTalking_ ? profile_.audioTalkspurtMeanSec
                      : profile_.audioTalkspurtMeanSec * (1.0 - activity) /
                            activity;
    audioStateUntil_ =
        now + common::secondsToNs(std::max(0.1, rng_.exponential(meanSec)));
  }
  return audioTalking_ ? common::millisToNs(profile_.audioPtimeMs)
                       : common::millisToNs(profile_.audioDtxIntervalMs);
}

void CallSimulator::schedulePli(common::TimeNs dueNs) {
  if (keyframeDueNs_ < 0 || dueNs < keyframeDueNs_) keyframeDueNs_ = dueNs;
}

void CallSimulator::emitVideoFrame(common::TimeNs t) {
  if (keyframeDueNs_ >= 0 && t >= keyframeDueNs_) {
    encoder_.requestKeyframe();
    keyframeDueNs_ = -1;
  }
  const FrameSpec spec = encoder_.encodeFrame(t, rate_.targetKbps());
  const auto sizes = packetizeFrame(profile_, spec.sizeBytes, rng_);

  SentFrame frame;
  frame.captureNs = t;
  frame.rtpTimestamp =
      videoTsBase_ +
      static_cast<std::uint32_t>(common::nsToSeconds(t) * rtp::kVideoClockHz);
  frame.payloadBytes = spec.sizeBytes;
  frame.frameHeight = spec.frameHeight;
  frame.keyframe = spec.keyframe;
  frame.packetCount = static_cast<std::uint16_t>(sizes.size());
  frame.encoderFps = spec.fps;
  result_.sentFrames.push_back(frame);

  // Packets of one frame leave back-to-back (microburst): successive
  // departures a few hundred microseconds apart.
  common::TimeNs depart = t;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rtp::RtpHeader h;
    h.payloadType = profile_.videoPt;
    h.marker = (i + 1 == sizes.size());
    h.sequenceNumber = videoSeq_++;
    h.timestamp = frame.rtpTimestamp;
    h.ssrc = videoSsrc_;
    sendRtpPacket(depart, sizes[i], h, /*isVideo=*/true);
    depart += common::microsToNs(rng_.uniform(60.0, 350.0));
  }
}

void CallSimulator::emitRtxKeepalive(common::TimeNs t) {
  rtp::RtpHeader h;
  h.payloadType = profile_.rtxPt;
  h.marker = false;
  h.sequenceNumber = rtxSeq_++;
  h.timestamp =
      videoTsBase_ +
      static_cast<std::uint32_t>(common::nsToSeconds(t) * rtp::kVideoClockHz);
  h.ssrc = rtxSsrc_;
  // Keep-alives carry no media; sizeBytes includes the RTP header so the
  // on-wire size is exactly the paper's 304 bytes.
  sendRtpPacket(t,
                profile_.rtxKeepaliveBytes -
                    static_cast<std::uint32_t>(rtp::kRtpHeaderSize),
                h, /*isVideo=*/false);
}

void CallSimulator::flushDueRtx(common::TimeNs now) {
  for (std::size_t i = 0; i < rtxQueue_.size();) {
    if (rtxQueue_[i].dueNs > now) {
      ++i;
      continue;
    }
    PendingRtx item = rtxQueue_[i];
    rtxQueue_.erase(rtxQueue_.begin() + static_cast<std::ptrdiff_t>(i));

    rtp::RtpHeader h;
    h.payloadType = profile_.rtxPt;
    h.marker = false;
    h.sequenceNumber = rtxSeq_++;
    h.timestamp = item.rtpTimestamp;
    h.ssrc = rtxSsrc_;
    const std::uint32_t wireBytes =
        item.sizeBytes + static_cast<std::uint32_t>(rtp::kRtpHeaderSize);
    auto arrival = link_.send(item.dueNs, wireBytes);
    if (!arrival) {
      if (item.retriesLeft > 0) {
        rtxQueue_.push_back(PendingRtx{
            item.dueNs + common::millisToNs(currentRttMs_ +
                                            rng_.uniform(2.0, 15.0)),
            item.sizeBytes, item.rtpTimestamp, item.retriesLeft - 1});
      } else {
        // Recovery exhausted: the frame is lost for good, the decoder is
        // stuck on a broken reference — receiver PLIs for a keyframe.
        schedulePli(item.dueNs + common::millisToNs(currentRttMs_));
      }
      continue;
    }
    netflow::Packet pkt;
    pkt.departureNs = item.dueNs;
    pkt.arrivalNs = *arrival;
    pkt.sizeBytes = wireBytes;
    std::vector<std::uint8_t> head;
    rtp::encode(h, head);
    pkt.setHead(head);
    result_.packets.push_back(pkt);
  }
}

void CallSimulator::setParticipantIndex(std::uint32_t participant) {
  videoSsrc_ = kVideoSsrc + participant;
  audioSsrc_ = kAudioSsrc + participant;
  rtxSsrc_ = kRtxSsrc + participant;
  // Keep timestamp spaces of concurrent senders far apart so ground-truth
  // frame tables keyed by timestamp never collide.
  videoTsBase_ = 90'000 + participant * 500'000'000u;
  audioTsBase_ = 48'000 + participant * 500'000'000u;
}

CallResult CallSimulator::run(double durationSec) {
  const common::TimeNs endNs = common::secondsToNs(durationSec);

  emitDtlsHandshake();

  common::TimeNs nextVideo = common::millisToNs(rng_.uniform(80.0, 200.0));
  common::TimeNs nextAudio = common::millisToNs(rng_.uniform(60.0, 90.0));
  common::TimeNs nextKeepalive =
      profile_.rtxPt != 0
          ? common::millisToNs(profile_.rtxKeepaliveIntervalMs)
          : endNs + 1;
  common::TimeNs nextStun = common::secondsToNs(rng_.uniform(1.0, 3.0));
  common::TimeNs nextFeedback = common::millisToNs(profile_.feedbackIntervalMs);

  while (true) {
    const common::TimeNs next = std::min(
        {nextVideo, nextAudio, nextKeepalive, nextStun, nextFeedback});
    if (next >= endNs) break;

    flushDueRtx(next);

    if (next == nextFeedback) {
      link_.rollFeedbackWindow(next);
      currentRttMs_ = 2.0 * link_.schedule().at(next).delayMs;
      rate_.onFeedback(link_.recentLossRate() * profile_.residualLossFactor,
                       link_.recentDeliveryRateKbps(),
                       common::nsToMillis(link_.currentQueueDelay(next)));
      nextFeedback += common::millisToNs(profile_.feedbackIntervalMs);
      continue;
    }
    if (next == nextVideo) {
      emitVideoFrame(next);
      // Capture clock has a little scheduling noise around 1/fps.
      const auto interval = encoder_.frameIntervalNs();
      nextVideo += interval + common::microsToNs(rng_.uniform(-400.0, 400.0));
      continue;
    }
    if (next == nextAudio) {
      const auto interval = nextAudioInterval(next);
      emitAudioPacket(next);
      nextAudio += interval;
      continue;
    }
    if (next == nextKeepalive) {
      emitRtxKeepalive(next);
      nextKeepalive += common::millisToNs(profile_.rtxKeepaliveIntervalMs *
                                          rng_.uniform(0.9, 1.1));
      continue;
    }
    // STUN consent check.
    emitStunCheck(next);
    nextStun += common::secondsToNs(rng_.uniform(2.0, 5.0));
  }
  flushDueRtx(endNs);

  netflow::sortByArrival(result_.packets);
  result_.profile = profile_;
  result_.linkStats = link_.stats();
  return result_;
}

}  // namespace vcaqoe::simcall
