#include "simcall/modes.hpp"

#include <algorithm>

namespace vcaqoe::simcall {

VcaProfile screenShareVariant(VcaProfile base) {
  base.name += "-screenshare";
  // Screen content: ~5 fps capture, mostly-static frames with large bursts
  // on scroll or window switches, sparse keyframes.
  base.maxFps = 5.0;
  base.frameSizeCv = 0.9;
  base.contentCorrelation = 0.35;
  base.sceneChangeProb = 0.05;
  base.keyframeIntervalSec = 15.0;
  base.keyframeSizeMultiplier = 2.0;
  base.minFrameBytes = 1'000;
  // Text detail favours resolution over frame rate: share the camera
  // bitrate budget but never degrade resolution below the top rung
  // affordable — modeled by keeping the ladder and widening quantization.
  base.frameSizeQuantumBytes = std::max(base.frameSizeQuantumBytes, 8u);
  return base;
}

MultiPartyResult simulateMultiPartyCall(const VcaProfile& profile,
                                        const netem::ConditionSchedule& schedule,
                                        double durationSec, std::uint64_t seed,
                                        const MultiPartyOptions& options) {
  MultiPartyResult result;
  const int participants = std::max(1, options.participants);

  for (int participant = 0; participant < participants; ++participant) {
    VcaProfile senderProfile = profile;
    if (options.splitBitrateBudget) {
      senderProfile.maxTargetKbps =
          std::max(senderProfile.minTargetKbps,
                   senderProfile.maxTargetKbps / participants);
      senderProfile.startKbps =
          std::min(senderProfile.startKbps, senderProfile.maxTargetKbps);
    }
    // Approximate fair sharing of the bottleneck: each sender sees an equal
    // slice of the per-second capacity.
    netem::ConditionSchedule slice = schedule;
    for (auto& second : slice.seconds()) {
      second.throughputKbps /= participants;
    }

    CallSimulator simulator(senderProfile, slice,
                            seed + 0x9E37u * static_cast<std::uint64_t>(
                                                 participant + 1));
    simulator.setParticipantIndex(static_cast<std::uint32_t>(participant));
    CallResult call = simulator.run(durationSec);
    result.packets.insert(result.packets.end(), call.packets.begin(),
                          call.packets.end());
    result.perParticipant.push_back(std::move(call));
  }
  netflow::sortByArrival(result.packets);
  return result;
}

}  // namespace vcaqoe::simcall
