#include "simcall/encoder.hpp"

#include <algorithm>
#include <cmath>

namespace vcaqoe::simcall {

RateController::RateController(const VcaProfile& profile)
    : profile_(profile), targetKbps_(profile.startKbps) {}

void RateController::onFeedback(double lossRate, double deliveryRateKbps,
                                double queueDelayMs) {
  if (lossRate > 0.10) {
    // Heavy loss: multiplicative decrease proportional to the loss rate.
    targetKbps_ *= std::max(0.5, 1.0 - profile_.lossDecreaseGain * lossRate);
  } else if (queueDelayMs > 60.0) {
    // Delay-based backoff: converge below the measured delivery rate.
    targetKbps_ *= profile_.decreaseFactor;
    if (deliveryRateKbps > 0.0) {
      targetKbps_ = std::min(targetKbps_, 0.85 * deliveryRateKbps);
    }
  } else if (lossRate < 0.02) {
    targetKbps_ *= profile_.increaseFactor;
  }
  // Loss in (2%, 10%] with an empty queue: hold.
  targetKbps_ =
      std::clamp(targetKbps_, profile_.minTargetKbps, profile_.maxTargetKbps);
}

VideoEncoderModel::VideoEncoderModel(const VcaProfile& profile,
                                     common::Rng rng)
    : profile_(profile),
      rng_(rng),
      currentFps_(profile.maxFps),
      currentHeight_(profile.ladder.empty()
                         ? 0
                         : profile.ladder.front().frameHeight) {}

int VideoEncoderModel::applyChoiceNoise(int height) {
  if (!rng_.bernoulli(profile_.ladderChoiceNoise)) return height;
  // Land one rung away from the bitrate-implied choice.
  const auto& ladder = profile_.ladder;
  std::size_t index = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].frameHeight == height) index = i;
  }
  const bool up = rng_.bernoulli(0.5);
  if (up && index + 1 < ladder.size() &&
      ladder[index + 1].frameHeight <= profile_.maxFrameHeight) {
    return ladder[index + 1].frameHeight;
  }
  if (!up && index > 0) return ladder[index - 1].frameHeight;
  return height;
}

void VideoEncoderModel::updateFps(double targetKbps) {
  double fps = profile_.maxFps;
  if (targetKbps < kFpsDegradeKbps) {
    fps = profile_.maxFps * std::pow(targetKbps / kFpsDegradeKbps, 0.7);
  }
  fps = std::clamp(fps, kMinVideoFps, profile_.maxFps);
  // Smooth transitions; encoders do not jump frame rates instantly.
  currentFps_ = 0.7 * currentFps_ + 0.3 * fps;
}

void VideoEncoderModel::updateResolution(common::TimeNs now,
                                         double targetKbps) {
  const ResolutionRung& affordable = rungForBitrate(profile_, targetKbps);
  if (affordable.frameHeight < currentHeight_) {
    // Downswitch immediately: sending above budget hurts everything.
    const int newHeight = applyChoiceNoise(affordable.frameHeight);
    if (newHeight != currentHeight_) {
      currentHeight_ = newHeight;
      keyframeRequested_ = true;
    }
    pendingHeight_ = 0;
    return;
  }
  // Upswitch: one rung at a time (the ladder is climbed stepwise, so every
  // rung appears on the wire during ramp-up), gated on clearing the next
  // rung's threshold with headroom for ladderUpHoldSec.
  const ResolutionRung* next = nullptr;
  for (const auto& rung : profile_.ladder) {
    if (rung.frameHeight > profile_.maxFrameHeight) continue;
    if (rung.frameHeight > currentHeight_) {
      next = &rung;
      break;
    }
  }
  if (next != nullptr &&
      targetKbps >= profile_.ladderUpFactor * next->minKbps) {
    if (pendingHeight_ != next->frameHeight) {
      pendingHeight_ = next->frameHeight;
      pendingSinceNs_ = now;
    } else if (common::nsToSeconds(now - pendingSinceNs_) >=
               profile_.ladderUpHoldSec) {
      const int newHeight = applyChoiceNoise(next->frameHeight);
      if (newHeight != currentHeight_) {
        currentHeight_ = newHeight;
        keyframeRequested_ = true;  // resolution switches start on keyframes
      }
      pendingHeight_ = 0;
    }
  } else {
    pendingHeight_ = 0;
  }
}

FrameSpec VideoEncoderModel::encodeFrame(common::TimeNs now,
                                         double targetKbps) {
  updateFps(targetKbps);
  updateResolution(now, targetKbps);

  const bool keyframe =
      firstFrame_ || keyframeRequested_ ||
      common::nsToSeconds(now - lastKeyframeNs_) >= profile_.keyframeIntervalSec;
  if (keyframe) lastKeyframeNs_ = now;
  firstFrame_ = false;
  keyframeRequested_ = false;

  // AR(1) content-complexity process with mean 1 (so the realized bitrate
  // tracks the target) and occasional scene changes.
  if (rng_.bernoulli(profile_.sceneChangeProb)) {
    contentFactor_ = rng_.uniform(1.3, 2.2);
  } else {
    const double phi = profile_.contentCorrelation;
    const double innovation =
        rng_.normal(0.0, profile_.frameSizeCv * std::sqrt(1.0 - phi * phi));
    contentFactor_ = phi * contentFactor_ + (1.0 - phi) * 1.0 + innovation;
    contentFactor_ = std::max(0.15, contentFactor_);
  }

  const double idealBytes = targetKbps * 1e3 / 8.0 / currentFps_;
  double bytes = idealBytes * contentFactor_ * (1.0 + profile_.fecOverhead);
  if (keyframe) bytes *= profile_.keyframeSizeMultiplier;
  bytes = std::max<double>(bytes, profile_.minFrameBytes);

  // Quantize to the encoder's rate-control granularity.
  const double q = std::max<std::uint32_t>(profile_.frameSizeQuantumBytes, 1);
  bytes = std::round(bytes / q) * q;
  bytes = std::max<double>(bytes, profile_.minFrameBytes);

  FrameSpec spec;
  spec.sizeBytes = static_cast<std::uint32_t>(bytes);
  spec.keyframe = keyframe;
  spec.frameHeight = currentHeight_;
  spec.fps = currentFps_;
  return spec;
}

common::DurationNs VideoEncoderModel::frameIntervalNs() const {
  return static_cast<common::DurationNs>(
      static_cast<double>(common::kNanosPerSecond) / currentFps_);
}

}  // namespace vcaqoe::simcall
