#include <gtest/gtest.h>

#include "core/error_anatomy.hpp"
#include "core/evaluation.hpp"
#include "core/frame_heuristic.hpp"
#include "core/heuristic_estimators.hpp"
#include "core/media_classifier.hpp"
#include "core/methods.hpp"
#include "core/session.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::core {
namespace {

netflow::Packet sized(common::TimeNs arrival, std::uint32_t size) {
  netflow::Packet p;
  p.arrivalNs = arrival;
  p.sizeBytes = size;
  return p;
}

netflow::Packet rtpPkt(common::TimeNs arrival, std::uint32_t size,
                       std::uint8_t pt, std::uint32_t ts, bool marker,
                       std::uint16_t seq = 0) {
  netflow::Packet p = sized(arrival, size);
  rtp::RtpHeader h;
  h.payloadType = pt;
  h.timestamp = ts;
  h.marker = marker;
  h.sequenceNumber = seq;
  std::vector<std::uint8_t> head;
  rtp::encode(h, head);
  p.setHead(head);
  return p;
}

// --------------------------------------------------------- media classifier

TEST(MediaClassifier, ThresholdSeparatesAudioFromVideo) {
  const MediaClassifier classifier;
  EXPECT_FALSE(classifier.isVideo(sized(0, 89)));    // audio min
  EXPECT_FALSE(classifier.isVideo(sized(0, 385)));   // audio max
  EXPECT_FALSE(classifier.isVideo(sized(0, 304)));   // RTX keep-alive
  EXPECT_TRUE(classifier.isVideo(sized(0, 564)));    // video band
  EXPECT_TRUE(classifier.isVideo(sized(0, 1176)));
}

TEST(MediaClassifier, FilterVideoPreservesOrder) {
  const MediaClassifier classifier;
  const std::vector<netflow::Packet> packets = {
      sized(1, 1000), sized(2, 100), sized(3, 900)};
  const auto video = classifier.filterVideo(packets);
  ASSERT_EQ(video.size(), 2u);
  EXPECT_EQ(video[0].arrivalNs, 1);
  EXPECT_EQ(video[1].arrivalNs, 3);
}

TEST(MediaClassifier, GroundTruthLabels) {
  const auto audio = groundTruthLabel(rtpPkt(0, 200, 111, 1, false), 111, 102,
                                      103, 304);
  EXPECT_EQ(audio.kind, rtp::MediaKind::kAudio);
  EXPECT_FALSE(audio.video);

  const auto video =
      groundTruthLabel(rtpPkt(0, 1100, 102, 1, false), 111, 102, 103, 304);
  EXPECT_EQ(video.kind, rtp::MediaKind::kVideo);
  EXPECT_TRUE(video.video);

  const auto keepalive =
      groundTruthLabel(rtpPkt(0, 304, 103, 1, false), 111, 102, 103, 304);
  EXPECT_EQ(keepalive.kind, rtp::MediaKind::kVideoRtx);
  EXPECT_TRUE(keepalive.keepalive);
  EXPECT_FALSE(keepalive.video);

  const auto rtx =
      groundTruthLabel(rtpPkt(0, 1100, 103, 1, false), 111, 102, 103, 304);
  EXPECT_FALSE(rtx.keepalive);
  EXPECT_TRUE(rtx.video);

  netflow::Packet dtls = sized(0, 1152);
  const std::uint8_t head[1] = {22};
  dtls.setHead(head);
  const auto control = groundTruthLabel(dtls, 111, 102, 103, 304);
  EXPECT_EQ(control.kind, rtp::MediaKind::kControl);
  EXPECT_FALSE(control.video);
}

// ------------------------------------------------------------- Algorithm 1

HeuristicParams params(int lookback, std::uint32_t delta = 2) {
  HeuristicParams p;
  p.lookback = lookback;
  p.deltaMaxBytes = delta;
  return p;
}

TEST(Algorithm1, EqualSizedPacketsOneFrame) {
  const std::vector<netflow::Packet> video = {
      sized(0, 1000), sized(1, 1000), sized(2, 999), sized(3, 1001)};
  const auto out = assembleFramesIpUdp(video, params(1));
  ASSERT_EQ(out.frames.size(), 1u);
  EXPECT_EQ(out.frames[0].packetCount, 4u);
  EXPECT_EQ(out.frames[0].bytes, 4000u);
  EXPECT_EQ(out.frames[0].firstNs, 0);
  EXPECT_EQ(out.frames[0].endNs, 3);
}

TEST(Algorithm1, SizeJumpStartsNewFrame) {
  const std::vector<netflow::Packet> video = {
      sized(0, 1000), sized(1, 1000), sized(2, 1200), sized(3, 1200)};
  const auto out = assembleFramesIpUdp(video, params(1));
  ASSERT_EQ(out.frames.size(), 2u);
  EXPECT_EQ(out.frames[0].packetCount, 2u);
  EXPECT_EQ(out.frames[1].packetCount, 2u);
  EXPECT_EQ(out.frameOfPacket, (std::vector<std::uint32_t>{0, 0, 1, 1}));
}

TEST(Algorithm1, LookbackRecoversInterleavedPacket) {
  // Frame A (1000) interleaved with frame B (1200): lookback 1 splits A,
  // lookback 2 reunites it.
  const std::vector<netflow::Packet> video = {
      sized(0, 1000), sized(1, 1200), sized(2, 1000), sized(3, 1200)};
  const auto narrow = assembleFramesIpUdp(video, params(1));
  EXPECT_EQ(narrow.frames.size(), 4u);
  const auto wide = assembleFramesIpUdp(video, params(2));
  ASSERT_EQ(wide.frames.size(), 2u);
  EXPECT_EQ(wide.frames[0].packetCount, 2u);
  EXPECT_EQ(wide.frames[1].packetCount, 2u);
}

TEST(Algorithm1, CoalescesSimilarConsecutiveFrames) {
  // Two true frames of identical packet sizes merge — the Webex failure
  // mode (Fig 4).
  const std::vector<netflow::Packet> video = {
      sized(0, 1042), sized(1, 1042),
      sized(33, 1043), sized(34, 1043)};  // next frame, within Δmax
  const auto out = assembleFramesIpUdp(video, params(1));
  EXPECT_EQ(out.frames.size(), 1u);
}

TEST(Algorithm1, DeltaMaxBoundary) {
  // Difference of exactly Δmax joins; Δmax+1 splits.
  const std::vector<netflow::Packet> joined = {sized(0, 1000), sized(1, 1002)};
  EXPECT_EQ(assembleFramesIpUdp(joined, params(1)).frames.size(), 1u);
  const std::vector<netflow::Packet> split = {sized(0, 1000), sized(1, 1003)};
  EXPECT_EQ(assembleFramesIpUdp(split, params(1)).frames.size(), 2u);
}

TEST(Algorithm1, EmptyInput) {
  const auto out = assembleFramesIpUdp({}, params(3));
  EXPECT_TRUE(out.frames.empty());
  EXPECT_TRUE(out.frameOfPacket.empty());
}

// Property: every packet is assigned to exactly one frame and the byte sum
// is preserved, for any lookback.
class Algorithm1Property : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm1Property, PartitionInvariants) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<netflow::Packet> video;
  std::uint64_t totalBytes = 0;
  common::TimeNs t = 0;
  for (int frame = 0; frame < 50; ++frame) {
    const auto size =
        static_cast<std::uint32_t>(rng.uniformInt(600, 1176));
    const int n = static_cast<int>(rng.uniformInt(1, 6));
    for (int i = 0; i < n; ++i) {
      video.push_back(sized(t, size));
      totalBytes += size;
      t += common::microsToNs(200.0);
    }
    t += common::millisToNs(33.0);
  }
  const auto out = assembleFramesIpUdp(video, params(GetParam()));
  EXPECT_EQ(out.frameOfPacket.size(), video.size());
  std::uint64_t frameBytes = 0;
  std::uint64_t framePackets = 0;
  for (const auto& f : out.frames) {
    frameBytes += f.bytes;
    framePackets += f.packetCount;
    EXPECT_LE(f.firstNs, f.endNs);
  }
  EXPECT_EQ(frameBytes, totalBytes);
  EXPECT_EQ(framePackets, video.size());
  for (const auto id : out.frameOfPacket) {
    EXPECT_LT(id, out.frames.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Lookbacks, Algorithm1Property,
                         ::testing::Range(1, 11));

// --------------------------------------------------------- frames -> QoE

TEST(QoeFromFrames, CountsFramesByEndTime) {
  std::vector<HeuristicFrame> frames(3);
  frames[0] = {common::millisToNs(100.0), common::millisToNs(110.0), 5012, 4};
  frames[1] = {common::millisToNs(900.0), common::millisToNs(1050.0), 3012, 2};
  frames[2] = {common::millisToNs(1500.0), common::millisToNs(1510.0), 2012, 1};
  const auto timeline = qoeFromFrames(frames, common::kNanosPerSecond, 2);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].frameCount, 1u);  // only the first ends in [0,1)
  EXPECT_EQ(timeline[1].frameCount, 2u);
  EXPECT_DOUBLE_EQ(timeline[0].fps, 1.0);
}

TEST(QoeFromFrames, BitrateSubtractsRtpHeaders) {
  std::vector<HeuristicFrame> frames(1);
  frames[0] = {0, common::millisToNs(10.0), 5'048, 4};  // 4 packets
  const auto timeline = qoeFromFrames(frames, common::kNanosPerSecond, 1);
  // (5048 - 4*12) * 8 bits / 1 s / 1e3 = 40.0 kbps.
  EXPECT_DOUBLE_EQ(timeline[0].bitrateKbps, 40.0);
}

TEST(QoeFromFrames, JitterIsStdevOfEndGaps) {
  std::vector<HeuristicFrame> frames;
  // End times 0, 30, 70, 90 ms → gaps 30, 40, 20 → stdev = 10.
  for (const double endMs : {0.0, 30.0, 70.0, 90.0}) {
    frames.push_back(
        {common::millisToNs(endMs), common::millisToNs(endMs), 1000, 1});
  }
  const auto timeline = qoeFromFrames(frames, common::kNanosPerSecond, 1);
  EXPECT_NEAR(timeline[0].frameJitterMs, 10.0, 1e-9);
}

TEST(QoeFromFrames, ProducesRequestedWindowCount) {
  const auto timeline = qoeFromFrames({}, common::kNanosPerSecond, 7);
  ASSERT_EQ(timeline.size(), 7u);
  for (std::int64_t w = 0; w < 7; ++w) {
    EXPECT_EQ(timeline[static_cast<std::size_t>(w)].window, w);
    EXPECT_DOUBLE_EQ(timeline[static_cast<std::size_t>(w)].fps, 0.0);
  }
}

// ------------------------------------------------------- RTP heuristic

TEST(RtpHeuristic, GroupsByTimestampUsesMarkerEnd) {
  const RtpHeuristicEstimator estimator(102);
  netflow::PacketTrace trace = {
      rtpPkt(10, 1012, 102, 5000, false, 1),
      rtpPkt(25, 1012, 102, 5000, true, 2),   // marker: frame end at 25
      rtpPkt(40, 800, 102, 8000, true, 3),
      rtpPkt(42, 304, 103, 5000, false, 1),   // RTX ignored by PT filter
  };
  const auto frames = estimator.assembleByTimestamp(trace);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].packetCount, 2u);
  EXPECT_EQ(frames[0].endNs, 25);
  EXPECT_EQ(frames[1].packetCount, 1u);
}

TEST(RtpHeuristic, EstimateTimelineMatchesFrames) {
  const RtpHeuristicEstimator estimator(102);
  netflow::PacketTrace trace;
  for (int i = 0; i < 30; ++i) {
    trace.push_back(rtpPkt(common::millisToNs(33.0 * i + 400.0), 1012, 102,
                           static_cast<std::uint32_t>(1000 + i * 3000), true,
                           static_cast<std::uint16_t>(i)));
  }
  const auto timeline =
      estimator.estimate(trace, common::kNanosPerSecond, 2);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].frameCount + timeline[1].frameCount, 30u);
}

// ------------------------------------------------------------ evaluation

TEST(Evaluation, SummarizeErrorsAbsolute) {
  const std::vector<double> pred = {10.0, 30.0, 28.0};
  const std::vector<double> truth = {12.0, 30.0, 30.0};
  const auto s = summarizeErrors(pred, truth);
  EXPECT_NEAR(s.mae, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(s.n, 3u);
  EXPECT_LE(s.p10, s.medianError);
  EXPECT_LE(s.medianError, s.p90);
}

TEST(Evaluation, SummarizeErrorsRelativeSkipsZeroTruth) {
  const std::vector<double> pred = {10.0, 50.0};
  const std::vector<double> truth = {0.0, 40.0};
  const auto s = summarizeErrors(pred, truth, /*relative=*/true);
  EXPECT_NEAR(s.medianError, 0.25, 1e-12);
}

WindowRecord validRecord(double truthFps, double heuristicFps) {
  WindowRecord rec;
  rec.truthValid = true;
  rec.truthFps = truthFps;
  rec.truthBitrateKbps = 500.0;
  rec.truthJitterMs = 10.0;
  rec.truthFrameHeight = 360;
  rec.ipudpHeuristic.fps = heuristicFps;
  rec.ipudpHeuristic.bitrateKbps = 480.0;
  rec.rtpHeuristic.fps = truthFps;
  rec.ipudpFeatures.assign(features::featureCount(features::FeatureSet::kIpUdp),
                           1.0);
  rec.rtpFeatures.assign(features::featureCount(features::FeatureSet::kRtp),
                         1.0);
  return rec;
}

TEST(Evaluation, HeuristicSeriesFiltersInvalid) {
  std::vector<WindowRecord> records = {validRecord(30.0, 28.0),
                                       validRecord(25.0, 26.0)};
  records.push_back(WindowRecord{});  // invalid truth
  const auto series = heuristicSeries(records, Method::kIpUdpHeuristic,
                                      rxstats::Metric::kFrameRate);
  ASSERT_EQ(series.predicted.size(), 2u);
  EXPECT_DOUBLE_EQ(series.predicted[0], 28.0);
  EXPECT_DOUBLE_EQ(series.truth[1], 25.0);
}

TEST(Evaluation, HeuristicSeriesRejectsMlMethods) {
  const std::vector<WindowRecord> records = {validRecord(30.0, 28.0)};
  EXPECT_THROW(
      heuristicSeries(records, Method::kIpUdpMl, rxstats::Metric::kFrameRate),
      std::invalid_argument);
}

TEST(Evaluation, HeuristicResolutionUnsupported) {
  const std::vector<WindowRecord> records = {validRecord(30.0, 28.0)};
  EXPECT_THROW(heuristicSeries(records, Method::kIpUdpHeuristic,
                               rxstats::Metric::kResolution),
               std::invalid_argument);
}

TEST(Evaluation, BuildMlDatasetShapes) {
  std::vector<WindowRecord> records = {validRecord(30.0, 28.0),
                                       validRecord(20.0, 19.0)};
  const auto data = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                   rxstats::Metric::kFrameRate);
  EXPECT_EQ(data.rows(), 2u);
  EXPECT_EQ(data.cols(), 14u);
  EXPECT_DOUBLE_EQ(data.y[0], 30.0);

  const auto rtpData = buildMlDataset(records, features::FeatureSet::kRtp,
                                      rxstats::Metric::kBitrate);
  EXPECT_EQ(rtpData.cols(), 24u);
  EXPECT_DOUBLE_EQ(rtpData.y[0], 500.0);
}

TEST(Evaluation, BuildMlDatasetEncodesResolution) {
  std::vector<WindowRecord> records = {validRecord(30.0, 28.0)};
  records[0].truthFrameHeight = 404;
  const auto codec = resolutionCodecFor("teams");
  const auto data = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                   rxstats::Metric::kResolution, codec);
  EXPECT_DOUBLE_EQ(data.y[0], 1.0);  // 404p is the medium bin
  const auto meetCodec = resolutionCodecFor("meet");
  const auto meetData = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                       rxstats::Metric::kResolution, meetCodec);
  EXPECT_DOUBLE_EQ(meetData.y[0], 404.0);  // per-height class
}

TEST(Evaluation, TaskForMetrics) {
  EXPECT_EQ(taskFor(rxstats::Metric::kResolution),
            ml::TreeTask::kClassification);
  EXPECT_EQ(taskFor(rxstats::Metric::kBitrate), ml::TreeTask::kRegression);
}

TEST(Evaluation, DefaultHeuristicParamsPerVca) {
  EXPECT_EQ(defaultHeuristicParams("meet").lookback, 3);
  EXPECT_EQ(defaultHeuristicParams("teams").lookback, 2);
  EXPECT_EQ(defaultHeuristicParams("webex").lookback, 1);
  EXPECT_EQ(defaultHeuristicParams("meet").deltaMaxBytes, 2u);
}

TEST(Evaluation, ResolutionCodecNames) {
  const auto teams = resolutionCodecFor("teams");
  EXPECT_TRUE(teams.useBins);
  EXPECT_EQ(teams.labelName(1), "Medium");
  const auto meet = resolutionCodecFor("meet");
  EXPECT_FALSE(meet.useBins);
  EXPECT_EQ(meet.labelName(360), "360p");
}

TEST(Methods, ToStringCovers) {
  EXPECT_EQ(toString(Method::kRtpMl), "RTP ML");
  EXPECT_EQ(toString(Method::kIpUdpMl), "IP/UDP ML");
  EXPECT_EQ(toString(Method::kRtpHeuristic), "RTP Heuristic");
  EXPECT_EQ(toString(Method::kIpUdpHeuristic), "IP/UDP Heuristic");
}

// ---------------------------------------------------------- error anatomy

TEST(ErrorAnatomy, DetectsSplit) {
  // One true frame with an oversize middle packet: split, no interleave.
  netflow::PacketTrace trace = {
      rtpPkt(10, 1000, 102, 5000, false, 1),
      rtpPkt(11, 1200, 102, 5000, false, 2),
      rtpPkt(12, 1000, 102, 5000, true, 3),
  };
  const auto counts = analyzeErrorAnatomy(trace, 102, {}, params(1),
                                          common::kNanosPerSecond, 1);
  EXPECT_DOUBLE_EQ(counts.splitsPerWindow, 1.0);
  EXPECT_DOUBLE_EQ(counts.interleavesPerWindow, 0.0);
}

TEST(ErrorAnatomy, DetectsCoalesce) {
  netflow::PacketTrace trace = {
      rtpPkt(10, 1000, 102, 5000, true, 1),
      rtpPkt(43, 1001, 102, 8000, true, 2),  // same size: glued
  };
  const auto counts = analyzeErrorAnatomy(trace, 102, {}, params(1),
                                          common::kNanosPerSecond, 1);
  EXPECT_DOUBLE_EQ(counts.coalescesPerWindow, 1.0);
  EXPECT_DOUBLE_EQ(counts.splitsPerWindow, 0.0);
}

TEST(ErrorAnatomy, DetectsInterleave) {
  // Frames' packets alternate in arrival order.
  netflow::PacketTrace trace = {
      rtpPkt(10, 1000, 102, 5000, false, 1),
      rtpPkt(11, 1300, 102, 8000, false, 3),
      rtpPkt(12, 1000, 102, 5000, true, 2),
      rtpPkt(13, 1300, 102, 8000, true, 4),
  };
  const auto counts = analyzeErrorAnatomy(trace, 102, {}, params(1),
                                          common::kNanosPerSecond, 1);
  EXPECT_DOUBLE_EQ(counts.interleavesPerWindow, 2.0);
}

TEST(ErrorAnatomy, CleanTraceNoErrors) {
  netflow::PacketTrace trace;
  std::uint16_t seq = 1;
  for (int frame = 0; frame < 30; ++frame) {
    const auto ts = static_cast<std::uint32_t>(1000 + frame * 3000);
    const auto size = static_cast<std::uint32_t>(900 + frame * 7);
    trace.push_back(rtpPkt(common::millisToNs(frame * 33.0), size, 102, ts,
                           false, seq++));
    trace.push_back(rtpPkt(common::millisToNs(frame * 33.0 + 0.4), size, 102,
                           ts, true, seq++));
  }
  const auto counts = analyzeErrorAnatomy(trace, 102, {}, params(2),
                                          common::kNanosPerSecond, 1);
  EXPECT_DOUBLE_EQ(counts.splitsPerWindow, 0.0);
  EXPECT_DOUBLE_EQ(counts.interleavesPerWindow, 0.0);
  EXPECT_DOUBLE_EQ(counts.coalescesPerWindow, 0.0);
}

TEST(ErrorAnatomy, CombineWeightsByWindows) {
  AnatomyCounts a;
  a.splitsPerWindow = 1.0;
  a.windows = 10;
  AnatomyCounts b;
  b.splitsPerWindow = 3.0;
  b.windows = 30;
  const auto merged = combineAnatomy(std::vector<AnatomyCounts>{a, b});
  EXPECT_EQ(merged.windows, 40u);
  EXPECT_NEAR(merged.splitsPerWindow, 2.5, 1e-12);
}

}  // namespace
}  // namespace vcaqoe::core
