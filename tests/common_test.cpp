#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/load.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace vcaqoe::common {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, SecondsRoundTrip) {
  EXPECT_EQ(secondsToNs(1.0), kNanosPerSecond);
  EXPECT_EQ(secondsToNs(2.5), 2'500'000'000LL);
  EXPECT_DOUBLE_EQ(nsToSeconds(kNanosPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(nsToSeconds(secondsToNs(123.456)), 123.456);
}

TEST(Time, MillisMicros) {
  EXPECT_EQ(millisToNs(1.0), 1'000'000LL);
  EXPECT_EQ(microsToNs(1.0), 1'000LL);
  EXPECT_DOUBLE_EQ(nsToMillis(1'500'000), 1.5);
}

TEST(Time, SecondIndexFloors) {
  EXPECT_EQ(secondIndex(0), 0);
  EXPECT_EQ(secondIndex(kNanosPerSecond - 1), 0);
  EXPECT_EQ(secondIndex(kNanosPerSecond), 1);
  EXPECT_EQ(secondIndex(-1), -1);
  EXPECT_EQ(secondIndex(-kNanosPerSecond), -1);
  EXPECT_EQ(secondIndex(-kNanosPerSecond - 1), -2);
}

TEST(Time, WindowIndexMatchesSecondIndexForOneSecond) {
  for (const TimeNs t : {0LL, 999'999'999LL, 1'000'000'000LL, 5'500'000'000LL}) {
    EXPECT_EQ(windowIndex(t, kNanosPerSecond), secondIndex(t)) << t;
  }
}

TEST(Time, WindowIndexLargerWindows) {
  const DurationNs w = 2 * kNanosPerSecond;
  EXPECT_EQ(windowIndex(0, w), 0);
  EXPECT_EQ(windowIndex(2 * kNanosPerSecond - 1, w), 0);
  EXPECT_EQ(windowIndex(2 * kNanosPerSecond, w), 1);
  EXPECT_EQ(windowIndex(7 * kNanosPerSecond, w), 3);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, SampleStdevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population stdev of this classic example is 2; sample stdev is larger.
  EXPECT_NEAR(populationStdev(xs), 2.0, 1e-12);
  EXPECT_NEAR(sampleStdev(xs), 2.138089935, 1e-6);
}

TEST(Stats, StdevDegenerate) {
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, FiveNumberMatchesPieces) {
  const std::vector<double> xs = {5.0, 1.0, 9.0, 3.0, 7.0};
  const FiveNumber f = fiveNumber(xs);
  EXPECT_DOUBLE_EQ(f.mean, 5.0);
  EXPECT_DOUBLE_EQ(f.median, 5.0);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 9.0);
  EXPECT_NEAR(f.stdev, sampleStdev(xs), 1e-12);
}

TEST(Stats, FiveNumberEmpty) {
  const FiveNumber f = fiveNumber(std::vector<double>{});
  EXPECT_DOUBLE_EQ(f.mean, 0.0);
  EXPECT_DOUBLE_EQ(f.max, 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stdev(), sampleStdev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -9.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  rs.clear();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(Stats, EmpiricalCdf) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 10.0), 1.0);
}

TEST(Stats, MaeAndMrae) {
  const std::vector<double> pred = {10.0, 20.0, 30.0};
  const std::vector<double> truth = {12.0, 20.0, 26.0};
  EXPECT_NEAR(meanAbsoluteError(pred, truth), 2.0, 1e-12);
  EXPECT_NEAR(meanRelativeAbsoluteError(pred, truth),
              (2.0 / 12 + 0.0 + 4.0 / 26) / 3.0, 1e-12);
}

TEST(Stats, MraeSkipsZeroTruth) {
  const std::vector<double> pred = {5.0, 10.0};
  const std::vector<double> truth = {0.0, 20.0};
  EXPECT_NEAR(meanRelativeAbsoluteError(pred, truth), 0.5, 1e-12);
}

TEST(Stats, ErrorSizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(meanAbsoluteError(a, b), std::invalid_argument);
}

TEST(Stats, FractionWithin) {
  const std::vector<double> pred = {10.0, 15.0, 30.0, 28.0};
  const std::vector<double> truth = {12.0, 20.0, 30.0, 30.0};
  EXPECT_DOUBLE_EQ(fractionWithinAbsolute(pred, truth, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(fractionWithinRelative(pred, truth, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(fractionWithinRelative(pred, truth, 0.05), 0.25);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, TruncatedNormalClamped) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.truncatedNormal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRate) {
  Rng rng(123);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 50'000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stdev(), 2.0, 0.05);
}

TEST(Rng, NormalZeroStdevIsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, -1.0), 3.5);
}

TEST(Rng, ForkIndependence) {
  Rng a(42);
  Rng forked = a.fork();
  // The fork consumed one draw from `a`; a fresh rng with the same seed
  // diverges from `a` only after that draw — just assert fork is usable and
  // deterministic.
  Rng a2(42);
  Rng forked2 = a2.fork();
  EXPECT_DOUBLE_EQ(forked.uniform(0.0, 1.0), forked2.uniform(0.0, 1.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weightedIndex(w), 1u);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.addRow({"x"});
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Table, NumAndPct) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.98341, 2), "98.34%");
}

TEST(Table, Banner) {
  const std::string b = banner("Hello");
  EXPECT_NE(b.find("Hello"), std::string::npos);
  EXPECT_EQ(b.front(), '=');
}

// Property sweep: percentile is monotone in p and bounded by min/max.
class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 1 + GetParam() * 7 % 50;
  for (int i = 0; i < n; ++i) xs.push_back(rng.uniform(-100.0, 100.0));
  double last = percentile(xs, 0.0);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(last, *mn);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, last);
    EXPECT_LE(v, *mx);
    last = v;
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), *mx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------- parse

TEST(Parse, IntAcceptsOnlyFullDecimalTokens) {
  EXPECT_EQ(parseInt("0"), std::optional<long long>(0));
  EXPECT_EQ(parseInt("42"), std::optional<long long>(42));
  EXPECT_EQ(parseInt("-7"), std::optional<long long>(-7));
  EXPECT_EQ(parseInt("9223372036854775807"),
            std::optional<long long>(9223372036854775807LL));
  // The atoi failure modes this replaces: partial consumes and garbage
  // must be errors, not silent zeros or truncations.
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("abc").has_value());
  EXPECT_FALSE(parseInt("12abc").has_value());
  EXPECT_FALSE(parseInt("1.5").has_value());
  EXPECT_FALSE(parseInt(" 3").has_value());
  EXPECT_FALSE(parseInt("3 ").has_value());
  EXPECT_FALSE(parseInt("+3").has_value());
  EXPECT_FALSE(parseInt("9223372036854775808").has_value());  // overflow
}

TEST(Parse, DoubleAcceptsOnlyFullFiniteTokens) {
  EXPECT_EQ(parseDouble("0"), std::optional<double>(0.0));
  EXPECT_EQ(parseDouble("1.5"), std::optional<double>(1.5));
  EXPECT_EQ(parseDouble("-2.25e3"), std::optional<double>(-2250.0));
  EXPECT_FALSE(parseDouble("").has_value());
  EXPECT_FALSE(parseDouble("abc").has_value());
  EXPECT_FALSE(parseDouble("1.5x").has_value());
  EXPECT_FALSE(parseDouble(" 1").has_value());
  EXPECT_FALSE(parseDouble("inf").has_value());
  EXPECT_FALSE(parseDouble("nan").has_value());
  EXPECT_FALSE(parseDouble("1e999").has_value());  // overflows to infinity
}

// ----------------------------------------------------------- json_writer

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(jsonEscape("héllo"), "héllo");  // UTF-8 passes through
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  EXPECT_EQ(jsonNumber(0.1), "0.1");  // not 0.1000000000000000055511...
  // Doubles stay visibly doubles so parsers keep the type.
  EXPECT_TRUE(jsonNumber(3.0).find('.') != std::string::npos ||
              jsonNumber(3.0).find('e') != std::string::npos);
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, GoldenNestedDocument) {
  auto doc = JsonValue::object();
  doc.set("name", "flows_64");
  doc.set("count", 3);
  doc.set("ok", true);
  doc.set("note", JsonValue());
  auto& nested = doc.set("throughput", JsonValue::object());
  nested.set("pkts_per_s", 1.5);
  auto& list = doc.set("tags", JsonValue::array());
  list.push("a\nb");
  list.push(2);
  EXPECT_EQ(doc.dump(0),
            "{\"name\":\"flows_64\",\"count\":3,\"ok\":true,\"note\":null,"
            "\"throughput\":{\"pkts_per_s\":1.5},\"tags\":[\"a\\nb\",2]}");
  EXPECT_EQ(doc.dump(2),
            "{\n"
            "  \"name\": \"flows_64\",\n"
            "  \"count\": 3,\n"
            "  \"ok\": true,\n"
            "  \"note\": null,\n"
            "  \"throughput\": {\n"
            "    \"pkts_per_s\": 1.5\n"
            "  },\n"
            "  \"tags\": [\n"
            "    \"a\\nb\",\n"
            "    2\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, SetReturnsStableReferencesAndReplacesInPlace) {
  auto doc = JsonValue::object();
  auto& rows = doc.set("rows", JsonValue::array());
  auto& first = rows.push(JsonValue::object());
  // Keep appending children — earlier references must stay valid
  // (deque-backed storage, the documented guarantee).
  for (int i = 0; i < 100; ++i) rows.push(i);
  first.set("name", "zeroth");
  EXPECT_EQ(rows.size(), 101u);
  EXPECT_TRUE(rows.at(0).find("name") != nullptr);
  doc.set("rows", "replaced");  // same key reuses the slot
  EXPECT_EQ(doc.size(), 1u);
  ASSERT_NE(doc.find("rows"), nullptr);
  EXPECT_TRUE(doc.find("rows")->isString());
}

TEST(JsonWriter, ParseRoundTripsTypesExactly) {
  const char* text =
      "{\"i\": -42, \"big\": 9007199254740993, \"d\": 0.1, \"s\": "
      "\"a\\u0041\\n\", \"b\": false, \"n\": null, \"list\": [1, 2.5]}";
  std::string error;
  const auto doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("i")->type(), JsonValue::Type::kInt);
  EXPECT_EQ(doc->find("i")->asInt(), -42);
  // Integers survive beyond double's 2^53 exact range.
  EXPECT_EQ(doc->find("big")->asInt(), 9007199254740993LL);
  EXPECT_EQ(doc->find("d")->type(), JsonValue::Type::kDouble);
  EXPECT_EQ(doc->find("d")->asDouble(), 0.1);
  EXPECT_EQ(doc->find("s")->asString(), "aA\n");
  EXPECT_FALSE(doc->find("b")->asBool());
  EXPECT_TRUE(doc->find("n")->isNull());
  EXPECT_EQ(doc->find("list")->size(), 2u);
}

TEST(JsonWriter, DumpParsesBackBitIdentical) {
  auto doc = JsonValue::object();
  doc.set("pi", 3.141592653589793);
  doc.set("tenth", 0.1);
  doc.set("tiny", 5e-324);
  doc.set("huge", 1.7976931348623157e308);
  doc.set("count", std::int64_t{123456789012345});
  const auto reparsed = JsonValue::parse(doc.dump(0));
  ASSERT_TRUE(reparsed.has_value());
  for (const char* key : {"pi", "tenth", "tiny", "huge"}) {
    EXPECT_EQ(reparsed->find(key)->asDouble(), doc.find(key)->asDouble())
        << key;
  }
  EXPECT_EQ(reparsed->find("count")->asInt(), 123456789012345LL);
}

TEST(JsonWriter, ParseRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "01", "+1", "1.", ".5",
        "nul", "tru", "NaN", "Infinity", "\"unterminated", "\"bad\\q\"",
        "{\"a\":1} trailing", "[1] 2", "'single'", "{a:1}", "[1 2]",
        "\"\\u12\""}) {
    std::string error;
    EXPECT_FALSE(JsonValue::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonWriter, ParseRejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(deep).has_value());
}

TEST(JsonWriter, NestingDepthCapIsExact) {
  // The cap is 64 levels of containers: the 65-bracket document's innermost
  // value sits exactly at the cap and parses; one more level is rejected
  // with a diagnostic instead of unbounded recursion.
  const auto nested = [](int levels) {
    return std::string(static_cast<std::size_t>(levels), '[') +
           std::string(static_cast<std::size_t>(levels), ']');
  };
  EXPECT_TRUE(JsonValue::parse(nested(65)).has_value());
  std::string error;
  EXPECT_FALSE(JsonValue::parse(nested(66), &error).has_value());
  EXPECT_NE(error.find("nest"), std::string::npos) << error;
}

TEST(JsonWriter, ParseRejectsTruncatedAndInvalidSurrogates) {
  const struct {
    const char* text;
    const char* expectedError;
  } cases[] = {
      // High surrogate with no `\u` escape following (end of string, raw
      // characters, or a non-escape).
      {R"("\ud800")", "unpaired surrogate"},
      {R"("\ud800abc")", "unpaired surrogate"},
      {R"("\ud800A")", "unpaired surrogate"},
      // `\u` follows but its payload is truncated or not a low surrogate.
      {R"("\ud800\u")", "invalid low surrogate"},
      {R"("\ud800\ud8")", "invalid low surrogate"},
      {R"("\ud800\ud800")", "invalid low surrogate"},
      // Low surrogate with no preceding high.
      {R"("\udc00")", "unpaired surrogate"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(JsonValue::parse(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.expectedError), std::string::npos)
        << c.text << " -> " << error;
  }
  // The well-formed pair still decodes (U+1F600, 4-byte UTF-8).
  const auto ok = JsonValue::parse(R"("😀")");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->asString(), "\xF0\x9F\x98\x80");
}

TEST(JsonWriter, OutOfRangeNumbersClampBySign) {
  // Grammar-valid numbers beyond double's range must clamp like strtod —
  // overflow to +/-inf, underflow to +/-0 — not silently parse as 0
  // (from_chars leaves its output unmodified on result_out_of_range).
  const auto parsed = JsonValue::parse(
      "[1e999999, -1e999999, 1e-999999, -1e-999999, "
      "123456789e999999999999999999, 1.5e-999999999999999999]");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 6u);
  EXPECT_EQ(parsed->at(0).asDouble(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed->at(1).asDouble(),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed->at(2).asDouble(), 0.0);
  EXPECT_FALSE(std::signbit(parsed->at(2).asDouble()));
  EXPECT_EQ(parsed->at(3).asDouble(), 0.0);
  EXPECT_TRUE(std::signbit(parsed->at(3).asDouble()));
  EXPECT_EQ(parsed->at(4).asDouble(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed->at(5).asDouble(), 0.0);
  // Values near the range edges still parse exactly, not clamped.
  const auto edges = JsonValue::parse("[1.7976931348623157e308, 5e-324]");
  ASSERT_TRUE(edges.has_value());
  EXPECT_EQ(edges->at(0).asDouble(), 1.7976931348623157e308);
  EXPECT_EQ(edges->at(1).asDouble(), 5e-324);
}

TEST(JsonWriter, ParseErrorsCarryByteOffsets) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("[1, 2, xyz]", &error).has_value());
  EXPECT_NE(error.find("at byte 7"), std::string::npos) << error;
}

TEST(Load, HardwareThreadsOrGuardsTheZeroCase) {
  // The standard allows hardware_concurrency() == 0 ("not computable").
  // On a platform that does report, the helper must pass the value
  // through untouched; either way the result is never below 1 when the
  // fallback is 1 — the contract every pool-sizing call site relies on.
  const unsigned reported = std::thread::hardware_concurrency();
  const unsigned resolved = hardwareThreadsOr(1);
  EXPECT_GE(resolved, 1u);
  if (reported > 0) {
    EXPECT_EQ(resolved, reported);
  } else {
    EXPECT_EQ(resolved, 1u);
  }
  // The fallback is what surfaces when the platform reports nothing.
  EXPECT_EQ(hardwareThreadsOr(7), reported > 0 ? reported : 7u);
}

TEST(Load, EwmaSeedsOnFirstSampleThenSmooths) {
  LoadEwma ewma(0.5);
  EXPECT_FALSE(ewma.seeded());
  EXPECT_EQ(ewma.value(), 0.0);
  ewma.update(100.0);  // first sample seeds, no blend with the zero init
  EXPECT_TRUE(ewma.seeded());
  EXPECT_EQ(ewma.value(), 100.0);
  ewma.update(200.0);
  EXPECT_EQ(ewma.value(), 150.0);  // 0.5*200 + 0.5*100
  ewma.update(150.0);
  EXPECT_EQ(ewma.value(), 150.0);  // steady input is a fixed point
}

TEST(Load, EwmaConvergesTowardAConstantStream) {
  LoadEwma ewma(0.2);
  ewma.update(1000.0);
  for (int i = 0; i < 100; ++i) ewma.update(10.0);
  EXPECT_NEAR(ewma.value(), 10.0, 1e-6);
}

TEST(Load, EwmaRejectsOutOfRangeAlpha) {
  EXPECT_THROW(LoadEwma(0.0), std::invalid_argument);
  EXPECT_THROW(LoadEwma(-0.1), std::invalid_argument);
  EXPECT_THROW(LoadEwma(1.5), std::invalid_argument);
  EXPECT_NO_THROW(LoadEwma(1.0));  // alpha=1: tracks the last sample
}

}  // namespace
}  // namespace vcaqoe::common
