#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace vcaqoe::common {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, SecondsRoundTrip) {
  EXPECT_EQ(secondsToNs(1.0), kNanosPerSecond);
  EXPECT_EQ(secondsToNs(2.5), 2'500'000'000LL);
  EXPECT_DOUBLE_EQ(nsToSeconds(kNanosPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(nsToSeconds(secondsToNs(123.456)), 123.456);
}

TEST(Time, MillisMicros) {
  EXPECT_EQ(millisToNs(1.0), 1'000'000LL);
  EXPECT_EQ(microsToNs(1.0), 1'000LL);
  EXPECT_DOUBLE_EQ(nsToMillis(1'500'000), 1.5);
}

TEST(Time, SecondIndexFloors) {
  EXPECT_EQ(secondIndex(0), 0);
  EXPECT_EQ(secondIndex(kNanosPerSecond - 1), 0);
  EXPECT_EQ(secondIndex(kNanosPerSecond), 1);
  EXPECT_EQ(secondIndex(-1), -1);
  EXPECT_EQ(secondIndex(-kNanosPerSecond), -1);
  EXPECT_EQ(secondIndex(-kNanosPerSecond - 1), -2);
}

TEST(Time, WindowIndexMatchesSecondIndexForOneSecond) {
  for (const TimeNs t : {0LL, 999'999'999LL, 1'000'000'000LL, 5'500'000'000LL}) {
    EXPECT_EQ(windowIndex(t, kNanosPerSecond), secondIndex(t)) << t;
  }
}

TEST(Time, WindowIndexLargerWindows) {
  const DurationNs w = 2 * kNanosPerSecond;
  EXPECT_EQ(windowIndex(0, w), 0);
  EXPECT_EQ(windowIndex(2 * kNanosPerSecond - 1, w), 0);
  EXPECT_EQ(windowIndex(2 * kNanosPerSecond, w), 1);
  EXPECT_EQ(windowIndex(7 * kNanosPerSecond, w), 3);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, SampleStdevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population stdev of this classic example is 2; sample stdev is larger.
  EXPECT_NEAR(populationStdev(xs), 2.0, 1e-12);
  EXPECT_NEAR(sampleStdev(xs), 2.138089935, 1e-6);
}

TEST(Stats, StdevDegenerate) {
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(sampleStdev(std::vector<double>{3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, FiveNumberMatchesPieces) {
  const std::vector<double> xs = {5.0, 1.0, 9.0, 3.0, 7.0};
  const FiveNumber f = fiveNumber(xs);
  EXPECT_DOUBLE_EQ(f.mean, 5.0);
  EXPECT_DOUBLE_EQ(f.median, 5.0);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 9.0);
  EXPECT_NEAR(f.stdev, sampleStdev(xs), 1e-12);
}

TEST(Stats, FiveNumberEmpty) {
  const FiveNumber f = fiveNumber(std::vector<double>{});
  EXPECT_DOUBLE_EQ(f.mean, 0.0);
  EXPECT_DOUBLE_EQ(f.max, 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stdev(), sampleStdev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -9.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  rs.clear();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(Stats, EmpiricalCdf) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empiricalCdf(sorted, 10.0), 1.0);
}

TEST(Stats, MaeAndMrae) {
  const std::vector<double> pred = {10.0, 20.0, 30.0};
  const std::vector<double> truth = {12.0, 20.0, 26.0};
  EXPECT_NEAR(meanAbsoluteError(pred, truth), 2.0, 1e-12);
  EXPECT_NEAR(meanRelativeAbsoluteError(pred, truth),
              (2.0 / 12 + 0.0 + 4.0 / 26) / 3.0, 1e-12);
}

TEST(Stats, MraeSkipsZeroTruth) {
  const std::vector<double> pred = {5.0, 10.0};
  const std::vector<double> truth = {0.0, 20.0};
  EXPECT_NEAR(meanRelativeAbsoluteError(pred, truth), 0.5, 1e-12);
}

TEST(Stats, ErrorSizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(meanAbsoluteError(a, b), std::invalid_argument);
}

TEST(Stats, FractionWithin) {
  const std::vector<double> pred = {10.0, 15.0, 30.0, 28.0};
  const std::vector<double> truth = {12.0, 20.0, 30.0, 30.0};
  EXPECT_DOUBLE_EQ(fractionWithinAbsolute(pred, truth, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(fractionWithinRelative(pred, truth, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(fractionWithinRelative(pred, truth, 0.05), 0.25);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, TruncatedNormalClamped) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.truncatedNormal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRate) {
  Rng rng(123);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 50'000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stdev(), 2.0, 0.05);
}

TEST(Rng, NormalZeroStdevIsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, -1.0), 3.5);
}

TEST(Rng, ForkIndependence) {
  Rng a(42);
  Rng forked = a.fork();
  // The fork consumed one draw from `a`; a fresh rng with the same seed
  // diverges from `a` only after that draw — just assert fork is usable and
  // deterministic.
  Rng a2(42);
  Rng forked2 = a2.fork();
  EXPECT_DOUBLE_EQ(forked.uniform(0.0, 1.0), forked2.uniform(0.0, 1.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weightedIndex(w), 1u);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.addRow({"x"});
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Table, NumAndPct) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.98341, 2), "98.34%");
}

TEST(Table, Banner) {
  const std::string b = banner("Hello");
  EXPECT_NE(b.find("Hello"), std::string::npos);
  EXPECT_EQ(b.front(), '=');
}

// Property sweep: percentile is monotone in p and bounded by min/max.
class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 1 + GetParam() * 7 % 50;
  for (int i = 0; i < n; ++i) xs.push_back(rng.uniform(-100.0, 100.0));
  double last = percentile(xs, 0.0);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(last, *mn);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, last);
    EXPECT_LE(v, *mx);
    last = v;
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), *mx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace vcaqoe::common
