#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"
#include "rtp/rtp.hpp"
#include "rxstats/frame_assembly.hpp"
#include "rxstats/ground_truth.hpp"
#include "rxstats/jitter_buffer.hpp"
#include "rxstats/qoe_metrics.hpp"
#include "simcall/call_simulator.hpp"

namespace vcaqoe::rxstats {
namespace {

// ------------------------------------------------------------ qoe metrics

TEST(QoeMetrics, ToStringCovers) {
  EXPECT_EQ(toString(Metric::kBitrate), "bitrate");
  EXPECT_EQ(toString(Metric::kFrameRate), "frame_rate");
  EXPECT_EQ(toString(Metric::kFrameJitter), "frame_jitter");
  EXPECT_EQ(toString(Metric::kResolution), "resolution");
}

TEST(QoeMetrics, MetricSeriesExtraction) {
  QoeTimeline rows(2);
  rows[0].bitrateKbps = 100.0;
  rows[0].fps = 30.0;
  rows[0].frameJitterMs = 5.0;
  rows[0].frameHeight = 360;
  rows[1].bitrateKbps = 200.0;
  EXPECT_EQ(metricSeries(rows, Metric::kBitrate),
            (std::vector<double>{100.0, 200.0}));
  EXPECT_EQ(metricSeries(rows, Metric::kFrameRate)[0], 30.0);
  EXPECT_EQ(metricSeries(rows, Metric::kResolution)[0], 360.0);
}

// --------------------------------------------------------- frame assembly

netflow::Packet makeVideoPacket(common::TimeNs arrival, std::uint32_t size,
                                std::uint8_t pt, std::uint32_t ts,
                                bool marker, std::uint16_t seq) {
  netflow::Packet p;
  p.arrivalNs = arrival;
  p.sizeBytes = size;
  rtp::RtpHeader h;
  h.payloadType = pt;
  h.timestamp = ts;
  h.marker = marker;
  h.sequenceNumber = seq;
  h.ssrc = 1;
  std::vector<std::uint8_t> head;
  rtp::encode(h, head);
  p.setHead(head);
  return p;
}

simcall::SentFrame makeSentFrame(std::uint32_t ts, common::TimeNs capture,
                                 std::uint16_t packets, int height = 360) {
  simcall::SentFrame f;
  f.rtpTimestamp = ts;
  f.captureNs = capture;
  f.packetCount = packets;
  f.frameHeight = height;
  return f;
}

TEST(FrameAssembly, CompleteFrameFromPrimaryPackets) {
  std::vector<simcall::SentFrame> sent = {makeSentFrame(1000, 0, 2)};
  netflow::PacketTrace trace = {
      makeVideoPacket(10, 1012, 102, 1000, false, 1),
      makeVideoPacket(20, 1012, 102, 1000, true, 2),
  };
  const auto frames = assembleFrames(trace, sent, 102, 103);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].complete);
  EXPECT_EQ(frames[0].completeNs, 20);
  EXPECT_EQ(frames[0].payloadBytes, 2 * 1000u);
  EXPECT_TRUE(frames[0].sawMarker);
  EXPECT_EQ(frames[0].frameHeight, 360);
}

TEST(FrameAssembly, MissingPacketLeavesFrameIncomplete) {
  std::vector<simcall::SentFrame> sent = {makeSentFrame(1000, 0, 3)};
  netflow::PacketTrace trace = {
      makeVideoPacket(10, 1012, 102, 1000, false, 1),
      makeVideoPacket(30, 1012, 102, 1000, true, 3),
  };
  const auto frames = assembleFrames(trace, sent, 102, 103);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].complete);
}

TEST(FrameAssembly, RtxRecoveryCompletesFrame) {
  std::vector<simcall::SentFrame> sent = {makeSentFrame(1000, 0, 3)};
  netflow::PacketTrace trace = {
      makeVideoPacket(10, 1012, 102, 1000, false, 1),
      makeVideoPacket(30, 1012, 102, 1000, true, 3),
      makeVideoPacket(95, 1012, 103, 1000, false, 1),  // RTX fills the gap
  };
  const auto frames = assembleFrames(trace, sent, 102, 103);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].complete);
  EXPECT_EQ(frames[0].completeNs, 95);
  EXPECT_EQ(frames[0].rtxRecovered, 1);
}

TEST(FrameAssembly, IgnoresKeepalivesAndUnknownTimestamps) {
  std::vector<simcall::SentFrame> sent = {makeSentFrame(1000, 0, 1)};
  netflow::PacketTrace trace = {
      makeVideoPacket(10, 1012, 102, 1000, true, 1),
      makeVideoPacket(12, 304, 103, 999'999, false, 7),  // keep-alive
  };
  const auto frames = assembleFrames(trace, sent, 102, 103);
  EXPECT_EQ(frames.size(), 1u);
}

TEST(FrameAssembly, OrdersFramesByCaptureTime) {
  std::vector<simcall::SentFrame> sent = {makeSentFrame(2000, 100, 1),
                                          makeSentFrame(1000, 50, 1)};
  // Frame 2000 arrives first (reordering).
  netflow::PacketTrace trace = {
      makeVideoPacket(110, 900, 102, 2000, true, 2),
      makeVideoPacket(120, 950, 102, 1000, true, 1),
  };
  const auto frames = assembleFrames(trace, sent, 102, 103);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].rtpTimestamp, 1000u);
  EXPECT_EQ(frames[1].rtpTimestamp, 2000u);
}

// ----------------------------------------------------------- jitter buffer

std::vector<ReceivedFrame> steadyFrames(int count, common::DurationNs gap,
                                        common::TimeNs firstArrival = 0) {
  std::vector<ReceivedFrame> frames(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto& f = frames[static_cast<std::size_t>(i)];
    f.rtpTimestamp = static_cast<std::uint32_t>(1000 + i * 3000);
    f.captureNs = i * gap;
    f.completeNs = firstArrival + i * gap;
    f.complete = true;
    f.keyframe = i == 0;  // first frame of a stream is always a keyframe
    f.frameHeight = 360;
    f.payloadBytes = 4000;
  }
  return frames;
}

TEST(JitterBuffer, DecodesAllCompleteFrames) {
  common::Rng rng(1);
  const JitterBuffer buffer;
  const auto decoded = buffer.playout(steadyFrames(100, common::millisToNs(33.3)), rng);
  EXPECT_EQ(decoded.size(), 100u);
}

TEST(JitterBuffer, DropsIncompleteFrameAndStallsUntilKeyframe) {
  common::Rng rng(1);
  auto frames = steadyFrames(10, common::millisToNs(33.3));
  frames[4].complete = false;   // unrecovered loss
  frames[7].keyframe = true;    // PLI-triggered keyframe resumes decoding
  const JitterBuffer buffer;
  // Frames 0-3 decode, 4 is lost, 5-6 reference the broken frame, 7-9
  // decode again: 7 total.
  EXPECT_EQ(buffer.playout(frames, rng).size(), 7u);
}

TEST(JitterBuffer, IncompleteTailFreezesStream) {
  common::Rng rng(1);
  auto frames = steadyFrames(10, common::millisToNs(33.3));
  frames[5].complete = false;
  const JitterBuffer buffer;
  // No keyframe after the loss: everything beyond frame 4 is undecodable.
  EXPECT_EQ(buffer.playout(frames, rng).size(), 5u);
}

TEST(JitterBuffer, DecodeTimesMonotone) {
  common::Rng rng(2);
  auto frames = steadyFrames(200, common::millisToNs(33.3));
  // Add arrival jitter.
  common::Rng jitterRng(3);
  for (auto& f : frames) {
    f.completeNs += common::millisToNs(jitterRng.uniform(0.0, 25.0));
  }
  const JitterBuffer buffer;
  const auto decoded = buffer.playout(frames, rng);
  for (std::size_t i = 1; i < decoded.size(); ++i) {
    EXPECT_GT(decoded[i].decodeNs, decoded[i - 1].decodeNs);
  }
}

TEST(JitterBuffer, SmoothsArrivalJitter) {
  // Decode-gap stdev must be below arrival-gap stdev: that smoothing is the
  // phenomenon behind the paper's frame-jitter "overestimation" (§5.1.4).
  common::Rng rng(4);
  auto frames = steadyFrames(600, common::millisToNs(33.3));
  common::Rng jitterRng(5);
  for (auto& f : frames) {
    f.completeNs += common::millisToNs(std::max(0.0, jitterRng.normal(15.0, 12.0)));
  }
  std::sort(frames.begin(), frames.end(),
            [](const ReceivedFrame& a, const ReceivedFrame& b) {
              return a.captureNs < b.captureNs;
            });
  const JitterBuffer buffer;
  const auto decoded = buffer.playout(frames, rng);
  ASSERT_GT(decoded.size(), 500u);

  std::vector<double> arrivalGaps;
  std::vector<double> decodeGaps;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    arrivalGaps.push_back(
        common::nsToMillis(frames[i].completeNs - frames[i - 1].completeNs));
  }
  for (std::size_t i = 1; i < decoded.size(); ++i) {
    decodeGaps.push_back(
        common::nsToMillis(decoded[i].decodeNs - decoded[i - 1].decodeNs));
  }
  EXPECT_LT(common::sampleStdev(decodeGaps),
            0.8 * common::sampleStdev(arrivalGaps));
}

// ------------------------------------------------------------ ground truth

simcall::CallResult simulateClean(double seconds, std::uint64_t seed = 5) {
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  c.jitterMs = 0.5;
  simcall::CallSimulator sim(
      datasets::teamsProfile(datasets::Deployment::kLab),
      netem::ConditionSchedule::constant(c, static_cast<std::size_t>(seconds) + 1),
      seed);
  return sim.run(seconds);
}

TEST(GroundTruth, RowsCoverCallAfterWarmup) {
  const auto call = simulateClean(20.0);
  const auto rows = buildGroundTruth(call, 20.0);
  ASSERT_EQ(rows.size(), 18u);  // 20 s minus 2 s warmup
  EXPECT_EQ(rows.front().second, 2);
  EXPECT_EQ(rows.back().second, 19);
}

TEST(GroundTruth, CleanCallReachesFullFrameRate) {
  const auto call = simulateClean(20.0);
  const auto rows = buildGroundTruth(call, 20.0);
  double meanFps = 0.0;
  for (const auto& row : rows) {
    EXPECT_TRUE(row.valid);
    meanFps += row.fps;
  }
  meanFps /= static_cast<double>(rows.size());
  EXPECT_NEAR(meanFps, 30.0, 1.5);
}

TEST(GroundTruth, BitrateMatchesDeliveredVideoPayload) {
  const auto call = simulateClean(20.0);
  const auto rows = buildGroundTruth(call, 20.0);
  // Cross-check one row against a manual count. webrtc-internals reports
  // the media bitrate: FEC + codec metadata inside the payload (~7%) do not
  // count, so the ground truth sits just below the on-wire payload rate.
  const auto& row = rows[5];
  double bits = 0.0;
  for (const auto& pkt : call.packets) {
    const auto h = rtp::decode(pkt.headBytes());
    if (!h || h->payloadType != call.profile.videoPt) continue;
    if (common::secondIndex(pkt.arrivalNs) != row.second) continue;
    bits += 8.0 * (pkt.sizeBytes - rtp::kRtpHeaderSize);
  }
  const double mediaFraction =
      1.0 / ((1.0 + call.profile.fecOverhead) * 1.02);
  EXPECT_NEAR(row.bitrateKbps, bits / 1e3 * mediaFraction, 1e-6);
  EXPECT_LT(row.bitrateKbps, bits / 1e3);
}

TEST(GroundTruth, ResolutionReportsLadderHeight) {
  const auto call = simulateClean(25.0);
  const auto rows = buildGroundTruth(call, 25.0);
  for (const auto& row : rows) {
    bool onLadder = false;
    for (const auto& rung :
         datasets::teamsProfile(datasets::Deployment::kLab).ladder) {
      if (rung.frameHeight == row.frameHeight) onLadder = true;
    }
    EXPECT_TRUE(onLadder) << row.frameHeight;
  }
}

TEST(GroundTruth, LossReducesDecodedFps) {
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  c.lossRate = 0.15;
  auto profile = datasets::webexProfile(datasets::Deployment::kRealWorld);
  ASSERT_EQ(profile.rtxPt, 0);  // no recovery possible
  simcall::CallSimulator sim(profile,
                             netem::ConditionSchedule::constant(c, 30), 9);
  const auto call = sim.run(25.0);
  const auto rows = buildGroundTruth(call, 25.0);
  double meanFps = 0.0;
  for (const auto& row : rows) meanFps += row.fps;
  meanFps /= static_cast<double>(rows.size());
  // With 15% packet loss and multi-packet frames, a large share of frames
  // never completes.
  EXPECT_LT(meanFps, 25.0);
}

TEST(GroundTruth, JitterRisesUnderNetworkJitter) {
  netem::SecondCondition clean;
  clean.throughputKbps = 20'000.0;
  clean.delayMs = 15.0;
  clean.jitterMs = 0.2;
  netem::SecondCondition jittery = clean;
  jittery.jitterMs = 50.0;

  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  simcall::CallSimulator simClean(
      profile, netem::ConditionSchedule::constant(clean, 30), 11);
  simcall::CallSimulator simJittery(
      profile, netem::ConditionSchedule::constant(jittery, 30), 11);
  const auto rowsClean = buildGroundTruth(simClean.run(25.0), 25.0);
  const auto rowsJittery = buildGroundTruth(simJittery.run(25.0), 25.0);

  auto meanJitter = [](const QoeTimeline& rows) {
    double sum = 0.0;
    for (const auto& row : rows) sum += row.frameJitterMs;
    return sum / static_cast<double>(rows.size());
  };
  EXPECT_GT(meanJitter(rowsJittery), 2.0 * meanJitter(rowsClean));
}

}  // namespace
}  // namespace vcaqoe::rxstats
