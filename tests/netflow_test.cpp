#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "netflow/bytes.hpp"
#include "netflow/ip.hpp"
#include "netflow/packet.hpp"
#include "netflow/pcap.hpp"

namespace vcaqoe::netflow {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, WriterBigEndian) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0x12);
  EXPECT_EQ(out[2], 0x34);
  EXPECT_EQ(out[3], 0xDE);
  EXPECT_EQ(out[6], 0xEF);
}

TEST(Bytes, ReaderRoundTrip) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(0xCAFEBABE);
  w.u16(0x0102);
  w.u8(0x7F);
  ByteReader r(out);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.u16(), 0x0102u);
  EXPECT_EQ(r.u8(), 0x7Fu);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderThrowsOnTruncation) {
  const std::vector<std::uint8_t> data = {0x01, 0x02};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), std::out_of_range);
  ByteReader r2(data);
  r2.u16();
  EXPECT_THROW(r2.u8(), std::out_of_range);
}

TEST(Bytes, InternetChecksumKnownVector) {
  // Classic RFC 1071 example bytes.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internetChecksum(data);
  // Verifying: appending the checksum makes the total sum 0xFFFF.
  std::vector<std::uint8_t> withSum = data;
  withSum.push_back(static_cast<std::uint8_t>(sum >> 8));
  withSum.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internetChecksum(withSum), 0);
}

TEST(Bytes, ChecksumOddLength) {
  const std::vector<std::uint8_t> data = {0xFF, 0x00, 0xAB};
  // Should not crash and be stable.
  EXPECT_EQ(internetChecksum(data), internetChecksum(data));
}

// ---------------------------------------------------------------- ip/udp

TEST(Ip, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.totalLength = 1200;
  h.identification = 77;
  h.ttl = 61;
  h.srcAddr = 0x0A000001;
  h.dstAddr = 0xC0A80102;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  ASSERT_EQ(buf.size(), kIpv4HeaderSize);

  std::size_t consumed = 0;
  const auto decoded = decodeIpv4(buf, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, kIpv4HeaderSize);
  EXPECT_EQ(*decoded, h);
}

TEST(Ip, DecodeRejectsBadChecksum) {
  Ipv4Header h;
  h.totalLength = 100;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  buf[10] ^= 0xFF;  // corrupt checksum
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(buf, consumed).has_value());
}

TEST(Ip, DecodeRejectsWrongVersion) {
  Ipv4Header h;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  buf[0] = 0x65;  // version 6
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(buf, consumed).has_value());
}

TEST(Ip, DecodeRejectsTruncated) {
  const std::vector<std::uint8_t> tiny(10, 0);
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(tiny, consumed).has_value());
}

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpHeader h;
  h.srcPort = 3478;
  h.dstPort = 50000;
  h.length = 108;
  std::vector<std::uint8_t> buf;
  encodeUdp(h, buf);
  ASSERT_EQ(buf.size(), kUdpHeaderSize);
  const auto decoded = decodeUdp(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Udp, DecodeRejectsShortLengthField) {
  UdpHeader h;
  h.length = 4;  // below header size
  std::vector<std::uint8_t> buf;
  encodeUdp(h, buf);
  EXPECT_FALSE(decodeUdp(buf).has_value());
}

TEST(Ip, AddressStringRoundTrip) {
  EXPECT_EQ(ipToString(0xC0A80101), "192.168.1.1");
  EXPECT_EQ(parseIp("192.168.1.1"), 0xC0A80101u);
  EXPECT_EQ(parseIp("0.0.0.0"), 0u);
  EXPECT_EQ(parseIp("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_FALSE(parseIp("1.2.3").has_value());
  EXPECT_FALSE(parseIp("1.2.3.4.5").has_value());
  EXPECT_FALSE(parseIp("1.2.3.999").has_value());
  EXPECT_FALSE(parseIp("a.b.c.d").has_value());
}

// ---------------------------------------------------------------- packet

TEST(Packet, SetHeadClamps) {
  Packet p;
  std::vector<std::uint8_t> big(64, 0x5A);
  p.setHead(big);
  EXPECT_EQ(p.headLen, kHeadCapacity);
  EXPECT_EQ(p.headBytes().size(), kHeadCapacity);
  EXPECT_EQ(p.headBytes()[0], 0x5A);
}

TEST(Packet, SortByArrivalStable) {
  PacketTrace trace(3);
  trace[0].arrivalNs = 30;
  trace[0].sizeBytes = 1;
  trace[1].arrivalNs = 10;
  trace[1].sizeBytes = 2;
  trace[2].arrivalNs = 30;
  trace[2].sizeBytes = 3;
  EXPECT_FALSE(isArrivalOrdered(trace));
  sortByArrival(trace);
  EXPECT_TRUE(isArrivalOrdered(trace));
  EXPECT_EQ(trace[0].sizeBytes, 2u);
  EXPECT_EQ(trace[1].sizeBytes, 1u);  // stable: 1 stays before 3
  EXPECT_EQ(trace[2].sizeBytes, 3u);
}

// ---------------------------------------------------------------- pcap

FlowKey testFlow() {
  FlowKey f;
  f.srcIp = *parseIp("10.0.0.1");
  f.dstIp = *parseIp("192.168.7.2");
  f.srcPort = 3478;
  f.dstPort = 51000;
  return f;
}

TEST(Pcap, WriteParseRoundTrip) {
  PcapWriter writer;
  Packet p;
  p.arrivalNs = 3 * common::kNanosPerSecond + 123'456'789;
  p.sizeBytes = 1176;
  const std::vector<std::uint8_t> head = {0x80, 0x66, 0x00, 0x07,
                                          0x00, 0x00, 0x12, 0x34};
  p.setHead(head);
  writer.write(testFlow(), p);

  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].flow, testFlow());
  EXPECT_EQ(records[0].packet.arrivalNs, p.arrivalNs);
  EXPECT_EQ(records[0].packet.sizeBytes, p.sizeBytes);
  ASSERT_GE(records[0].packet.headLen, head.size());
  for (std::size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(records[0].packet.head[i], head[i]);
  }
}

TEST(Pcap, SaveAndLoadFile) {
  PcapWriter writer;
  Packet p;
  p.arrivalNs = 42;
  p.sizeBytes = 100;
  writer.write(testFlow(), p);
  const std::string path =
      (std::filesystem::temp_directory_path() / "vcaqoe_test.pcap").string();
  writer.save(path);
  const auto records = loadPcap(path);
  std::remove(path.c_str());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.sizeBytes, 100u);
}

TEST(Pcap, RejectsBadMagic) {
  std::vector<std::uint8_t> junk(64, 0x11);
  EXPECT_THROW(parsePcap(junk), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedFile) {
  PcapWriter writer;
  Packet p;
  p.sizeBytes = 500;
  writer.write(testFlow(), p);
  auto bytes = writer.bytes();
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(parsePcap(bytes), std::runtime_error);
}

TEST(Pcap, DominantFlowAndFilter) {
  PcapWriter writer;
  FlowKey media = testFlow();
  FlowKey other = testFlow();
  other.dstPort = 9;
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.arrivalNs = i;
    p.sizeBytes = 1000;
    writer.write(media, p);
  }
  Packet small;
  small.arrivalNs = 100;
  small.sizeBytes = 50;
  writer.write(other, small);

  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), 11u);
  EXPECT_EQ(dominantFlow(records), media);
  EXPECT_EQ(packetsForFlow(records, media).size(), 10u);
  EXPECT_EQ(packetsForFlow(records, other).size(), 1u);
}

// Property: arbitrary packet sizes and times survive the pcap round trip.
class PcapRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PcapRoundTrip, PreservesSizeAndTime) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PcapWriter writer;
  std::vector<Packet> sent;
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.arrivalNs = rng.uniformInt(0, 1'000'000'000'000LL);
    p.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(1, 65'000));
    std::vector<std::uint8_t> head(
        static_cast<std::size_t>(rng.uniformInt(0, 20)));
    for (auto& b : head) {
      b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    p.setHead(head);
    sent.push_back(p);
    writer.write(testFlow(), p);
  }
  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(records[i].packet.arrivalNs, sent[i].arrivalNs);
    EXPECT_EQ(records[i].packet.sizeBytes, sent[i].sizeBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace vcaqoe::netflow
