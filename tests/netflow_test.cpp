#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "netflow/bytes.hpp"
#include "netflow/ip.hpp"
#include "netflow/packet.hpp"
#include "netflow/pcap.hpp"

namespace vcaqoe::netflow {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, WriterBigEndian) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0x12);
  EXPECT_EQ(out[2], 0x34);
  EXPECT_EQ(out[3], 0xDE);
  EXPECT_EQ(out[6], 0xEF);
}

TEST(Bytes, ReaderRoundTrip) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(0xCAFEBABE);
  w.u16(0x0102);
  w.u8(0x7F);
  ByteReader r(out);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.u16(), 0x0102u);
  EXPECT_EQ(r.u8(), 0x7Fu);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderThrowsOnTruncation) {
  const std::vector<std::uint8_t> data = {0x01, 0x02};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), std::out_of_range);
  ByteReader r2(data);
  r2.u16();
  EXPECT_THROW(r2.u8(), std::out_of_range);
}

TEST(Bytes, InternetChecksumKnownVector) {
  // Classic RFC 1071 example bytes.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internetChecksum(data);
  // Verifying: appending the checksum makes the total sum 0xFFFF.
  std::vector<std::uint8_t> withSum = data;
  withSum.push_back(static_cast<std::uint8_t>(sum >> 8));
  withSum.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internetChecksum(withSum), 0);
}

TEST(Bytes, ChecksumOddLength) {
  const std::vector<std::uint8_t> data = {0xFF, 0x00, 0xAB};
  // Should not crash and be stable.
  EXPECT_EQ(internetChecksum(data), internetChecksum(data));
}

// ---------------------------------------------------------------- ip/udp

TEST(Ip, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.totalLength = 1200;
  h.identification = 77;
  h.ttl = 61;
  h.srcAddr = 0x0A000001;
  h.dstAddr = 0xC0A80102;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  ASSERT_EQ(buf.size(), kIpv4HeaderSize);

  std::size_t consumed = 0;
  const auto decoded = decodeIpv4(buf, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, kIpv4HeaderSize);
  EXPECT_EQ(*decoded, h);
}

TEST(Ip, DecodeRejectsBadChecksum) {
  Ipv4Header h;
  h.totalLength = 100;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  buf[10] ^= 0xFF;  // corrupt checksum
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(buf, consumed).has_value());
}

TEST(Ip, DecodeRejectsWrongVersion) {
  Ipv4Header h;
  std::vector<std::uint8_t> buf;
  encodeIpv4(h, buf);
  buf[0] = 0x65;  // version 6
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(buf, consumed).has_value());
}

TEST(Ip, DecodeRejectsTruncated) {
  const std::vector<std::uint8_t> tiny(10, 0);
  std::size_t consumed = 0;
  EXPECT_FALSE(decodeIpv4(tiny, consumed).has_value());
}

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpHeader h;
  h.srcPort = 3478;
  h.dstPort = 50000;
  h.length = 108;
  std::vector<std::uint8_t> buf;
  encodeUdp(h, buf);
  ASSERT_EQ(buf.size(), kUdpHeaderSize);
  const auto decoded = decodeUdp(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Udp, DecodeRejectsShortLengthField) {
  UdpHeader h;
  h.length = 4;  // below header size
  std::vector<std::uint8_t> buf;
  encodeUdp(h, buf);
  EXPECT_FALSE(decodeUdp(buf).has_value());
}

TEST(Ip, AddressStringRoundTrip) {
  EXPECT_EQ(ipToString(0xC0A80101), "192.168.1.1");
  EXPECT_EQ(parseIp("192.168.1.1"), 0xC0A80101u);
  EXPECT_EQ(parseIp("0.0.0.0"), 0u);
  EXPECT_EQ(parseIp("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_FALSE(parseIp("1.2.3").has_value());
  EXPECT_FALSE(parseIp("1.2.3.4.5").has_value());
  EXPECT_FALSE(parseIp("1.2.3.999").has_value());
  EXPECT_FALSE(parseIp("a.b.c.d").has_value());
}

// ---------------------------------------------------------------- packet

TEST(Packet, SetHeadClamps) {
  Packet p;
  std::vector<std::uint8_t> big(64, 0x5A);
  p.setHead(big);
  EXPECT_EQ(p.headLen, kHeadCapacity);
  EXPECT_EQ(p.headBytes().size(), kHeadCapacity);
  EXPECT_EQ(p.headBytes()[0], 0x5A);
}

TEST(Packet, SortByArrivalStable) {
  PacketTrace trace(3);
  trace[0].arrivalNs = 30;
  trace[0].sizeBytes = 1;
  trace[1].arrivalNs = 10;
  trace[1].sizeBytes = 2;
  trace[2].arrivalNs = 30;
  trace[2].sizeBytes = 3;
  EXPECT_FALSE(isArrivalOrdered(trace));
  sortByArrival(trace);
  EXPECT_TRUE(isArrivalOrdered(trace));
  EXPECT_EQ(trace[0].sizeBytes, 2u);
  EXPECT_EQ(trace[1].sizeBytes, 1u);  // stable: 1 stays before 3
  EXPECT_EQ(trace[2].sizeBytes, 3u);
}

// ---------------------------------------------------------------- pcap

FlowKey testFlow() {
  FlowKey f;
  f.srcIp = *parseIp("10.0.0.1");
  f.dstIp = *parseIp("192.168.7.2");
  f.srcPort = 3478;
  f.dstPort = 51000;
  return f;
}

TEST(Pcap, WriteParseRoundTrip) {
  PcapWriter writer;
  Packet p;
  p.arrivalNs = 3 * common::kNanosPerSecond + 123'456'789;
  p.sizeBytes = 1176;
  const std::vector<std::uint8_t> head = {0x80, 0x66, 0x00, 0x07,
                                          0x00, 0x00, 0x12, 0x34};
  p.setHead(head);
  writer.write(testFlow(), p);

  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].flow, testFlow());
  EXPECT_EQ(records[0].packet.arrivalNs, p.arrivalNs);
  EXPECT_EQ(records[0].packet.sizeBytes, p.sizeBytes);
  ASSERT_GE(records[0].packet.headLen, head.size());
  for (std::size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(records[0].packet.head[i], head[i]);
  }
}

TEST(Pcap, SaveAndLoadFile) {
  PcapWriter writer;
  Packet p;
  p.arrivalNs = 42;
  p.sizeBytes = 100;
  writer.write(testFlow(), p);
  const std::string path =
      (std::filesystem::temp_directory_path() / "vcaqoe_test.pcap").string();
  writer.save(path);
  const auto records = loadPcap(path);
  std::remove(path.c_str());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.sizeBytes, 100u);
}

TEST(Pcap, RejectsBadMagic) {
  std::vector<std::uint8_t> junk(64, 0x11);
  EXPECT_THROW(parsePcap(junk), std::runtime_error);
}

TEST(Pcap, RejectsShortGlobalHeader) {
  const std::vector<std::uint8_t> stub(10, 0);
  EXPECT_THROW(parsePcap(stub), std::runtime_error);
}

TEST(Pcap, RejectsUnsupportedLinktype) {
  PcapWriter writer;
  auto bytes = writer.bytes();
  bytes[20] = 1;  // LINKTYPE_ETHERNET instead of RAW
  EXPECT_THROW(parsePcap(bytes), std::runtime_error);
}

// A capture cut off mid-record (monitor crashed, disk filled) must keep
// every complete record instead of discarding the whole file.
TEST(Pcap, TruncatedTrailingRecordIsSkippedNotFatal) {
  PcapWriter writer;
  Packet good;
  good.arrivalNs = 5;
  good.sizeBytes = 700;
  writer.write(testFlow(), good);
  Packet cut;
  cut.arrivalNs = 6;
  cut.sizeBytes = 500;
  writer.write(testFlow(), cut);
  auto bytes = writer.bytes();
  bytes.resize(bytes.size() - 5);

  PcapParseStats stats;
  const auto records = parsePcap(bytes, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.sizeBytes, 700u);
  EXPECT_EQ(stats.recordsYielded, 1u);
  EXPECT_EQ(stats.truncatedRecords, 1u);
}

TEST(Pcap, TruncatedRecordHeaderIsSkippedNotFatal) {
  PcapWriter writer;
  Packet good;
  good.sizeBytes = 300;
  writer.write(testFlow(), good);
  auto bytes = writer.bytes();
  bytes.insert(bytes.end(), 10, 0xEE);  // stray half record header

  PcapParseStats stats;
  const auto records = parsePcap(bytes, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.truncatedRecords, 1u);
}

TEST(Pcap, DominantFlowAndFilter) {
  PcapWriter writer;
  FlowKey media = testFlow();
  FlowKey other = testFlow();
  other.dstPort = 9;
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.arrivalNs = i;
    p.sizeBytes = 1000;
    writer.write(media, p);
  }
  Packet small;
  small.arrivalNs = 100;
  small.sizeBytes = 50;
  writer.write(other, small);

  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), 11u);
  EXPECT_EQ(dominantFlow(records), media);
  EXPECT_EQ(packetsForFlow(records, media).size(), 10u);
  EXPECT_EQ(packetsForFlow(records, other).size(), 1u);
}

// Property: arbitrary packet sizes and times survive the pcap round trip.
class PcapRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PcapRoundTrip, PreservesSizeAndTime) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PcapWriter writer;
  std::vector<Packet> sent;
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.arrivalNs = rng.uniformInt(0, 1'000'000'000'000LL);
    p.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(1, 65'000));
    std::vector<std::uint8_t> head(
        static_cast<std::size_t>(rng.uniformInt(0, 20)));
    for (auto& b : head) {
      b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    p.setHead(head);
    sent.push_back(p);
    writer.write(testFlow(), p);
  }
  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(records[i].packet.arrivalNs, sent[i].arrivalNs);
    EXPECT_EQ(records[i].packet.sizeBytes, sent[i].sizeBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapRoundTrip, ::testing::Range(1, 9));

// ------------------------------------------------- malformed-record corpus
//
// Hand-crafted captures (both byte orders, both timestamp resolutions,
// deliberately corrupt records) — the parser must skip what it cannot trust
// and keep everything else.

void put16(std::vector<std::uint8_t>& out, std::uint16_t v, bool bigEndian) {
  if (bigEndian) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  } else {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  }
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v, bool bigEndian) {
  if (bigEndian) {
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  } else {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  }
}

std::vector<std::uint8_t> craftGlobalHeader(std::uint32_t magic,
                                            bool bigEndian) {
  std::vector<std::uint8_t> out;
  put32(out, magic, bigEndian);
  put16(out, 2, bigEndian);
  put16(out, 4, bigEndian);
  put32(out, 0, bigEndian);
  put32(out, 0, bigEndian);
  put32(out, 64, bigEndian);
  put32(out, kLinktypeRawIpv4, bigEndian);
  return out;
}

void craftRecord(std::vector<std::uint8_t>& out, std::uint32_t tsSec,
                 std::uint32_t tsFrac, std::span<const std::uint8_t> wire,
                 bool bigEndian) {
  put32(out, tsSec, bigEndian);
  put32(out, tsFrac, bigEndian);
  put32(out, static_cast<std::uint32_t>(wire.size()), bigEndian);
  put32(out, static_cast<std::uint32_t>(wire.size()), bigEndian);
  out.insert(out.end(), wire.begin(), wire.end());
}

/// IPv4+UDP wire bytes with an arbitrary (possibly lying) UDP length field.
/// The IP total length covers the claimed UDP length (as any real stack
/// emits) unless `ipTotalLength` overrides it.
std::vector<std::uint8_t> craftUdpWire(const FlowKey& flow,
                                       std::uint16_t udpLengthField,
                                       std::uint8_t ipProtocol = kIpProtoUdp,
                                       std::uint16_t ipTotalLength = 0) {
  std::vector<std::uint8_t> wire;
  Ipv4Header ip;
  ip.totalLength =
      ipTotalLength != 0
          ? ipTotalLength
          : static_cast<std::uint16_t>(
                kIpv4HeaderSize +
                std::max<std::uint16_t>(udpLengthField, kUdpHeaderSize));
  ip.protocol = ipProtocol;
  ip.srcAddr = flow.srcIp;
  ip.dstAddr = flow.dstIp;
  encodeIpv4(ip, wire);
  UdpHeader udp;
  udp.srcPort = flow.srcPort;
  udp.dstPort = flow.dstPort;
  udp.length = udpLengthField;
  encodeUdp(udp, wire);
  return wire;
}

// The seed parser computed `udp->length - kUdpHeaderSize` unchecked: a
// length field below 8 wrapped into a ~4 GB sizeBytes. Such records must be
// skipped, and surrounding good records kept.
TEST(Pcap, UdpLengthUnderflowIsSkipped) {
  auto file = craftGlobalHeader(kPcapMagicNano, false);
  const auto bad = craftUdpWire(testFlow(), /*udpLengthField=*/4);
  craftRecord(file, 1, 0, bad, false);
  const auto good = craftUdpWire(testFlow(), kUdpHeaderSize + 100);
  craftRecord(file, 2, 0, good, false);

  PcapParseStats stats;
  const auto records = parsePcap(file, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.sizeBytes, 100u);
  EXPECT_EQ(stats.skippedBadUdpLength, 1u);
  EXPECT_EQ(stats.recordsYielded, 1u);
}

// The mirror image of the underflow: a corrupt UDP length *above* the
// checksum-verified IP payload must not inflate sizeBytes (~65 KB for a
// ~100-byte packet would skew every byte-derived feature downstream).
TEST(Pcap, UdpLengthBeyondIpPayloadIsSkipped) {
  auto file = craftGlobalHeader(kPcapMagicNano, false);
  const auto bad = craftUdpWire(
      testFlow(), /*udpLengthField=*/0xFF28, kIpProtoUdp,
      /*ipTotalLength=*/kIpv4HeaderSize + kUdpHeaderSize + 100);
  craftRecord(file, 1, 0, bad, false);
  const auto good = craftUdpWire(testFlow(), kUdpHeaderSize + 100);
  craftRecord(file, 2, 0, good, false);

  PcapParseStats stats;
  const auto records = parsePcap(file, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.sizeBytes, 100u);
  EXPECT_EQ(stats.skippedBadUdpLength, 1u);
}

TEST(Pcap, NonUdpRecordsAreSkipped) {
  auto file = craftGlobalHeader(kPcapMagicNano, false);
  const auto tcp = craftUdpWire(testFlow(), kUdpHeaderSize + 50,
                                /*ipProtocol=*/6);
  craftRecord(file, 1, 0, tcp, false);
  const auto udp = craftUdpWire(testFlow(), kUdpHeaderSize + 50);
  craftRecord(file, 2, 0, udp, false);

  PcapParseStats stats;
  const auto records = parsePcap(file, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.skippedNonUdp, 1u);
}

TEST(Pcap, ByteSwappedFileParses) {
  auto file = craftGlobalHeader(kPcapMagicNano, /*bigEndian=*/true);
  const auto wire = craftUdpWire(testFlow(), kUdpHeaderSize + 250);
  craftRecord(file, 7, 42, wire, /*bigEndian=*/true);

  const auto records = parsePcap(file);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].flow, testFlow());
  EXPECT_EQ(records[0].packet.sizeBytes, 250u);
  EXPECT_EQ(records[0].packet.arrivalNs, 7 * common::kNanosPerSecond + 42);
}

TEST(Pcap, MicrosecondMagicScalesToNanos) {
  for (bool bigEndian : {false, true}) {
    auto file = craftGlobalHeader(kPcapMagicMicro, bigEndian);
    const auto wire = craftUdpWire(testFlow(), kUdpHeaderSize + 10);
    craftRecord(file, 3, 123'456, wire, bigEndian);
    const auto records = parsePcap(file);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].packet.arrivalNs,
              3 * common::kNanosPerSecond + 123'456'000LL);
  }
}

// A corrupt fractional timestamp must saturate below the next second so the
// stream stays non-decreasing (the estimators reject time running backwards).
TEST(Pcap, CorruptTimestampFractionSaturates) {
  const auto wire = craftUdpWire(testFlow(), kUdpHeaderSize + 10);

  auto nanoFile = craftGlobalHeader(kPcapMagicNano, false);
  craftRecord(nanoFile, 1, 3'000'000'000u, wire, false);  // frac >= 1e9
  craftRecord(nanoFile, 2, 0, wire, false);
  PcapParseStats nanoStats;
  const auto nanoRecords = parsePcap(nanoFile, &nanoStats);
  ASSERT_EQ(nanoRecords.size(), 2u);
  EXPECT_EQ(nanoRecords[0].packet.arrivalNs,
            1 * common::kNanosPerSecond + 999'999'999LL);
  EXPECT_LT(nanoRecords[0].packet.arrivalNs, nanoRecords[1].packet.arrivalNs);
  EXPECT_EQ(nanoStats.clampedTimestamps, 1u);

  auto microFile = craftGlobalHeader(kPcapMagicMicro, false);
  craftRecord(microFile, 1, 5'000'000u, wire, false);  // frac >= 1e6
  craftRecord(microFile, 2, 0, wire, false);
  PcapParseStats microStats;
  const auto microRecords = parsePcap(microFile, &microStats);
  ASSERT_EQ(microRecords.size(), 2u);
  EXPECT_EQ(microRecords[0].packet.arrivalNs,
            1 * common::kNanosPerSecond + 999'999'000LL);
  EXPECT_LT(microRecords[0].packet.arrivalNs,
            microRecords[1].packet.arrivalNs);
  EXPECT_EQ(microStats.clampedTimestamps, 1u);
}

TEST(Pcap, RecordClaimingMoreBytesThanRemainIsSkipped) {
  auto file = craftGlobalHeader(kPcapMagicNano, false);
  const auto wire = craftUdpWire(testFlow(), kUdpHeaderSize + 10);
  craftRecord(file, 1, 0, wire, false);
  put32(file, 2, false);  // tsSec
  put32(file, 0, false);  // tsFrac
  put32(file, 0xFFFFFF00u, false);  // capLen far beyond the buffer
  put32(file, 64, false);  // origLen

  PcapParseStats stats;
  const auto records = parsePcap(file, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.truncatedRecords, 1u);
}

// The writer's tsSec field is 32-bit: timestamps past 2106 (or before the
// epoch) must be rejected up front instead of silently round-tripping wrong.
TEST(Pcap, WriterRejectsTimestampsOutsideEpochRange) {
  PcapWriter writer;
  Packet p;
  p.sizeBytes = 100;
  p.arrivalNs = -1;
  EXPECT_THROW(writer.write(testFlow(), p), std::invalid_argument);
  p.arrivalNs = 5'000'000'000LL * common::kNanosPerSecond;  // year ~2128
  EXPECT_THROW(writer.write(testFlow(), p), std::invalid_argument);
  // Largest representable second still round-trips.
  p.arrivalNs = 4'294'967'295LL * common::kNanosPerSecond + 1;
  writer.write(testFlow(), p);
  const auto records = parsePcap(writer.bytes());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet.arrivalNs, p.arrivalNs);
}

// ------------------------------------------------- streaming readers

TEST(Pcap, StreamingReaderMatchesBatchParse) {
  common::Rng rng(99);
  PcapWriter writer;
  FlowKey other = testFlow();
  other.srcPort = 4000;
  for (int i = 0; i < 40; ++i) {
    Packet p;
    p.arrivalNs = i * 10'000'000LL;
    p.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(50, 1400));
    writer.write(i % 3 == 0 ? other : testFlow(), p);
  }
  const auto want = parsePcap(writer.bytes());

  PcapReader reader(writer.bytes());
  std::vector<PcapRecord> got;
  while (auto rec = reader.next()) got.push_back(*rec);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].flow, want[i].flow);
    EXPECT_EQ(got[i].packet.arrivalNs, want[i].packet.arrivalNs);
    EXPECT_EQ(got[i].packet.sizeBytes, want[i].packet.sizeBytes);
  }
  EXPECT_EQ(reader.stats().recordsYielded, want.size());
}

TEST(Pcap, FileReaderStreamsWithoutLoadingWholeFile) {
  PcapWriter writer;
  for (int i = 0; i < 25; ++i) {
    Packet p;
    p.arrivalNs = i * 1'000'000LL;
    p.sizeBytes = 600;
    writer.write(testFlow(), p);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "vcaqoe_stream.pcap").string();
  writer.save(path);

  PcapFileReader reader(path);
  std::size_t count = 0;
  common::TimeNs lastArrival = -1;
  while (auto rec = reader.next()) {
    EXPECT_GT(rec->packet.arrivalNs, lastArrival);
    lastArrival = rec->packet.arrivalNs;
    ++count;
  }
  std::remove(path.c_str());
  EXPECT_EQ(count, 25u);
  EXPECT_EQ(reader.stats().recordsYielded, 25u);
}

TEST(Pcap, FileReaderSkipsTruncatedTail) {
  PcapWriter writer;
  Packet p;
  p.sizeBytes = 400;
  writer.write(testFlow(), p);
  p.arrivalNs = 1;
  writer.write(testFlow(), p);
  auto bytes = writer.bytes();
  bytes.resize(bytes.size() - 7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "vcaqoe_trunc.pcap").string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  PcapParseStats stats;
  const auto records = loadPcap(path, &stats);
  std::remove(path.c_str());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.truncatedRecords, 1u);
}

// dominantFlow dropped its ordered map for the shared FlowKeyHash; ties must
// still resolve deterministically — by first appearance, not hash order.
TEST(Pcap, DominantFlowTieBreaksToFirstSeen) {
  FlowKey late = testFlow();  // numerically smaller tuple than `early`
  late.srcIp = 1;
  FlowKey early = testFlow();
  early.srcIp = 0xFFFFFFFFu;

  PcapWriter writer;
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.arrivalNs = 2 * i;
    p.sizeBytes = 100;
    writer.write(early, p);
    p.arrivalNs = 2 * i + 1;
    writer.write(late, p);
  }
  const auto records = parsePcap(writer.bytes());
  EXPECT_EQ(dominantFlow(records), early);
}

}  // namespace
}  // namespace vcaqoe::netflow
