// Tests for the §7 calibrated-heuristic idea and permutation importance.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/calibration.hpp"
#include "core/evaluation.hpp"
#include "datasets/generators.hpp"
#include "ml/inspection.hpp"

namespace vcaqoe {
namespace {

// -------------------------------------------------------------- calibrator

TEST(Calibrator, RecoversAffineRelation) {
  common::Rng rng(1);
  std::vector<double> h;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    h.push_back(x);
    y.push_back(0.8 * x - 3.0 + rng.normal(0.0, 0.2));
  }
  core::HeuristicCalibrator calibrator;
  calibrator.fit(h, y);
  EXPECT_NEAR(calibrator.slope(), 0.8, 0.02);
  EXPECT_NEAR(calibrator.offset(), -3.0, 0.5);
  EXPECT_NEAR(calibrator.apply(50.0), 37.0, 0.5);
}

TEST(Calibrator, ConstantHeuristicFallsBackToOffset) {
  const std::vector<double> h(50, 10.0);
  std::vector<double> y(50, 14.0);
  core::HeuristicCalibrator calibrator;
  calibrator.fit(h, y);
  EXPECT_DOUBLE_EQ(calibrator.slope(), 1.0);
  EXPECT_DOUBLE_EQ(calibrator.offset(), 4.0);
}

TEST(Calibrator, RejectsBadInput) {
  core::HeuristicCalibrator calibrator;
  EXPECT_THROW(calibrator.fit({}, {}), std::invalid_argument);
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(calibrator.fit(a, b), std::invalid_argument);
  EXPECT_THROW(calibrator.apply(1.0), std::logic_error);
}

TEST(Calibrator, RemovesHeuristicBitrateBias) {
  // The IP/UDP heuristic systematically overestimates bitrate (§5.1.3); a
  // small calibration set removes the bias without any labeled ML training.
  datasets::LabDatasetOptions options;
  options.callsPerVca = 6;
  options.seed = 555;
  const auto sessions = datasets::generateLabDataset(options);
  const auto records = datasets::recordsForSessions(
      datasets::sessionsForVca(sessions, "teams"));
  const auto report = core::evaluateCalibration(
      records, core::Method::kIpUdpHeuristic, rxstats::Metric::kBitrate, 0.2);
  EXPECT_LT(report.calibratedMae, report.rawMae);
  EXPECT_LT(report.slope, 1.0);  // shrinks the +7% overhead
  EXPECT_GT(report.testWindows, report.calibrationWindows);
}

TEST(Calibrator, EvaluateRejectsDegenerateSplit) {
  std::vector<core::WindowRecord> records;
  EXPECT_THROW(core::evaluateCalibration(records,
                                         core::Method::kIpUdpHeuristic,
                                         rxstats::Metric::kBitrate),
               std::invalid_argument);
}

// --------------------------------------------------- permutation importance

TEST(PermutationImportance, FlagsInformativeFeature) {
  ml::Dataset d;
  d.featureNames = {"signal", "noise"};
  common::Rng rng(2);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x, rng.uniform(0.0, 1.0)}, 10.0 * x);
  }
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 15;
  forest.fit(d, ml::TreeTask::kRegression, forestOptions, 3);

  const auto ranked = ml::rankedPermutationImportance(forest, d);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, "signal");
  EXPECT_GT(ranked[0].second, 1.0);
  EXPECT_LT(std::abs(ranked[1].second), 0.5);
}

TEST(PermutationImportance, ClassificationErrorRate) {
  ml::Dataset d;
  d.featureNames = {"x"};
  common::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x}, x > 0.5 ? 1.0 : 0.0);
  }
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 11;
  forest.fit(d, ml::TreeTask::kClassification, forestOptions, 5);
  const auto importance = ml::permutationImportance(forest, d);
  EXPECT_GT(importance[0], 0.25);  // shuffling x ruins a near-perfect model
}

TEST(PermutationImportance, AgreesWithImpurityOnTopFeature) {
  // Cross-check the estimator the paper uses: both rankings should put the
  // dominant feature first on a clean synthetic task.
  ml::Dataset d;
  d.featureNames = {"a", "b", "c"};
  common::Rng rng(6);
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    d.addRow({a, rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)},
             20.0 * a + rng.normal(0.0, 0.5));
  }
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 20;
  forest.fit(d, ml::TreeTask::kRegression, forestOptions, 7);
  EXPECT_EQ(forest.rankedImportance()[0].first, "a");
  EXPECT_EQ(ml::rankedPermutationImportance(forest, d)[0].first, "a");
}

TEST(PermutationImportance, RejectsUntrainedAndTiny) {
  ml::RandomForest forest;
  ml::Dataset d;
  d.featureNames = {"x"};
  d.addRow({1.0}, 1.0);
  EXPECT_THROW(ml::permutationImportance(forest, d), std::logic_error);
}

}  // namespace
}  // namespace vcaqoe
