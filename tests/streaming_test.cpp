// Streaming estimator tests: single-pass results must match the batch
// pipeline (the §7 "streaming versions of the methods" requirement).
#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/session.hpp"
#include "core/streaming.hpp"
#include "datasets/generators.hpp"
#include "datasets/vca_profiles.hpp"
#include "inference/backends.hpp"
#include "netem/conditions.hpp"

namespace vcaqoe::core {
namespace {

core::LabeledSession makeSession(const std::string& vca, std::uint64_t seed,
                                 double durationSec = 30.0) {
  const auto profile =
      datasets::profileByName(vca, datasets::Deployment::kLab);
  netem::NdtTraceSynthesizer synth(seed);
  return datasets::simulateSession(
      profile, synth.synthesize(static_cast<std::size_t>(durationSec) + 1),
      durationSec, seed * 31 + 7, seed);
}

StreamingOptions optionsFor(const std::string& vca) {
  StreamingOptions options;
  options.heuristic = defaultHeuristicParams(vca);
  return options;
}

TEST(Streaming, RequiresCallback) {
  EXPECT_THROW(StreamingIpUdpEstimator(StreamingOptions{}, nullptr),
               std::invalid_argument);
}

TEST(Streaming, RejectsOutOfOrderPackets) {
  StreamingIpUdpEstimator streaming(StreamingOptions{},
                                    [](const StreamingOutput&) {});
  netflow::Packet p;
  p.arrivalNs = 100;
  p.sizeBytes = 1000;
  streaming.onPacket(p);
  p.arrivalNs = 50;
  EXPECT_THROW(streaming.onPacket(p), std::invalid_argument);
}

TEST(Streaming, EmitsOneOutputPerWindow) {
  const auto session = makeSession("teams", 5);
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  ASSERT_GE(outputs.size(), 29u);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].window, static_cast<std::int64_t>(i));
    EXPECT_EQ(outputs[i].features.size(), 14u);
  }
}

class StreamingParity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StreamingParity, MatchesBatchPipeline) {
  const auto [vca, seed] = GetParam();
  const auto session = makeSession(vca, static_cast<std::uint64_t>(seed));

  // Batch reference.
  const auto records = buildWindowRecords(session);

  // Streaming pass.
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor(vca),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  const std::size_t n = std::min(outputs.size(), records.size());
  ASSERT_GT(n, 20u);
  for (std::size_t w = 0; w < n; ++w) {
    ASSERT_EQ(outputs[w].window, records[w].window);
    // Identical feature vectors.
    ASSERT_EQ(outputs[w].features.size(), records[w].ipudpFeatures.size());
    for (std::size_t f = 0; f < outputs[w].features.size(); ++f) {
      EXPECT_DOUBLE_EQ(outputs[w].features[f], records[w].ipudpFeatures[f])
          << vca << " window " << w << " feature " << f;
    }
    // Identical heuristic estimates.
    EXPECT_DOUBLE_EQ(outputs[w].heuristic.fps, records[w].ipudpHeuristic.fps)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.bitrateKbps,
                records[w].ipudpHeuristic.bitrateKbps, 1e-6)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.frameJitterMs,
                records[w].ipudpHeuristic.frameJitterMs, 1e-6)
        << vca << " window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VcasAndSeeds, StreamingParity,
    ::testing::Combine(::testing::Values("meet", "teams", "webex"),
                       ::testing::Values(11, 22, 33)));

TEST(Streaming, AttachedBackendPredictsEveryWindow) {
  const auto session = makeSession("teams", 44);
  const auto records = buildWindowRecords(session);
  const auto data = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                   rxstats::Metric::kFrameRate);
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 10;
  forest.fit(data, ml::TreeTask::kRegression, forestOptions, 3);

  int withPrediction = 0;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"), [&](const StreamingOutput& out) {
        const auto fps = out.predictions.get(inference::QoeTarget::kFrameRate);
        if (fps.has_value()) {
          ++withPrediction;
          EXPECT_GE(*fps, 0.0);
          EXPECT_LE(*fps, 40.0);
        }
        // The forest was trained on frame rate only; nothing else is set.
        EXPECT_FALSE(
            out.predictions.has(inference::QoeTarget::kBitrateKbps));
      });
  streaming.attachBackend(std::make_shared<inference::ForestBackend>(
      std::move(forest), inference::QoeTarget::kFrameRate,
      "forest:teams/frame_rate"));
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  EXPECT_GE(withPrediction, 28);
}

TEST(Streaming, HeuristicBackendMirrorsAlgorithmOneEstimates) {
  const auto session = makeSession("meet", 9);
  int windows = 0;
  StreamingIpUdpEstimator streaming(
      optionsFor("meet"),
      [&](const StreamingOutput& out) {
        ++windows;
        // One code path: the heuristic estimates arrive as typed
        // predictions, bit-identical to the heuristic struct.
        using inference::QoeTarget;
        EXPECT_EQ(out.predictions.get(QoeTarget::kFrameRate),
                  std::optional<double>(out.heuristic.fps));
        EXPECT_EQ(out.predictions.get(QoeTarget::kBitrateKbps),
                  std::optional<double>(out.heuristic.bitrateKbps));
        EXPECT_EQ(out.predictions.get(QoeTarget::kFrameJitterMs),
                  std::optional<double>(out.heuristic.frameJitterMs));
        EXPECT_FALSE(out.predictions.has(QoeTarget::kResolution));
      },
      std::make_shared<inference::HeuristicBackend>());
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  EXPECT_GE(windows, 25);
}

TEST(Streaming, AttachAfterFirstEmittedWindowThrows) {
  // The codified mid-stream rule: a backend can only be attached while no
  // window has been emitted; afterwards the swap would race the emission
  // point, so it throws instead.
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      StreamingOptions{},
      [&](const StreamingOutput& out) { outputs.push_back(out); });

  netflow::Packet p;
  p.sizeBytes = 1000;
  p.arrivalNs = 100;
  streaming.onPacket(p);
  // No window emitted yet: attaching is still legal and applies to every
  // window (emission is a pure function of the packet stream).
  auto backend = std::make_shared<inference::HeuristicBackend>();
  streaming.attachBackend(backend);
  EXPECT_EQ(streaming.backend(), backend.get());

  p.arrivalNs = 5 * common::kNanosPerSecond;  // forces window 0 out
  streaming.onPacket(p);
  ASSERT_GE(streaming.emittedWindows(), 1);
  EXPECT_THROW(streaming.attachBackend(nullptr), std::logic_error);
  EXPECT_THROW(
      streaming.attachBackend(std::make_shared<inference::HeuristicBackend>()),
      std::logic_error);
  // The early-attached backend kept predicting despite the failed swaps.
  ASSERT_FALSE(outputs.empty());
  EXPECT_TRUE(outputs[0].predictions.has(inference::QoeTarget::kFrameRate));
}

TEST(Streaming, EmptyStreamFinishIsNoop) {
  int calls = 0;
  StreamingIpUdpEstimator streaming(
      StreamingOptions{}, [&](const StreamingOutput&) { ++calls; });
  streaming.finish();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(streaming.emittedWindows(), 0);
}

TEST(Streaming, LargerWindowSizes) {
  const auto session = makeSession("webex", 55);
  StreamingOptions options = optionsFor("webex");
  options.windowNs = 2 * common::kNanosPerSecond;
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      options, [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  ASSERT_GE(outputs.size(), 14u);
  // fps is per second even with W=2.
  double meanFps = 0.0;
  for (const auto& out : outputs) meanFps += out.heuristic.fps;
  meanFps /= static_cast<double>(outputs.size());
  EXPECT_GT(meanFps, 15.0);
  EXPECT_LT(meanFps, 40.0);
}

}  // namespace
}  // namespace vcaqoe::core
