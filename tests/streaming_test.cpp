// Streaming estimator tests: single-pass results must match the batch
// pipeline (the §7 "streaming versions of the methods" requirement).
#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/session.hpp"
#include "core/streaming.hpp"
#include "datasets/generators.hpp"
#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"

namespace vcaqoe::core {
namespace {

core::LabeledSession makeSession(const std::string& vca, std::uint64_t seed,
                                 double durationSec = 30.0) {
  const auto profile =
      datasets::profileByName(vca, datasets::Deployment::kLab);
  netem::NdtTraceSynthesizer synth(seed);
  return datasets::simulateSession(
      profile, synth.synthesize(static_cast<std::size_t>(durationSec) + 1),
      durationSec, seed * 31 + 7, seed);
}

StreamingOptions optionsFor(const std::string& vca) {
  StreamingOptions options;
  options.heuristic = defaultHeuristicParams(vca);
  return options;
}

TEST(Streaming, RequiresCallback) {
  EXPECT_THROW(StreamingIpUdpEstimator(StreamingOptions{}, nullptr),
               std::invalid_argument);
}

TEST(Streaming, RejectsOutOfOrderPackets) {
  StreamingIpUdpEstimator streaming(StreamingOptions{},
                                    [](const StreamingOutput&) {});
  netflow::Packet p;
  p.arrivalNs = 100;
  p.sizeBytes = 1000;
  streaming.onPacket(p);
  p.arrivalNs = 50;
  EXPECT_THROW(streaming.onPacket(p), std::invalid_argument);
}

TEST(Streaming, EmitsOneOutputPerWindow) {
  const auto session = makeSession("teams", 5);
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  ASSERT_GE(outputs.size(), 29u);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].window, static_cast<std::int64_t>(i));
    EXPECT_EQ(outputs[i].features.size(), 14u);
  }
}

class StreamingParity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StreamingParity, MatchesBatchPipeline) {
  const auto [vca, seed] = GetParam();
  const auto session = makeSession(vca, static_cast<std::uint64_t>(seed));

  // Batch reference.
  const auto records = buildWindowRecords(session);

  // Streaming pass.
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor(vca),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  const std::size_t n = std::min(outputs.size(), records.size());
  ASSERT_GT(n, 20u);
  for (std::size_t w = 0; w < n; ++w) {
    ASSERT_EQ(outputs[w].window, records[w].window);
    // Identical feature vectors.
    ASSERT_EQ(outputs[w].features.size(), records[w].ipudpFeatures.size());
    for (std::size_t f = 0; f < outputs[w].features.size(); ++f) {
      EXPECT_DOUBLE_EQ(outputs[w].features[f], records[w].ipudpFeatures[f])
          << vca << " window " << w << " feature " << f;
    }
    // Identical heuristic estimates.
    EXPECT_DOUBLE_EQ(outputs[w].heuristic.fps, records[w].ipudpHeuristic.fps)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.bitrateKbps,
                records[w].ipudpHeuristic.bitrateKbps, 1e-6)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.frameJitterMs,
                records[w].ipudpHeuristic.frameJitterMs, 1e-6)
        << vca << " window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VcasAndSeeds, StreamingParity,
    ::testing::Combine(::testing::Values("meet", "teams", "webex"),
                       ::testing::Values(11, 22, 33)));

TEST(Streaming, AttachedModelPredictsEveryWindow) {
  const auto session = makeSession("teams", 44);
  const auto records = buildWindowRecords(session);
  const auto data = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                   rxstats::Metric::kFrameRate);
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 10;
  forest.fit(data, ml::TreeTask::kRegression, forestOptions, 3);

  int withPrediction = 0;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"), [&](const StreamingOutput& out) {
        if (out.prediction.has_value()) {
          ++withPrediction;
          EXPECT_GE(*out.prediction, 0.0);
          EXPECT_LE(*out.prediction, 40.0);
        }
      });
  streaming.attachModel(&forest);
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  EXPECT_GE(withPrediction, 28);
}

TEST(Streaming, EmptyStreamFinishIsNoop) {
  int calls = 0;
  StreamingIpUdpEstimator streaming(
      StreamingOptions{}, [&](const StreamingOutput&) { ++calls; });
  streaming.finish();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(streaming.emittedWindows(), 0);
}

TEST(Streaming, LargerWindowSizes) {
  const auto session = makeSession("webex", 55);
  StreamingOptions options = optionsFor("webex");
  options.windowNs = 2 * common::kNanosPerSecond;
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      options, [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  ASSERT_GE(outputs.size(), 14u);
  // fps is per second even with W=2.
  double meanFps = 0.0;
  for (const auto& out : outputs) meanFps += out.heuristic.fps;
  meanFps /= static_cast<double>(outputs.size());
  EXPECT_GT(meanFps, 15.0);
  EXPECT_LT(meanFps, 40.0);
}

}  // namespace
}  // namespace vcaqoe::core
