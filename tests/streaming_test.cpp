// Streaming estimator tests: single-pass results must match the batch
// pipeline (the §7 "streaming versions of the methods" requirement), and
// the columnar/SoA per-flow layout must be bit-identical to the node-based
// one it replaced.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/lookback_ring.hpp"
#include "core/session.hpp"
#include "core/streaming.hpp"
#include "datasets/generators.hpp"
#include "datasets/vca_profiles.hpp"
#include "engine/synthetic.hpp"
#include "features/windows.hpp"
#include "inference/backends.hpp"
#include "netem/conditions.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::core {
namespace {

core::LabeledSession makeSession(const std::string& vca, std::uint64_t seed,
                                 double durationSec = 30.0,
                                 datasets::Deployment deployment =
                                     datasets::Deployment::kLab) {
  const auto profile = datasets::profileByName(vca, deployment);
  netem::NdtTraceSynthesizer synth(seed);
  return datasets::simulateSession(
      profile, synth.synthesize(static_cast<std::size_t>(durationSec) + 1),
      durationSec, seed * 31 + 7, seed);
}

StreamingOptions optionsFor(const std::string& vca) {
  StreamingOptions options;
  options.heuristic = defaultHeuristicParams(vca);
  return options;
}

TEST(Streaming, RequiresCallback) {
  EXPECT_THROW(StreamingIpUdpEstimator(StreamingOptions{}, nullptr),
               std::invalid_argument);
}

TEST(Streaming, RejectsOutOfOrderPackets) {
  StreamingIpUdpEstimator streaming(StreamingOptions{},
                                    [](const StreamingOutput&) {});
  netflow::Packet p;
  p.arrivalNs = 100;
  p.sizeBytes = 1000;
  streaming.onPacket(p);
  p.arrivalNs = 50;
  EXPECT_THROW(streaming.onPacket(p), std::invalid_argument);
}

TEST(Streaming, EmitsOneOutputPerWindow) {
  const auto session = makeSession("teams", 5);
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  ASSERT_GE(outputs.size(), 29u);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].window, static_cast<std::int64_t>(i));
    EXPECT_EQ(outputs[i].features.size(), 14u);
  }
}

class StreamingParity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StreamingParity, MatchesBatchPipeline) {
  const auto [vca, seed] = GetParam();
  const auto session = makeSession(vca, static_cast<std::uint64_t>(seed));

  // Batch reference.
  const auto records = buildWindowRecords(session);

  // Streaming pass.
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      optionsFor(vca),
      [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();

  const std::size_t n = std::min(outputs.size(), records.size());
  ASSERT_GT(n, 20u);
  for (std::size_t w = 0; w < n; ++w) {
    ASSERT_EQ(outputs[w].window, records[w].window);
    // Identical feature vectors.
    ASSERT_EQ(outputs[w].features.size(), records[w].ipudpFeatures.size());
    for (std::size_t f = 0; f < outputs[w].features.size(); ++f) {
      EXPECT_DOUBLE_EQ(outputs[w].features[f], records[w].ipudpFeatures[f])
          << vca << " window " << w << " feature " << f;
    }
    // Identical heuristic estimates.
    EXPECT_DOUBLE_EQ(outputs[w].heuristic.fps, records[w].ipudpHeuristic.fps)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.bitrateKbps,
                records[w].ipudpHeuristic.bitrateKbps, 1e-6)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.frameJitterMs,
                records[w].ipudpHeuristic.frameJitterMs, 1e-6)
        << vca << " window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VcasAndSeeds, StreamingParity,
    ::testing::Combine(::testing::Values("meet", "teams", "webex"),
                       ::testing::Values(11, 22, 33)));

TEST(Streaming, AttachedBackendPredictsEveryWindow) {
  const auto session = makeSession("teams", 44);
  const auto records = buildWindowRecords(session);
  const auto data = buildMlDataset(records, features::FeatureSet::kIpUdp,
                                   rxstats::Metric::kFrameRate);
  ml::RandomForest forest;
  ml::ForestOptions forestOptions;
  forestOptions.numTrees = 10;
  forest.fit(data, ml::TreeTask::kRegression, forestOptions, 3);

  int withPrediction = 0;
  StreamingIpUdpEstimator streaming(
      optionsFor("teams"), [&](const StreamingOutput& out) {
        const auto fps = out.predictions.get(inference::QoeTarget::kFrameRate);
        if (fps.has_value()) {
          ++withPrediction;
          EXPECT_GE(*fps, 0.0);
          EXPECT_LE(*fps, 40.0);
        }
        // The forest was trained on frame rate only; nothing else is set.
        EXPECT_FALSE(
            out.predictions.has(inference::QoeTarget::kBitrateKbps));
      });
  streaming.attachBackend(std::make_shared<inference::ForestBackend>(
      std::move(forest), inference::QoeTarget::kFrameRate,
      "forest:teams/frame_rate"));
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  EXPECT_GE(withPrediction, 28);
}

TEST(Streaming, HeuristicBackendMirrorsAlgorithmOneEstimates) {
  const auto session = makeSession("meet", 9);
  int windows = 0;
  StreamingIpUdpEstimator streaming(
      optionsFor("meet"),
      [&](const StreamingOutput& out) {
        ++windows;
        // One code path: the heuristic estimates arrive as typed
        // predictions, bit-identical to the heuristic struct.
        using inference::QoeTarget;
        EXPECT_EQ(out.predictions.get(QoeTarget::kFrameRate),
                  std::optional<double>(out.heuristic.fps));
        EXPECT_EQ(out.predictions.get(QoeTarget::kBitrateKbps),
                  std::optional<double>(out.heuristic.bitrateKbps));
        EXPECT_EQ(out.predictions.get(QoeTarget::kFrameJitterMs),
                  std::optional<double>(out.heuristic.frameJitterMs));
        EXPECT_FALSE(out.predictions.has(QoeTarget::kResolution));
      },
      std::make_shared<inference::HeuristicBackend>());
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  EXPECT_GE(windows, 25);
}

TEST(Streaming, AttachAfterFirstEmittedWindowThrows) {
  // The codified mid-stream rule: a backend can only be attached while no
  // window has been emitted; afterwards the swap would race the emission
  // point, so it throws instead.
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      StreamingOptions{},
      [&](const StreamingOutput& out) { outputs.push_back(out); });

  netflow::Packet p;
  p.sizeBytes = 1000;
  p.arrivalNs = 100;
  streaming.onPacket(p);
  // No window emitted yet: attaching is still legal and applies to every
  // window (emission is a pure function of the packet stream).
  auto backend = std::make_shared<inference::HeuristicBackend>();
  streaming.attachBackend(backend);
  EXPECT_EQ(streaming.backend(), backend.get());

  p.arrivalNs = 5 * common::kNanosPerSecond;  // forces window 0 out
  streaming.onPacket(p);
  ASSERT_GE(streaming.emittedWindows(), 1);
  EXPECT_THROW(streaming.attachBackend(nullptr), std::logic_error);
  EXPECT_THROW(
      streaming.attachBackend(std::make_shared<inference::HeuristicBackend>()),
      std::logic_error);
  // The early-attached backend kept predicting despite the failed swaps.
  ASSERT_FALSE(outputs.empty());
  EXPECT_TRUE(outputs[0].predictions.has(inference::QoeTarget::kFrameRate));
}

TEST(Streaming, EmptyStreamFinishIsNoop) {
  int calls = 0;
  StreamingIpUdpEstimator streaming(
      StreamingOptions{}, [&](const StreamingOutput&) { ++calls; });
  streaming.finish();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(streaming.emittedWindows(), 0);
}

// ------------------------------------------------------------ lookback ring

TEST(LookbackRing, ZeroCapacityThrows) {
  EXPECT_THROW(LookbackRing(0), std::invalid_argument);
}

TEST(LookbackRing, MostRecentMatchWins) {
  LookbackRing ring(4);
  ring.push(100, 7);
  ring.push(200, 8);
  ring.push(102, 9);
  EXPECT_EQ(ring.size(), 3u);
  // 101 is within delta 2 of both 100 (id 7) and 102 (id 9); Algorithm 1
  // takes the most recent.
  EXPECT_EQ(ring.matchMostRecent(101, 2), 9);
  EXPECT_EQ(ring.matchMostRecent(199, 2), 8);
  EXPECT_EQ(ring.matchMostRecent(500, 2), -1);
  // Exact boundary: diff == deltaMax matches.
  EXPECT_EQ(ring.matchMostRecent(98, 2), 7);
  EXPECT_EQ(ring.matchMostRecent(97, 2), -1);
}

TEST(LookbackRing, OldEntriesFallOffAfterWrap) {
  LookbackRing ring(2);
  ring.push(100, 0);
  ring.push(200, 1);
  ring.push(300, 2);  // evicts (100, 0)
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.matchMostRecent(100, 0), -1);
  EXPECT_EQ(ring.matchMostRecent(200, 0), 1);
  EXPECT_EQ(ring.matchMostRecent(300, 0), 2);
  // Most-recent-first across the wrap boundary: a fresh 200 beats id 1.
  ring.push(200, 3);
  EXPECT_EQ(ring.matchMostRecent(200, 0), 3);
}

TEST(LookbackRing, ClearForgetsEntriesButKeepsCapacity) {
  LookbackRing ring(3);
  ring.push(100, 1);
  ring.push(200, 2);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.matchMostRecent(100, 2), -1);
  // Reusable after clear: pushes and wrap behave like a fresh ring.
  for (std::uint64_t id = 7; id < 11; ++id) {
    ring.push(300 + static_cast<std::uint32_t>(id), id);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.matchMostRecent(310, 0), 10);
  EXPECT_EQ(ring.matchMostRecent(307, 0), -1);  // fell off
}

TEST(LookbackRing, CapacityEdgesMatchADequeModelAcrossTheVectorWidths) {
  // Regression for the forward-span rewrite of the old backward `i-- > lo`
  // scan: capacities straddling the 8/16-wide SIMD sweep (and the wrap
  // boundary inside each) must agree with a naive newest-first model at
  // every push, including the push that lands exactly on the capacity edge.
  for (const std::size_t capacity : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    LookbackRing ring(capacity);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> model;  // oldest first
    std::uint32_t seed = 12345;
    for (std::uint64_t id = 0; id < 2 * capacity + 3; ++id) {
      seed = seed * 1664525 + 1013904223;  // deterministic LCG sizes
      const std::uint32_t size = 900 + seed % 300;
      const std::uint32_t probe = 900 + (seed >> 16) % 300;
      std::int64_t expected = -1;
      for (const auto& [s, fid] : model) {  // later entries overwrite: newest wins
        const std::uint32_t diff = s > probe ? s - probe : probe - s;
        if (diff <= 30) expected = static_cast<std::int64_t>(fid);
      }
      EXPECT_EQ(ring.matchMostRecent(probe, 30), expected)
          << "capacity=" << capacity << " push=" << id;
      ring.push(size, id);
      model.emplace_back(size, id);
      if (model.size() > capacity) model.erase(model.begin());
    }
    EXPECT_EQ(ring.size(), capacity);
  }
}

TEST(LookbackRing, CapacityOneSeesOnlyThePreviousPacket) {
  LookbackRing ring(1);
  ring.push(1000, 4);
  EXPECT_EQ(ring.matchMostRecent(1000, 2), 4);
  ring.push(1200, 5);
  EXPECT_EQ(ring.matchMostRecent(1000, 2), -1);
  EXPECT_EQ(ring.matchMostRecent(1201, 2), 5);
}

TEST(HeuristicParams, EffectiveLookbackClampsToOne) {
  HeuristicParams params;
  params.lookback = 0;
  EXPECT_EQ(params.effectiveLookback(), 1);
  params.lookback = -5;
  EXPECT_EQ(params.effectiveLookback(), 1);
  params.lookback = 3;
  EXPECT_EQ(params.effectiveLookback(), 3);
}

TEST(Streaming, RejectsNonPositiveWindowAtConstruction) {
  StreamingOptions bad;
  bad.windowNs = 0;
  EXPECT_THROW(StreamingIpUdpEstimator(bad, [](const StreamingOutput&) {}),
               std::invalid_argument);
  bad.windowNs = -common::kNanosPerSecond;
  EXPECT_THROW(StreamingIpUdpEstimator(bad, [](const StreamingOutput&) {}),
               std::invalid_argument);
}

// --------------------------------------- columnar-layout equivalence (PR 5)

/// The pre-refactor streaming estimator, verbatim: deque lookback,
/// map/multimap frame bookkeeping, full-Packet window buffers, AoS feature
/// extraction. Kept here as the bit-exactness reference for the columnar
/// layout (the same pattern bench_engine_throughput uses for the node-tree
/// forest baseline).
class LegacyStreamingEstimator {
 public:
  using Callback = std::function<void(const StreamingOutput&)>;

  LegacyStreamingEstimator(StreamingOptions options, Callback callback)
      : options_(std::move(options)),
        callback_(std::move(callback)),
        classifier_(options_.classifier) {}

  void onPacket(const netflow::Packet& packet) {
    lastArrival_ = packet.arrivalNs;
    const auto window =
        common::windowIndex(packet.arrivalNs, options_.windowNs);
    if (window >= nextWindowToEmit_) windowPackets_[window].push_back(packet);
    if (classifier_.isVideo(packet)) {
      ingestVideoPacket(packet);
      closeStaleFrames();
    }
    emitReadyWindows(packet.arrivalNs);
  }

  void finish() {
    for (auto& [id, open] : openFrames_) {
      closedFrames_.emplace(open.frame.endNs, open.frame);
    }
    openFrames_.clear();
    emitReadyWindows(std::nullopt);
  }

 private:
  struct OpenFrame {
    HeuristicFrame frame;
    std::uint64_t lastTouchedPacket = 0;
  };

  void ingestVideoPacket(const netflow::Packet& packet) {
    const auto size = static_cast<std::int64_t>(packet.sizeBytes);
    std::int64_t matched = -1;
    for (const auto& [prevSize, frameId] : recent_) {
      const auto diff = std::llabs(size - static_cast<std::int64_t>(prevSize));
      if (diff <= static_cast<std::int64_t>(options_.heuristic.deltaMaxBytes)) {
        matched = static_cast<std::int64_t>(frameId);
        break;
      }
    }
    std::uint64_t frameId;
    if (matched < 0) {
      frameId = nextFrameId_++;
      OpenFrame open;
      open.frame.firstNs = packet.arrivalNs;
      open.frame.endNs = packet.arrivalNs;
      open.frame.bytes = packet.sizeBytes;
      open.frame.packetCount = 1;
      open.lastTouchedPacket = videoPacketIndex_;
      openFrames_.emplace(frameId, open);
    } else {
      frameId = static_cast<std::uint64_t>(matched);
      auto it = openFrames_.find(frameId);
      if (it != openFrames_.end()) {
        it->second.frame.endNs =
            std::max(it->second.frame.endNs, packet.arrivalNs);
        it->second.frame.firstNs =
            std::min(it->second.frame.firstNs, packet.arrivalNs);
        it->second.frame.bytes += packet.sizeBytes;
        ++it->second.frame.packetCount;
        it->second.lastTouchedPacket = videoPacketIndex_;
      }
    }
    recent_.emplace_front(packet.sizeBytes, frameId);
    const auto lookback =
        static_cast<std::size_t>(std::max(options_.heuristic.lookback, 1));
    while (recent_.size() > lookback) recent_.pop_back();
    ++videoPacketIndex_;
  }

  void closeStaleFrames() {
    const auto lookback =
        static_cast<std::uint64_t>(std::max(options_.heuristic.lookback, 1));
    for (auto it = openFrames_.begin(); it != openFrames_.end();) {
      if (videoPacketIndex_ - it->second.lastTouchedPacket > lookback) {
        closedFrames_.emplace(it->second.frame.endNs, it->second.frame);
        it = openFrames_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void emitReadyWindows(std::optional<common::TimeNs> now) {
    std::int64_t lastWindow = nextWindowToEmit_ - 1;
    if (!windowPackets_.empty()) {
      lastWindow = std::max(lastWindow, windowPackets_.rbegin()->first);
    }
    if (!closedFrames_.empty()) {
      lastWindow = std::max(lastWindow,
                            common::windowIndex(closedFrames_.rbegin()->first,
                                                options_.windowNs));
    }
    while (nextWindowToEmit_ <= lastWindow) {
      const std::int64_t w = nextWindowToEmit_;
      const common::TimeNs windowEnd = (w + 1) * options_.windowNs;
      if (now.has_value()) {
        if (*now < windowEnd) break;
        bool blocked = false;
        for (const auto& [id, open] : openFrames_) {
          if (open.frame.endNs < windowEnd) {
            blocked = true;
            break;
          }
        }
        if (blocked) break;
      }
      StreamingOutput out;
      out.window = w;
      const double seconds = common::nsToSeconds(options_.windowNs);
      std::vector<double> gaps;
      auto it = closedFrames_.begin();
      while (it != closedFrames_.end() && it->first < windowEnd) {
        const HeuristicFrame& frame = it->second;
        ++out.heuristic.frameCount;
        out.heuristic.bitrateKbps +=
            (static_cast<double>(frame.bytes) -
             12.0 * static_cast<double>(frame.packetCount)) *
            8.0 / seconds / 1e3;
        if (lastEmittedFrameEnd_ >= 0) {
          gaps.push_back(
              common::nsToMillis(frame.endNs - lastEmittedFrameEnd_));
        }
        lastEmittedFrameEnd_ = frame.endNs;
        it = closedFrames_.erase(it);
      }
      out.heuristic.window = w;
      out.heuristic.fps =
          static_cast<double>(out.heuristic.frameCount) / seconds;
      out.heuristic.frameJitterMs =
          gaps.size() >= 2 ? common::sampleStdev(gaps) : 0.0;

      features::Window window;
      window.index = w;
      window.startNs = w * options_.windowNs;
      window.durationNs = options_.windowNs;
      const auto bufferIt = windowPackets_.find(w);
      static const std::vector<netflow::Packet> kEmpty;
      window.packets =
          bufferIt != windowPackets_.end() ? bufferIt->second : kEmpty;
      const auto video = classifier_.filterVideo(window.packets);
      out.features = features::extractFeatures(
          window, video, features::FeatureSet::kIpUdp, options_.extraction);
      callback_(out);
      if (bufferIt != windowPackets_.end()) windowPackets_.erase(bufferIt);
      ++nextWindowToEmit_;
    }
  }

  StreamingOptions options_;
  Callback callback_;
  MediaClassifier classifier_;
  common::TimeNs lastArrival_ = -1;
  std::deque<std::pair<std::uint32_t, std::uint64_t>> recent_;
  std::map<std::uint64_t, OpenFrame> openFrames_;
  std::uint64_t nextFrameId_ = 0;
  std::uint64_t videoPacketIndex_ = 0;
  std::multimap<common::TimeNs, HeuristicFrame> closedFrames_;
  common::TimeNs lastEmittedFrameEnd_ = -1;
  std::map<std::int64_t, std::vector<netflow::Packet>> windowPackets_;
  std::int64_t nextWindowToEmit_ = 0;
};

/// Random VCA-shaped stream: frames of similar-sized packets, sub-V_min
/// audio sprinkled in, silences producing empty windows, single-packet
/// frames, and (when `rtx`) late duplicates of earlier frame sizes that
/// exercise deep lookback matches. Arrivals strictly increase.
netflow::PacketTrace randomStream(common::Rng& rng, bool rtx, int frames) {
  netflow::PacketTrace trace;
  common::TimeNs t = rng.uniformInt(0, 5'000'000);
  std::vector<std::uint32_t> frameSizes;
  for (int f = 0; f < frames; ++f) {
    if (rng.bernoulli(0.05)) {
      // Stalled call: one to four whole windows with no packet at all.
      t += rng.uniformInt(1, 4) * common::kNanosPerSecond;
    }
    const auto base = static_cast<std::uint32_t>(rng.uniformInt(500, 1400));
    const int packets = static_cast<int>(rng.uniformInt(1, 6));
    for (int p = 0; p < packets; ++p) {
      t += rng.uniformInt(50'000, 2'000'000);
      netflow::Packet pkt;
      pkt.arrivalNs = t;
      pkt.sizeBytes = base + static_cast<std::uint32_t>(rng.uniformInt(0, 2));
      trace.push_back(pkt);
    }
    frameSizes.push_back(base);
    if (rng.bernoulli(0.3)) {
      t += rng.uniformInt(50'000, 1'000'000);
      netflow::Packet pkt;
      pkt.arrivalNs = t;
      pkt.sizeBytes = static_cast<std::uint32_t>(rng.uniformInt(80, 380));
      trace.push_back(pkt);
    }
    if (rtx && frameSizes.size() > 4 && rng.bernoulli(0.25)) {
      // Retransmission-shaped: an old frame's size shows up again late.
      t += rng.uniformInt(100'000, 3'000'000);
      netflow::Packet pkt;
      pkt.arrivalNs = t;
      pkt.sizeBytes =
          frameSizes[frameSizes.size() - 2 -
                     static_cast<std::size_t>(rng.uniformInt(0, 2))];
      trace.push_back(pkt);
    }
    t += rng.uniformInt(5'000'000, 40'000'000);
  }
  return trace;
}

std::vector<StreamingOutput> runStreaming(const netflow::PacketTrace& trace,
                                          const StreamingOptions& options) {
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      options, [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : trace) streaming.onPacket(pkt);
  streaming.finish();
  return outputs;
}

/// The tentpole acceptance property: across lookbacks, window sizes, and
/// RTX-like traffic, the columnar estimator is bit-identical to the
/// node-based pre-refactor implementation and matches the seed batch path.
TEST(StreamingColumnarEquivalence, RandomizedAcrossLookbacksAndWindows) {
  for (const int lookback : {1, 4, 32}) {
    for (const common::DurationNs windowNs :
         {common::kNanosPerSecond / 2, common::kNanosPerSecond,
          2 * common::kNanosPerSecond}) {
      for (const bool rtx : {false, true}) {
        SCOPED_TRACE("lookback=" + std::to_string(lookback) +
                     " windowNs=" + std::to_string(windowNs) +
                     " rtx=" + std::to_string(rtx));
        common::Rng rng(0x5EEDu ^
                        (static_cast<std::uint64_t>(lookback) * 1000003u) ^
                        (static_cast<std::uint64_t>(windowNs) >> 8) ^
                        (rtx ? 1u : 0u));
        const auto trace = randomStream(rng, rtx, 120);
        ASSERT_FALSE(trace.empty());

        StreamingOptions options;
        options.windowNs = windowNs;
        options.heuristic.lookback = lookback;

        const auto outputs = runStreaming(trace, options);

        // (a) Bit-identical to the pre-refactor node-based layout.
        std::vector<StreamingOutput> legacy;
        LegacyStreamingEstimator legacyEstimator(
            options,
            [&](const StreamingOutput& out) { legacy.push_back(out); });
        for (const auto& pkt : trace) legacyEstimator.onPacket(pkt);
        legacyEstimator.finish();

        ASSERT_EQ(outputs.size(), legacy.size());
        for (std::size_t w = 0; w < outputs.size(); ++w) {
          EXPECT_EQ(outputs[w].window, legacy[w].window);
          EXPECT_EQ(outputs[w].features, legacy[w].features);
          EXPECT_EQ(outputs[w].heuristic.fps, legacy[w].heuristic.fps);
          EXPECT_EQ(outputs[w].heuristic.bitrateKbps,
                    legacy[w].heuristic.bitrateKbps);
          EXPECT_EQ(outputs[w].heuristic.frameJitterMs,
                    legacy[w].heuristic.frameJitterMs);
          EXPECT_EQ(outputs[w].heuristic.frameCount,
                    legacy[w].heuristic.frameCount);
        }

        // (b) Matches the seed batch path (heuristic + features).
        const MediaClassifier classifier(options.classifier);
        const auto video = classifier.filterVideo(trace);
        const auto assembly = assembleFramesIpUdp(video, options.heuristic);
        const auto timeline =
            qoeFromFrames(assembly.frames, windowNs,
                          static_cast<std::int64_t>(outputs.size()));
        const auto windows = features::sliceWindows(trace, windowNs);
        ASSERT_EQ(windows.size(), outputs.size());
        for (std::size_t w = 0; w < outputs.size(); ++w) {
          const auto windowVideo = classifier.filterVideo(windows[w].packets);
          const auto batchFeatures = features::extractFeatures(
              windows[w], windowVideo, features::FeatureSet::kIpUdp,
              options.extraction);
          EXPECT_EQ(outputs[w].features, batchFeatures) << "window " << w;
          EXPECT_EQ(outputs[w].heuristic.frameCount, timeline[w].frameCount)
              << "window " << w;
          EXPECT_DOUBLE_EQ(outputs[w].heuristic.fps, timeline[w].fps)
              << "window " << w;
          EXPECT_NEAR(outputs[w].heuristic.bitrateKbps,
                      timeline[w].bitrateKbps, 1e-6)
              << "window " << w;
          EXPECT_NEAR(outputs[w].heuristic.frameJitterMs,
                      timeline[w].frameJitterMs, 1e-6)
              << "window " << w;
        }
      }
    }
  }
}

TEST(StreamingColumnarEquivalence, SinglePacketStream) {
  StreamingOptions options;
  netflow::Packet pkt;
  pkt.arrivalNs = 250'000'000;
  pkt.sizeBytes = 1100;
  const netflow::PacketTrace trace = {pkt};
  const auto outputs = runStreaming(trace, options);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].window, 0);
  EXPECT_EQ(outputs[0].heuristic.frameCount, 1u);
  EXPECT_DOUBLE_EQ(outputs[0].heuristic.fps, 1.0);
  // Features equal the batch extraction of the same single-packet window.
  const auto windows = features::sliceWindows(trace, options.windowNs);
  ASSERT_EQ(windows.size(), 1u);
  const MediaClassifier classifier(options.classifier);
  const auto video = classifier.filterVideo(windows[0].packets);
  EXPECT_EQ(outputs[0].features,
            features::extractFeatures(windows[0], video,
                                      features::FeatureSet::kIpUdp,
                                      options.extraction));
}

TEST(StreamingColumnarEquivalence, TrailingAudioOnlyWindowsStillEmit) {
  // Sub-V_min packets carry no features but still define prediction
  // intervals: the trailing windows they occupy must emit (empty-video),
  // exactly as the packet-buffering layout did.
  StreamingOptions options;
  netflow::PacketTrace trace;
  netflow::Packet video;
  video.arrivalNs = 100'000'000;
  video.sizeBytes = 1200;
  trace.push_back(video);
  netflow::Packet audio;
  audio.arrivalNs = 5 * common::kNanosPerSecond + 1;
  audio.sizeBytes = 120;  // below V_min
  trace.push_back(audio);
  const auto outputs = runStreaming(trace, options);
  ASSERT_EQ(outputs.size(), 6u);  // windows 0..5
  for (std::size_t w = 1; w < outputs.size(); ++w) {
    EXPECT_EQ(outputs[w].heuristic.frameCount, 0u);
  }
}

// ------------------------------------------------ kRtp feature set (PR 7)

StreamingOptions rtpOptionsFor(const simcall::VcaProfile& profile) {
  StreamingOptions options;
  options.featureSet = features::FeatureSet::kRtp;
  options.heuristic = defaultHeuristicParams(profile.name);
  options.extraction.videoPt = profile.videoPt;
  options.extraction.rtxPt = profile.rtxPt;
  return options;
}

/// Payload-type video filter, exactly the offline session pipeline's rule.
netflow::PacketTrace filterVideoByPt(std::span<const netflow::Packet> packets,
                                     std::uint8_t videoPt) {
  netflow::PacketTrace video;
  for (const auto& pkt : packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (header && header->payloadType == videoPt) video.push_back(pkt);
  }
  return video;
}

/// Streaming kRtp vs the offline session pipeline: features must be
/// bit-exact against `buildWindowRecords`' rtpFeatures, and the Algorithm-1
/// heuristic — unchanged machinery, PT-based classification — must match
/// the batch assembly over the PT-filtered trace. The deployment axis
/// covers RTX on (lab profiles carry a distinct rtxPt) and RTX off (the
/// real-world Webex profile has rtxPt == 0).
class StreamingRtpParity
    : public ::testing::TestWithParam<
          std::tuple<std::string, int, datasets::Deployment>> {};

TEST_P(StreamingRtpParity, MatchesOfflineSessionPipeline) {
  const auto [vca, seed, deployment] = GetParam();
  const auto session =
      makeSession(vca, static_cast<std::uint64_t>(seed), 30.0, deployment);

  // The RTX-off axis is real: real-world Webex advertises no RTX stream.
  if (vca == "webex" && deployment == datasets::Deployment::kRealWorld) {
    ASSERT_EQ(session.profile.rtxPt, 0);
  }

  const auto records = buildWindowRecords(session);
  const auto options = rtpOptionsFor(session.profile);
  const auto outputs = runStreaming(session.packets, options);

  const std::size_t n = std::min(outputs.size(), records.size());
  ASSERT_GT(n, 20u);

  // Heuristic reference: Algorithm 1 over the PT-classified video stream.
  const auto video = filterVideoByPt(session.packets, session.profile.videoPt);
  ASSERT_FALSE(video.empty());
  const auto assembly = assembleFramesIpUdp(video, options.heuristic);
  const auto timeline =
      qoeFromFrames(assembly.frames, options.windowNs,
                    static_cast<std::int64_t>(outputs.size()));

  for (std::size_t w = 0; w < n; ++w) {
    ASSERT_EQ(outputs[w].window, records[w].window);
    ASSERT_EQ(outputs[w].features.size(),
              features::featureCount(features::FeatureSet::kRtp));
    EXPECT_EQ(outputs[w].features, records[w].rtpFeatures)
        << vca << " window " << w;
    EXPECT_EQ(outputs[w].heuristic.frameCount, timeline[w].frameCount)
        << vca << " window " << w;
    EXPECT_DOUBLE_EQ(outputs[w].heuristic.fps, timeline[w].fps)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.bitrateKbps, timeline[w].bitrateKbps,
                1e-6)
        << vca << " window " << w;
    EXPECT_NEAR(outputs[w].heuristic.frameJitterMs, timeline[w].frameJitterMs,
                1e-6)
        << vca << " window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VcasSeedsDeployments, StreamingRtpParity,
    ::testing::Combine(::testing::Values("meet", "teams", "webex"),
                       ::testing::Values(17, 28),
                       ::testing::Values(datasets::Deployment::kLab,
                                         datasets::Deployment::kRealWorld)));

/// Sequence-number wraparound: a video stream whose 16-bit sequence counter
/// wraps mid-trace must produce windows bit-exact with the batch extraction
/// of the same trace (the RTP loss features straddle the wrap).
TEST(StreamingRtpParity, SequenceWraparoundWindowsBitExact) {
  const auto trace = engine::syntheticRtpFlowTrace(
      91, 600, /*startNs=*/0, /*videoSeqStart=*/65500);

  // The wrap actually happened: some video packet carries a low sequence
  // number again.
  bool wrapped = false;
  for (const auto& pkt : trace) {
    const auto header = rtp::decode(pkt.headBytes());
    if (header && header->payloadType == engine::kSyntheticVideoPt &&
        header->sequenceNumber < 100) {
      wrapped = true;
      break;
    }
  }
  ASSERT_TRUE(wrapped);

  StreamingOptions options;
  options.featureSet = features::FeatureSet::kRtp;
  options.extraction.videoPt = engine::kSyntheticVideoPt;
  options.extraction.rtxPt = engine::kSyntheticRtxPt;
  const auto outputs = runStreaming(trace, options);
  ASSERT_FALSE(outputs.empty());

  const auto windows = features::sliceWindows(trace, options.windowNs);
  ASSERT_EQ(windows.size(), outputs.size());
  for (std::size_t w = 0; w < outputs.size(); ++w) {
    const auto video =
        filterVideoByPt(windows[w].packets, engine::kSyntheticVideoPt);
    const auto batch =
        features::extractFeatures(windows[w], video, features::FeatureSet::kRtp,
                                  options.extraction);
    EXPECT_EQ(outputs[w].features, batch) << "window " << w;
  }
}

/// RTX on/off over the synthetic RTP source: declaring the RTX payload type
/// vs declaring none (rtxPt = 0) must change the RTX-aware features and
/// both must stay bit-exact with their batch extractions.
TEST(StreamingRtpParity, RtxDeclarationTogglesRtxFeatures) {
  const auto trace = engine::syntheticRtpFlowTrace(12, 800, /*startNs=*/0);

  StreamingOptions rtxOn;
  rtxOn.featureSet = features::FeatureSet::kRtp;
  rtxOn.extraction.videoPt = engine::kSyntheticVideoPt;
  rtxOn.extraction.rtxPt = engine::kSyntheticRtxPt;
  StreamingOptions rtxOff = rtxOn;
  rtxOff.extraction.rtxPt = 0;

  const auto onOutputs = runStreaming(trace, rtxOn);
  const auto offOutputs = runStreaming(trace, rtxOff);
  ASSERT_EQ(onOutputs.size(), offOutputs.size());
  ASSERT_FALSE(onOutputs.empty());

  const auto windows = features::sliceWindows(trace, rtxOn.windowNs);
  ASSERT_EQ(windows.size(), onOutputs.size());
  bool differed = false;
  for (std::size_t w = 0; w < onOutputs.size(); ++w) {
    const auto video =
        filterVideoByPt(windows[w].packets, engine::kSyntheticVideoPt);
    EXPECT_EQ(onOutputs[w].features,
              features::extractFeatures(windows[w], video,
                                        features::FeatureSet::kRtp,
                                        rtxOn.extraction))
        << "window " << w;
    EXPECT_EQ(offOutputs[w].features,
              features::extractFeatures(windows[w], video,
                                        features::FeatureSet::kRtp,
                                        rtxOff.extraction))
        << "window " << w;
    differed = differed || onOutputs[w].features != offOutputs[w].features;
  }
  // The synthetic source does emit RTX packets, so the declaration matters.
  EXPECT_TRUE(differed);
}

TEST(Streaming, LargerWindowSizes) {
  const auto session = makeSession("webex", 55);
  StreamingOptions options = optionsFor("webex");
  options.windowNs = 2 * common::kNanosPerSecond;
  std::vector<StreamingOutput> outputs;
  StreamingIpUdpEstimator streaming(
      options, [&](const StreamingOutput& out) { outputs.push_back(out); });
  for (const auto& pkt : session.packets) streaming.onPacket(pkt);
  streaming.finish();
  ASSERT_GE(outputs.size(), 14u);
  // fps is per second even with W=2.
  double meanFps = 0.0;
  for (const auto& out : outputs) meanFps += out.heuristic.fps;
  meanFps /= static_cast<double>(outputs.size());
  EXPECT_GT(meanFps, 15.0);
  EXPECT_LT(meanFps, 40.0);
}

}  // namespace
}  // namespace vcaqoe::core
