#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"
#include "rtp/rtp.hpp"
#include "simcall/call_simulator.hpp"
#include "simcall/encoder.hpp"
#include "simcall/packetizer.hpp"
#include "simcall/profile.hpp"

namespace vcaqoe::simcall {
namespace {

VcaProfile equalProfile() {
  auto p = datasets::teamsProfile(datasets::Deployment::kLab);
  return p;
}

// ---------------------------------------------------------------- ladder

TEST(Profile, RungForBitratePicksHighestAffordable) {
  const auto p = datasets::teamsProfile(datasets::Deployment::kLab);
  EXPECT_EQ(rungForBitrate(p, 50.0).frameHeight, 90);
  EXPECT_EQ(rungForBitrate(p, 500.0).frameHeight, 270);
  EXPECT_EQ(rungForBitrate(p, 2'500.0).frameHeight, 720);
}

TEST(Profile, RungRespectsHeightCap) {
  auto p = datasets::meetProfile(datasets::Deployment::kLab);
  ASSERT_EQ(p.maxFrameHeight, 360);
  EXPECT_EQ(rungForBitrate(p, 10'000.0).frameHeight, 360);
}

TEST(Profile, RungThrowsOnEmptyLadder) {
  VcaProfile p;
  EXPECT_THROW(rungForBitrate(p, 100.0), std::invalid_argument);
}

// ------------------------------------------------------------- packetizer

TEST(Packetizer, SingleSmallFrameOnePacket) {
  common::Rng rng(1);
  const auto sizes = packetizeFrame(equalProfile(), 800, rng);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 800u);
}

TEST(Packetizer, EqualFragmentationPreservesTotal) {
  common::Rng rng(1);
  const auto sizes = packetizeFrame(equalProfile(), 5'000, rng);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 5'000u);
}

TEST(Packetizer, EqualFragmentationMaxDiffOneByte) {
  common::Rng rng(1);
  for (const std::uint32_t frame : {2'000u, 4'999u, 10'000u, 23'456u}) {
    const auto sizes = packetizeFrame(equalProfile(), frame, rng);
    const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*mx - *mn, 1u) << frame;
  }
}

TEST(Packetizer, RespectsMtu) {
  common::Rng rng(1);
  const auto profile = equalProfile();
  const auto sizes = packetizeFrame(profile, 50'000, rng);
  for (const auto s : sizes) EXPECT_LE(s, profile.mtuPayloadBytes);
}

TEST(Packetizer, UnequalProbZeroWhenDisabled) {
  EXPECT_DOUBLE_EQ(unequalFragmentationProb(equalProfile(), 100'000), 0.0);
}

TEST(Packetizer, UnequalProbGrowsWithFrameSize) {
  const auto meet = datasets::meetProfile(datasets::Deployment::kLab);
  const double small = unequalFragmentationProb(meet, 3'000);
  const double large = unequalFragmentationProb(meet, 15'000);
  EXPECT_GT(large, small);
  EXPECT_LE(large, 1.0);
}

TEST(Packetizer, MeetCalibrationNearPaperRates) {
  // ≈4% at lab-scale frames (5 kB), ≈14% at real-world frames (13-15 kB).
  const auto meet = datasets::meetProfile(datasets::Deployment::kLab);
  EXPECT_NEAR(unequalFragmentationProb(meet, 5'000), 0.0426, 0.02);
  EXPECT_NEAR(unequalFragmentationProb(meet, 14'000), 0.1448, 0.06);
}

TEST(Packetizer, UnequalModeKeepsMostPacketsEqual) {
  auto meet = datasets::meetProfile(datasets::Deployment::kLab);
  meet.unequalBaseProb = 1e9;  // force unequal on every frame
  common::Rng rng(3);
  int deviating = 0;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto sizes = packetizeFrame(meet, 9'000, rng);
    std::map<std::uint32_t, int> histogram;
    for (const auto s : sizes) ++histogram[s];
    // The two equal-split sizes dominate; count packets far from the mode.
    std::uint32_t mode = 0;
    int best = 0;
    for (const auto& [size, count] : histogram) {
      if (count > best) {
        best = count;
        mode = size;
      }
    }
    for (const auto s : sizes) {
      ++total;
      if (s + 2 < mode || s > mode + 2) ++deviating;
    }
  }
  EXPECT_GT(deviating, 0);
  EXPECT_LT(static_cast<double>(deviating) / total, 0.45);
}

// ------------------------------------------------------------ rate control

TEST(RateController, IncreasesWhenClean) {
  const auto p = equalProfile();
  RateController rc(p);
  const double before = rc.targetKbps();
  rc.onFeedback(0.0, 10'000.0, 0.0);
  EXPECT_GT(rc.targetKbps(), before);
}

TEST(RateController, DecreasesOnHeavyLoss) {
  const auto p = equalProfile();
  RateController rc(p);
  rc.onFeedback(0.0, 10'000.0, 0.0);
  const double before = rc.targetKbps();
  rc.onFeedback(0.3, 10'000.0, 0.0);
  EXPECT_LT(rc.targetKbps(), before);
}

TEST(RateController, BacksOffUnderQueueDelay) {
  const auto p = equalProfile();
  RateController rc(p);
  for (int i = 0; i < 20; ++i) rc.onFeedback(0.0, 10'000.0, 0.0);
  const double before = rc.targetKbps();
  rc.onFeedback(0.0, 500.0, 200.0);
  EXPECT_LT(rc.targetKbps(), before);
  EXPECT_LE(rc.targetKbps(), 0.85 * 500.0 + 1e-9);
}

TEST(RateController, ClampsToProfileBounds) {
  const auto p = equalProfile();
  RateController rc(p);
  for (int i = 0; i < 200; ++i) rc.onFeedback(0.0, 1e9, 0.0);
  EXPECT_DOUBLE_EQ(rc.targetKbps(), p.maxTargetKbps);
  for (int i = 0; i < 200; ++i) rc.onFeedback(0.5, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(rc.targetKbps(), p.minTargetKbps);
}

TEST(RateController, HoldsInModerateLossBand) {
  const auto p = equalProfile();
  RateController rc(p);
  const double before = rc.targetKbps();
  rc.onFeedback(0.05, 10'000.0, 0.0);  // 2% < loss <= 10%, no queue
  EXPECT_DOUBLE_EQ(rc.targetKbps(), before);
}

// ---------------------------------------------------------------- encoder

TEST(Encoder, FullFpsAtComfortableBitrate) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(1));
  for (int i = 0; i < 100; ++i) {
    enc.encodeFrame(i * common::millisToNs(33.0), 1'500.0);
  }
  EXPECT_NEAR(enc.currentFps(), p.maxFps, 0.5);
}

TEST(Encoder, FpsDegradesAtLowBitrate) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(1));
  for (int i = 0; i < 200; ++i) {
    enc.encodeFrame(i * common::millisToNs(100.0), 90.0);
  }
  EXPECT_LT(enc.currentFps(), 15.0);
  EXPECT_GE(enc.currentFps(), kMinVideoFps - 0.5);
}

TEST(Encoder, FrameSizesTrackTarget) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(2));
  const double target = 1'200.0;
  double bytes = 0.0;
  const int frames = 3'000;
  int keyframes = 0;
  for (int i = 0; i < frames; ++i) {
    const auto spec = enc.encodeFrame(i * common::millisToNs(33.33), target);
    if (spec.keyframe) {
      ++keyframes;
      continue;  // exclude keyframe inflation from the mean check
    }
    bytes += spec.sizeBytes;
  }
  const double meanBytes = bytes / (frames - keyframes);
  const double idealBytes = target * 1e3 / 8.0 / 30.0 * (1 + p.fecOverhead);
  EXPECT_NEAR(meanBytes, idealBytes, idealBytes * 0.15);
}

TEST(Encoder, KeyframesPeriodicAndLarger) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(3));
  int keyframes = 0;
  double keyBytes = 0.0;
  double deltaBytes = 0.0;
  int deltas = 0;
  const int frames = 30 * 35;  // 35 seconds at 30 fps
  for (int i = 0; i < frames; ++i) {
    const auto spec = enc.encodeFrame(i * common::millisToNs(33.33), 1'000.0);
    if (spec.keyframe) {
      ++keyframes;
      keyBytes += spec.sizeBytes;
    } else {
      deltaBytes += spec.sizeBytes;
      ++deltas;
    }
  }
  // t=0 plus every 10 s, plus a few resolution-switch keyframes during the
  // initial ladder climb.
  EXPECT_GE(keyframes, 4);
  EXPECT_LE(keyframes, 12);
  EXPECT_GT(keyBytes / keyframes, 2.0 * deltaBytes / deltas);
}

TEST(Encoder, ResolutionFollowsBitrateWithHysteresis) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(4));
  common::TimeNs t = 0;
  // Low bitrate: low rung.
  for (int i = 0; i < 60; ++i) {
    enc.encodeFrame(t, 150.0);
    t += common::millisToNs(33.0);
  }
  const int lowHeight = enc.currentFrameHeight();
  EXPECT_LE(lowHeight, 180);
  // Jump to high bitrate: the ladder is climbed one rung per hold period.
  enc.encodeFrame(t, 2'600.0);
  EXPECT_EQ(enc.currentFrameHeight(), lowHeight);
  for (int i = 0; i < 450; ++i) {  // ~15 s: enough for the stepwise climb
    t += common::millisToNs(33.0);
    enc.encodeFrame(t, 2'600.0);
  }
  EXPECT_GE(enc.currentFrameHeight(), 480);
  // Crash in bitrate: immediate downswitch.
  t += common::millisToNs(33.0);
  enc.encodeFrame(t, 100.0);
  EXPECT_LE(enc.currentFrameHeight(), 120);
}

TEST(Encoder, MinFrameBytesEnforced) {
  const auto p = equalProfile();
  VideoEncoderModel enc(p, common::Rng(5));
  for (int i = 0; i < 300; ++i) {
    const auto spec = enc.encodeFrame(i * common::millisToNs(200.0), 80.0);
    EXPECT_GE(spec.sizeBytes, p.minFrameBytes);
  }
}

TEST(Encoder, QuantizationApplied) {
  auto p = datasets::webexProfile(datasets::Deployment::kLab);
  ASSERT_EQ(p.frameSizeQuantumBytes, 32u);
  VideoEncoderModel enc(p, common::Rng(6));
  for (int i = 0; i < 200; ++i) {
    const auto spec = enc.encodeFrame(i * common::millisToNs(33.0), 600.0);
    EXPECT_EQ(spec.sizeBytes % 32, 0u) << spec.sizeBytes;
  }
}

// ------------------------------------------------------------- simulator

netem::ConditionSchedule goodNetwork(std::size_t seconds = 30) {
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  c.jitterMs = 0.5;
  return netem::ConditionSchedule::constant(c, seconds);
}

TEST(CallSimulator, ProducesSortedTrace) {
  CallSimulator sim(equalProfile(), goodNetwork(), 77);
  const auto result = sim.run(20.0);
  EXPECT_GT(result.packets.size(), 1000u);
  EXPECT_TRUE(netflow::isArrivalOrdered(result.packets));
}

TEST(CallSimulator, StreamsHaveConsistentHeaders) {
  const auto profile = equalProfile();
  CallSimulator sim(profile, goodNetwork(), 77);
  const auto result = sim.run(20.0);

  std::set<std::uint8_t> payloadTypes;
  std::map<std::uint32_t, std::uint16_t> lastSeqBySsrc;
  int nonRtp = 0;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header) {
      ++nonRtp;
      continue;
    }
    payloadTypes.insert(header->payloadType);
  }
  EXPECT_GT(nonRtp, 0);  // DTLS + STUN present
  EXPECT_TRUE(payloadTypes.count(profile.audioPt));
  EXPECT_TRUE(payloadTypes.count(profile.videoPt));
}

TEST(CallSimulator, AudioSizesWithinPaperBand) {
  const auto profile = equalProfile();
  CallSimulator sim(profile, goodNetwork(), 78);
  const auto result = sim.run(15.0);
  int audio = 0;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != profile.audioPt) continue;
    ++audio;
    EXPECT_GE(pkt.sizeBytes, profile.audioMinBytes);
    EXPECT_LE(pkt.sizeBytes, profile.audioMaxBytes);
  }
  // OPUS DTX: far fewer than the 750 packets full 20 ms ptime would give,
  // but comfort noise keeps the stream alive.
  EXPECT_GT(audio, 20);
  EXPECT_LT(audio, 700);
}

TEST(CallSimulator, RtxKeepalivesAreExactly304Bytes) {
  const auto profile = equalProfile();
  CallSimulator sim(profile, goodNetwork(), 79);
  const auto result = sim.run(15.0);
  int keepalives = 0;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != profile.rtxPt) continue;
    if (pkt.sizeBytes == profile.rtxKeepaliveBytes) ++keepalives;
  }
  EXPECT_GE(keepalives, 10);  // ~one per second
}

TEST(CallSimulator, FrameTableMatchesVideoPackets) {
  const auto profile = equalProfile();
  CallSimulator sim(profile, goodNetwork(), 80);
  const auto result = sim.run(10.0);

  std::map<std::uint32_t, int> packetsPerTs;
  std::map<std::uint32_t, bool> markerPerTs;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != profile.videoPt) continue;
    ++packetsPerTs[header->timestamp];
    if (header->marker) markerPerTs[header->timestamp] = true;
  }

  // Every sent frame appears in the trace with the right packet count (no
  // loss on this clean link) and exactly one marker.
  int checked = 0;
  for (const auto& frame : result.sentFrames) {
    const auto it = packetsPerTs.find(frame.rtpTimestamp);
    ASSERT_NE(it, packetsPerTs.end()) << frame.rtpTimestamp;
    EXPECT_EQ(it->second, frame.packetCount);
    EXPECT_TRUE(markerPerTs[frame.rtpTimestamp]);
    ++checked;
  }
  EXPECT_GT(checked, 250);  // ~30 fps for 10 s
}

TEST(CallSimulator, VideoSequenceNumbersMonotonicAtSender) {
  const auto profile = equalProfile();
  CallSimulator sim(profile, goodNetwork(), 81);
  const auto result = sim.run(10.0);
  // Sort by departure to recover sender order.
  auto packets = result.packets;
  std::sort(packets.begin(), packets.end(),
            [](const netflow::Packet& a, const netflow::Packet& b) {
              return a.departureNs < b.departureNs;
            });
  int last = -1;
  for (const auto& pkt : packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != profile.videoPt) continue;
    if (last >= 0) {
      EXPECT_EQ(rtp::sequenceDistance(static_cast<std::uint16_t>(last),
                                      header->sequenceNumber),
                1);
    }
    last = header->sequenceNumber;
  }
}

TEST(CallSimulator, LossTriggersRtxRetransmissions) {
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  c.lossRate = 0.10;
  const auto profile = equalProfile();
  CallSimulator sim(profile,
                    netem::ConditionSchedule::constant(c, 30), 82);
  const auto result = sim.run(20.0);
  int rtxMedia = 0;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header || header->payloadType != profile.rtxPt) continue;
    if (pkt.sizeBytes != profile.rtxKeepaliveBytes) ++rtxMedia;
  }
  EXPECT_GT(rtxMedia, 50);
}

TEST(CallSimulator, NoRtxStreamWhenProfileDisablesIt) {
  const auto profile = datasets::webexProfile(datasets::Deployment::kRealWorld);
  ASSERT_EQ(profile.rtxPt, 0);
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.lossRate = 0.05;
  CallSimulator sim(profile, netem::ConditionSchedule::constant(c, 20), 83);
  const auto result = sim.run(15.0);
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (!header) continue;
    EXPECT_TRUE(header->payloadType == profile.audioPt ||
                header->payloadType == profile.videoPt);
  }
}

TEST(CallSimulator, DeterministicPerSeed) {
  CallSimulator a(equalProfile(), goodNetwork(), 99);
  CallSimulator b(equalProfile(), goodNetwork(), 99);
  const auto ra = a.run(8.0);
  const auto rb = b.run(8.0);
  ASSERT_EQ(ra.packets.size(), rb.packets.size());
  for (std::size_t i = 0; i < ra.packets.size(); ++i) {
    EXPECT_EQ(ra.packets[i].arrivalNs, rb.packets[i].arrivalNs);
    EXPECT_EQ(ra.packets[i].sizeBytes, rb.packets[i].sizeBytes);
  }
  ASSERT_EQ(ra.sentFrames.size(), rb.sentFrames.size());
}

TEST(CallSimulator, BitrateAdaptsToBottleneck) {
  // 500 kbps bottleneck: realized video bitrate must settle well below the
  // profile max.
  netem::SecondCondition c;
  c.throughputKbps = 500.0;
  c.delayMs = 20.0;
  const auto profile = equalProfile();
  CallSimulator sim(profile, netem::ConditionSchedule::constant(c, 40), 84);
  const auto result = sim.run(30.0);
  double lateBytes = 0.0;
  for (const auto& frame : result.sentFrames) {
    if (common::nsToSeconds(frame.captureNs) >= 15.0) {
      lateBytes += frame.payloadBytes;
    }
  }
  const double lateKbps = lateBytes * 8.0 / 15.0 / 1e3;
  EXPECT_LT(lateKbps, 700.0);
}

// Property sweep over all six profile variants: basic invariants hold.
class ProfileInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ProfileInvariants, SimulationSane) {
  const auto [name, deployment] = GetParam();
  const auto profile = datasets::profileByName(
      name, static_cast<datasets::Deployment>(deployment));
  CallSimulator sim(profile, goodNetwork(), 7);
  const auto result = sim.run(12.0);
  EXPECT_TRUE(netflow::isArrivalOrdered(result.packets));
  EXPECT_GT(result.sentFrames.size(), 200u);
  for (const auto& frame : result.sentFrames) {
    EXPECT_GT(frame.packetCount, 0);
    EXPECT_GE(frame.payloadBytes, profile.minFrameBytes);
    EXPECT_GT(frame.frameHeight, 0);
    EXPECT_LE(frame.frameHeight, profile.maxFrameHeight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileInvariants,
    ::testing::Combine(::testing::Values("meet", "teams", "webex"),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace vcaqoe::simcall
