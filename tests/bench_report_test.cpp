// The persisted-bench-trajectory contract: BenchReport documents must be
// parseable by the strict JSON reader and carry the schema the checked-in
// BENCH_*.json files and CI's bench_schema_check promise; the env knob
// parsers must never turn garbage into a silent zero; the latency probe
// must sample what its definition says.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_report.hpp"
#include "common/json_writer.hpp"

namespace vcaqoe::bench {
namespace {

using common::JsonValue;

/// setenv/unsetenv scope guard so a failing assertion cannot leak state
/// into the next test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvKnobs, UnsetUsesFallbackSilently) {
  ::unsetenv("VCAQOE_TEST_KNOB");
  EXPECT_EQ(envInt("VCAQOE_TEST_KNOB", 7), 7);
  EXPECT_EQ(envDouble("VCAQOE_TEST_KNOB", 2.5), 2.5);
}

TEST(EnvKnobs, ValidValuesParse) {
  {
    ScopedEnv env("VCAQOE_TEST_KNOB", "42");
    EXPECT_EQ(envInt("VCAQOE_TEST_KNOB", 7), 42);
    EXPECT_EQ(envDouble("VCAQOE_TEST_KNOB", 2.5), 42.0);
  }
  {
    ScopedEnv env("VCAQOE_TEST_KNOB", "-3");
    EXPECT_EQ(envInt("VCAQOE_TEST_KNOB", 7), -3);
  }
  {
    ScopedEnv env("VCAQOE_TEST_KNOB", "0.125");
    EXPECT_EQ(envDouble("VCAQOE_TEST_KNOB", 2.5), 0.125);
  }
}

TEST(EnvKnobs, GarbageFallsBackInsteadOfZero) {
  // The atoi/atof bug this replaces: "forty" became 0 trees and "1x" a 1.0
  // pace. Now garbage keeps the documented default.
  for (const char* bad : {"forty", "12abc", "", " 3", "1e999"}) {
    ScopedEnv env("VCAQOE_TEST_KNOB", bad);
    EXPECT_EQ(envInt("VCAQOE_TEST_KNOB", 7), 7) << "'" << bad << "'";
    EXPECT_EQ(envDouble("VCAQOE_TEST_KNOB", 2.5), 2.5) << "'" << bad << "'";
  }
  {
    // Out of int range is garbage for envInt, fine for envDouble.
    ScopedEnv env("VCAQOE_TEST_KNOB", "3000000000");
    EXPECT_EQ(envInt("VCAQOE_TEST_KNOB", 7), 7);
    EXPECT_EQ(envDouble("VCAQOE_TEST_KNOB", 2.5), 3e9);
  }
}

TEST(JsonOutDir, FlagEnvAndErrors) {
  ::unsetenv("VCAQOE_BENCH_JSON_DIR");
  std::string error;
  {
    const char* argv[] = {"bench"};
    EXPECT_FALSE(jsonOutDir(1, const_cast<char**>(argv), error).has_value());
    EXPECT_TRUE(error.empty());
  }
  {
    const char* argv[] = {"bench", "--json-out", "/tmp/x"};
    const auto dir = jsonOutDir(3, const_cast<char**>(argv), error);
    ASSERT_TRUE(dir.has_value());
    EXPECT_EQ(*dir, "/tmp/x");
    EXPECT_TRUE(error.empty());
  }
  {
    // Flag wins over the environment.
    ScopedEnv env("VCAQOE_BENCH_JSON_DIR", "/tmp/env");
    const char* argv[] = {"bench", "--json-out", "/tmp/flag"};
    EXPECT_EQ(jsonOutDir(3, const_cast<char**>(argv), error).value(),
              "/tmp/flag");
    const char* bare[] = {"bench"};
    EXPECT_EQ(jsonOutDir(1, const_cast<char**>(bare), error).value(),
              "/tmp/env");
  }
  {
    const char* argv[] = {"bench", "--json-out"};
    EXPECT_FALSE(jsonOutDir(2, const_cast<char**>(argv), error).has_value());
    EXPECT_FALSE(error.empty());
  }
  error.clear();
  {
    const char* argv[] = {"bench", "--bogus"};
    EXPECT_FALSE(jsonOutDir(2, const_cast<char**>(argv), error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(BenchReport, DocumentCarriesSchemaAndMetadata) {
  BenchReport report("unit");
  report.config().set("packets", 1000);
  auto& row = report.addScenario("flows_8");
  auto throughput = JsonValue::object();
  throughput.set("pkts_per_s", 123456.5);
  row.set("throughput", std::move(throughput));

  const auto& doc = report.doc();
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema_version")->asInt(), kBenchSchemaVersion);
  EXPECT_EQ(doc.find("bench")->asString(), "unit");
  EXPECT_GT(doc.find("generated_unix_s")->asInt(), 0);
  const auto* host = doc.find("host");
  ASSERT_NE(host, nullptr);
  EXPECT_GE(host->find("hardware_threads")->asInt(), 1);
  EXPECT_TRUE(host->find("build_type")->isString());
  EXPECT_TRUE(host->find("git_describe")->isString());
  EXPECT_EQ(doc.find("config")->find("packets")->asInt(), 1000);
  const auto* scenarios = doc.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_EQ(scenarios->size(), 1u);
  EXPECT_EQ(scenarios->at(0).find("name")->asString(), "flows_8");
  EXPECT_EQ(scenarios->at(0).find("throughput")->find("pkts_per_s")
                ->asDouble(),
            123456.5);
}

TEST(BenchReport, WrittenFileParsesBackIdentically) {
  BenchReport report("roundtrip");
  report.config().set("knob", 0.1);
  auto& row = report.addScenario("s");
  auto throughput = JsonValue::object();
  throughput.set("rows_per_s", 2.5e6);
  row.set("throughput", std::move(throughput));

  const auto dir = std::filesystem::temp_directory_path() /
                   "vcaqoe_bench_report_test";
  const auto path = report.writeTo(dir.string());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(std::filesystem::path(*path).filename().string(),
            "BENCH_roundtrip.json");

  std::ifstream in(*path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parseError;
  const auto parsed = JsonValue::parse(buffer.str(), &parseError);
  ASSERT_TRUE(parsed.has_value()) << parseError;
  EXPECT_EQ(parsed->dump(2), report.doc().dump(2));
  // Doubles survive the disk round-trip bit-identically.
  EXPECT_EQ(parsed->find("config")->find("knob")->asDouble(), 0.1);
  std::filesystem::remove_all(dir);
}

TEST(BenchReport, WriteToUnwritablePathFails) {
  BenchReport report("unwritable");
  // A regular file where the directory should be.
  const auto clash = std::filesystem::temp_directory_path() /
                     "vcaqoe_bench_report_clash";
  { std::ofstream(clash.string()) << "occupied"; }
  EXPECT_FALSE(report.writeTo((clash / "sub").string()).has_value());
  std::filesystem::remove(clash);
}

TEST(WindowLatencyProbe, SamplesDrainDelayPerReadyWindow) {
  WindowLatencyProbe probe(/*windowNs=*/1000);
  probe.noteFeed(0);     // inside window 0: nothing ready yet
  probe.noteResult(0);   // not ready — must not sample
  EXPECT_EQ(probe.samples(), 0u);
  probe.noteFeed(1000);  // crosses the end of window 0
  probe.noteResult(0);
  EXPECT_EQ(probe.samples(), 1u);
  probe.noteFeed(3500);  // crosses windows 1 and 2 at once
  probe.noteResult(1);
  probe.noteResult(2);
  probe.noteResult(7);   // never ready (finish-tail shape) — ignored
  probe.noteResult(-1);  // nonsense window — ignored
  EXPECT_EQ(probe.samples(), 3u);
  EXPECT_GE(probe.p50Ms(), 0.0);
  EXPECT_GE(probe.p99Ms(), probe.p50Ms());
  const auto json = probe.toJson();
  EXPECT_EQ(json.find("samples")->asInt(), 3);
  EXPECT_GE(json.find("max")->asDouble(), json.find("p50")->asDouble());
}

}  // namespace
}  // namespace vcaqoe::bench
