// End-to-end integration tests: full simulated calls through the complete
// inference pipeline, checking the paper's qualitative claims hold on the
// reproduction (§5): media classification is near-perfect, ML methods beat
// heuristics, IP/UDP ML tracks RTP ML, and pcap round trips preserve
// estimates.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/media_classifier.hpp"
#include "core/session.hpp"
#include "datasets/generators.hpp"
#include "ml/metrics.hpp"
#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"
#include "netflow/pcap.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe {
namespace {

std::vector<core::LabeledSession> smallLabDataset() {
  datasets::LabDatasetOptions options;
  options.callsPerVca = 12;
  options.minCallSec = 40.0;
  options.maxCallSec = 50.0;
  options.seed = 4242;
  static const auto sessions = datasets::generateLabDataset(options);
  return sessions;
}

TEST(Integration, DatasetGeneratorProducesAllVcas) {
  const auto sessions = smallLabDataset();
  EXPECT_EQ(sessions.size(), 36u);
  for (const auto& name : {"meet", "teams", "webex"}) {
    EXPECT_EQ(datasets::sessionsForVca(sessions, name).size(), 12u) << name;
  }
  for (const auto& session : sessions) {
    EXPECT_GT(session.packets.size(), 1000u);
    EXPECT_GE(session.truth.size(), 35u);
    EXPECT_TRUE(netflow::isArrivalOrdered(session.packets));
  }
}

TEST(Integration, MediaClassificationAccuracyHigh) {
  // Paper Table 2 / A.1 / A.2: ~100% of video classified video, >98% of
  // non-video classified non-video.
  const auto sessions = smallLabDataset();
  const core::MediaClassifier classifier;
  std::uint64_t videoTotal = 0;
  std::uint64_t videoCorrect = 0;
  std::uint64_t nonVideoTotal = 0;
  std::uint64_t nonVideoCorrect = 0;
  for (const auto& session : sessions) {
    for (const auto& pkt : session.packets) {
      const auto truth = core::groundTruthLabel(
          pkt, session.profile.audioPt, session.profile.videoPt,
          session.profile.rtxPt, session.profile.rtxKeepaliveBytes);
      const bool predicted = classifier.isVideo(pkt);
      if (truth.video) {
        ++videoTotal;
        videoCorrect += predicted ? 1 : 0;
      } else {
        ++nonVideoTotal;
        nonVideoCorrect += predicted ? 0 : 1;
      }
    }
  }
  EXPECT_GT(static_cast<double>(videoCorrect) / videoTotal, 0.99);
  EXPECT_GT(static_cast<double>(nonVideoCorrect) / nonVideoTotal, 0.97);
  // The DTLS handshake packets are the dominant misclassification source.
  EXPECT_LT(static_cast<double>(nonVideoCorrect) / nonVideoTotal, 1.0);
}

TEST(Integration, WindowRecordsConsistent) {
  const auto sessions = smallLabDataset();
  const auto records = datasets::recordsForSessions(sessions);
  ASSERT_GT(records.size(), 500u);
  std::size_t valid = 0;
  for (const auto& rec : records) {
    ASSERT_EQ(rec.ipudpFeatures.size(), 14u);
    ASSERT_EQ(rec.rtpFeatures.size(), 24u);
    if (!rec.truthValid) continue;
    ++valid;
    EXPECT_GE(rec.truthFps, 0.0);
    // Catch-up bursts after a jitter-buffer stall can briefly exceed the
    // capture rate within one wall-clock second.
    EXPECT_LE(rec.truthFps, 60.0);
    EXPECT_GE(rec.truthBitrateKbps, 0.0);
    EXPECT_GT(rec.truthFrameHeight, 0);
  }
  EXPECT_GT(static_cast<double>(valid) / records.size(), 0.8);
}

TEST(Integration, MlBeatsIpUdpHeuristicOnFrameRate) {
  // §5.1.2: "both heuristics tend to have higher errors than ML-based
  // methods" — check IP/UDP ML < IP/UDP Heuristic on a small dataset.
  const auto sessions = smallLabDataset();
  const auto records = datasets::recordsForSessions(sessions);

  ml::ForestOptions forest;
  forest.numTrees = 25;
  const auto mlEval =
      core::evaluateMlCv(records, features::FeatureSet::kIpUdp,
                         rxstats::Metric::kFrameRate, {}, 5, 7, forest);
  const auto mlSummary =
      core::summarizeErrors(mlEval.series.predicted, mlEval.series.truth);

  const auto heuristic = core::heuristicSeries(
      records, core::Method::kIpUdpHeuristic, rxstats::Metric::kFrameRate);
  const auto heuristicSummary =
      core::summarizeErrors(heuristic.predicted, heuristic.truth);

  EXPECT_LT(mlSummary.mae, heuristicSummary.mae);
  EXPECT_LT(mlSummary.mae, 2.5);  // within the paper's ~2 FPS band
}

TEST(Integration, IpUdpMlTracksRtpMl) {
  // The headline claim: IP/UDP-only features estimate frame rate with
  // accuracy comparable to RTP headers (abstract: difference < ~0.5 FPS at
  // our scale).
  const auto sessions = smallLabDataset();
  const auto records = datasets::recordsForSessions(sessions);
  ml::ForestOptions forest;
  forest.numTrees = 25;

  const auto ipudp =
      core::evaluateMlCv(records, features::FeatureSet::kIpUdp,
                         rxstats::Metric::kFrameRate, {}, 5, 7, forest);
  const auto rtp =
      core::evaluateMlCv(records, features::FeatureSet::kRtp,
                         rxstats::Metric::kFrameRate, {}, 5, 7, forest);
  const double ipudpMae = common::meanAbsoluteError(ipudp.series.predicted,
                                                    ipudp.series.truth);
  const double rtpMae =
      common::meanAbsoluteError(rtp.series.predicted, rtp.series.truth);
  EXPECT_LT(std::abs(ipudpMae - rtpMae), 0.75);
}

TEST(Integration, ResolutionClassificationAccurate) {
  const auto sessions = smallLabDataset();
  for (const auto& name : {"meet", "webex"}) {
    const auto vcaSessions = datasets::sessionsForVca(sessions, name);
    const auto records = datasets::recordsForSessions(vcaSessions);
    ml::ForestOptions forest;
    forest.numTrees = 25;
    const auto eval = core::evaluateMlCv(
        records, features::FeatureSet::kIpUdp, rxstats::Metric::kResolution,
        core::resolutionCodecFor(name), 5, 11, forest);
    const ml::ConfusionMatrix cm(eval.series.truth, eval.series.predicted);
    EXPECT_GT(cm.accuracy(), 0.80) << name;  // bench-scale dataset reaches ~92-98%
  }
}

TEST(Integration, BitrateMlWithin25PercentMostOfTheTime) {
  // §5.1.3: IP/UDP ML bitrate within 25% of truth in ~87-95% of windows.
  const auto sessions = smallLabDataset();
  const auto records = datasets::recordsForSessions(sessions);
  ml::ForestOptions forest;
  forest.numTrees = 25;
  const auto eval =
      core::evaluateMlCv(records, features::FeatureSet::kIpUdp,
                         rxstats::Metric::kBitrate, {}, 5, 13, forest);
  EXPECT_GT(common::fractionWithinRelative(eval.series.predicted,
                                           eval.series.truth, 0.25),
            0.8);
}

TEST(Integration, HeuristicBitrateBiasedHigh) {
  // §5.1.3: heuristic bitrate errors are systemic (median relative error
  // above zero) because codec/FEC overheads are invisible.
  const auto sessions = smallLabDataset();
  const auto records = datasets::recordsForSessions(sessions);
  const auto series = core::heuristicSeries(
      records, core::Method::kIpUdpHeuristic, rxstats::Metric::kBitrate);
  const auto summary =
      core::summarizeErrors(series.predicted, series.truth, /*relative=*/true);
  EXPECT_GT(summary.medianError, 0.0);
}

TEST(Integration, PcapRoundTripPreservesEstimates) {
  // Write a session to pcap, read it back, re-run the IP/UDP heuristic:
  // identical per-window estimates.
  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  netem::NdtTraceSynthesizer synth(31);
  const auto session =
      datasets::simulateSession(profile, synth.synthesize(30), 30.0, 55, 0);

  netflow::FlowKey flow;
  flow.srcIp = 0x0A000001;
  flow.dstIp = 0x0A000002;
  flow.srcPort = 3478;
  flow.dstPort = 50000;
  netflow::PcapWriter writer;
  for (const auto& pkt : session.packets) writer.write(flow, pkt);
  const auto records = netflow::parsePcap(writer.bytes());
  auto restored = netflow::packetsForFlow(records, flow);
  ASSERT_EQ(restored.size(), session.packets.size());

  const core::IpUdpHeuristicEstimator estimator(
      {}, core::defaultHeuristicParams(profile.name));
  const auto original =
      estimator.estimate(session.packets, common::kNanosPerSecond, 30);
  const auto roundTripped =
      estimator.estimate(restored, common::kNanosPerSecond, 30);
  ASSERT_EQ(original.size(), roundTripped.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original[i].fps, roundTripped[i].fps);
    EXPECT_DOUBLE_EQ(original[i].bitrateKbps, roundTripped[i].bitrateKbps);
  }
  // And the RTP baseline still parses headers from the restored trace.
  const core::RtpHeuristicEstimator rtpEstimator(profile.videoPt);
  const auto rtpTimeline =
      rtpEstimator.estimate(restored, common::kNanosPerSecond, 30);
  double frames = 0.0;
  for (const auto& row : rtpTimeline) frames += row.frameCount;
  EXPECT_GT(frames, 500.0);
}

TEST(Integration, RealWorldDatasetQoeHigherThanLab) {
  // Fig A.1 vs A.2: real-world access networks yield better QoE.
  datasets::RealWorldDatasetOptions options;
  options.callCountScale = 0.02;  // ~18 calls
  options.seed = 99;
  const auto realWorld = datasets::generateRealWorldDataset(options);
  ASSERT_GE(realWorld.size(), 15u);

  const auto lab = smallLabDataset();
  auto meanBitrate = [](const std::vector<core::LabeledSession>& sessions) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& session : sessions) {
      for (const auto& row : session.truth) {
        if (!row.valid) continue;
        sum += row.bitrateKbps;
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_GT(meanBitrate(realWorld), meanBitrate(lab));
}

TEST(Integration, RealWorldPayloadTypesDiffer) {
  // §5.2: payload-type numbering changes between deployments.
  const auto lab = datasets::teamsProfile(datasets::Deployment::kLab);
  const auto wild = datasets::teamsProfile(datasets::Deployment::kRealWorld);
  EXPECT_NE(lab.videoPt, wild.videoPt);
  EXPECT_EQ(wild.videoPt, 100);
  EXPECT_EQ(wild.rtxPt, 101);
  EXPECT_EQ(datasets::webexProfile(datasets::Deployment::kRealWorld).rtxPt, 0);
}

TEST(Integration, TransferEvaluationRuns) {
  // §5.3 protocol smoke test: lab-trained model applied to real-world data.
  const auto lab = smallLabDataset();
  datasets::RealWorldDatasetOptions options;
  options.callCountScale = 0.02;
  options.seed = 17;
  const auto realWorld = datasets::generateRealWorldDataset(options);

  const auto labTeams = datasets::sessionsForVca(lab, "teams");
  const auto wildTeams = datasets::sessionsForVca(realWorld, "teams");
  ASSERT_FALSE(wildTeams.empty());
  const auto trainRecords = datasets::recordsForSessions(labTeams);
  const auto testRecords = datasets::recordsForSessions(wildTeams);
  ml::ForestOptions forest;
  forest.numTrees = 20;
  const auto eval = core::evaluateMlTransfer(
      trainRecords, testRecords, features::FeatureSet::kIpUdp,
      rxstats::Metric::kFrameRate, {}, 19, forest);
  EXPECT_EQ(eval.series.predicted.size(), eval.series.truth.size());
  EXPECT_GT(eval.series.predicted.size(), 50u);
  const double mae = common::meanAbsoluteError(eval.series.predicted,
                                               eval.series.truth);
  EXPECT_LT(mae, 8.0);  // transfers with degraded but sane accuracy
}

TEST(Integration, UniqueSizesAmongTopFrameRateFeatures) {
  // §5.1.2: "# unique sizes" carries strong frame-rate signal for the
  // equal-fragmentation VCAs.
  const auto sessions = smallLabDataset();
  const auto teams = datasets::sessionsForVca(sessions, "teams");
  const auto records = datasets::recordsForSessions(teams);
  ml::ForestOptions forest;
  forest.numTrees = 25;
  const auto eval =
      core::evaluateMlCv(records, features::FeatureSet::kIpUdp,
                         rxstats::Metric::kFrameRate, {}, 5, 23, forest);
  // At bench scale (24+ calls/VCA) this feature ranks in the top-5 (see
  // bench_fig05); the small test dataset is noisier, so accept the top half
  // of the 14-feature ranking here.
  ASSERT_GE(eval.importance.size(), 7u);
  bool found = false;
  for (std::size_t i = 0; i < 7; ++i) {
    if (eval.importance[i].first == "# unique sizes") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vcaqoe
