// Tests for the webrtc-internals JSON logs, the VCA flow classifier with
// background traffic, and the §7 application modes (screen share,
// multi-party).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/flow_classifier.hpp"
#include "core/heuristic_estimators.hpp"
#include "core/session.hpp"
#include "datasets/generators.hpp"
#include "datasets/vca_profiles.hpp"
#include "netem/conditions.hpp"
#include "rtp/rtp.hpp"
#include "rxstats/ground_truth.hpp"
#include "rxstats/webrtc_log.hpp"
#include "simcall/background.hpp"
#include "simcall/modes.hpp"

namespace vcaqoe {
namespace {

// ------------------------------------------------------------- webrtc log

rxstats::WebrtcLog sampleLog() {
  rxstats::WebrtcLog log;
  log.vca = "teams";
  log.startSecond = 2;
  for (int i = 0; i < 5; ++i) {
    rxstats::QoeRow row;
    row.second = 2 + i;
    row.fps = 30.0 - i;
    row.bitrateKbps = 1'000.5 + i * 10;
    row.frameJitterMs = 3.25 * i;
    row.frameHeight = i % 2 ? 360 : 270;
    row.valid = i != 3;
    log.rows.push_back(row);
  }
  return log;
}

TEST(WebrtcLog, RoundTrip) {
  const auto log = sampleLog();
  const std::string json = writeWebrtcLog(log);
  const auto parsed = rxstats::parseWebrtcLog(json);
  EXPECT_EQ(parsed, log);
}

TEST(WebrtcLog, FileRoundTrip) {
  const auto log = sampleLog();
  const std::string path = "/tmp/vcaqoe_webrtc_log_test.json";
  rxstats::saveWebrtcLog(log, path);
  const auto loaded = rxstats::loadWebrtcLog(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded, log);
}

TEST(WebrtcLog, ToleratesWhitespaceAndKeyOrder) {
  const std::string json =
      "{ \"startSecond\": 0,\n\n  \"framesPerSecond\": [30, 29],\n"
      "\"bitrateKbps\":[500,501] , \"frameJitterMs\": [1, 2],\n"
      "\"frameHeight\": [360, 360], \"valid\": [1, 1],\n"
      "\"vca\": \"meet\" }";
  const auto log = rxstats::parseWebrtcLog(json);
  EXPECT_EQ(log.vca, "meet");
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(log.rows[1].fps, 29.0);
  EXPECT_EQ(log.rows[0].frameHeight, 360);
}

TEST(WebrtcLog, RejectsMalformedInput) {
  EXPECT_THROW(rxstats::parseWebrtcLog("not json"), std::runtime_error);
  EXPECT_THROW(rxstats::parseWebrtcLog("{}"), std::runtime_error);
  EXPECT_THROW(rxstats::parseWebrtcLog(
                   "{\"vca\": \"x\", \"startSecond\": 0,"
                   "\"framesPerSecond\": [1], \"bitrateKbps\": [1, 2],"
                   "\"frameJitterMs\": [1], \"frameHeight\": [1],"
                   "\"valid\": [1]}"),
               std::runtime_error);  // length mismatch
}

TEST(WebrtcLog, RoundTripsSimulatedGroundTruth) {
  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  netem::NdtTraceSynthesizer synth(3);
  const auto session =
      datasets::simulateSession(profile, synth.synthesize(20), 20.0, 5, 1);
  rxstats::WebrtcLog log;
  log.vca = profile.name;
  log.startSecond = session.truth.front().second;
  log.rows = session.truth;
  const auto parsed = rxstats::parseWebrtcLog(writeWebrtcLog(log));
  ASSERT_EQ(parsed.rows.size(), session.truth.size());
  for (std::size_t i = 0; i < parsed.rows.size(); ++i) {
    EXPECT_NEAR(parsed.rows[i].bitrateKbps, session.truth[i].bitrateKbps,
                1e-4);
    EXPECT_DOUBLE_EQ(parsed.rows[i].fps, session.truth[i].fps);
  }
}

// ------------------------------------------------- background + classifier

netflow::FlowKey vcaFlow() {
  netflow::FlowKey flow;
  flow.srcIp = 0x0A010101;
  flow.dstIp = 0xC0A80117;
  flow.srcPort = 19'305;
  flow.dstPort = 50'001;
  return flow;
}

std::vector<netflow::PcapRecord> mixedCapture(std::uint64_t seed) {
  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  netem::NdtTraceSynthesizer synth(seed);
  const auto session =
      datasets::simulateSession(profile, synth.synthesize(30), 30.0, seed, 1);

  std::vector<netflow::PcapRecord> records;
  for (const auto& pkt : session.packets) {
    netflow::PcapRecord rec;
    rec.flow = vcaFlow();
    rec.packet = pkt;
    records.push_back(rec);
  }
  const auto background = simcall::generateBackgroundMix(30.0, seed ^ 0xBB);
  records.insert(records.end(), background.begin(), background.end());
  std::sort(records.begin(), records.end(),
            [](const netflow::PcapRecord& a, const netflow::PcapRecord& b) {
              return a.packet.arrivalNs < b.packet.arrivalNs;
            });
  return records;
}

TEST(Background, GeneratesAllKinds) {
  common::Rng rng(1);
  for (const auto kind :
       {simcall::BackgroundKind::kDns, simcall::BackgroundKind::kWebBrowsing,
        simcall::BackgroundKind::kVideoStreaming,
        simcall::BackgroundKind::kGaming}) {
    const auto records =
        simcall::generateBackgroundFlow(kind, vcaFlow(), 20.0, rng);
    EXPECT_GT(records.size(), 3u);
    for (const auto& rec : records) {
      EXPECT_GE(rec.packet.arrivalNs, 0);
      EXPECT_LE(rec.packet.arrivalNs, common::secondsToNs(21.0));
      EXPECT_GT(rec.packet.sizeBytes, 0u);
    }
  }
}

TEST(Background, DashStreamingIsBursty) {
  common::Rng rng(2);
  const auto records = simcall::generateBackgroundFlow(
      simcall::BackgroundKind::kVideoStreaming, vcaFlow(), 30.0, rng);
  const auto sigs = core::summarizeFlows(records);
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_LT(sigs[0].activityFraction, 0.8);  // ON/OFF
  EXPECT_GT(sigs[0].largeFraction, 0.95);    // bulk MTU packets
}

TEST(FlowClassifier, FindsExactlyTheVcaFlow) {
  const auto records = mixedCapture(7);
  const auto media = core::vcaMediaFlows(records);
  ASSERT_EQ(media.size(), 1u);
  EXPECT_EQ(media[0], vcaFlow());
}

TEST(FlowClassifier, SignatureSanity) {
  const auto records = mixedCapture(8);
  const auto verdicts = core::classifyFlows(records);
  EXPECT_EQ(verdicts.size(), 5u);  // VCA + 4 background kinds
  for (const auto& verdict : verdicts) {
    if (verdict.signature.flow == vcaFlow()) {
      EXPECT_TRUE(verdict.isVcaMedia);
      EXPECT_GT(verdict.signature.activityFraction, 0.85);
      EXPECT_GT(verdict.signature.largeFraction, 0.25);
      EXPECT_GT(verdict.signature.smallFraction, 0.01);
    } else {
      EXPECT_FALSE(verdict.isVcaMedia)
          << "misclassified background flow dstPort="
          << verdict.signature.flow.dstPort;
    }
  }
}

class ClassifierSeeds : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierSeeds, RobustAcrossSeeds) {
  const auto records =
      mixedCapture(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto media = core::vcaMediaFlows(records);
  ASSERT_EQ(media.size(), 1u);
  EXPECT_EQ(media[0], vcaFlow());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierSeeds, ::testing::Range(1, 6));

// --------------------------------------------------------------- app modes

TEST(Modes, ScreenShareVariantShape) {
  const auto base = datasets::teamsProfile(datasets::Deployment::kLab);
  const auto share = simcall::screenShareVariant(base);
  EXPECT_EQ(share.name, "teams-screenshare");
  EXPECT_LT(share.maxFps, 10.0);
  EXPECT_GT(share.frameSizeCv, base.frameSizeCv);
}

TEST(Modes, ScreenShareProducesLowFrameRate) {
  const auto profile = simcall::screenShareVariant(
      datasets::teamsProfile(datasets::Deployment::kLab));
  netem::SecondCondition c;
  c.throughputKbps = 10'000.0;
  c.delayMs = 20.0;
  simcall::CallSimulator sim(profile,
                             netem::ConditionSchedule::constant(c, 30), 3);
  const auto call = sim.run(20.0);
  const auto rows = rxstats::buildGroundTruth(call, 20.0);
  double meanFps = 0.0;
  for (const auto& row : rows) meanFps += row.fps;
  meanFps /= static_cast<double>(rows.size());
  EXPECT_LT(meanFps, 7.0);
  EXPECT_GT(meanFps, 2.0);
}

TEST(Modes, MultiPartyMergesDistinctStreams) {
  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  const auto result = simcall::simulateMultiPartyCall(
      profile, netem::ConditionSchedule::constant(c, 20), 15.0, 9, {4, true});
  ASSERT_EQ(result.perParticipant.size(), 4u);
  EXPECT_TRUE(netflow::isArrivalOrdered(result.packets));

  std::set<std::uint32_t> videoSsrcs;
  for (const auto& pkt : result.packets) {
    const auto header = rtp::decode(pkt.headBytes());
    if (header && header->payloadType == profile.videoPt) {
      videoSsrcs.insert(header->ssrc);
    }
  }
  EXPECT_EQ(videoSsrcs.size(), 4u);

  // Timestamp spaces must not collide across participants.
  std::set<std::uint32_t> ts0;
  for (const auto& frame : result.perParticipant[0].sentFrames) {
    ts0.insert(frame.rtpTimestamp);
  }
  for (const auto& frame : result.perParticipant[1].sentFrames) {
    EXPECT_EQ(ts0.count(frame.rtpTimestamp), 0u);
  }
}

TEST(Modes, MultiPartyInflatesIpUdpHeuristicFrameCount) {
  // §7: multiple streams on one flow break the "session = one frame
  // sequence" abstraction — the heuristic counts everybody's frames.
  const auto profile = datasets::teamsProfile(datasets::Deployment::kLab);
  netem::SecondCondition c;
  c.throughputKbps = 20'000.0;
  c.delayMs = 15.0;
  const auto result = simcall::simulateMultiPartyCall(
      profile, netem::ConditionSchedule::constant(c, 25), 20.0, 11, {4, true});

  // Ground truth for the observed participant (index 0).
  simcall::CallResult speaker;
  speaker.packets = result.packets;  // receiver sees the merged flow
  speaker.sentFrames = result.perParticipant[0].sentFrames;
  speaker.profile = profile;
  const auto truth = rxstats::buildGroundTruth(speaker, 20.0);

  const core::IpUdpHeuristicEstimator estimator(
      {}, core::defaultHeuristicParams(profile.name));
  const auto estimates = estimator.estimate(result.packets,
                                            common::kNanosPerSecond, 20);

  double truthFps = 0.0;
  double estimatedFps = 0.0;
  std::size_t n = 0;
  for (const auto& row : truth) {
    if (!row.valid) continue;
    truthFps += row.fps;
    estimatedFps += estimates[static_cast<std::size_t>(row.second)].fps;
    ++n;
  }
  ASSERT_GT(n, 10u);
  truthFps /= static_cast<double>(n);
  estimatedFps /= static_cast<double>(n);
  // The heuristic roughly counts all four participants' frames.
  EXPECT_GT(estimatedFps, 2.0 * truthFps);
}

}  // namespace
}  // namespace vcaqoe
