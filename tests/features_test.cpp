#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "features/extractors.hpp"
#include "features/feature_vector.hpp"
#include "features/windows.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::features {
namespace {

netflow::Packet plainPacket(common::TimeNs arrival, std::uint32_t size) {
  netflow::Packet p;
  p.arrivalNs = arrival;
  p.sizeBytes = size;
  return p;
}

netflow::Packet rtpPacket(common::TimeNs arrival, std::uint32_t size,
                          std::uint8_t pt, std::uint32_t ts, bool marker,
                          std::uint16_t seq) {
  netflow::Packet p = plainPacket(arrival, size);
  rtp::RtpHeader h;
  h.payloadType = pt;
  h.timestamp = ts;
  h.marker = marker;
  h.sequenceNumber = seq;
  std::vector<std::uint8_t> head;
  rtp::encode(h, head);
  p.setHead(head);
  return p;
}

// ------------------------------------------------------------- feature set

TEST(FeatureSet, NamesRoundTrip) {
  EXPECT_EQ(toString(FeatureSet::kIpUdp), "ipudp");
  EXPECT_EQ(toString(FeatureSet::kRtp), "rtp");
  EXPECT_EQ(featureSetFromString("ipudp"), FeatureSet::kIpUdp);
  EXPECT_EQ(featureSetFromString("rtp"), FeatureSet::kRtp);
  for (const auto set : {FeatureSet::kIpUdp, FeatureSet::kRtp}) {
    EXPECT_EQ(featureSetFromString(toString(set)), set);
  }
  EXPECT_FALSE(featureSetFromString("").has_value());
  EXPECT_FALSE(featureSetFromString("RTP").has_value());
  EXPECT_FALSE(featureSetFromString("ip_udp").has_value());
}

TEST(FeatureSet, WidthsMatchTheCatalog) {
  EXPECT_EQ(featureCount(FeatureSet::kIpUdp), 14u);
  EXPECT_EQ(featureCount(FeatureSet::kRtp), 24u);
}

// ---------------------------------------------------------------- windows

TEST(Windows, EmptyTraceNoWindows) {
  EXPECT_TRUE(sliceWindows({}, common::kNanosPerSecond).empty());
}

TEST(Windows, SingleWindowContainsAll) {
  netflow::PacketTrace trace = {plainPacket(10, 100),
                                plainPacket(999'999'999, 200)};
  const auto windows = sliceWindows(trace, common::kNanosPerSecond);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].packets.size(), 2u);
  EXPECT_EQ(windows[0].index, 0);
}

TEST(Windows, SplitsAtBoundaries) {
  netflow::PacketTrace trace = {
      plainPacket(0, 1), plainPacket(common::kNanosPerSecond - 1, 2),
      plainPacket(common::kNanosPerSecond, 3),
      plainPacket(3 * common::kNanosPerSecond + 5, 4)};
  const auto windows = sliceWindows(trace, common::kNanosPerSecond);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].packets.size(), 2u);
  EXPECT_EQ(windows[1].packets.size(), 1u);
  EXPECT_EQ(windows[2].packets.size(), 0u);  // empty windows kept
  EXPECT_EQ(windows[3].packets.size(), 1u);
}

TEST(Windows, LargerWindowSize) {
  netflow::PacketTrace trace = {
      plainPacket(0, 1), plainPacket(common::kNanosPerSecond, 2),
      plainPacket(2 * common::kNanosPerSecond, 3)};
  const auto windows = sliceWindows(trace, 2 * common::kNanosPerSecond);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].packets.size(), 2u);
  EXPECT_EQ(windows[1].packets.size(), 1u);
}

TEST(Windows, RejectsUnsortedTrace) {
  netflow::PacketTrace trace = {plainPacket(100, 1), plainPacket(50, 2)};
  EXPECT_THROW(sliceWindows(trace, common::kNanosPerSecond),
               std::invalid_argument);
}

TEST(Windows, RejectsNonPositiveWindow) {
  netflow::PacketTrace trace = {plainPacket(0, 1)};
  EXPECT_THROW(sliceWindows(trace, 0), std::invalid_argument);
}

// ------------------------------------------------------------ feature sets

TEST(FeatureNames, CountsMatchPaper) {
  // Table 1: 12 flow statistics + 2 semantic = 14 for IP/UDP ML.
  EXPECT_EQ(featureCount(FeatureSet::kIpUdp), 14u);
  // Flow statistics + 12 RTP features for RTP ML.
  EXPECT_EQ(featureCount(FeatureSet::kRtp), 24u);
}

TEST(FeatureNames, SharedFlowPrefix) {
  const auto& ipudp = featureNames(FeatureSet::kIpUdp);
  const auto& rtp = featureNames(FeatureSet::kRtp);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(ipudp[i], rtp[i]);
  EXPECT_EQ(ipudp[12], "# unique sizes");
  EXPECT_EQ(ipudp[13], "# microbursts");
  EXPECT_EQ(rtp[12], "# unique RTPvid TS");
}

// ------------------------------------------------------------- flow stats

TEST(FlowStats, HandComputedValues) {
  std::vector<netflow::Packet> video = {
      plainPacket(common::millisToNs(0.0), 1000),
      plainPacket(common::millisToNs(10.0), 1100),
      plainPacket(common::millisToNs(40.0), 1200),
  };
  const auto f = flowStatistics(video, common::kNanosPerSecond);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f[0], 3300.0);  // bytes per second
  EXPECT_DOUBLE_EQ(f[1], 3.0);     // packets per second
  EXPECT_DOUBLE_EQ(f[2], 1100.0);  // size mean
  EXPECT_DOUBLE_EQ(f[3], 100.0);   // size stdev
  EXPECT_DOUBLE_EQ(f[4], 1100.0);  // size median
  EXPECT_DOUBLE_EQ(f[5], 1000.0);  // size min
  EXPECT_DOUBLE_EQ(f[6], 1200.0);  // size max
  EXPECT_DOUBLE_EQ(f[7], 20.0);    // IAT mean (10, 30)
  EXPECT_DOUBLE_EQ(f[9], 20.0);    // IAT median
  EXPECT_DOUBLE_EQ(f[10], 10.0);   // IAT min
  EXPECT_DOUBLE_EQ(f[11], 30.0);   // IAT max
}

TEST(FlowStats, EmptyWindowAllZero) {
  const auto f = flowStatistics({}, common::kNanosPerSecond);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FlowStats, NormalizesByWindowDuration) {
  std::vector<netflow::Packet> video = {plainPacket(0, 500),
                                        plainPacket(10, 500)};
  const auto f = flowStatistics(video, 2 * common::kNanosPerSecond);
  EXPECT_DOUBLE_EQ(f[0], 500.0);  // 1000 bytes over 2 s
  EXPECT_DOUBLE_EQ(f[1], 1.0);
}

// -------------------------------------------------------- semantic features

TEST(Semantic, UniqueSizesCounted) {
  std::vector<netflow::Packet> video = {
      plainPacket(0, 1000), plainPacket(10, 1000), plainPacket(20, 1001),
      plainPacket(30, 900)};
  ExtractionParams params;
  const auto s = semanticFeatures(video, params);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
}

TEST(Semantic, MicroburstsSplitOnIatThreshold) {
  ExtractionParams params;
  params.microburstIatNs = common::millisToNs(3.0);
  // Three bursts: gaps of 0.2 ms inside, 30 ms between.
  std::vector<netflow::Packet> video;
  common::TimeNs t = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 4; ++i) {
      video.push_back(plainPacket(t, 1000));
      t += common::microsToNs(200.0);
    }
    t += common::millisToNs(30.0);
  }
  const auto s = semanticFeatures(video, params);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
}

TEST(Semantic, EmptyWindowZeroBursts) {
  ExtractionParams params;
  const auto s = semanticFeatures({}, params);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Semantic, SinglePacketIsOneBurst) {
  ExtractionParams params;
  std::vector<netflow::Packet> video = {plainPacket(0, 1000)};
  EXPECT_DOUBLE_EQ(semanticFeatures(video, params)[1], 1.0);
}

// ------------------------------------------------------------ rtp features

Window windowOver(const netflow::PacketTrace& trace) {
  Window w;
  w.index = 0;
  w.startNs = 0;
  w.durationNs = common::kNanosPerSecond;
  w.packets = trace;
  return w;
}

TEST(RtpFeatures, UniqueTimestampsAndMarkers) {
  ExtractionParams params;
  params.videoPt = 102;
  params.rtxPt = 103;
  netflow::PacketTrace trace = {
      rtpPacket(10, 1000, 102, 3000, false, 1),
      rtpPacket(20, 1000, 102, 3000, true, 2),
      rtpPacket(30, 1000, 102, 6000, true, 3),
      rtpPacket(40, 1000, 103, 3000, false, 1),   // RTX of frame 3000
      rtpPacket(50, 1000, 103, 99999, false, 2),  // RTX keep-alive ts
  };
  const auto f = rtpFeatures(windowOver(trace), params);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f[0], 2.0);  // unique video ts
  EXPECT_DOUBLE_EQ(f[1], 2.0);  // unique rtx ts
  EXPECT_DOUBLE_EQ(f[2], 1.0);  // intersection
  EXPECT_DOUBLE_EQ(f[3], 3.0);  // union
  EXPECT_DOUBLE_EQ(f[4], 2.0);  // video marker sum
  EXPECT_DOUBLE_EQ(f[5], 0.0);  // rtx marker sum
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // out-of-order
}

TEST(RtpFeatures, OutOfOrderSequenceDetected) {
  ExtractionParams params;
  params.videoPt = 102;
  netflow::PacketTrace trace = {
      rtpPacket(10, 1000, 102, 3000, false, 5),
      rtpPacket(20, 1000, 102, 3000, false, 4),  // reordered
      rtpPacket(30, 1000, 102, 3000, true, 6),
      rtpPacket(40, 1000, 102, 6000, true, 6),   // duplicate counts too
  };
  const auto f = rtpFeatures(windowOver(trace), params);
  EXPECT_DOUBLE_EQ(f[6], 2.0);
}

TEST(RtpFeatures, LagStatisticsReflectDelayedFrame) {
  ExtractionParams params;
  params.videoPt = 102;
  // Two frames 1/30 s apart in media time; the second one completes 20 ms
  // late relative to the first.
  const std::uint32_t tsStep = 3000;  // 90 kHz / 30 fps
  netflow::PacketTrace trace = {
      rtpPacket(common::millisToNs(0.0), 1000, 102, 9000, true, 1),
      rtpPacket(common::millisToNs(33.333333) + common::millisToNs(20.0),
                1000, 102, 9000 + tsStep, true, 2),
  };
  const auto f = rtpFeatures(windowOver(trace), params);
  // lag[mean] over {0, ~20 ms} ≈ 10 ms; lag[max] ≈ 20 ms.
  EXPECT_NEAR(f[7], 10.0, 0.1);
  EXPECT_NEAR(f[11], 20.0, 0.1);
  EXPECT_NEAR(f[10], 0.0, 1e-9);  // lag min: the reference frame
}

TEST(RtpFeatures, IgnoresNonRtpPackets) {
  ExtractionParams params;
  params.videoPt = 102;
  netflow::PacketTrace trace = {plainPacket(10, 1200)};  // DTLS-ish, no RTP
  const auto f = rtpFeatures(windowOver(trace), params);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

// --------------------------------------------------------------- assembly

TEST(Extract, IpUdpVectorWidthAndContent) {
  ExtractionParams params;
  netflow::PacketTrace trace = {plainPacket(0, 1000), plainPacket(10, 1000)};
  const auto w = windowOver(trace);
  const auto f = extractFeatures(w, trace, FeatureSet::kIpUdp, params);
  EXPECT_EQ(f.size(), featureCount(FeatureSet::kIpUdp));
  EXPECT_DOUBLE_EQ(f[12], 1.0);  // one unique size
}

TEST(Extract, RtpVectorWidth) {
  ExtractionParams params;
  params.videoPt = 102;
  netflow::PacketTrace trace = {rtpPacket(10, 1000, 102, 3000, true, 1)};
  const auto w = windowOver(trace);
  const auto f = extractFeatures(w, trace, FeatureSet::kRtp, params);
  EXPECT_EQ(f.size(), featureCount(FeatureSet::kRtp));
}

// ------------------------------------------------- columnar layout (PR 5)

/// A mixed trace exercising every column: RTP video, RTX, out-of-order
/// sequence numbers, non-RTP payloads, and size/IAT variety.
netflow::PacketTrace mixedTrace() {
  netflow::PacketTrace trace;
  trace.push_back(rtpPacket(1'000'000, 1200, 102, 9000, false, 10));
  trace.push_back(rtpPacket(2'500'000, 1201, 102, 9000, true, 11));
  trace.push_back(rtpPacket(9'000'000, 640, 103, 9000, false, 3));  // RTX
  trace.push_back(plainPacket(12'000'000, 1100));                   // non-RTP
  trace.push_back(rtpPacket(15'000'000, 900, 102, 12000, false, 13));
  trace.push_back(rtpPacket(15'400'000, 905, 102, 12000, true, 12));  // ooo
  trace.push_back(plainPacket(22'000'000, 130));  // audio-sized
  trace.push_back(rtpPacket(40'000'000, 980, 102, 15000, true, 14));
  return trace;
}

TEST(Columnar, AppendMatchesFromPackets) {
  const auto trace = mixedTrace();
  WindowColumns incremental;
  incremental.captureHeads = true;
  for (const auto& pkt : trace) incremental.append(pkt);
  const auto gathered = WindowColumns::fromPackets(trace, true);
  EXPECT_EQ(incremental.arrivalNs, gathered.arrivalNs);
  EXPECT_EQ(incremental.sizeBytes, gathered.sizeBytes);
  EXPECT_EQ(incremental.headLen, gathered.headLen);
  EXPECT_EQ(incremental.headBytes, gathered.headBytes);
}

TEST(Columnar, HeadColumnsOnlyWhenCaptured) {
  const auto trace = mixedTrace();
  const auto noHeads = WindowColumns::fromPackets(trace, false);
  EXPECT_EQ(noHeads.size(), trace.size());
  EXPECT_TRUE(noHeads.headLen.empty());
  EXPECT_TRUE(noHeads.headBytes.empty());
  EXPECT_TRUE(noHeads.headAt(0).empty());

  const auto withHeads = WindowColumns::fromPackets(trace, true);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto head = withHeads.headAt(i);
    const auto want = trace[i].headBytes();
    ASSERT_EQ(head.size(), want.size());
    EXPECT_TRUE(std::equal(head.begin(), head.end(), want.begin()));
  }
}

TEST(Columnar, ClearKeepsCaptureFlagAndDropsRows) {
  auto columns = WindowColumns::fromPackets(mixedTrace(), true);
  columns.clear();
  EXPECT_TRUE(columns.empty());
  EXPECT_TRUE(columns.captureHeads);
  EXPECT_TRUE(columns.headBytes.empty());
}

TEST(Columnar, FlowStatisticsBitExactVsAoS) {
  const auto trace = mixedTrace();
  const auto columns = WindowColumns::fromPackets(trace, false);
  EXPECT_EQ(flowStatistics(trace, common::kNanosPerSecond),
            flowStatistics(columns.arrivalNs, columns.sizeBytes,
                           common::kNanosPerSecond));
  // Empty and single-row inputs.
  const WindowColumns empty;
  EXPECT_EQ(flowStatistics(netflow::PacketTrace{}, common::kNanosPerSecond),
            flowStatistics(empty.arrivalNs, empty.sizeBytes,
                           common::kNanosPerSecond));
}

TEST(Columnar, SemanticFeaturesBitExactVsAoS) {
  ExtractionParams params;
  const auto trace = mixedTrace();
  const auto columns = WindowColumns::fromPackets(trace, false);
  EXPECT_EQ(semanticFeatures(trace, params),
            semanticFeatures(columns.arrivalNs, columns.sizeBytes, params));
}

TEST(Columnar, RtpFeaturesBitExactVsAoS) {
  ExtractionParams params;
  params.videoPt = 102;
  params.rtxPt = 103;
  const auto trace = mixedTrace();
  const auto columns = WindowColumns::fromPackets(trace, true);
  EXPECT_EQ(rtpFeatures(windowOver(trace), params),
            rtpFeatures(columns, params));
}

TEST(Columnar, ExtractFeaturesBitExactBothSets) {
  ExtractionParams params;
  params.videoPt = 102;
  params.rtxPt = 103;
  const auto trace = mixedTrace();
  const auto w = windowOver(trace);

  // IP/UDP: video = size-classified subset; heads are never consulted, so
  // an empty window record suffices on the columnar side.
  netflow::PacketTrace video;
  for (const auto& pkt : trace) {
    if (pkt.sizeBytes >= 450) video.push_back(pkt);
  }
  const auto videoColumns = WindowColumns::fromPackets(video, false);
  EXPECT_EQ(extractFeatures(w, video, FeatureSet::kIpUdp, params),
            extractFeatures(WindowColumns{}, videoColumns,
                            w.durationNs, FeatureSet::kIpUdp, params));

  // RTP: full window columns with heads.
  const auto windowColumns = WindowColumns::fromPackets(trace, true);
  EXPECT_EQ(extractFeatures(w, video, FeatureSet::kRtp, params),
            extractFeatures(windowColumns, videoColumns, w.durationNs,
                            FeatureSet::kRtp, params));
}

}  // namespace
}  // namespace vcaqoe::features
