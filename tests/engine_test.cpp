#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/streaming.hpp"
#include "engine/flow_table.hpp"
#include "engine/multi_flow_engine.hpp"
#include "engine/spsc_ring.hpp"
#include "engine/synthetic.hpp"
#include "inference/backends.hpp"
#include "inference/model_registry.hpp"
#include "netflow/packet.hpp"

namespace vcaqoe::engine {
namespace {

netflow::FlowKey makeKey(std::uint32_t i) { return syntheticFlowKey(i); }

struct Interleaved {
  std::vector<netflow::FlowKey> keys;            // per flow
  std::vector<netflow::PacketTrace> perFlow;     // per flow, arrival order
  std::vector<std::pair<std::uint32_t, netflow::Packet>> stream;  // merged
};

Interleaved makeInterleaved(int flows, int packetsPerFlow,
                            std::uint64_t seed = 7) {
  Interleaved in;
  for (int f = 0; f < flows; ++f) {
    in.keys.push_back(makeKey(static_cast<std::uint32_t>(f)));
    in.perFlow.push_back(
        syntheticFlowTrace(seed + static_cast<std::uint64_t>(f),
                           packetsPerFlow, /*startNs=*/f * 37'000));
  }
  for (int f = 0; f < flows; ++f) {
    for (const auto& packet : in.perFlow[static_cast<std::size_t>(f)]) {
      in.stream.emplace_back(static_cast<std::uint32_t>(f), packet);
    }
  }
  std::stable_sort(in.stream.begin(), in.stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrivalNs < b.second.arrivalNs;
                   });
  return in;
}

/// Ground truth: each flow through its own standalone streaming estimator.
std::vector<std::vector<core::StreamingOutput>> sequentialReference(
    const Interleaved& in, const core::StreamingOptions& options) {
  std::vector<std::vector<core::StreamingOutput>> outputs(in.perFlow.size());
  for (std::size_t f = 0; f < in.perFlow.size(); ++f) {
    core::StreamingIpUdpEstimator estimator(
        options,
        [&outputs, f](const core::StreamingOutput& out) {
          outputs[f].push_back(out);
        });
    for (const auto& packet : in.perFlow[f]) estimator.onPacket(packet);
    estimator.finish();
  }
  return outputs;
}

void expectSameOutput(const core::StreamingOutput& got,
                      const core::StreamingOutput& want) {
  EXPECT_EQ(got.window, want.window);
  EXPECT_EQ(got.features, want.features);  // bit-identical doubles
  EXPECT_EQ(got.heuristic.window, want.heuristic.window);
  EXPECT_EQ(got.heuristic.bitrateKbps, want.heuristic.bitrateKbps);
  EXPECT_EQ(got.heuristic.fps, want.heuristic.fps);
  EXPECT_EQ(got.heuristic.frameJitterMs, want.heuristic.frameJitterMs);
  EXPECT_EQ(got.heuristic.frameCount, want.heuristic.frameCount);
  EXPECT_TRUE(got.predictions == want.predictions);  // bit-identical doubles
}

TEST(FlowTable, InternAssignsDenseIdsInFirstSeenOrder) {
  FlowTable table;
  const auto a = makeKey(1);
  const auto b = makeKey(2);
  const auto c = makeKey(3);
  EXPECT_EQ(table.intern(a), 0u);
  EXPECT_EQ(table.intern(b), 1u);
  EXPECT_EQ(table.intern(a), 0u);  // stable on re-sight
  EXPECT_EQ(table.intern(c), 2u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.keyOf(1), b);
  EXPECT_EQ(table.find(c), std::optional<FlowId>(2u));
  EXPECT_FALSE(table.find(makeKey(99)).has_value());
}

TEST(FlowTable, DistinguishesEveryTupleField) {
  FlowTable table;
  netflow::FlowKey base = makeKey(5);
  table.intern(base);
  for (auto mutate : {0, 1, 2, 3}) {
    netflow::FlowKey other = base;
    if (mutate == 0) other.srcIp ^= 1;
    if (mutate == 1) other.dstIp ^= 1;
    if (mutate == 2) other.srcPort ^= 1;
    if (mutate == 3) other.dstPort ^= 1;
    EXPECT_NE(table.intern(other), 0u);
  }
  EXPECT_EQ(table.size(), 5u);
}

TEST(SpscRing, PushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.tryPush(i));
  EXPECT_FALSE(ring.tryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.tryPop().has_value());  // empty
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.tryPush(i));
    auto v = ring.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

/// Capacity edges: 0 and 1 clamp to the minimum of 2, non-powers round up,
/// and a capacity with no power-of-two above it throws instead of spinning
/// the old round-up loop forever (or silently wrapping to 0 slots).
TEST(SpscRing, CapacityEdgesClampRoundAndReject) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_THROW(SpscRing<int>(SpscRing<int>::kMaxCapacity + 1),
               std::length_error);
  EXPECT_THROW(SpscRing<int>(std::numeric_limits<std::size_t>::max()),
               std::length_error);
}

TEST(SpscRing, MinimumCapacityRingStillMovesData) {
  SpscRing<int> ring(0);  // clamps to 2 usable slots
  ASSERT_TRUE(ring.tryPush(1));
  ASSERT_TRUE(ring.tryPush(2));
  EXPECT_FALSE(ring.tryPush(3));  // full at the clamped capacity
  EXPECT_EQ(ring.tryPop(), std::optional<int>(1));
  EXPECT_EQ(ring.tryPop(), std::optional<int>(2));
  EXPECT_FALSE(ring.tryPop().has_value());
}

/// Worker count x pinning: pinning is a placement hint and must never
/// change output.
class EngineDeterminism
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

/// The tentpole property: sharded output must equal the sequential
/// per-flow streaming estimator, window for window, bit for bit, for any
/// worker count — pinned or not (on platforms without affinity support
/// pinWorkers is an accepted no-op, so the matrix still runs everywhere).
TEST_P(EngineDeterminism, ShardedEqualsSequential) {
  const int workers = std::get<0>(GetParam());
  const bool pinned = std::get<1>(GetParam());
  const int flows = 13;  // coprime with worker counts: shards get uneven load
  const auto in = makeInterleaved(flows, 900);

  core::StreamingOptions streaming;
  const auto want = sequentialReference(in, streaming);

  EngineOptions options;
  options.streaming = streaming;
  options.numWorkers = workers;
  options.dispatchBatch = 64;
  options.pinWorkers = pinned;
  MultiFlowEngine engine(options);
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  const auto got = engine.finish();

  ASSERT_EQ(engine.flows().size(), static_cast<std::size_t>(flows));
  // Engine ids are first-seen dense (arrival order of first packets), which
  // need not match our key index; map key index -> engine id explicitly.
  std::vector<FlowId> idOfKey(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    const auto id = engine.flows().find(in.keys[static_cast<std::size_t>(f)]);
    ASSERT_TRUE(id.has_value());
    idOfKey[static_cast<std::size_t>(f)] = *id;
  }

  std::vector<std::vector<core::StreamingOutput>> byFlow(
      static_cast<std::size_t>(flows));
  std::size_t previousFlow = 0;
  std::int64_t previousWindow = -1;
  for (const auto& result : got) {
    // finish() merges ordered by (flow, window).
    if (result.flow != previousFlow) {
      EXPECT_GT(result.flow, previousFlow);
      previousWindow = -1;
    }
    EXPECT_GT(result.output.window, previousWindow);
    previousFlow = result.flow;
    previousWindow = result.output.window;
    byFlow[result.flow].push_back(result.output);
  }

  for (int f = 0; f < flows; ++f) {
    const auto& gotFlow = byFlow[idOfKey[static_cast<std::size_t>(f)]];
    const auto& wantFlow = want[static_cast<std::size_t>(f)];
    ASSERT_EQ(gotFlow.size(), wantFlow.size()) << "flow " << f;
    for (std::size_t w = 0; w < wantFlow.size(); ++w) {
      expectSameOutput(gotFlow[w], wantFlow[w]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, EngineDeterminism,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7, 8),
                                            ::testing::Bool()));

/// Mixed feature sets in one engine: odd flows resolve kRtp at admission
/// (RTP-headed traffic, payload-type classification, 24-wide features),
/// even flows stay kIpUdp. Output must be bit-identical across worker
/// counts and with cross-flow batching on — the batcher may never mix 14-
/// and 24-wide rows in one backend call, and the per-set window counters
/// must agree with the resolver split on every configuration.
TEST(EngineDeterminismMixedSets, WorkersAndBatchingBitExact) {
  const int flows = 9;
  const int packetsPerFlow = 700;
  Interleaved in;
  for (int f = 0; f < flows; ++f) {
    in.keys.push_back(makeKey(static_cast<std::uint32_t>(f)));
    const auto seed = 400 + static_cast<std::uint64_t>(f);
    in.perFlow.push_back(
        f % 2 == 1
            ? syntheticRtpFlowTrace(seed, packetsPerFlow, f * 37'000)
            : syntheticFlowTrace(seed, packetsPerFlow, f * 37'000));
  }
  for (int f = 0; f < flows; ++f) {
    for (const auto& packet : in.perFlow[static_cast<std::size_t>(f)]) {
      in.stream.emplace_back(static_cast<std::uint32_t>(f), packet);
    }
  }
  std::stable_sort(in.stream.begin(), in.stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrivalNs < b.second.arrivalNs;
                   });

  // Synthetic keys are 10.0.0.0/8 + index, so key parity == flow parity.
  const auto setOf = [](const netflow::FlowKey& key) {
    return (key.srcIp & 1u) != 0 ? features::FeatureSet::kRtp
                                 : features::FeatureSet::kIpUdp;
  };

  // One registry serving both widths for the same (vca, target).
  auto registry = std::make_shared<inference::ModelRegistry>();
  registry->registerBackend(
      "teams", inference::QoeTarget::kFrameRate,
      std::make_shared<inference::ForestBackend>(
          syntheticForest(6, 5, 30.0, 14), inference::QoeTarget::kFrameRate,
          "forest:teams/ipudp/frame_rate", 14));
  registry->registerBackend(
      "teams", inference::QoeTarget::kFrameRate,
      std::make_shared<inference::ForestBackend>(
          syntheticForest(6, 5, 24.0, 24), inference::QoeTarget::kFrameRate,
          "forest:teams/rtp/frame_rate", 24),
      features::FeatureSet::kRtp);

  core::StreamingOptions streaming;
  streaming.extraction.videoPt = kSyntheticVideoPt;
  streaming.extraction.rtxPt = kSyntheticRtxPt;

  struct Run {
    std::vector<std::vector<core::StreamingOutput>> byKey;
    EngineStats stats;
  };
  const auto run = [&](int workers, std::size_t batch) {
    EngineOptions options;
    options.streaming = streaming;
    options.numWorkers = workers;
    options.dispatchBatch = 64;
    options.registry = registry;
    options.targets = {inference::QoeTarget::kFrameRate};
    options.featureSetResolver = setOf;
    options.inferenceBatch = batch;
    options.inferenceFlushNs = scaledInferenceFlushNs(batch);
    MultiFlowEngine engine(options);
    for (const auto& [flow, packet] : in.stream) {
      engine.onPacket(in.keys[flow], packet);
    }
    const auto got = engine.finish();
    Run result;
    result.byKey.resize(static_cast<std::size_t>(flows));
    std::vector<std::vector<core::StreamingOutput>> byId(
        engine.flows().size());
    for (const auto& r : got) byId[r.flow].push_back(r.output);
    for (int f = 0; f < flows; ++f) {
      const auto id =
          engine.flows().find(in.keys[static_cast<std::size_t>(f)]);
      EXPECT_TRUE(id.has_value()) << "flow " << f;
      if (id.has_value()) {
        result.byKey[static_cast<std::size_t>(f)] = std::move(byId[*id]);
      }
    }
    result.stats = engine.stats();
    return result;
  };

  const auto baseline = run(1, 1);

  // Shape of the baseline: both families present, widths per resolver, a
  // frame-rate prediction on every window, counters matching the split.
  std::uint64_t wantIpUdp = 0;
  std::uint64_t wantRtp = 0;
  for (int f = 0; f < flows; ++f) {
    const auto& outputs = baseline.byKey[static_cast<std::size_t>(f)];
    ASSERT_FALSE(outputs.empty()) << "flow " << f;
    const std::size_t width = f % 2 == 1 ? 24u : 14u;
    for (const auto& out : outputs) {
      ASSERT_EQ(out.features.size(), width) << "flow " << f;
      EXPECT_TRUE(out.predictions.has(inference::QoeTarget::kFrameRate))
          << "flow " << f << " window " << out.window;
    }
    (f % 2 == 1 ? wantRtp : wantIpUdp) +=
        static_cast<std::uint64_t>(outputs.size());
  }
  EXPECT_GT(wantIpUdp, 0u);
  EXPECT_GT(wantRtp, 0u);
  EXPECT_EQ(baseline.stats.windowsIpUdp, wantIpUdp);
  EXPECT_EQ(baseline.stats.windowsRtp, wantRtp);

  for (const int workers : {1, 4}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      if (workers == 1 && batch == 1) continue;
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " batch=" + std::to_string(batch));
      const auto got = run(workers, batch);
      EXPECT_EQ(got.stats.windowsIpUdp, wantIpUdp);
      EXPECT_EQ(got.stats.windowsRtp, wantRtp);
      if (batch > 1) {
        EXPECT_GT(got.stats.inferenceBatches, 0u);
      }
      for (int f = 0; f < flows; ++f) {
        const auto& gotFlow = got.byKey[static_cast<std::size_t>(f)];
        const auto& wantFlow = baseline.byKey[static_cast<std::size_t>(f)];
        ASSERT_EQ(gotFlow.size(), wantFlow.size()) << "flow " << f;
        for (std::size_t w = 0; w < wantFlow.size(); ++w) {
          expectSameOutput(gotFlow[w], wantFlow[w]);
        }
      }
    }
  }
}

TEST(MultiFlowEngine, PollPreservesPerFlowOrder) {
  const auto in = makeInterleaved(5, 600);
  EngineOptions options;
  options.numWorkers = 3;
  options.dispatchBatch = 32;
  options.resultRingCapacity = 16;  // tiny ring: forces mid-run draining
  MultiFlowEngine engine(options);

  std::vector<EngineResult> polled;
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
    engine.poll(polled);
  }
  auto rest = engine.finish();
  polled.insert(polled.end(), rest.begin(), rest.end());

  // Map engine flow ids back to our key indices.
  std::vector<std::size_t> keyIndexOfId(in.keys.size());
  for (std::size_t f = 0; f < in.keys.size(); ++f) {
    const auto id = engine.flows().find(in.keys[f]);
    ASSERT_TRUE(id.has_value());
    keyIndexOfId[*id] = f;
  }

  const auto want = sequentialReference(in, options.streaming);
  std::map<FlowId, std::size_t> cursor;
  for (const auto& result : polled) {
    const auto f = keyIndexOfId[result.flow];
    const auto index = cursor[result.flow]++;
    ASSERT_LT(index, want[f].size());
    // Windows per flow must come out in emission order even when drained
    // through a ring that overflowed many times.
    expectSameOutput(result.output, want[f][index]);
  }
  std::size_t verified = 0;
  for (const auto& [id, count] : cursor) verified += count;
  std::size_t expected = 0;
  for (const auto& flow : want) expected += flow.size();
  EXPECT_EQ(verified, expected);
}

TEST(MultiFlowEngine, TinyBatchAndManyFlowsStillDeterministic) {
  const auto in = makeInterleaved(31, 120);
  const auto want = sequentialReference(in, {});
  EngineOptions options;
  options.numWorkers = 4;
  options.dispatchBatch = 1;  // worst-case dispatch granularity
  MultiFlowEngine engine(options);
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  const auto got = engine.finish();
  std::size_t total = 0;
  for (const auto& flow : want) total += flow.size();
  ASSERT_EQ(got.size(), total);
}

TEST(MultiFlowEngine, FinishIsIdempotentAndRejectsLatePackets) {
  const auto in = makeInterleaved(2, 200);
  MultiFlowEngine engine(EngineOptions{});
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  const auto first = engine.finish();
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(engine.finish().empty());
  netflow::Packet packet;
  packet.arrivalNs = 1;
  packet.sizeBytes = 1000;
  EXPECT_THROW(engine.onPacket(in.keys[0], packet), std::logic_error);
}

TEST(MultiFlowEngine, WorkerErrorSurfacesAtFinish) {
  MultiFlowEngine engine(EngineOptions{});
  const auto key = makeKey(0);
  netflow::Packet packet;
  packet.sizeBytes = 1000;
  packet.arrivalNs = common::kNanosPerSecond;
  engine.onPacket(key, packet);
  packet.arrivalNs = 0;  // out of order within the flow
  engine.onPacket(key, packet);
  EXPECT_THROW(engine.finish(), std::runtime_error);
}

TEST(FlowTable, EraseRetiresIdAndReinternsAsFreshGeneration) {
  FlowTable table;
  const auto key = makeKey(1);
  EXPECT_EQ(table.intern(key), 0u);
  table.erase(0);
  EXPECT_FALSE(table.find(key).has_value());
  EXPECT_EQ(table.activeSize(), 0u);
  EXPECT_EQ(table.size(), 1u);  // retired ids stay counted
  EXPECT_EQ(table.keyOf(0), key);

  // The returning flow gets a fresh id — the retired one is never reused,
  // so shard state keyed by id 0 can never alias the new generation.
  EXPECT_EQ(table.intern(key), 1u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.activeSize(), 1u);

  // Erasing the stale generation must not disturb the live one.
  table.erase(0);
  EXPECT_EQ(table.find(key), std::optional<FlowId>(1u));
}

/// Builds a hand-timed flow: `packets` packets of 1000 bytes every 10 ms
/// starting at `startNs`.
netflow::PacketTrace steadyTrace(common::TimeNs startNs, int packets) {
  netflow::PacketTrace trace;
  for (int i = 0; i < packets; ++i) {
    netflow::Packet p;
    p.arrivalNs = startNs + static_cast<common::TimeNs>(i) * 10'000'000LL;
    p.sizeBytes = 1000;
    trace.push_back(p);
  }
  return trace;
}

TEST(MultiFlowEngine, IdleFlowIsEvictedFinalizedAndReinternedFresh) {
  EngineOptions options;
  options.numWorkers = 2;
  options.dispatchBatch = 1;  // dispatch (and evict) without buffering delay
  options.idleTimeoutNs = 3 * common::kNanosPerSecond;
  MultiFlowEngine engine(options);

  const auto keyA = makeKey(1);
  const auto keyB = makeKey(2);

  // Flow A: 2 seconds of traffic, then silence.
  const auto burstA = steadyTrace(0, 200);
  for (const auto& p : burstA) engine.onPacket(keyA, p);
  // Flow B keeps the clock advancing well past A's idle timeout.
  for (const auto& p : steadyTrace(2 * common::kNanosPerSecond, 800)) {
    engine.onPacket(keyB, p);
  }

  auto stats = engine.stats();
  EXPECT_EQ(stats.flowsEvicted, 1u);
  EXPECT_EQ(stats.activeFlows, 1u);
  EXPECT_EQ(stats.flows, 2u);
  EXPECT_TRUE(engine.flowStats()[0].evicted);
  EXPECT_FALSE(engine.flows().find(keyA).has_value());

  // A returns: fresh generation, fresh id, fresh estimator (an arrival far
  // from the evicted generation's timeline must be accepted).
  netflow::Packet back;
  back.arrivalNs = 50 * common::kNanosPerSecond;
  back.sizeBytes = 1000;
  engine.onPacket(keyA, back);
  EXPECT_EQ(engine.flows().find(keyA), std::optional<FlowId>(2u));
  EXPECT_EQ(engine.stats().flows, 3u);

  const auto results = engine.finish();

  // Finalize-on-evict: generation 0 emitted exactly what a standalone
  // estimator fed the same burst emits, windows and fields bit-identical.
  std::vector<core::StreamingOutput> want;
  core::StreamingIpUdpEstimator reference(
      options.streaming,
      [&want](const core::StreamingOutput& out) { want.push_back(out); });
  for (const auto& p : burstA) reference.onPacket(p);
  reference.finish();

  std::vector<core::StreamingOutput> gotA;
  for (const auto& result : results) {
    if (result.flow == 0) gotA.push_back(result.output);
  }
  ASSERT_EQ(gotA.size(), want.size());
  for (std::size_t w = 0; w < want.size(); ++w) {
    expectSameOutput(gotA[w], want[w]);
  }

  // Per-flow stats survived the eviction.
  const auto& flowStats = engine.flowStats();
  ASSERT_EQ(flowStats.size(), 3u);
  EXPECT_EQ(flowStats[0].key, keyA);
  EXPECT_EQ(flowStats[0].packets, burstA.size());
  EXPECT_EQ(flowStats[0].bytes, burstA.size() * 1000u);
  EXPECT_EQ(flowStats[0].firstArrivalNs, burstA.front().arrivalNs);
  EXPECT_EQ(flowStats[0].lastArrivalNs, burstA.back().arrivalNs);
  EXPECT_EQ(flowStats[0].windowsEmitted, want.size());
  EXPECT_EQ(flowStats[2].key, keyA);
  EXPECT_FALSE(flowStats[2].evicted);
  EXPECT_EQ(flowStats[2].packets, 1u);
}

TEST(MultiFlowEngine, EvictionBoundsResidentFlowsOnLongRuns) {
  EngineOptions options;
  options.numWorkers = 2;
  options.dispatchBatch = 16;
  options.idleTimeoutNs = 2 * common::kNanosPerSecond;
  MultiFlowEngine engine(options);

  // 120 flows, each a half-second burst starting one second after the
  // previous — a long tail of dead sessions a monitor must not accumulate.
  constexpr int kFlows = 120;
  constexpr int kPacketsPerFlow = 50;
  std::size_t maxActive = 0;
  for (int f = 0; f < kFlows; ++f) {
    const auto start = static_cast<common::TimeNs>(f) * common::kNanosPerSecond;
    for (const auto& p : steadyTrace(start, kPacketsPerFlow)) {
      engine.onPacket(makeKey(static_cast<std::uint32_t>(f)), p);
    }
    maxActive = std::max(maxActive, engine.stats().activeFlows);
  }
  std::vector<EngineResult> drained;
  engine.poll(drained);
  const auto results = engine.finish();

  // Resident state stayed bounded by concurrency, not by flows ever seen.
  EXPECT_LE(maxActive, 8u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.flows, static_cast<std::size_t>(kFlows));
  EXPECT_GE(stats.flowsEvicted, static_cast<std::uint64_t>(kFlows - 8));

  // Accounting remains queryable for every evicted generation, and every
  // drained result was attributed.
  ASSERT_EQ(engine.flowStats().size(), static_cast<std::size_t>(kFlows));
  std::uint64_t windowsAccounted = 0;
  for (const auto& fs : engine.flowStats()) {
    EXPECT_EQ(fs.packets, static_cast<std::uint64_t>(kPacketsPerFlow));
    windowsAccounted += fs.windowsEmitted;
  }
  EXPECT_EQ(windowsAccounted, drained.size() + results.size());
}

// ------------------------------------------------- live-mode pump (PR 5)

TEST(MultiFlowEngine, RejectsNonPositiveWindowAtConstruction) {
  EngineOptions options;
  options.streaming.windowNs = 0;
  EXPECT_THROW(MultiFlowEngine{options}, std::invalid_argument);
  options.streaming.windowNs = -1;
  EXPECT_THROW(MultiFlowEngine{options}, std::invalid_argument);
}

/// Drains `engine` until `atLeast` results arrived or ~5 s of wall time
/// passed (the workers process pump control items asynchronously).
std::size_t pollUntil(MultiFlowEngine& engine,
                      std::vector<EngineResult>& results,
                      std::size_t atLeast) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (results.size() < atLeast &&
         std::chrono::steady_clock::now() < deadline) {
    engine.poll(results);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.poll(results);
  return results.size();
}

TEST(MultiFlowEngine, PumpEvictsIdleFlowsAndFlushesPendingWithoutPackets) {
  EngineOptions options;
  options.numWorkers = 2;
  // Large dispatch batch: without the pump, everything would sit in the
  // dispatcher-side pending buffer until finish().
  options.dispatchBatch = 100'000;
  options.idleTimeoutNs = 3 * common::kNanosPerSecond;
  MultiFlowEngine engine(options);

  const auto burst = steadyTrace(0, 300);  // ~3 s of traffic, then silence
  for (const auto& p : burst) engine.onPacket(makeKey(1), p);

  // Reference: a standalone estimator over the same burst, finalized.
  std::vector<core::StreamingOutput> want;
  core::StreamingIpUdpEstimator reference(
      options.streaming,
      [&want](const core::StreamingOutput& out) { want.push_back(out); });
  for (const auto& p : burst) reference.onPacket(p);
  reference.finish();
  ASSERT_GE(want.size(), 2u);

  // No packet will ever arrive again; the pump alone must evict, finalize,
  // and surface the flow's windows.
  engine.pump(burst.back().arrivalNs + options.idleTimeoutNs + 1);
  auto stats = engine.stats();
  EXPECT_EQ(stats.flowsEvicted, 1u);
  EXPECT_EQ(stats.activeFlows, 0u);
  EXPECT_TRUE(engine.flowStats()[0].evicted);

  std::vector<EngineResult> results;
  ASSERT_EQ(pollUntil(engine, results, want.size()), want.size());
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ(results[w].flow, 0u);
    expectSameOutput(results[w].output, want[w]);
  }

  // finish() has nothing left for the evicted generation.
  EXPECT_TRUE(engine.finish().empty());
}

TEST(MultiFlowEngine, PumpFlushesBatcherDeadlineOnQuietStream) {
  auto registry = std::make_shared<inference::ModelRegistry>();
  registry->registerBackend(
      "teams", inference::QoeTarget::kFrameRate,
      std::make_shared<inference::ForestBackend>(
          syntheticForest(4, 4, 30.0), inference::QoeTarget::kFrameRate,
          "forest:teams/frame_rate"));

  EngineOptions options;
  options.numWorkers = 1;
  options.dispatchBatch = 1;  // windows reach the shard batcher immediately
  options.registry = registry;
  options.targets = {inference::QoeTarget::kFrameRate};
  options.inferenceBatch = 64;  // far more than the trace produces
  options.inferenceFlushNs = 60 * common::kNanosPerSecond;  // never mid-trace
  MultiFlowEngine engine(options);

  const auto burst = steadyTrace(0, 500);  // ~5 s of traffic
  for (const auto& p : burst) engine.onPacket(makeKey(1), p);

  std::vector<core::StreamingOutput> want;
  core::StreamingIpUdpEstimator reference(
      options.streaming,
      [&want](const core::StreamingOutput& out) { want.push_back(out); },
      registry->resolve("teams", inference::QoeTarget::kFrameRate));
  for (const auto& p : burst) reference.onPacket(p);
  // No finish(): only windows already emitted mid-stream are expected —
  // those are exactly what the batcher is holding hostage.
  ASSERT_GE(want.size(), 3u);

  // The stream is quiet and the deadline far away: pumping a stream time
  // past the deadline is the only way these windows can surface.
  engine.pump(burst.back().arrivalNs + options.inferenceFlushNs + 1);
  std::vector<EngineResult> results;
  ASSERT_EQ(pollUntil(engine, results, want.size()), want.size());
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ(results[w].flow, 0u);
    expectSameOutput(results[w].output, want[w]);
    EXPECT_TRUE(results[w].output.predictions.has(
        inference::QoeTarget::kFrameRate));
  }
  EXPECT_GT(engine.stats().inferenceBatches, 0u);
  engine.finish();
}

TEST(MultiFlowEngine, PumpIsMonotoneAndRejectedAfterFinish) {
  EngineOptions options;
  options.numWorkers = 1;
  MultiFlowEngine engine(options);
  for (const auto& p : steadyTrace(0, 50)) engine.onPacket(makeKey(1), p);
  // An old timestamp must not rewind the engine clock (no spurious
  // evictions, no clock regressions on the shards).
  engine.pump(-100);
  engine.pump(common::kNanosPerSecond);
  const auto results = engine.finish();
  EXPECT_FALSE(results.empty());
  EXPECT_THROW(engine.pump(2 * common::kNanosPerSecond), std::logic_error);
}

TEST(MultiFlowEngine, StatsCountPacketsFlowsAndResults) {
  const auto in = makeInterleaved(4, 300);
  EngineOptions options;
  options.numWorkers = 2;
  MultiFlowEngine engine(options);
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  const auto results = engine.finish();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.packetsIngested, in.stream.size());
  EXPECT_EQ(stats.flows, 4u);
  EXPECT_EQ(stats.resultsMerged, results.size());
  EXPECT_GT(stats.batchesDispatched, 0u);
}

// --- Load-adaptive sharding -----------------------------------------------

/// `FlowKeyHash` feeds both the flow table's buckets and the kHash shard
/// modulo; random 5-tuples must land near-uniformly over small shard
/// counts or one worker inherits a biased share of every deployment.
TEST(FlowKeyHash, DistributesRandomTuplesNearUniformlyOverShards) {
  constexpr int kTuples = 8192;
  common::Rng rng(2026);
  std::vector<std::size_t> hashes;
  hashes.reserve(kTuples);
  FlowKeyHash hash;
  for (int i = 0; i < kTuples; ++i) {
    netflow::FlowKey key;
    key.srcIp = static_cast<std::uint32_t>(rng.engine()());
    key.dstIp = static_cast<std::uint32_t>(rng.engine()());
    key.srcPort = static_cast<std::uint16_t>(rng.engine()());
    key.dstPort = static_cast<std::uint16_t>(rng.engine()());
    hashes.push_back(hash(key));
  }
  for (const std::size_t shards : {2u, 4u, 8u}) {
    std::vector<int> buckets(shards, 0);
    for (const auto h : hashes) ++buckets[h % shards];
    const double expected = static_cast<double>(kTuples) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(buckets[s], expected * 0.75)
          << "shards=" << shards << " bucket=" << s;
      EXPECT_LT(buckets[s], expected * 1.25)
          << "shards=" << shards << " bucket=" << s;
    }
  }
}

TEST(FlowDemuxCache, ServesLiveIdsAndForgetsEvicted) {
  FlowDemuxCache cache;
  const auto a = makeKey(1);
  const auto b = makeKey(2);
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.remember(a, 7);
  cache.remember(b, 9);
  EXPECT_EQ(cache.lookup(a), std::optional<FlowId>(7u));
  EXPECT_EQ(cache.lookup(b), std::optional<FlowId>(9u));
  // Eviction invalidates; a later generation re-installs under a new id.
  cache.forget(a);
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.remember(a, 12);
  EXPECT_EQ(cache.lookup(a), std::optional<FlowId>(12u));
  EXPECT_EQ(cache.lookups(), 5u);
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(FlowDemuxCache, DirectMappedCollisionDisplacesNotCorrupts) {
  // Find two keys sharing a slot; the second displaces the first, and a
  // forget() of the displaced key must not clobber the resident one.
  FlowDemuxCache cache;
  FlowKeyHash hash;
  const auto a = makeKey(0);
  netflow::FlowKey colliding;
  bool found = false;
  for (std::uint32_t i = 1; i < 100'000; ++i) {
    colliding = makeKey(i);
    if ((hash(colliding) % FlowDemuxCache::kSlots) ==
        (hash(a) % FlowDemuxCache::kSlots)) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  cache.remember(a, 1);
  cache.remember(colliding, 2);
  EXPECT_FALSE(cache.lookup(a).has_value());  // displaced
  EXPECT_EQ(cache.lookup(colliding), std::optional<FlowId>(2u));
  cache.forget(a);  // displaced long ago: must be a no-op
  EXPECT_EQ(cache.lookup(colliding), std::optional<FlowId>(2u));
}

/// kHash is the seed behavior and the default: the one-liner contract
/// (shard = id mod workers, for the flow's whole life) regression-tested
/// on its own, independent of the adaptive machinery.
TEST(MultiFlowEngine, HashPlacementKeepsModuloContract) {
  const auto in = makeInterleaved(13, 200);
  EngineOptions options;
  options.numWorkers = 4;
  MultiFlowEngine engine(options);
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  (void)engine.finish();
  ASSERT_EQ(engine.flows().size(), 13u);
  for (FlowId id = 0; id < 13; ++id) {
    EXPECT_EQ(engine.shardOf(id), id % 4u) << "flow " << id;
  }
  EXPECT_EQ(engine.stats().migrations, 0u);
}

TEST(MultiFlowEngine, PlacementStringsRoundTripAndRejectUnknown) {
  EXPECT_EQ(placementFromString("hash"), Placement::kHash);
  EXPECT_EQ(placementFromString("least-loaded"), Placement::kLeastLoaded);
  EXPECT_FALSE(placementFromString("bogus").has_value());
  EXPECT_EQ(toString(Placement::kHash), "hash");
  EXPECT_EQ(toString(Placement::kLeastLoaded), "least-loaded");
}

/// One elephant among mice: flow 0 carries most of the packets, the shape
/// that makes static hashing pin a shard and is the reason migration
/// exists.
Interleaved makeSkewedInterleaved(int flows, int elephantPackets,
                                  int mousePackets) {
  Interleaved in;
  for (int f = 0; f < flows; ++f) {
    in.keys.push_back(makeKey(static_cast<std::uint32_t>(f)));
    in.perFlow.push_back(syntheticFlowTrace(
        31 + static_cast<std::uint64_t>(f),
        f == 0 ? elephantPackets : mousePackets, /*startNs=*/f * 23'000));
  }
  for (int f = 0; f < flows; ++f) {
    for (const auto& packet : in.perFlow[static_cast<std::size_t>(f)]) {
      in.stream.emplace_back(static_cast<std::uint32_t>(f), packet);
    }
  }
  std::stable_sort(in.stream.begin(), in.stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrivalNs < b.second.arrivalNs;
                   });
  return in;
}

class EnginePlacementDeterminism
    : public ::testing::TestWithParam<std::tuple<int, Placement, bool>> {};

/// The adaptive-sharding leg of the determinism contract: placement policy
/// and live migration may change WHERE a flow runs, never WHAT it emits.
/// Every cell of workers x placement x migration must be bit-identical to
/// the sequential per-flow reference on a skewed (one-elephant) stream fed
/// with a poll cadence, so migrations can actually occur mid-run.
TEST_P(EnginePlacementDeterminism, SkewedStreamBitIdenticalToSequential) {
  const int workers = std::get<0>(GetParam());
  const Placement placement = std::get<1>(GetParam());
  const bool migrate = std::get<2>(GetParam());
  const int flows = 9;
  const auto in = makeSkewedInterleaved(flows, 2600, 260);

  core::StreamingOptions streaming;
  const auto want = sequentialReference(in, streaming);

  EngineOptions options;
  options.streaming = streaming;
  options.numWorkers = workers;
  options.dispatchBatch = 16;
  options.placement = placement;
  options.migrateFlows = migrate;
  options.migrateImbalance = 1.5;  // aggressive: let imbalance trigger early
  MultiFlowEngine engine(options);
  std::vector<EngineResult> polled;
  std::size_t fed = 0;
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
    if (++fed % 113 == 0) engine.poll(polled);
  }
  for (auto& result : engine.finish()) polled.push_back(std::move(result));

  std::vector<FlowId> idOfKey(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    const auto id = engine.flows().find(in.keys[static_cast<std::size_t>(f)]);
    ASSERT_TRUE(id.has_value());
    idOfKey[static_cast<std::size_t>(f)] = *id;
  }
  std::vector<std::vector<core::StreamingOutput>> byFlow(
      static_cast<std::size_t>(flows));
  for (auto& result : polled) {
    byFlow[result.flow].push_back(std::move(result.output));
  }
  for (int f = 0; f < flows; ++f) {
    const auto& gotFlow = byFlow[idOfKey[static_cast<std::size_t>(f)]];
    const auto& wantFlow = want[static_cast<std::size_t>(f)];
    ASSERT_EQ(gotFlow.size(), wantFlow.size()) << "flow " << f;
    for (std::size_t w = 0; w < wantFlow.size(); ++w) {
      expectSameOutput(gotFlow[w], wantFlow[w]);
    }
  }
  // Load accounting closes: every ingested packet was dispatched to some
  // shard and processed there by the time finish() returned.
  const auto stats = engine.stats();
  ASSERT_EQ(stats.shardLoads.size(), static_cast<std::size_t>(workers));
  std::uint64_t dispatched = 0;
  std::uint64_t processed = 0;
  std::uint64_t migrationsIn = 0;
  for (const auto& load : stats.shardLoads) {
    dispatched += load.packetsDispatched;
    processed += load.packetsProcessed;
    migrationsIn += load.migrationsIn;
    EXPECT_EQ(load.backlog, 0u);
  }
  EXPECT_EQ(dispatched, stats.packetsIngested);
  EXPECT_EQ(processed, stats.packetsIngested);
  EXPECT_EQ(migrationsIn, stats.migrations);
  if (!migrate) {
    EXPECT_EQ(stats.migrations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlacementMatrix, EnginePlacementDeterminism,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(Placement::kHash,
                                         Placement::kLeastLoaded),
                       ::testing::Bool()));

/// Forces a migration and proves the whole protocol end to end: tiny
/// result rings park the elephant's worker (backlog builds), the
/// imbalance trigger fires, packets arriving mid-handover are parked and
/// replayed, and the flow ends up on a different shard — with output still
/// bit-identical to the sequential reference.
TEST(MultiFlowEngine, ForcedMigrationMovesElephantAndPreservesOutput) {
  const int flows = 4;  // with 2 workers and kHash: flows {0,2} share shard 0
  const auto in = makeSkewedInterleaved(flows, 4000, 150);
  core::StreamingOptions streaming;
  const auto want = sequentialReference(in, streaming);

  EngineOptions options;
  options.streaming = streaming;
  options.numWorkers = 2;
  options.dispatchBatch = 8;
  options.resultRingCapacity = 0;  // clamps to 2: the elephant's worker parks
  options.migrateFlows = true;
  options.migrateImbalance = 1.0;
  MultiFlowEngine engine(options);
  // No poll during the feed: the source worker stays parked on its full
  // ring, so the handover resolves under maximum backlog (mostly inside
  // finish(), with a pile of parked packets to replay).
  for (const auto& [flow, packet] : in.stream) {
    engine.onPacket(in.keys[flow], packet);
  }
  const auto got = engine.finish();

  const auto stats = engine.stats();
  EXPECT_GE(stats.migrations, 1u);
  const auto elephant = engine.flows().find(in.keys[0]);
  ASSERT_TRUE(elephant.has_value());
  // kHash placed the elephant on shard id%2; at least one migration moved
  // some flow, and the per-shard counters agree with the total.
  std::uint64_t migrationsIn = 0;
  std::uint64_t migrationsOut = 0;
  for (const auto& load : stats.shardLoads) {
    migrationsIn += load.migrationsIn;
    migrationsOut += load.migrationsOut;
    EXPECT_GT(load.ewmaBatchNs, 0.0);
  }
  EXPECT_EQ(migrationsIn, stats.migrations);
  EXPECT_EQ(migrationsOut, stats.migrations);

  std::vector<FlowId> idOfKey(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    const auto id = engine.flows().find(in.keys[static_cast<std::size_t>(f)]);
    ASSERT_TRUE(id.has_value());
    idOfKey[static_cast<std::size_t>(f)] = *id;
  }
  std::vector<std::vector<core::StreamingOutput>> byFlow(
      static_cast<std::size_t>(flows));
  for (const auto& result : got) byFlow[result.flow].push_back(result.output);
  for (int f = 0; f < flows; ++f) {
    const auto& gotFlow = byFlow[idOfKey[static_cast<std::size_t>(f)]];
    const auto& wantFlow = want[static_cast<std::size_t>(f)];
    ASSERT_EQ(gotFlow.size(), wantFlow.size()) << "flow " << f;
    for (std::size_t w = 0; w < wantFlow.size(); ++w) {
      expectSameOutput(gotFlow[w], wantFlow[w]);
    }
  }
}

/// The dispatcher-side demux cache is accounted and actually hit on bursty
/// interleaves, and an evicted generation is never served stale.
TEST(MultiFlowEngine, DemuxCacheCountsHitsAndSurvivesEviction) {
  EngineOptions options;
  options.numWorkers = 2;
  options.idleTimeoutNs = 500 * common::kNanosPerMilli;
  MultiFlowEngine engine(options);
  const auto key = makeKey(3);
  // Burst, long gap (evicts), burst again: the second generation must get
  // a fresh id through the cache-miss path.
  for (const auto& packet : steadyTrace(0, 200)) engine.onPacket(key, packet);
  const auto firstGen = engine.flows().find(key);
  ASSERT_TRUE(firstGen.has_value());
  engine.pump(10 * common::kNanosPerSecond);
  EXPECT_FALSE(engine.flows().find(key).has_value());
  for (const auto& packet : steadyTrace(11 * common::kNanosPerSecond, 50)) {
    engine.onPacket(key, packet);
  }
  const auto secondGen = engine.flows().find(key);
  ASSERT_TRUE(secondGen.has_value());
  EXPECT_NE(*secondGen, *firstGen);
  (void)engine.finish();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.demuxCacheLookups, stats.packetsIngested);
  // All but the two admission packets hit the single-flow cache line.
  EXPECT_EQ(stats.demuxCacheHits, stats.packetsIngested - 2);
}

}  // namespace
}  // namespace vcaqoe::engine
