#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace vcaqoe::ml {
namespace {

// ---------------------------------------------------------------- dataset

TEST(Dataset, AddRowChecksWidth) {
  Dataset d;
  d.featureNames = {"a", "b"};
  d.addRow({1.0, 2.0}, 3.0);
  EXPECT_EQ(d.rows(), 1u);
  EXPECT_THROW(d.addRow({1.0}, 3.0), std::invalid_argument);
}

TEST(Dataset, AppendChecksNames) {
  Dataset a;
  a.featureNames = {"x"};
  a.addRow({1.0}, 0.0);
  Dataset b;
  b.featureNames = {"x"};
  b.addRow({2.0}, 1.0);
  a.append(b);
  EXPECT_EQ(a.rows(), 2u);
  Dataset c;
  c.featureNames = {"y"};
  EXPECT_THROW(a.append(c), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i < 5; ++i) d.addRow({static_cast<double>(i)}, i * 10.0);
  const std::vector<std::size_t> pick = {4, 0, 2};
  const Dataset sub = d.subset(pick);
  ASSERT_EQ(sub.rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.x[0][0], 4.0);
  EXPECT_DOUBLE_EQ(sub.y[1], 0.0);
  EXPECT_DOUBLE_EQ(sub.y[2], 20.0);
}

TEST(Dataset, ValidateCatchesMismatch) {
  Dataset d;
  d.featureNames = {"x"};
  d.addRow({1.0}, 2.0);
  d.y.push_back(99.0);
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(KFold, BalancedAssignment) {
  common::Rng rng(1);
  const auto assignment = kFoldAssignment(100, 5, rng);
  std::vector<int> counts(5, 0);
  for (const int fold : assignment) {
    ASSERT_GE(fold, 0);
    ASSERT_LT(fold, 5);
    ++counts[static_cast<std::size_t>(fold)];
  }
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST(KFold, FoldIndicesPartition) {
  common::Rng rng(2);
  const auto assignment = kFoldAssignment(53, 5, rng);
  std::vector<bool> seen(53, false);
  for (int fold = 0; fold < 5; ++fold) {
    const auto split = foldIndices(assignment, fold);
    EXPECT_EQ(split.train.size() + split.test.size(), 53u);
    for (const auto i : split.test) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(KFold, RejectsTinyK) {
  common::Rng rng(3);
  EXPECT_THROW(kFoldAssignment(10, 1, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- tree

Dataset stepDataset(int n, std::uint64_t seed) {
  // y = 10 when x0 > 0.5 else 2; x1 is noise.
  Dataset d;
  d.featureNames = {"x0", "x1"};
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, 1.0);
    d.addRow({x0, rng.uniform(0.0, 1.0)}, x0 > 0.5 ? 10.0 : 2.0);
  }
  return d;
}

TEST(DecisionTree, LearnsStepFunction) {
  const Dataset d = stepDataset(500, 1);
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  DecisionTree tree;
  common::Rng rng(2);
  tree.fit(d, idx, TreeTask::kRegression, TreeOptions{}, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.5}), 10.0, 0.5);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.1, 0.5}), 2.0, 0.5);
}

TEST(DecisionTree, ImportanceOnInformativeFeature) {
  const Dataset d = stepDataset(500, 3);
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  DecisionTree tree;
  common::Rng rng(4);
  tree.fit(d, idx, TreeTask::kRegression, TreeOptions{}, rng);
  const auto& imp = tree.featureImportance();
  EXPECT_GT(imp[0], 10.0 * std::max(imp[1], 1e-12));
}

TEST(DecisionTree, ClassificationXorNeedsDepth) {
  // XOR of two thresholds: no single split separates it, depth 2 does.
  Dataset d;
  d.featureNames = {"a", "b"};
  common::Rng rng(5);
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    const int label = (a > 0.5) != (b > 0.5) ? 1 : 0;
    d.addRow({a, b}, label);
  }
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  DecisionTree tree;
  common::Rng fitRng(6);
  tree.fit(d, idx, TreeTask::kClassification, TreeOptions{}, fitRng);
  int correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    if (tree.predict(d.x[i]) == d.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / d.rows(), 0.95);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset d = stepDataset(500, 7);
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  DecisionTree stump;
  TreeOptions opts;
  opts.maxDepth = 1;
  common::Rng rng(8);
  stump.fit(d, idx, TreeTask::kRegression, opts, rng);
  EXPECT_LE(stump.nodeCount(), 3u);
}

TEST(DecisionTree, ConstantTargetSingleLeaf) {
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i < 50; ++i) d.addRow({static_cast<double>(i)}, 7.0);
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  DecisionTree tree;
  common::Rng rng(9);
  tree.fit(d, idx, TreeTask::kRegression, TreeOptions{}, rng);
  EXPECT_EQ(tree.nodeCount(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{123.0}), 7.0);
}

TEST(DecisionTree, ThrowsOnEmptyFitAndEarlyPredict) {
  Dataset d;
  DecisionTree tree;
  common::Rng rng(10);
  EXPECT_THROW(tree.fit(d, {}, TreeTask::kRegression, TreeOptions{}, rng),
               std::invalid_argument);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
}

// ---------------------------------------------------------------- forest

TEST(RandomForest, RegressionOnNoisyLinear) {
  Dataset d;
  d.featureNames = {"x", "noise"};
  common::Rng rng(11);
  for (int i = 0; i < 1500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    d.addRow({x, rng.uniform(0.0, 1.0)}, 3.0 * x + rng.normal(0.0, 0.5));
  }
  RandomForest forest;
  ForestOptions opts;
  opts.numTrees = 30;
  forest.fit(d, TreeTask::kRegression, opts, 12);
  double mae = 0.0;
  common::Rng testRng(13);
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const double x = testRng.uniform(0.5, 9.5);
    mae += std::abs(forest.predict(std::vector<double>{x, 0.5}) - 3.0 * x);
  }
  EXPECT_LT(mae / n, 0.6);
}

TEST(RandomForest, ClassificationMajorityVote) {
  Dataset d;
  d.featureNames = {"x"};
  common::Rng rng(14);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x}, x > 0.6 ? 2.0 : (x > 0.3 ? 1.0 : 0.0));
  }
  RandomForest forest;
  ForestOptions opts;
  opts.numTrees = 25;
  forest.fit(d, TreeTask::kClassification, opts, 15);
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{0.1}), 0.0);
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{0.45}), 1.0);
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{0.9}), 2.0);
}

TEST(RandomForest, DeterministicAcrossThreadCounts) {
  const Dataset d = stepDataset(400, 16);
  RandomForest a;
  RandomForest b;
  ForestOptions single;
  single.numTrees = 12;
  single.threads = 1;
  ForestOptions multi = single;
  multi.threads = 8;
  a.fit(d, TreeTask::kRegression, single, 99);
  b.fit(d, TreeTask::kRegression, multi, 99);
  common::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(0.0, 1.0),
                                   rng.uniform(0.0, 1.0)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, ImportanceNormalized) {
  const Dataset d = stepDataset(400, 18);
  RandomForest forest;
  ForestOptions opts;
  opts.numTrees = 15;
  forest.fit(d, TreeTask::kRegression, opts, 19);
  const auto imp = forest.featureImportance();
  double sum = 0.0;
  for (const double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const auto ranked = forest.rankedImportance();
  EXPECT_EQ(ranked[0].first, "x0");
  EXPECT_GE(ranked[0].second, ranked[1].second);
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest forest;
  EXPECT_THROW(forest.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(CrossValidation, OutOfFoldPredictionsReasonable) {
  const Dataset d = stepDataset(600, 20);
  ForestOptions opts;
  opts.numTrees = 15;
  const auto cv = crossValidate(d, TreeTask::kRegression, opts, 5, 21);
  ASSERT_EQ(cv.predicted.size(), d.rows());
  EXPECT_LT(common::meanAbsoluteError(cv.predicted, cv.truth), 0.8);
}

// ---------------------------------------------------------------- metrics

TEST(Confusion, CountsAndAccuracy) {
  const std::vector<double> truth = {0, 0, 1, 1, 1, 2};
  const std::vector<double> pred = {0, 1, 1, 1, 0, 2};
  const ConfusionMatrix cm(truth, pred);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 0), 1u);
  EXPECT_EQ(cm.rowTotal(1), 3u);
  EXPECT_NEAR(cm.rowFraction(1, 1), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(cm.labels(), (std::vector<int>{0, 1, 2}));
}

TEST(Confusion, SizeMismatchThrows) {
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_THROW(ConfusionMatrix(a, b), std::invalid_argument);
}

TEST(Confusion, UnseenRowFractionZero) {
  const std::vector<double> truth = {0.0};
  const std::vector<double> pred = {0.0};
  const ConfusionMatrix cm(truth, pred);
  EXPECT_DOUBLE_EQ(cm.rowFraction(5, 0), 0.0);
}

TEST(TeamsBins, PaperThresholds) {
  // low <= 240 < medium <= 480 < high (§5.1.5).
  EXPECT_EQ(teamsResolutionBin(90), 0);
  EXPECT_EQ(teamsResolutionBin(240), 0);
  EXPECT_EQ(teamsResolutionBin(270), 1);
  EXPECT_EQ(teamsResolutionBin(404), 1);
  EXPECT_EQ(teamsResolutionBin(480), 1);
  EXPECT_EQ(teamsResolutionBin(540), 2);
  EXPECT_EQ(teamsResolutionBin(720), 2);
  EXPECT_EQ(teamsResolutionBinName(0), "Low");
  EXPECT_EQ(teamsResolutionBinName(2), "High");
}

// Property: forest regression never predicts outside the training target
// range (averaging of leaf means).
class ForestRange : public ::testing::TestWithParam<int> {};

TEST_P(ForestRange, PredictionsWithinTargetRange) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Dataset d;
  d.featureNames = {"a", "b", "c"};
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 300; ++i) {
    const double y = rng.uniform(-50.0, 50.0);
    lo = std::min(lo, y);
    hi = std::max(hi, y);
    d.addRow({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
              rng.uniform(0.0, 1.0)},
             y);
  }
  RandomForest forest;
  ForestOptions opts;
  opts.numTrees = 10;
  forest.fit(d, TreeTask::kRegression, opts,
             static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    const double p = forest.predict(std::vector<double>{
        rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0),
        rng.uniform(-1.0, 2.0)});
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestRange, ::testing::Range(1, 7));

}  // namespace
}  // namespace vcaqoe::ml
