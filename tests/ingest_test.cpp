#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <span>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "core/streaming.hpp"
#include "engine/multi_flow_engine.hpp"
#include "engine/synthetic.hpp"
#include "inference/backends.hpp"
#include "inference/model_registry.hpp"
#include "ingest/live_capture.hpp"
#include "ingest/packet_source.hpp"
#include "ingest/pcap_replay.hpp"
#include "ingest/replay_driver.hpp"
#include "netflow/pcap.hpp"

namespace vcaqoe::ingest {
namespace {

/// A globally arrival-ordered interleaved stream of synthetic VCA flows —
/// exactly what a capture point records.
std::vector<SourcePacket> makeStream(int flows, int packetsPerFlow,
                                     std::uint64_t seed = 21) {
  std::vector<SourcePacket> stream;
  for (int f = 0; f < flows; ++f) {
    const auto key = engine::syntheticFlowKey(static_cast<std::uint32_t>(f));
    const auto trace = engine::syntheticFlowTrace(
        seed + static_cast<std::uint64_t>(f), packetsPerFlow,
        /*startNs=*/f * 53'000);
    for (const auto& packet : trace) stream.push_back({key, packet});
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const SourcePacket& a, const SourcePacket& b) {
                     return a.packet.arrivalNs < b.packet.arrivalNs;
                   });
  return stream;
}

std::vector<std::uint8_t> writeCapture(const std::vector<SourcePacket>& s) {
  netflow::PcapWriter writer;
  for (const auto& sp : s) writer.write(sp.flow, sp.packet);
  return writer.bytes();
}

void expectSameOutput(const core::StreamingOutput& got,
                      const core::StreamingOutput& want) {
  EXPECT_EQ(got.window, want.window);
  EXPECT_EQ(got.features, want.features);  // bit-identical doubles
  EXPECT_EQ(got.heuristic.window, want.heuristic.window);
  EXPECT_EQ(got.heuristic.bitrateKbps, want.heuristic.bitrateKbps);
  EXPECT_EQ(got.heuristic.fps, want.heuristic.fps);
  EXPECT_EQ(got.heuristic.frameJitterMs, want.heuristic.frameJitterMs);
  EXPECT_EQ(got.heuristic.frameCount, want.heuristic.frameCount);
  EXPECT_TRUE(got.predictions == want.predictions);  // bit-identical doubles
}

/// Direct feed reference: same packets straight into onPacket, canonical
/// order via finish().
std::vector<engine::EngineResult> directFeed(
    const std::vector<SourcePacket>& stream,
    const engine::EngineOptions& options) {
  engine::MultiFlowEngine eng(options);
  for (const auto& sp : stream) eng.onPacket(sp.flow, sp.packet);
  return eng.finish();
}

class ReplayDeterminism : public ::testing::TestWithParam<int> {};

/// The acceptance gate of the ingest path: a capture written by PcapWriter
/// and replayed through PcapReplaySource -> MultiFlowEngine yields
/// bit-identical EngineResults to feeding the same packets directly.
TEST_P(ReplayDeterminism, ReplayedCaptureMatchesDirectFeed) {
  engine::EngineOptions options;
  options.numWorkers = GetParam();
  options.dispatchBatch = 64;
  options.resultRingCapacity = 128;  // small ring: exercises mid-replay polls

  const auto stream = makeStream(9, 700);
  const auto want = directFeed(stream, options);

  const auto capture = writeCapture(stream);
  engine::MultiFlowEngine eng(options);
  PcapReplaySource source{std::span<const std::uint8_t>(capture)};
  const auto report = replay(source, eng, /*pollEvery=*/256);

  EXPECT_EQ(report.packets, stream.size());
  EXPECT_EQ(source.parseStats().recordsYielded, stream.size());
  ASSERT_EQ(report.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.results[i].flow, want[i].flow);
    expectSameOutput(report.results[i].output, want[i].output);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ReplayDeterminism,
                         ::testing::Values(1, 4));

/// The live-mode idle kick must change only *when* results surface, never
/// their values or canonical order — including through the cross-flow
/// inference batcher whose deadline flushes it forces.
TEST(Replay, PumpedReplayBitIdenticalToDirectFeed) {
  auto registry = std::make_shared<inference::ModelRegistry>();
  registry->registerBackend(
      "teams", inference::QoeTarget::kFrameRate,
      std::make_shared<inference::ForestBackend>(
          engine::syntheticForest(4, 4, 30.0),
          inference::QoeTarget::kFrameRate, "forest:teams/frame_rate"));

  engine::EngineOptions options;
  options.numWorkers = 4;
  options.dispatchBatch = 64;
  options.registry = registry;
  options.targets = {inference::QoeTarget::kFrameRate};
  options.inferenceBatch = 16;
  options.inferenceFlushNs = 2 * common::kNanosPerSecond;

  const auto stream = makeStream(6, 600);
  const auto want = directFeed(stream, options);

  const auto capture = writeCapture(stream);
  engine::MultiFlowEngine eng(options);
  PcapReplaySource source{std::span<const std::uint8_t>(capture)};
  const auto report = replay(source, eng, /*pollEvery=*/128,
                             /*pumpIntervalNs=*/common::kNanosPerSecond / 2);

  ASSERT_EQ(report.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.results[i].flow, want[i].flow);
    expectSameOutput(report.results[i].output, want[i].output);
  }
}

TEST(PcapReplaySource, FileConstructorStreamsFromDisk) {
  const auto stream = makeStream(3, 150);
  netflow::PcapWriter writer;
  for (const auto& sp : stream) writer.write(sp.flow, sp.packet);
  const std::string path =
      (std::filesystem::temp_directory_path() / "vcaqoe_replay.pcap").string();
  writer.save(path);

  PcapReplaySource source(path);
  std::size_t count = 0;
  SourcePacket sp;
  while (source.next(sp)) ++count;
  std::remove(path.c_str());
  EXPECT_EQ(count, stream.size());
}

TEST(PcapReplaySource, PacedReplayReproducesCaptureGaps) {
  netflow::PcapWriter writer;
  const auto key = engine::syntheticFlowKey(0);
  for (int i = 0; i < 3; ++i) {
    netflow::Packet p;
    p.arrivalNs = static_cast<common::TimeNs>(i) * 20'000'000LL;  // 20 ms
    p.sizeBytes = 500;
    writer.write(key, p);
  }

  ReplayOptions paced;
  paced.paceMultiplier = 2.0;  // 40 ms of capture in ~20 ms of wall time
  PcapReplaySource source(std::span<const std::uint8_t>(writer.bytes()),
                          paced);
  const auto start = std::chrono::steady_clock::now();
  SourcePacket sp;
  std::size_t count = 0;
  while (source.next(sp)) ++count;
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(count, 3u);
  EXPECT_GE(elapsed, 15.0);  // >= the paced span, minus scheduler slack
}

TEST(LiveCaptureStub, DrivesEngineIdenticallyToDirectFeed) {
  engine::EngineOptions options;
  options.numWorkers = 2;
  const auto stream = makeStream(4, 300);
  const auto want = directFeed(stream, options);

  LiveCaptureStub capture;
  std::thread producer([&] {
    for (const auto& sp : stream) capture.push(sp.flow, sp.packet);
    capture.close();
  });
  engine::MultiFlowEngine eng(options);
  const auto report = replay(capture, eng);
  producer.join();

  EXPECT_EQ(report.packets, stream.size());
  ASSERT_EQ(report.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.results[i].flow, want[i].flow);
    expectSameOutput(report.results[i].output, want[i].output);
  }
}

TEST(LiveCaptureStub, CloseUnblocksConsumerAndDropsLatePushes) {
  LiveCaptureStub capture;
  netflow::Packet p;
  p.sizeBytes = 100;
  capture.push(engine::syntheticFlowKey(0), p);
  EXPECT_EQ(capture.queued(), 1u);

  SourcePacket sp;
  EXPECT_TRUE(capture.next(sp));
  std::thread consumer([&] { EXPECT_FALSE(capture.next(sp)); });
  capture.close();
  consumer.join();
  capture.push(engine::syntheticFlowKey(0), p);  // after close: dropped
  EXPECT_EQ(capture.queued(), 0u);
}

/// Long replay with eviction: resident state stays bounded by concurrency
/// while the per-flow dashboard stats remain queryable after eviction.
TEST(Replay, EvictionKeepsReplayMemoryBoundedWithStatsIntact) {
  // 60 short sessions starting 1 s apart over a ~60 s capture: a long tail
  // of dead flows that an unbounded monitor would accumulate forever.
  constexpr int kFlows = 60;
  constexpr int kPacketsPerFlow = 80;
  std::vector<SourcePacket> stream;
  for (int f = 0; f < kFlows; ++f) {
    const auto key = engine::syntheticFlowKey(static_cast<std::uint32_t>(f));
    const auto trace = engine::syntheticFlowTrace(
        7 + static_cast<std::uint64_t>(f), kPacketsPerFlow,
        static_cast<common::TimeNs>(f) * common::kNanosPerSecond);
    for (const auto& packet : trace) stream.push_back({key, packet});
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const SourcePacket& a, const SourcePacket& b) {
                     return a.packet.arrivalNs < b.packet.arrivalNs;
                   });
  const auto capture = writeCapture(stream);

  engine::EngineOptions options;
  options.numWorkers = 2;
  options.idleTimeoutNs = 2 * common::kNanosPerSecond;
  engine::MultiFlowEngine eng(options);
  PcapReplaySource source{std::span<const std::uint8_t>(capture)};
  const auto report = replay(source, eng);

  EXPECT_EQ(report.packets, stream.size());
  EXPECT_EQ(report.engineStats.flows, static_cast<std::size_t>(kFlows));
  EXPECT_GE(report.engineStats.flowsEvicted,
            static_cast<std::uint64_t>(kFlows - 10));
  EXPECT_LE(report.engineStats.activeFlows, 10u);

  const auto& flowStats = eng.flowStats();
  ASSERT_EQ(flowStats.size(), static_cast<std::size_t>(kFlows));
  std::uint64_t windowsAccounted = 0;
  for (const auto& fs : flowStats) {
    EXPECT_EQ(fs.packets, static_cast<std::uint64_t>(kPacketsPerFlow));
    EXPECT_GT(fs.bytes, 0u);
    EXPECT_GE(fs.lastArrivalNs, fs.firstArrivalNs);
    windowsAccounted += fs.windowsEmitted;
  }
  EXPECT_EQ(windowsAccounted, report.results.size());
}

}  // namespace
}  // namespace vcaqoe::ingest
