// Tests for model persistence (ml/serialize), the flattened forest layout
// (ml/flattened_forest), and the classical baseline models (ml/baselines)
// that back the §4.3 model comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/baselines.hpp"
#include "ml/flattened_forest.hpp"
#include "ml/serialize.hpp"

namespace vcaqoe::ml {
namespace {

Dataset linearDataset(int n, std::uint64_t seed, double noise = 0.3) {
  Dataset d;
  d.featureNames = {"x one", "x two", "junk"};  // space in name: escaping path
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    d.addRow({a, b, rng.uniform(0.0, 1.0)},
             2.0 * a - 3.0 * b + 1.0 + rng.normal(0.0, noise));
  }
  return d;
}

Dataset classDataset(int n, std::uint64_t seed) {
  Dataset d;
  d.featureNames = {"x"};
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x}, x > 0.5 ? 1.0 : 0.0);
  }
  return d;
}

// ---------------------------------------------------------------- serialize

TEST(Serialize, RoundTripRegressionForest) {
  const Dataset d = linearDataset(400, 1);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 12;
  forest.fit(d, TreeTask::kRegression, options, 7);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);

  EXPECT_EQ(loaded.task(), TreeTask::kRegression);
  EXPECT_EQ(loaded.treeCount(), forest.treeCount());
  EXPECT_EQ(loaded.featureNames(), forest.featureNames());
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {rng.uniform(-5.0, 5.0),
                                   rng.uniform(-5.0, 5.0),
                                   rng.uniform(0.0, 1.0)};
    EXPECT_DOUBLE_EQ(loaded.predict(x), forest.predict(x));
  }
}

TEST(Serialize, RoundTripClassificationForest) {
  const Dataset d = classDataset(300, 2);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 9;
  forest.fit(d, TreeTask::kClassification, options, 5);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);
  EXPECT_EQ(loaded.task(), TreeTask::kClassification);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_DOUBLE_EQ(loaded.predict(std::vector<double>{x}),
                     forest.predict(std::vector<double>{x}));
  }
}

TEST(Serialize, PreservesImportance) {
  const Dataset d = linearDataset(300, 3);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 8;
  forest.fit(d, TreeTask::kRegression, options, 9);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);
  const auto a = forest.featureImportance();
  const auto b = loaded.featureImportance();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  // Feature names with spaces survive (used by ranked importance).
  EXPECT_EQ(loaded.rankedImportance()[0].first.find('\\'), std::string::npos);
}

TEST(Serialize, FileRoundTrip) {
  const Dataset d = linearDataset(200, 4);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 5;
  forest.fit(d, TreeTask::kRegression, options, 11);
  const std::string path = "/tmp/vcaqoe_model_test.fst";
  saveForestFile(forest, path);
  const RandomForest loaded = loadForestFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.treeCount(), 5u);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream junk("not-a-model 1");
  EXPECT_THROW(loadForest(junk), std::runtime_error);

  const Dataset d = linearDataset(100, 5);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 3;
  forest.fit(d, TreeTask::kRegression, options, 1);
  std::stringstream buffer;
  saveForest(forest, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(loadForest(truncated), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersionAndUntrained) {
  std::stringstream wrong("vcaqoe-forest 999\ntask regression\n");
  EXPECT_THROW(loadForest(wrong), std::runtime_error);
  RandomForest empty;
  std::stringstream out;
  EXPECT_THROW(saveForest(empty, out), std::logic_error);
}

TEST(Serialize, RejectsOutOfRangeNodeReferences) {
  std::stringstream bad(
      "vcaqoe-forest 1\n"
      "task regression\n"
      "features 1 x\n"
      "importance 1 1.0\n"
      "trees 1\n"
      "tree 1\n"
      "0 0.5 5 6 0.0\n");  // children out of range
  EXPECT_THROW(loadForest(bad), std::runtime_error);
}

TEST(Serialize, RejectsCyclicNodeReferences) {
  // Regression (found by the fuzz harness work): children that are
  // in-range but point at or behind their parent form a cycle, which used
  // to pass validation and hang DecisionTree::predict / flattening
  // forever. Training emits parents strictly before children, so a
  // well-formed file always points forward.
  const auto load = [](const char* nodes) {
    std::stringstream bad(std::string("vcaqoe-forest 1\n"
                                      "task regression\n"
                                      "features 1 x\n"
                                      "importance 1 1.0\n"
                                      "trees 1\n") +
                          nodes);
    return loadForest(bad);
  };
  // Node 0 pointing at itself: the tightest cycle.
  EXPECT_THROW(load("tree 2\n"
                    "0 0.5 0 1 0.0\n"
                    "-1 0 0 0 3.0\n"),
               std::runtime_error);
  // Two-node loop: 0 -> 1 -> 0.
  EXPECT_THROW(load("tree 3\n"
                    "0 0.5 1 2 0.0\n"
                    "0 0.5 0 2 0.0\n"
                    "-1 0 0 0 3.0\n"),
               std::runtime_error);
  // The forward-pointing equivalent still loads and predicts.
  const RandomForest ok = load(
      "tree 3\n"
      "0 0.5 1 2 0.0\n"
      "-1 0 0 0 3.0\n"
      "-1 0 0 0 7.0\n");
  const std::vector<double> row{0.0};
  EXPECT_EQ(ok.predict(row), 3.0);
}

TEST(Serialize, RejectsTrailingPayloadPastDeclaredCounts) {
  // A file whose declared tree count undershoots the payload must fail
  // loudly instead of silently constructing a truncated forest.
  const Dataset d = linearDataset(150, 21);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 2;
  forest.fit(d, TreeTask::kRegression, options, 3);
  std::stringstream buffer;
  saveForest(forest, buffer);
  std::string text = buffer.str();

  // Understate the tree count: the second tree becomes trailing payload.
  const auto pos = text.find("trees 2");
  ASSERT_NE(pos, std::string::npos);
  std::string understated = text;
  understated.replace(pos, 7, "trees 1");
  std::stringstream bad(understated);
  EXPECT_THROW(loadForest(bad), std::runtime_error);

  // Appending an extra node row past the last declared tree also fails.
  std::stringstream appended(text + "0 0.5 1 2 0.0\n");
  EXPECT_THROW(loadForest(appended), std::runtime_error);

  // The untouched stream still loads.
  std::stringstream good(text);
  EXPECT_EQ(loadForest(good).treeCount(), 2u);
}

TEST(Serialize, CorruptedFileFixtureFailsLoudly) {
  // Regression fixture for the deployment path: a model file corrupted
  // in place (count/payload mismatch) must throw out of the file loaders,
  // not yield a smaller forest.
  const Dataset d = linearDataset(120, 22);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 3;
  forest.fit(d, TreeTask::kRegression, options, 5);
  const std::string path = "/tmp/vcaqoe_corrupt_fixture.forest";
  saveForestFile(forest, path);

  std::string text;
  {
    std::ifstream in(path);
    std::stringstream whole;
    whole << in.rdbuf();
    text = whole.str();
  }
  const auto pos = text.find("trees 3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "trees 2");
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_THROW(loadForestFile(path), std::runtime_error);
  // The registry's lazy path must be equally loud for an existing file.
  EXPECT_THROW(tryLoadForestFile(path), std::runtime_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------- flattened forest

TEST(FlattenedForest, BitExactOnTrainedRegressionForests) {
  // Property over random forests and random rows: the SoA arena must agree
  // with the node-tree form to the last bit, scalar and batched.
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const Dataset d = linearDataset(350, seed);
    RandomForest forest;
    ForestOptions options;
    options.numTrees = static_cast<int>(3 + seed % 9);
    forest.fit(d, TreeTask::kRegression, options, seed * 7);
    const FlattenedForest flat(forest);
    EXPECT_TRUE(flat.trained());
    EXPECT_EQ(flat.treeCount(), forest.treeCount());

    common::Rng rng(seed + 100);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 200; ++i) {
      rows.push_back({rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0),
                      rng.uniform(0.0, 1.0)});
    }
    std::vector<FeatureRow> views(rows.begin(), rows.end());
    std::vector<double> batched(rows.size());
    flat.predictBatch(views, batched);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double reference = forest.predict(rows[i]);
      EXPECT_EQ(flat.predict(rows[i]), reference) << "seed " << seed;
      EXPECT_EQ(batched[i], reference) << "seed " << seed;
    }
  }
}

TEST(FlattenedForest, BitExactOnClassificationForests) {
  const Dataset d = classDataset(400, 41);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 11;
  forest.fit(d, TreeTask::kClassification, options, 17);
  const FlattenedForest flat(forest);
  EXPECT_EQ(flat.task(), TreeTask::kClassification);

  std::vector<std::vector<double>> rows;
  for (double x = 0.005; x < 1.0; x += 0.01) rows.push_back({x});
  std::vector<FeatureRow> views(rows.begin(), rows.end());
  std::vector<double> batched(rows.size());
  flat.predictBatch(views, batched);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double reference = forest.predict(rows[i]);
    EXPECT_EQ(flat.predict(rows[i]), reference);
    EXPECT_EQ(batched[i], reference);
  }
}

TEST(FlattenedForest, NanFeaturesFollowTheNodeTreePath) {
  // `v <= t` is false for NaN, so the node tree sends NaN features right;
  // the flat layout's index-math comparison must agree (regression: the
  // negated `v > t` form sent them left).
  const Dataset d = linearDataset(250, 81);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 6;
  forest.fit(d, TreeTask::kRegression, options, 23);
  const FlattenedForest flat(forest);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  common::Rng rng(82);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0),
                             rng.uniform(0.0, 1.0)};
    x[static_cast<std::size_t>(i % 3)] = nan;
    EXPECT_EQ(flat.predict(x), forest.predict(x)) << "row " << i;
  }
}

TEST(FlattenedForest, RejectsUntrainedShortRowsAndShapeMismatch) {
  EXPECT_THROW(FlattenedForest(RandomForest{}), std::invalid_argument);

  const Dataset d = linearDataset(150, 51);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 4;
  forest.fit(d, TreeTask::kRegression, options, 2);
  const FlattenedForest flat(forest);
  EXPECT_THROW(flat.predict(std::vector<double>{1.0}),
               std::invalid_argument);
  const std::vector<double> row(3, 0.0);
  const std::vector<FeatureRow> views = {row, row};
  std::vector<double> wrongSize(3);
  EXPECT_THROW(flat.predictBatch(views, wrongSize), std::invalid_argument);

  FlattenedForest empty;
  EXPECT_FALSE(empty.trained());
  EXPECT_THROW(empty.predict(row), std::logic_error);
}

TEST(FlattenedForest, FromPartsValidatesReferences) {
  // One split over feature 0 with two leaves: the smallest valid arena.
  const auto valid = FlattenedForest::fromParts(
      TreeTask::kRegression, 1, {0}, {0}, {0.5}, {-1}, {-2}, {1.0, 2.0});
  EXPECT_EQ(valid.predict(std::vector<double>{0.0}), 1.0);
  EXPECT_EQ(valid.predict(std::vector<double>{1.0}), 2.0);

  // Child reference past the arena.
  EXPECT_THROW(FlattenedForest::fromParts(TreeTask::kRegression, 1, {0}, {0},
                                          {0.5}, {7}, {-2}, {1.0, 2.0}),
               std::invalid_argument);
  // Leaf reference past the leaf array.
  EXPECT_THROW(FlattenedForest::fromParts(TreeTask::kRegression, 1, {0}, {0},
                                          {0.5}, {-1}, {-9}, {1.0, 2.0}),
               std::invalid_argument);
  // Self-cycle: node 0's left child is node 0.
  EXPECT_THROW(FlattenedForest::fromParts(TreeTask::kRegression, 1, {0}, {0},
                                          {0.5}, {0}, {-1}, {1.0}),
               std::invalid_argument);
  // Unreferenced leaf (declared payload exceeds what the trees reach).
  EXPECT_THROW(
      FlattenedForest::fromParts(TreeTask::kRegression, 1, {0}, {0}, {0.5},
                                 {-1}, {-2}, {1.0, 2.0, 3.0}),
      std::invalid_argument);
}

TEST(Serialize, FlatRoundTripBitExact) {
  const Dataset d = linearDataset(300, 61);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 7;
  forest.fit(d, TreeTask::kRegression, options, 13);
  const FlattenedForest flat(forest);

  std::stringstream buffer;
  saveFlattenedForest(flat, buffer);
  const FlattenedForest loaded = loadFlattenedForest(buffer);
  EXPECT_EQ(loaded.task(), flat.task());
  EXPECT_EQ(loaded.treeCount(), flat.treeCount());
  EXPECT_EQ(loaded.internalNodeCount(), flat.internalNodeCount());
  EXPECT_EQ(loaded.leafCount(), flat.leafCount());

  common::Rng rng(62);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {rng.uniform(-5.0, 5.0),
                                   rng.uniform(-5.0, 5.0),
                                   rng.uniform(0.0, 1.0)};
    // Loaded flat == in-memory flat == the original node-tree form.
    EXPECT_EQ(loaded.predict(x), flat.predict(x));
    EXPECT_EQ(loaded.predict(x), forest.predict(x));
  }

  const std::string path = "/tmp/vcaqoe_flat_test.fforest";
  saveFlattenedForestFile(flat, path);
  const FlattenedForest fromFile = loadFlattenedForestFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(fromFile.treeCount(), flat.treeCount());

  FlattenedForest untrained;
  std::stringstream sink;
  EXPECT_THROW(saveFlattenedForest(untrained, sink), std::logic_error);
}

TEST(Serialize, FlatRejectsCountPayloadMismatches) {
  const Dataset d = linearDataset(200, 71);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 3;
  forest.fit(d, TreeTask::kRegression, options, 19);
  std::stringstream buffer;
  saveFlattenedForest(FlattenedForest(forest), buffer);
  const std::string text = buffer.str();

  {
    std::stringstream junk("not-a-flat-forest 1");
    EXPECT_THROW(loadFlattenedForest(junk), std::runtime_error);
  }
  {
    // Node-tree magic is not a flat forest.
    std::stringstream wrong("vcaqoe-forest 1\ntask regression\n");
    EXPECT_THROW(loadFlattenedForest(wrong), std::runtime_error);
  }
  {
    std::string truncated = text;
    truncated.resize(truncated.size() / 2);
    std::stringstream bad(truncated);
    EXPECT_THROW(loadFlattenedForest(bad), std::runtime_error);
  }
  {
    // Trailing payload past the `end` terminator.
    std::stringstream bad(text + "0 0.5 -1 -2\n");
    EXPECT_THROW(loadFlattenedForest(bad), std::runtime_error);
  }
  {
    // Understate the node count: payload disagrees with the declaration.
    const auto pos = text.find("nodes ");
    ASSERT_NE(pos, std::string::npos);
    const auto lineEnd = text.find('\n', pos);
    std::string bad = text;
    bad.replace(pos, lineEnd - pos, "nodes 1");
    std::stringstream stream(bad);
    EXPECT_THROW(loadFlattenedForest(stream), std::runtime_error);
  }
  {
    // Untouched stream still round-trips.
    std::stringstream good(text);
    EXPECT_EQ(loadFlattenedForest(good).treeCount(), 3u);
  }
}

TEST(Serialize, RejectsAbsurdDeclaredCounts) {
  // A corrupt count must be a loud malformed-file error before any
  // payload-sized allocation happens — not an OOM or std::length_error.
  {
    std::stringstream bad(
        "vcaqoe-forest-flat 1\ntask regression\nfeatures 1\n"
        "roots 4000000000\n");
    EXPECT_THROW(loadFlattenedForest(bad), std::runtime_error);
  }
  {
    // Negative count wraps through unsigned extraction to an absurd value.
    std::stringstream bad(
        "vcaqoe-forest-flat 1\ntask regression\nfeatures 1\n"
        "roots 1 0\nnodes -7\n");
    EXPECT_THROW(loadFlattenedForest(bad), std::runtime_error);
  }
  {
    std::stringstream bad("vcaqoe-forest 1\ntask regression\n"
                          "features 9999999999999\n");
    EXPECT_THROW(loadForest(bad), std::runtime_error);
  }
  {
    // Flat header feature count is guarded too: an absurd value must fail
    // at load, not later as a short-feature-row throw inside a worker.
    std::stringstream bad(
        "vcaqoe-forest-flat 1\ntask regression\nfeatures 9999999999999\n");
    EXPECT_THROW(loadFlattenedForest(bad), std::runtime_error);
  }
  {
    // INT32_MIN child reference: must be rejected (leaf index out of
    // range), not negated as a signed int (UB regression guard).
    EXPECT_THROW(
        FlattenedForest::fromParts(TreeTask::kRegression, 1, {0}, {0}, {0.5},
                                   {-2147483648}, {-1}, {1.0, 2.0}),
        std::invalid_argument);
  }
}

// ---------------------------------------------------------------- ridge

TEST(Ridge, RecoversLinearFunction) {
  const Dataset d = linearDataset(2'000, 6, 0.1);
  RidgeRegression ridge;
  ridge.fit(d, {0.1});
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-4.0, 4.0);
    const double b = rng.uniform(-4.0, 4.0);
    const double truth = 2.0 * a - 3.0 * b + 1.0;
    EXPECT_NEAR(ridge.predict(std::vector<double>{a, b, 0.5}), truth, 0.25);
  }
}

TEST(Ridge, HandlesConstantFeature) {
  Dataset d;
  d.featureNames = {"x", "const"};
  common::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x, 7.0}, 5.0 * x);
  }
  RidgeRegression ridge;
  ridge.fit(d);
  EXPECT_NEAR(ridge.predict(std::vector<double>{0.5, 7.0}), 2.5, 0.2);
}

TEST(Ridge, ThrowsOnEmptyAndEarlyPredict) {
  RidgeRegression ridge;
  EXPECT_THROW(ridge.fit(Dataset{}), std::invalid_argument);
  EXPECT_THROW(ridge.predict(std::vector<double>{1.0}), std::logic_error);
}

// ---------------------------------------------------------------- knn

TEST(Knn, RegressionInterpolatesLocally) {
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    d.addRow({x}, x * x);
  }
  KnnModel knn;
  knn.fit(d, {5, TreeTask::kRegression});
  EXPECT_NEAR(knn.predict(std::vector<double>{0.5}), 0.25, 0.02);
  EXPECT_NEAR(knn.predict(std::vector<double>{0.9}), 0.81, 0.03);
}

TEST(Knn, ClassificationMajority) {
  const Dataset d = classDataset(500, 9);
  KnnModel knn;
  knn.fit(d, {7, TreeTask::kClassification});
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.1}), 0.0);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.9}), 1.0);
}

TEST(Knn, KLargerThanDatasetClamped) {
  Dataset d;
  d.featureNames = {"x"};
  d.addRow({0.0}, 1.0);
  d.addRow({1.0}, 3.0);
  KnnModel knn;
  knn.fit(d, {50, TreeTask::kRegression});
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.5}), 2.0);
}

// --------------------------------------------------------- model comparison

TEST(ModelComparison, ForestBestOnNonlinearTarget) {
  // Non-linear, interaction-heavy target: the regime where the paper found
  // random forests consistently ahead of the alternatives (§4.3).
  Dataset d;
  d.featureNames = {"a", "b", "c"};
  common::Rng rng(10);
  for (int i = 0; i < 1'200; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    const double c = rng.uniform(0.0, 1.0);
    // Substantial label noise: the regime where a single deep tree overfits
    // and bagging pays off.
    const double y = (a > 0.5 ? 10.0 : 2.0) * (b > 0.3 ? 1.0 : -1.0) +
                     5.0 * c * c + rng.normal(0.0, 2.0);
    d.addRow({a, b, c}, y);
  }
  const auto comparison = compareModels(d, TreeTask::kRegression, 5, 13);
  EXPECT_LT(comparison.forestMae, comparison.ridgeMae);
  EXPECT_LT(comparison.forestMae, comparison.knnMae);
  EXPECT_LT(comparison.forestMae, comparison.treeMae);
}

}  // namespace
}  // namespace vcaqoe::ml
