// Tests for model persistence (ml/serialize) and the classical baseline
// models (ml/baselines) that back the §4.3 model comparison.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/baselines.hpp"
#include "ml/serialize.hpp"

namespace vcaqoe::ml {
namespace {

Dataset linearDataset(int n, std::uint64_t seed, double noise = 0.3) {
  Dataset d;
  d.featureNames = {"x one", "x two", "junk"};  // space in name: escaping path
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    d.addRow({a, b, rng.uniform(0.0, 1.0)},
             2.0 * a - 3.0 * b + 1.0 + rng.normal(0.0, noise));
  }
  return d;
}

Dataset classDataset(int n, std::uint64_t seed) {
  Dataset d;
  d.featureNames = {"x"};
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x}, x > 0.5 ? 1.0 : 0.0);
  }
  return d;
}

// ---------------------------------------------------------------- serialize

TEST(Serialize, RoundTripRegressionForest) {
  const Dataset d = linearDataset(400, 1);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 12;
  forest.fit(d, TreeTask::kRegression, options, 7);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);

  EXPECT_EQ(loaded.task(), TreeTask::kRegression);
  EXPECT_EQ(loaded.treeCount(), forest.treeCount());
  EXPECT_EQ(loaded.featureNames(), forest.featureNames());
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {rng.uniform(-5.0, 5.0),
                                   rng.uniform(-5.0, 5.0),
                                   rng.uniform(0.0, 1.0)};
    EXPECT_DOUBLE_EQ(loaded.predict(x), forest.predict(x));
  }
}

TEST(Serialize, RoundTripClassificationForest) {
  const Dataset d = classDataset(300, 2);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 9;
  forest.fit(d, TreeTask::kClassification, options, 5);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);
  EXPECT_EQ(loaded.task(), TreeTask::kClassification);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_DOUBLE_EQ(loaded.predict(std::vector<double>{x}),
                     forest.predict(std::vector<double>{x}));
  }
}

TEST(Serialize, PreservesImportance) {
  const Dataset d = linearDataset(300, 3);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 8;
  forest.fit(d, TreeTask::kRegression, options, 9);

  std::stringstream buffer;
  saveForest(forest, buffer);
  const RandomForest loaded = loadForest(buffer);
  const auto a = forest.featureImportance();
  const auto b = loaded.featureImportance();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  // Feature names with spaces survive (used by ranked importance).
  EXPECT_EQ(loaded.rankedImportance()[0].first.find('\\'), std::string::npos);
}

TEST(Serialize, FileRoundTrip) {
  const Dataset d = linearDataset(200, 4);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 5;
  forest.fit(d, TreeTask::kRegression, options, 11);
  const std::string path = "/tmp/vcaqoe_model_test.fst";
  saveForestFile(forest, path);
  const RandomForest loaded = loadForestFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.treeCount(), 5u);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream junk("not-a-model 1");
  EXPECT_THROW(loadForest(junk), std::runtime_error);

  const Dataset d = linearDataset(100, 5);
  RandomForest forest;
  ForestOptions options;
  options.numTrees = 3;
  forest.fit(d, TreeTask::kRegression, options, 1);
  std::stringstream buffer;
  saveForest(forest, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(loadForest(truncated), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersionAndUntrained) {
  std::stringstream wrong("vcaqoe-forest 999\ntask regression\n");
  EXPECT_THROW(loadForest(wrong), std::runtime_error);
  RandomForest empty;
  std::stringstream out;
  EXPECT_THROW(saveForest(empty, out), std::logic_error);
}

TEST(Serialize, RejectsOutOfRangeNodeReferences) {
  std::stringstream bad(
      "vcaqoe-forest 1\n"
      "task regression\n"
      "features 1 x\n"
      "importance 1 1.0\n"
      "trees 1\n"
      "tree 1\n"
      "0 0.5 5 6 0.0\n");  // children out of range
  EXPECT_THROW(loadForest(bad), std::runtime_error);
}

// ---------------------------------------------------------------- ridge

TEST(Ridge, RecoversLinearFunction) {
  const Dataset d = linearDataset(2'000, 6, 0.1);
  RidgeRegression ridge;
  ridge.fit(d, {0.1});
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-4.0, 4.0);
    const double b = rng.uniform(-4.0, 4.0);
    const double truth = 2.0 * a - 3.0 * b + 1.0;
    EXPECT_NEAR(ridge.predict(std::vector<double>{a, b, 0.5}), truth, 0.25);
  }
}

TEST(Ridge, HandlesConstantFeature) {
  Dataset d;
  d.featureNames = {"x", "const"};
  common::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.addRow({x, 7.0}, 5.0 * x);
  }
  RidgeRegression ridge;
  ridge.fit(d);
  EXPECT_NEAR(ridge.predict(std::vector<double>{0.5, 7.0}), 2.5, 0.2);
}

TEST(Ridge, ThrowsOnEmptyAndEarlyPredict) {
  RidgeRegression ridge;
  EXPECT_THROW(ridge.fit(Dataset{}), std::invalid_argument);
  EXPECT_THROW(ridge.predict(std::vector<double>{1.0}), std::logic_error);
}

// ---------------------------------------------------------------- knn

TEST(Knn, RegressionInterpolatesLocally) {
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    d.addRow({x}, x * x);
  }
  KnnModel knn;
  knn.fit(d, {5, TreeTask::kRegression});
  EXPECT_NEAR(knn.predict(std::vector<double>{0.5}), 0.25, 0.02);
  EXPECT_NEAR(knn.predict(std::vector<double>{0.9}), 0.81, 0.03);
}

TEST(Knn, ClassificationMajority) {
  const Dataset d = classDataset(500, 9);
  KnnModel knn;
  knn.fit(d, {7, TreeTask::kClassification});
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.1}), 0.0);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.9}), 1.0);
}

TEST(Knn, KLargerThanDatasetClamped) {
  Dataset d;
  d.featureNames = {"x"};
  d.addRow({0.0}, 1.0);
  d.addRow({1.0}, 3.0);
  KnnModel knn;
  knn.fit(d, {50, TreeTask::kRegression});
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.5}), 2.0);
}

// --------------------------------------------------------- model comparison

TEST(ModelComparison, ForestBestOnNonlinearTarget) {
  // Non-linear, interaction-heavy target: the regime where the paper found
  // random forests consistently ahead of the alternatives (§4.3).
  Dataset d;
  d.featureNames = {"a", "b", "c"};
  common::Rng rng(10);
  for (int i = 0; i < 1'200; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    const double c = rng.uniform(0.0, 1.0);
    // Substantial label noise: the regime where a single deep tree overfits
    // and bagging pays off.
    const double y = (a > 0.5 ? 10.0 : 2.0) * (b > 0.3 ? 1.0 : -1.0) +
                     5.0 * c * c + rng.normal(0.0, 2.0);
    d.addRow({a, b, c}, y);
  }
  const auto comparison = compareModels(d, TreeTask::kRegression, 5, 13);
  EXPECT_LT(comparison.forestMae, comparison.ridgeMae);
  EXPECT_LT(comparison.forestMae, comparison.knnMae);
  EXPECT_LT(comparison.forestMae, comparison.treeMae);
}

}  // namespace
}  // namespace vcaqoe::ml
