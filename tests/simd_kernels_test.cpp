// Randomized scalar-vs-SIMD equivalence for the common::simd kernels and
// the opt-in FlattenedForest layouts.
//
// The contract under test (src/common/simd.hpp): every kernel returns
// bit-identical results on every dispatch arm the host supports, across
// alignment offsets, tail lengths 0..width-1, and NaN placement. The
// scalar arm is pinned with forceLevel and used as the reference; each
// richer arm must reproduce it exactly, compared through bit_cast so NaN
// payloads and signed zeros count too. The quantized forest layout is the
// one documented exception: it may differ from full precision only on
// feature values inside a threshold's double->float rounding gap, which
// is verified against an independent re-implementation of the quantized
// walk rather than a loose numeric tolerance.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.hpp"
#include "common/stats.hpp"
#include "core/lookback_ring.hpp"
#include "ml/flattened_forest.hpp"
#include "ml/serialize.hpp"

namespace {

using vcaqoe::common::simd::Level;

/// RAII pin for the dispatch arm; restores auto-detection on scope exit.
struct ForcedLevel {
  explicit ForcedLevel(Level level) { vcaqoe::common::simd::forceLevel(level); }
  ~ForcedLevel() { vcaqoe::common::simd::clearForcedLevel(); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
};

/// Every arm this host can actually run; always includes kScalar.
std::vector<Level> testableLevels() {
  std::vector<Level> levels{Level::kScalar};
  for (const Level l : {Level::kSse2, Level::kAvx2, Level::kNeon}) {
    if (vcaqoe::common::simd::supported(l)) levels.push_back(l);
  }
  return levels;
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Buffer sizes straddling every interesting boundary: the sequential
/// cutover (8), the 4-lane group width, and the 8/16-wide match sweeps.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                              11, 12, 13, 15, 16, 17, 23, 31, 32, 33,
                              63, 64, 65, 100, 127, 128, 129, 200};

}  // namespace

TEST(SimdDispatch, ToStringCoversEveryLevel) {
  EXPECT_STREQ("scalar", toString(Level::kScalar));
  EXPECT_STREQ("sse2", toString(Level::kSse2));
  EXPECT_STREQ("avx2", toString(Level::kAvx2));
  EXPECT_STREQ("neon", toString(Level::kNeon));
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndForceable) {
  EXPECT_TRUE(vcaqoe::common::simd::supported(Level::kScalar));
  ForcedLevel pin(Level::kScalar);
  EXPECT_EQ(Level::kScalar, vcaqoe::common::simd::activeLevel());
}

TEST(SimdDispatch, ActiveLevelIsAlwaysSupported) {
  EXPECT_TRUE(
      vcaqoe::common::simd::supported(vcaqoe::common::simd::activeLevel()));
}

TEST(SimdDispatch, ForcingAnUnsupportedLevelPinsScalar) {
  // At most one of NEON / SSE2 exists on any one architecture, so one of
  // them is always the unsupported probe.
  const Level unsupported = vcaqoe::common::simd::supported(Level::kSse2)
                                ? Level::kNeon
                                : Level::kSse2;
  ASSERT_FALSE(vcaqoe::common::simd::supported(unsupported));
  ForcedLevel pin(unsupported);
  EXPECT_EQ(Level::kScalar, vcaqoe::common::simd::activeLevel());
}

TEST(SimdKernels, SumMatchesScalarAcrossLevelsAlignmentsTailsAndNaN) {
  std::mt19937 rng(20230901);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  for (const std::size_t n : kSizes) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      for (const bool withNaN : {false, true}) {
        std::vector<double> buf(n + offset + 4);
        for (auto& x : buf) x = value(rng);
        double* xs = buf.data() + offset;
        if (withNaN && n > 0) {
          xs[rng() % n] = std::numeric_limits<double>::quiet_NaN();
        }
        double expect = 0.0;
        {
          ForcedLevel pin(Level::kScalar);
          expect = vcaqoe::common::simd::sumF64(xs, n);
        }
        for (const Level level : testableLevels()) {
          ForcedLevel pin(level);
          const double got = vcaqoe::common::simd::sumF64(xs, n);
          EXPECT_EQ(bits(expect), bits(got))
              << "sumF64 n=" << n << " offset=" << offset << " nan="
              << withNaN << " level=" << toString(level);
        }
      }
    }
  }
}

TEST(SimdKernels, MinMaxMatchesScalarAcrossLevelsAlignmentsTailsAndNaN) {
  std::mt19937 rng(20230902);
  std::uniform_real_distribution<double> value(-1e9, 1e9);
  for (const std::size_t n : kSizes) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      for (const int nanCount : {0, 1, 3}) {
        std::vector<double> buf(n + offset + 4);
        for (auto& x : buf) x = value(rng);
        double* xs = buf.data() + offset;
        for (int k = 0; k < nanCount && n > 0; ++k) {
          xs[rng() % n] = std::numeric_limits<double>::quiet_NaN();
        }
        // Signed zeros exercise the MINPD ordered-compare rule too.
        if (n > 2) {
          xs[0] = 0.0;
          xs[1] = -0.0;
        }
        vcaqoe::common::simd::MinMaxF64 expect;
        {
          ForcedLevel pin(Level::kScalar);
          expect = vcaqoe::common::simd::minMaxF64(xs, n);
        }
        for (const Level level : testableLevels()) {
          ForcedLevel pin(level);
          const auto got = vcaqoe::common::simd::minMaxF64(xs, n);
          EXPECT_EQ(bits(expect.min), bits(got.min))
              << "min n=" << n << " offset=" << offset << " nans="
              << nanCount << " level=" << toString(level);
          EXPECT_EQ(bits(expect.max), bits(got.max))
              << "max n=" << n << " offset=" << offset << " nans="
              << nanCount << " level=" << toString(level);
        }
      }
    }
  }
}

TEST(SimdKernels, CentralMoment2MatchesScalarAcrossLevels) {
  std::mt19937 rng(20230903);
  std::uniform_real_distribution<double> value(-1e3, 1e3);
  for (const std::size_t n : kSizes) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      std::vector<double> buf(n + offset + 4);
      for (auto& x : buf) x = value(rng);
      double* xs = buf.data() + offset;
      const double mu = value(rng);
      double expect = 0.0;
      {
        ForcedLevel pin(Level::kScalar);
        expect = vcaqoe::common::simd::centralMoment2F64(xs, n, mu);
      }
      for (const Level level : testableLevels()) {
        ForcedLevel pin(level);
        const double got = vcaqoe::common::simd::centralMoment2F64(xs, n, mu);
        EXPECT_EQ(bits(expect), bits(got))
            << "moment2 n=" << n << " offset=" << offset
            << " level=" << toString(level);
      }
    }
  }
}

TEST(SimdKernels, SmallSpansUseTheSequentialContract) {
  // Part of the public contract: below the cutover the kernels are a plain
  // left fold, so the historical values of tiny windows never moved.
  // Integer-valued doubles make the checks exact no matter how this test
  // file itself was compiled.
  const std::vector<double> xs{5, -3, 11, 2, -7, 13, 1};
  for (std::size_t n = 0; n <= xs.size(); ++n) {
    double fold = 0.0;
    double mn = n ? xs[0] : 0.0;
    double mx = n ? xs[0] : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      fold += xs[i];
      mn = std::min(mn, xs[i]);
      mx = std::max(mx, xs[i]);
    }
    for (const Level level : testableLevels()) {
      ForcedLevel pin(level);
      EXPECT_EQ(fold, vcaqoe::common::simd::sumF64(xs.data(), n));
      const auto minmax = vcaqoe::common::simd::minMaxF64(xs.data(), n);
      EXPECT_EQ(mn, minmax.min);
      EXPECT_EQ(mx, minmax.max);
    }
  }
}

TEST(SimdKernels, FindLastMatchAgreesWithNaiveOracleAcrossLevels) {
  std::mt19937 rng(20230904);
  for (const std::size_t n : kSizes) {
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint32_t> sizes(n);
      // Cluster sizes so matches are common, with occasional extremes to
      // exercise the unsigned wrap/bias arithmetic.
      for (auto& s : sizes) {
        const int kind = static_cast<int>(rng() % 8);
        if (kind == 0) {
          s = 0;
        } else if (kind == 1) {
          s = std::numeric_limits<std::uint32_t>::max() - (rng() % 3);
        } else {
          s = 1000 + rng() % 64;
        }
      }
      const std::uint32_t target =
          round % 2 ? 1000 + static_cast<std::uint32_t>(rng() % 64)
                    : static_cast<std::uint32_t>(rng());
      const std::uint32_t deltaMax =
          round < 2 ? std::numeric_limits<std::uint32_t>::max()
                    : static_cast<std::uint32_t>(rng() % 40);
      std::ptrdiff_t oracle = -1;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t diff =
            sizes[i] > target ? sizes[i] - target : target - sizes[i];
        if (diff <= deltaMax) oracle = static_cast<std::ptrdiff_t>(i);
      }
      for (const Level level : testableLevels()) {
        ForcedLevel pin(level);
        EXPECT_EQ(oracle, vcaqoe::common::simd::findLastMatchU32(
                              sizes.data(), n, target, deltaMax))
            << "n=" << n << " target=" << target << " delta=" << deltaMax
            << " level=" << toString(level);
      }
    }
  }
}

TEST(SimdKernels, IatMillisMatchesScalarIncludingGuardEdges) {
  std::mt19937 rng(20230905);
  for (const std::size_t n : kSizes) {
    std::vector<std::int64_t> arrival(n);
    std::int64_t t = 1'700'000'000'000'000'000LL;
    for (std::size_t i = 0; i < n; ++i) {
      t += static_cast<std::int64_t>(rng() % 40'000'000);  // 0..40 ms
      arrival[i] = t;
    }
    // Guard edges: a backwards jump and a > 2^52 ns jump must fall back to
    // the scalar cast inside the vector arm, not corrupt the conversion.
    if (n > 6) {
      arrival[3] = arrival[2] - 5'000'000;
      arrival[6] = arrival[5] + (INT64_C(1) << 53);
    }
    std::vector<double> expect(n > 1 ? n - 1 : 0);
    {
      ForcedLevel pin(Level::kScalar);
      vcaqoe::common::simd::iatMillisF64(arrival.data(), n, expect.data());
    }
    for (const Level level : testableLevels()) {
      ForcedLevel pin(level);
      std::vector<double> got(expect.size(), -1.0);
      vcaqoe::common::simd::iatMillisF64(arrival.data(), n, got.data());
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(bits(expect[i]), bits(got[i]))
            << "iat i=" << i << " n=" << n << " level=" << toString(level);
      }
    }
  }
}

TEST(SimdKernels, U32WideningIsExactAcrossLevels) {
  std::mt19937 rng(20230906);
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> xs(n);
    for (auto& x : xs) {
      x = rng() % 4 == 0 ? static_cast<std::uint32_t>(rng()) : 1200 + rng() % 300;
    }
    for (const Level level : testableLevels()) {
      ForcedLevel pin(level);
      std::vector<double> out(n, -1.0);
      vcaqoe::common::simd::u32ToF64(xs.data(), n, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(static_cast<double>(xs[i])), bits(out[i]))
            << "u32 i=" << i << " level=" << toString(level);
      }
    }
  }
}

TEST(SimdKernels, PublicStatsAreBitIdenticalAcrossLevels) {
  // The stats entry points (mean / sampleStdev / fiveNumber) route through
  // the kernels; pinning arms must never change what callers observe.
  std::mt19937 rng(20230907);
  std::uniform_real_distribution<double> value(0.0, 2000.0);
  for (const std::size_t n : {0u, 3u, 7u, 8u, 40u, 129u}) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = value(rng);
    vcaqoe::common::FiveNumber expect;
    {
      ForcedLevel pin(Level::kScalar);
      expect = vcaqoe::common::fiveNumber(xs);
    }
    for (const Level level : testableLevels()) {
      ForcedLevel pin(level);
      const auto got = vcaqoe::common::fiveNumber(xs);
      EXPECT_EQ(bits(expect.mean), bits(got.mean));
      EXPECT_EQ(bits(expect.stdev), bits(got.stdev));
      EXPECT_EQ(bits(expect.median), bits(got.median));
      EXPECT_EQ(bits(expect.min), bits(got.min));
      EXPECT_EQ(bits(expect.max), bits(got.max));
    }
  }
}

TEST(SimdKernels, LookbackRingMatchesAreLevelIndependent) {
  // Drive the real ring (wrapped, both segments live) under every arm.
  std::mt19937 rng(20230908);
  for (const std::size_t capacity : {1u, 3u, 4u, 5u, 8u, 9u, 16u, 33u}) {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pushes;
    for (std::size_t i = 0; i < 3 * capacity + 5; ++i) {
      pushes.emplace_back(900 + rng() % 300, i);
    }
    std::vector<std::int64_t> expect;
    {
      ForcedLevel pin(Level::kScalar);
      vcaqoe::core::LookbackRing ring(capacity);
      for (const auto& [size, id] : pushes) {
        expect.push_back(ring.matchMostRecent(size + 20, 25));
        ring.push(size, id);
      }
    }
    for (const Level level : testableLevels()) {
      ForcedLevel pin(level);
      vcaqoe::core::LookbackRing ring(capacity);
      std::size_t at = 0;
      for (const auto& [size, id] : pushes) {
        EXPECT_EQ(expect[at], ring.matchMostRecent(size + 20, 25))
            << "capacity=" << capacity << " push=" << at
            << " level=" << toString(level);
        ring.push(size, id);
        ++at;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FlattenedForest layout options.
// ---------------------------------------------------------------------------

namespace {

struct ForestParts {
  std::vector<std::int32_t> roots;
  std::vector<std::int32_t> feature;
  std::vector<double> threshold;
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  std::vector<double> leafValue;
};

std::int32_t buildTree(ForestParts& p, std::mt19937& rng, int depth,
                       std::size_t featureCount, bool classification) {
  if (depth <= 0 || rng() % 4 == 0) {
    const auto leaf = static_cast<std::int32_t>(p.leafValue.size());
    p.leafValue.push_back(classification
                              ? static_cast<double>(rng() % 3)
                              : std::uniform_real_distribution<double>(
                                    0.0, 60.0)(rng));
    return -leaf - 1;
  }
  const auto node = static_cast<std::int32_t>(p.feature.size());
  p.feature.push_back(static_cast<std::int32_t>(rng() % featureCount));
  p.threshold.push_back(
      std::uniform_real_distribution<double>(0.0, 100.0)(rng));
  p.left.push_back(0);
  p.right.push_back(0);
  const auto l = buildTree(p, rng, depth - 1, featureCount, classification);
  const auto r = buildTree(p, rng, depth - 1, featureCount, classification);
  p.left[static_cast<std::size_t>(node)] = l;
  p.right[static_cast<std::size_t>(node)] = r;
  return node;
}

vcaqoe::ml::FlattenedForest randomForest(std::mt19937& rng, int trees,
                                         int depth, std::size_t featureCount,
                                         bool classification = false) {
  ForestParts p;
  for (int t = 0; t < trees; ++t) {
    p.roots.push_back(buildTree(p, rng, depth, featureCount, classification));
  }
  return vcaqoe::ml::FlattenedForest::fromParts(
      classification ? vcaqoe::ml::TreeTask::kClassification
                     : vcaqoe::ml::TreeTask::kRegression,
      featureCount, p.roots, p.feature, p.threshold, p.left, p.right,
      p.leafValue);
}

/// Rows that love threshold edges: exact thresholds, their float-rounded
/// values, and points inside the double->float rounding gap.
std::vector<std::vector<double>> edgeRows(const vcaqoe::ml::FlattenedForest& f,
                                          std::mt19937& rng, int count) {
  std::vector<std::vector<double>> rows;
  std::uniform_real_distribution<double> value(0.0, 100.0);
  for (int r = 0; r < count; ++r) {
    std::vector<double> row(f.featureCount());
    for (auto& v : row) {
      switch (f.threshold().empty() ? 4u : rng() % 5) {
        case 0: {
          const double t = f.threshold()[rng() % f.threshold().size()];
          v = t;
          break;
        }
        case 1: {
          const double t = f.threshold()[rng() % f.threshold().size()];
          v = static_cast<double>(static_cast<float>(t));
          break;
        }
        case 2: {
          const double t = f.threshold()[rng() % f.threshold().size()];
          const double tf = static_cast<double>(static_cast<float>(t));
          v = t + (tf - t) / 2.0;  // inside the rounding gap (if any)
          break;
        }
        case 3:
          v = std::numeric_limits<double>::quiet_NaN();
          break;
        default:
          v = value(rng);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Independent quantized-walk oracle: int16 features, compare against
/// double(float(threshold)), NaN right — the documented tolerance contract.
double quantizedOracle(const vcaqoe::ml::FlattenedForest& f,
                       std::span<const double> row) {
  double sum = 0.0;
  std::vector<int> votes;
  for (const auto root : f.roots()) {
    std::int32_t ref = root;
    while (ref >= 0) {
      const auto node = static_cast<std::size_t>(ref);
      const double v = row[static_cast<std::size_t>(f.feature()[node])];
      const auto t = static_cast<double>(
          static_cast<float>(f.threshold()[node]));
      ref = v <= t ? f.left(node) : f.right(node);
    }
    const auto leaf = static_cast<std::size_t>(
        -(static_cast<std::int64_t>(ref) + 1));
    const double out = f.leafValue()[leaf];
    sum += out;
    votes.push_back(static_cast<int>(out));
  }
  if (f.task() == vcaqoe::ml::TreeTask::kRegression) {
    return sum / static_cast<double>(f.treeCount());
  }
  // Majority, ties to the smallest class id.
  std::sort(votes.begin(), votes.end());
  int best = 0;
  int bestVotes = -1;
  int run = 0;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    run = (i > 0 && votes[i] == votes[i - 1]) ? run + 1 : 1;
    if (run > bestVotes) {
      bestVotes = run;
      best = votes[i];
    }
  }
  return best;
}

}  // namespace

TEST(SimdForestLayout, BlockedBatchTraversalIsBitIdenticalToRowWise) {
  std::mt19937 rng(20230909);
  for (const bool classification : {false, true}) {
    const auto forest = randomForest(rng, 15, 6, 12, classification);
    for (const std::size_t batch : {1u, 2u, 7u, 8u, 9u, 20u, 64u}) {
      const auto rows = edgeRows(forest, rng, static_cast<int>(batch));
      std::vector<vcaqoe::ml::FeatureRow> spans(rows.begin(), rows.end());
      std::vector<double> rowWise(batch);
      std::vector<double> blocked(batch);
      forest.predictBatch(spans, rowWise,
                          vcaqoe::ml::FlattenedForest::BatchTraversal::kRowWise);
      forest.predictBatch(spans, blocked,
                          vcaqoe::ml::FlattenedForest::BatchTraversal::kBlocked);
      for (std::size_t r = 0; r < batch; ++r) {
        EXPECT_EQ(bits(rowWise[r]), bits(blocked[r]))
            << "batch=" << batch << " row=" << r << " cls=" << classification;
        // And both equal the single-row walk.
        EXPECT_EQ(bits(forest.predict(spans[r])), bits(blocked[r]));
      }
    }
  }
}

TEST(SimdForestLayout, BreadthBlockReorderIsAPureBitIdenticalPermutation) {
  std::mt19937 rng(20230910);
  for (const bool classification : {false, true}) {
    const auto original = randomForest(rng, 9, 7, 10, classification);
    auto reordered = original;
    reordered.applyLayout({.breadthBlockOrder = true});
    ASSERT_EQ(original.internalNodeCount(), reordered.internalNodeCount());
    ASSERT_EQ(original.leafCount(), reordered.leafCount());
    EXPECT_FALSE(reordered.quantized());
    const auto rows = edgeRows(original, rng, 48);
    std::vector<vcaqoe::ml::FeatureRow> spans(rows.begin(), rows.end());
    std::vector<double> a(spans.size());
    std::vector<double> b(spans.size());
    original.predictBatch(spans, a);
    reordered.predictBatch(spans, b);
    for (std::size_t r = 0; r < spans.size(); ++r) {
      EXPECT_EQ(bits(a[r]), bits(b[r])) << "row " << r;
      EXPECT_EQ(bits(original.predict(spans[r])),
                bits(reordered.predict(spans[r])));
    }
  }
}

TEST(SimdForestLayout, QuantizedEvalMatchesTheDocumentedOracleExactly) {
  std::mt19937 rng(20230911);
  for (const bool classification : {false, true}) {
    auto forest = randomForest(rng, 11, 6, 9, classification);
    auto quantizedForest = forest;
    quantizedForest.applyLayout(
        {.quantizeThresholds = true, .breadthBlockOrder = true});
    EXPECT_TRUE(quantizedForest.quantized());
    const auto rows = edgeRows(forest, rng, 64);
    std::vector<vcaqoe::ml::FeatureRow> spans(rows.begin(), rows.end());
    std::vector<double> batch(spans.size());
    quantizedForest.predictBatch(spans, batch);
    for (std::size_t r = 0; r < spans.size(); ++r) {
      // The quantized walk is *exactly* "compare against the float-rounded
      // threshold" — not an approximation with a fudge factor. The oracle
      // reads the original arena, so this also pins reorder+quantize
      // composition.
      const double expect = quantizedOracle(forest, spans[r]);
      EXPECT_EQ(bits(expect), bits(quantizedForest.predict(spans[r])))
          << "row " << r << " cls=" << classification;
      EXPECT_EQ(bits(expect), bits(batch[r])) << "row " << r;
    }
  }
}

TEST(SimdForestLayout, QuantizedToleranceIsBoundedByLeafRange) {
  // Coarse but documented: a quantized prediction can only move within the
  // forest's leaf-value range (a threshold flip swaps subtrees, never
  // invents values outside the leaves).
  std::mt19937 rng(20230912);
  const auto forest = randomForest(rng, 13, 6, 9);
  auto quantizedForest = forest;
  quantizedForest.applyLayout({.quantizeThresholds = true});
  const auto [lo, hi] = std::minmax_element(forest.leafValue().begin(),
                                            forest.leafValue().end());
  const auto rows = edgeRows(forest, rng, 64);
  for (const auto& row : rows) {
    const double full = forest.predict(row);
    const double quant = quantizedForest.predict(row);
    EXPECT_LE(std::abs(full - quant), *hi - *lo);
  }
}

TEST(SimdForestLayout, QuantizeRejectsFeatureIndexPastInt16) {
  // One wide split: feature index 40000 cannot live in the int16 layout.
  std::vector<std::int32_t> roots{0};
  std::vector<std::int32_t> feature{40000};
  std::vector<double> threshold{1.0};
  std::vector<std::int32_t> left{-1};
  std::vector<std::int32_t> right{-2};
  std::vector<double> leafValue{1.0, 2.0};
  auto forest = vcaqoe::ml::FlattenedForest::fromParts(
      vcaqoe::ml::TreeTask::kRegression, 50000, roots, feature, threshold,
      left, right, leafValue);
  EXPECT_THROW(forest.applyLayout({.quantizeThresholds = true}),
               std::invalid_argument);
  EXPECT_FALSE(forest.quantized());
}

TEST(SimdForestLayout, QuantizedLayoutSurvivesSerializationRoundTrip) {
  std::mt19937 rng(20230913);
  auto forest = randomForest(rng, 7, 5, 8);
  forest.applyLayout({.quantizeThresholds = true});
  std::stringstream stream;
  vcaqoe::ml::saveFlattenedForest(forest, stream);
  const std::string text = stream.str();
  EXPECT_NE(std::string::npos, text.find("layout quantized"));
  auto loaded = vcaqoe::ml::loadFlattenedForest(stream);
  EXPECT_TRUE(loaded.quantized());
  const auto rows = edgeRows(forest, rng, 32);
  for (const auto& row : rows) {
    EXPECT_EQ(bits(forest.predict(row)), bits(loaded.predict(row)));
  }
}

TEST(SimdForestLayout, UnknownLayoutMarkerIsMalformed) {
  std::mt19937 rng(20230914);
  auto forest = randomForest(rng, 3, 3, 4);
  forest.applyLayout({.quantizeThresholds = true});
  std::stringstream stream;
  vcaqoe::ml::saveFlattenedForest(forest, stream);
  std::string text = stream.str();
  const auto at = text.find("layout quantized");
  ASSERT_NE(std::string::npos, at);
  text.replace(at, 16, "layout vanblocks");
  std::stringstream bad(text);
  EXPECT_THROW(vcaqoe::ml::loadFlattenedForest(bad), std::runtime_error);
}
