#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "rtp/media_kind.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::rtp {
namespace {

TEST(Rtp, EncodeProducesTwelveBytes) {
  RtpHeader h;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  EXPECT_EQ(buf.size(), kRtpHeaderSize);
  EXPECT_EQ(buf[0] >> 6, kRtpVersion);
}

TEST(Rtp, EncodeDecodeRoundTrip) {
  RtpHeader h;
  h.payloadType = 102;
  h.marker = true;
  h.sequenceNumber = 0xBEEF;
  h.timestamp = 0x12345678;
  h.ssrc = 0xCAFEBABE;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Rtp, MarkerBitIndependentOfPayloadType) {
  RtpHeader h;
  h.payloadType = 127;  // all PT bits set
  h.marker = false;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->marker);
  EXPECT_EQ(decoded->payloadType, 127);
}

TEST(Rtp, DecodeRejectsShortBuffer) {
  const std::vector<std::uint8_t> buf(11, 0x80);
  EXPECT_FALSE(decode(buf).has_value());
}

TEST(Rtp, DecodeRejectsNonRtpVersions) {
  // DTLS handshake byte (22 = 0b00010110): version bits are 0.
  std::vector<std::uint8_t> dtls(13, 0);
  dtls[0] = 22;
  EXPECT_FALSE(decode(dtls).has_value());
  // STUN starts with 0x00.
  std::vector<std::uint8_t> stun(13, 0);
  EXPECT_FALSE(decode(stun).has_value());
}

class RtpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RtpRoundTrip, RandomHeaders) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    RtpHeader h;
    h.payloadType = static_cast<std::uint8_t>(rng.uniformInt(0, 127));
    h.marker = rng.bernoulli(0.5);
    h.sequenceNumber = static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
    h.timestamp = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFFFFFFLL));
    h.ssrc = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFFFFFFLL));
    std::vector<std::uint8_t> buf;
    encode(h, buf);
    const auto decoded = decode(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, h);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundTrip, ::testing::Range(1, 6));

TEST(Rtp, SequenceDistanceSimple) {
  EXPECT_EQ(sequenceDistance(10, 15), 5);
  EXPECT_EQ(sequenceDistance(15, 10), -5);
  EXPECT_EQ(sequenceDistance(7, 7), 0);
}

TEST(Rtp, SequenceDistanceWrapsAround) {
  EXPECT_EQ(sequenceDistance(65535, 0), 1);
  EXPECT_EQ(sequenceDistance(65534, 2), 4);
  EXPECT_EQ(sequenceDistance(0, 65535), -1);
  EXPECT_EQ(sequenceDistance(2, 65530), -8);
}

TEST(Rtp, TimestampDeltaToNs) {
  // 90 kHz video clock: 3000 ticks = 1/30 s.
  EXPECT_EQ(timestampDeltaToNs(0, 3000, kVideoClockHz),
            common::kNanosPerSecond / 30);
  EXPECT_EQ(timestampDeltaToNs(3000, 0, kVideoClockHz),
            -common::kNanosPerSecond / 30);
  // 48 kHz audio clock: 960 ticks = 20 ms.
  EXPECT_EQ(timestampDeltaToNs(0, 960, kAudioClockHz),
            common::millisToNs(20.0));
}

TEST(Rtp, TimestampDeltaUnwrapsModulo) {
  const std::uint32_t nearWrap = 0xFFFFFF00u;
  const std::uint32_t afterWrap = 0x00000200u;
  const auto delta = timestampDeltaToNs(nearWrap, afterWrap, kVideoClockHz);
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, common::kNanosPerSecond);
}

TEST(MediaKind, ToStringCovers) {
  EXPECT_EQ(toString(MediaKind::kAudio), "audio");
  EXPECT_EQ(toString(MediaKind::kVideo), "video");
  EXPECT_EQ(toString(MediaKind::kVideoRtx), "video-rtx");
  EXPECT_EQ(toString(MediaKind::kControl), "control");
}

TEST(MediaKind, PayloadTypeMapRoundTrip) {
  PayloadTypeMap map;
  map.assign(111, MediaKind::kAudio);
  map.assign(102, MediaKind::kVideo);
  map.assign(103, MediaKind::kVideoRtx);
  EXPECT_EQ(map.kindOf(111), MediaKind::kAudio);
  EXPECT_EQ(map.kindOf(102), MediaKind::kVideo);
  EXPECT_EQ(map.kindOf(103), MediaKind::kVideoRtx);
  EXPECT_FALSE(map.kindOf(99).has_value());
  EXPECT_EQ(map.payloadTypeOf(MediaKind::kVideo), 102);
  EXPECT_FALSE(map.payloadTypeOf(MediaKind::kControl).has_value());
}

TEST(MediaKind, ReassignOverwrites) {
  PayloadTypeMap map;
  map.assign(100, MediaKind::kVideo);
  map.assign(100, MediaKind::kAudio);
  EXPECT_EQ(map.kindOf(100), MediaKind::kAudio);
}

}  // namespace
}  // namespace vcaqoe::rtp
