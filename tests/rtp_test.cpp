#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "rtp/media_kind.hpp"
#include "rtp/rtp.hpp"

namespace vcaqoe::rtp {
namespace {

TEST(Rtp, EncodeProducesTwelveBytes) {
  RtpHeader h;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  EXPECT_EQ(buf.size(), kRtpHeaderSize);
  EXPECT_EQ(buf[0] >> 6, kRtpVersion);
}

TEST(Rtp, EncodeDecodeRoundTrip) {
  RtpHeader h;
  h.payloadType = 102;
  h.marker = true;
  h.sequenceNumber = 0xBEEF;
  h.timestamp = 0x12345678;
  h.ssrc = 0xCAFEBABE;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Rtp, MarkerBitIndependentOfPayloadType) {
  RtpHeader h;
  h.payloadType = 127;  // all PT bits set
  h.marker = false;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->marker);
  EXPECT_EQ(decoded->payloadType, 127);
}

TEST(Rtp, DecodeRejectsShortBuffer) {
  const std::vector<std::uint8_t> buf(11, 0x80);
  EXPECT_FALSE(decode(buf).has_value());
}

TEST(Rtp, DecodeRejectsNonRtpVersions) {
  // DTLS handshake byte (22 = 0b00010110): version bits are 0.
  std::vector<std::uint8_t> dtls(13, 0);
  dtls[0] = 22;
  EXPECT_FALSE(decode(dtls).has_value());
  // STUN starts with 0x00.
  std::vector<std::uint8_t> stun(13, 0);
  EXPECT_FALSE(decode(stun).has_value());
}

class RtpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RtpRoundTrip, RandomHeaders) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    RtpHeader h;
    h.payloadType = static_cast<std::uint8_t>(rng.uniformInt(0, 127));
    h.marker = rng.bernoulli(0.5);
    h.sequenceNumber = static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
    h.timestamp = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFFFFFFLL));
    h.ssrc = static_cast<std::uint32_t>(rng.uniformInt(0, 0xFFFFFFFFLL));
    std::vector<std::uint8_t> buf;
    encode(h, buf);
    const auto decoded = decode(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, h);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundTrip, ::testing::Range(1, 6));

TEST(Rtp, RoundTripAtSequenceWraparound) {
  // The two edge values of the modulo-2^16 sequence space, plus neighbours:
  // encode/decode must be exact, not merely distance-consistent.
  for (const std::uint16_t seq : {std::uint16_t{65534}, std::uint16_t{65535},
                                  std::uint16_t{0}, std::uint16_t{1}}) {
    RtpHeader h;
    h.sequenceNumber = seq;
    h.timestamp = 0xFFFFFFFFu;  // max timestamp rides along
    std::vector<std::uint8_t> buf;
    encode(h, buf);
    const auto decoded = decode(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->sequenceNumber, seq);
    EXPECT_EQ(decoded->timestamp, 0xFFFFFFFFu);
  }
}

TEST(Rtp, MarkerDoesNotBleedIntoPayloadTypeAtWraparound) {
  // M is the top bit of the byte that also holds PT; the worst case is
  // marker set with all PT bits set at the sequence wrap point.
  RtpHeader h;
  h.marker = true;
  h.payloadType = 127;
  h.sequenceNumber = 65535;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  EXPECT_EQ(buf[1], 0xFF);
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->marker);
  EXPECT_EQ(decoded->payloadType, 127);
  EXPECT_EQ(decoded->sequenceNumber, 65535);
}

TEST(Rtp, DecodeToleratesPaddingBit) {
  // RFC 3550 §5.1: P only announces trailing padding octets; the fixed
  // header layout is unchanged. A passive monitor must still parse padded
  // media packets (it never walks to the payload end anyway).
  RtpHeader h;
  h.payloadType = 96;
  h.marker = true;
  h.sequenceNumber = 65535;
  h.timestamp = 0xDEADBEEF;
  h.ssrc = 0x01020304;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  buf[0] |= 0x20;  // set P
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(Rtp, DecodeToleratesExtensionAndCsrcBits) {
  // X and CC affect what follows the fixed 12 bytes, not the fixed bytes
  // themselves; the fixed fields must still parse.
  RtpHeader h;
  h.sequenceNumber = 4242;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  buf[0] |= 0x10;  // X
  buf[0] |= 0x03;  // CC = 3
  const auto decoded = decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequenceNumber, 4242);
}

TEST(Rtp, DecodeExactlyTwelveBytesBoundary) {
  RtpHeader h;
  h.ssrc = 0xAABBCCDD;
  std::vector<std::uint8_t> buf;
  encode(h, buf);
  ASSERT_EQ(buf.size(), kRtpHeaderSize);
  EXPECT_TRUE(decode(buf).has_value());  // exactly 12: accept
  buf.pop_back();
  EXPECT_FALSE(decode(buf).has_value());  // 11: reject
}

TEST(Rtp, SequenceDistanceHalfRangeBoundary) {
  // The ambiguity point of the modulo space: +32767 is "ahead"; a distance
  // of exactly half the ring is unrepresentable as "ahead" and collapses to
  // -32768 in both directions (two's-complement int16 window, the RFC 3550
  // §A.1 convention).
  EXPECT_EQ(sequenceDistance(0, 32767), 32767);
  EXPECT_EQ(sequenceDistance(0, 32768), -32768);
  EXPECT_EQ(sequenceDistance(32768, 0), -32768);
  EXPECT_EQ(sequenceDistance(1, 32768), 32767);
}

TEST(Rtp, TimestampDeltaAcrossExactWrap) {
  // 0xFFFFFFFF -> 0 is one tick forward, not a 2^32 jump backwards.
  EXPECT_EQ(timestampDeltaToNs(0xFFFFFFFFu, 0u, kVideoClockHz),
            common::kNanosPerSecond / 90'000);
}

TEST(Rtp, SequenceDistanceSimple) {
  EXPECT_EQ(sequenceDistance(10, 15), 5);
  EXPECT_EQ(sequenceDistance(15, 10), -5);
  EXPECT_EQ(sequenceDistance(7, 7), 0);
}

TEST(Rtp, SequenceDistanceWrapsAround) {
  EXPECT_EQ(sequenceDistance(65535, 0), 1);
  EXPECT_EQ(sequenceDistance(65534, 2), 4);
  EXPECT_EQ(sequenceDistance(0, 65535), -1);
  EXPECT_EQ(sequenceDistance(2, 65530), -8);
}

TEST(Rtp, TimestampDeltaToNs) {
  // 90 kHz video clock: 3000 ticks = 1/30 s.
  EXPECT_EQ(timestampDeltaToNs(0, 3000, kVideoClockHz),
            common::kNanosPerSecond / 30);
  EXPECT_EQ(timestampDeltaToNs(3000, 0, kVideoClockHz),
            -common::kNanosPerSecond / 30);
  // 48 kHz audio clock: 960 ticks = 20 ms.
  EXPECT_EQ(timestampDeltaToNs(0, 960, kAudioClockHz),
            common::millisToNs(20.0));
}

TEST(Rtp, TimestampDeltaUnwrapsModulo) {
  const std::uint32_t nearWrap = 0xFFFFFF00u;
  const std::uint32_t afterWrap = 0x00000200u;
  const auto delta = timestampDeltaToNs(nearWrap, afterWrap, kVideoClockHz);
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, common::kNanosPerSecond);
}

TEST(MediaKind, ToStringCovers) {
  EXPECT_EQ(toString(MediaKind::kAudio), "audio");
  EXPECT_EQ(toString(MediaKind::kVideo), "video");
  EXPECT_EQ(toString(MediaKind::kVideoRtx), "video-rtx");
  EXPECT_EQ(toString(MediaKind::kControl), "control");
}

TEST(MediaKind, PayloadTypeMapRoundTrip) {
  PayloadTypeMap map;
  map.assign(111, MediaKind::kAudio);
  map.assign(102, MediaKind::kVideo);
  map.assign(103, MediaKind::kVideoRtx);
  EXPECT_EQ(map.kindOf(111), MediaKind::kAudio);
  EXPECT_EQ(map.kindOf(102), MediaKind::kVideo);
  EXPECT_EQ(map.kindOf(103), MediaKind::kVideoRtx);
  EXPECT_FALSE(map.kindOf(99).has_value());
  EXPECT_EQ(map.payloadTypeOf(MediaKind::kVideo), 102);
  EXPECT_FALSE(map.payloadTypeOf(MediaKind::kControl).has_value());
}

TEST(MediaKind, ReassignOverwrites) {
  PayloadTypeMap map;
  map.assign(100, MediaKind::kVideo);
  map.assign(100, MediaKind::kAudio);
  EXPECT_EQ(map.kindOf(100), MediaKind::kAudio);
}

}  // namespace
}  // namespace vcaqoe::rtp
