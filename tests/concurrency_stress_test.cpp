#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/time.hpp"
#include "core/streaming.hpp"
#include "engine/multi_flow_engine.hpp"
#include "engine/spsc_ring.hpp"
#include "engine/synthetic.hpp"
#include "inference/backends.hpp"
#include "inference/model_registry.hpp"
#include "ingest/live_capture.hpp"
#include "ml/flattened_forest.hpp"
#include "ml/serialize.hpp"
#include "netflow/packet.hpp"

/// Purpose-built two-thread (and more) stress tests for the concurrent
/// substrate, written to run under TSan (the CI `tsan` job) as well as ASan
/// and plain builds. The determinism suites exercise these pieces through
/// the engine; here each one is tortured directly, at capacity edges and
/// with deliberately adversarial interleavings, with the invariants
/// (FIFO order, exactly-once delivery, exactly-one disk load) asserted
/// explicitly.
namespace vcaqoe::engine {
namespace {

/// Non-trivial payload so moves through the ring are exercised, not just
/// scalar copies.
struct RingItem {
  std::uint64_t seq = 0;
  std::vector<std::uint32_t> payload;
};

TEST(SpscRingStress, FifoNoLossNoDupAcrossCapacityEdges) {
  // 0 and 1 clamp to the 2-slot minimum (maximal producer/consumer
  // contention); 3 and 1000 round up past non-powers of two; 1024 is the
  // pow2 fast path.
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{1},
                                     std::size_t{2}, std::size_t{3},
                                     std::size_t{4}, std::size_t{1000},
                                     std::size_t{1024}}) {
    SCOPED_TRACE("capacity=" + std::to_string(capacity));
    SpscRing<RingItem> ring(capacity);
    constexpr std::uint64_t kItems = 8'000;

    std::thread producer([&ring] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        RingItem item;
        item.seq = i;
        item.payload = {static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(i >> 32), 0xABCDu};
        while (!ring.tryPush(std::move(item))) std::this_thread::yield();
      }
    });

    // Consumer (this thread): every item arrives exactly once, in order.
    std::uint64_t next = 0;
    while (next < kItems) {
      auto item = ring.tryPop();
      if (!item) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(item->seq, next);
      ASSERT_EQ(item->payload.size(), 3u);
      ASSERT_EQ(item->payload[0], static_cast<std::uint32_t>(next));
      ++next;
    }
    producer.join();
    EXPECT_FALSE(ring.tryPop().has_value());  // nothing invented
    EXPECT_EQ(ring.sizeApprox(), 0u);
  }
}

TEST(SpscRingStress, FailedPushLeavesValueIntactForRetry) {
  // Regression: tryPush used to take its argument by value, so a push that
  // hit a full ring destroyed the payload before the capacity check and the
  // back-pressure retry (the engine's pushResult loop) delivered a
  // moved-from shell. A failed push must leave the value untouched.
  SpscRing<RingItem> ring(2);
  ASSERT_TRUE(ring.tryPush(RingItem{0, {0xA}}));
  ASSERT_TRUE(ring.tryPush(RingItem{1, {0xB}}));

  RingItem blocked;
  blocked.seq = 2;
  blocked.payload = {1, 2, 3};
  ASSERT_FALSE(ring.tryPush(std::move(blocked)));
  EXPECT_EQ(blocked.seq, 2u);
  ASSERT_EQ(blocked.payload.size(), 3u);  // survived the failed push

  ASSERT_TRUE(ring.tryPop().has_value());
  ASSERT_TRUE(ring.tryPush(std::move(blocked)));  // retry succeeds intact
  auto item = ring.tryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->seq, 1u);
  item = ring.tryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->seq, 2u);
  EXPECT_EQ(item->payload, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(SpscRingStress, BurstyConsumerKeepsOrderUnderBackpressure) {
  // A consumer that drains in bursts parks the producer on a full ring for
  // long stretches — the interleaving where a stale cached index would
  // lose or duplicate a slot.
  SpscRing<RingItem> ring(2);
  constexpr std::uint64_t kItems = 8'000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      RingItem item;
      item.seq = i;
      while (!ring.tryPush(std::move(item))) std::this_thread::yield();
    }
  });
  std::uint64_t next = 0;
  while (next < kItems) {
    if ((next & 0x3FF) == 0) std::this_thread::yield();  // let it back up
    auto item = ring.tryPop();
    if (!item) continue;
    ASSERT_EQ(item->seq, next);
    ++next;
  }
  producer.join();
}

class ModelRegistryStress : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("vcaqoe_registry_stress_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void saveModel(const std::string& vca, inference::QoeTarget target,
                 double constant) {
    const auto vcaDir = std::filesystem::path(dir_) / vca;
    std::filesystem::create_directories(vcaDir);
    ml::saveFlattenedForestFile(
        ml::FlattenedForest(syntheticForest(1, 0, constant)),
        (vcaDir / (std::string(toString(target)) +
                   ml::kFlatForestFileExtension))
            .string());
  }

  std::string dir_;
};

TEST_F(ModelRegistryStress, ConcurrentResolveLoadsFromDiskExactlyOnce) {
  using inference::QoeTarget;
  saveModel("teams", QoeTarget::kFrameRate, 24.0);
  saveModel("teams", QoeTarget::kBitrateKbps, 800.0);
  saveModel("meet", QoeTarget::kFrameRate, 30.0);

  inference::ModelRegistryOptions options;
  options.modelDir = dir_;
  inference::ModelRegistry registry(options);

  // Every thread races the same cold keys: the double-checked upgrade in
  // `lookupOrLoad` must serialize the disk probe to exactly one load per
  // key, and every racer must observe the same backend instance.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::shared_ptr<const inference::InferenceBackend>> first(
      kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> gate{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.fetch_add(1);
      while (gate.load() < kThreads) std::this_thread::yield();
      for (int round = 0; round < kRounds; ++round) {
        auto teams = registry.resolve("teams", QoeTarget::kFrameRate);
        ASSERT_NE(teams, nullptr);
        if (!first[static_cast<std::size_t>(t)]) {
          first[static_cast<std::size_t>(t)] = teams;
        }
        ASSERT_EQ(teams, first[static_cast<std::size_t>(t)]);
        ASSERT_NE(registry.resolve("meet", QoeTarget::kFrameRate), nullptr);
        // Missing target: fallback via the negative cache, never a reprobe.
        ASSERT_EQ(registry.resolve("meet", QoeTarget::kBitrateKbps),
                  registry.fallback());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first[static_cast<std::size_t>(t)], first[0]);
  }
  const auto stats = registry.stats();
  EXPECT_EQ(stats.loads, 2u);  // teams/frame_rate + meet/frame_rate
  EXPECT_EQ(stats.loadFailures, 0u);
  // Exactly one resolution per (thread, round, target); each was a hit or
  // a miss except the two that loaded.
  const std::uint64_t resolutions = 3ull * kThreads * kRounds;
  EXPECT_EQ(stats.hits + stats.misses + stats.loads, resolutions);
}

TEST_F(ModelRegistryStress, ResolveSetRacesRegistrationChurn) {
  using inference::QoeTarget;
  saveModel("teams", QoeTarget::kFrameRate, 24.0);

  inference::ModelRegistryOptions options;
  options.modelDir = dir_;
  inference::ModelRegistry registry(options);

  // Readers hammer the memoized composite path while a writer churns
  // registrations (each one invalidates the composite cache, forcing the
  // readers through the rebuild-under-write-lock path). The reader
  // invariant: a composite never comes back null and always serves the
  // frame-rate target. Readers run a fixed iteration count so the test's
  // runtime is bounded even on a single-CPU box; the writer spins only as
  // long as the readers do.
  std::atomic<bool> stop{false};
  constexpr int kReaders = 3;
  constexpr int kReaderRounds = 200;
  const std::vector<QoeTarget> targets = {QoeTarget::kFrameRate,
                                          QoeTarget::kBitrateKbps};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.registerBackend(
          "synthetic", QoeTarget::kBitrateKbps,
          std::make_shared<inference::ForestBackend>(
              syntheticForest(1, 0, static_cast<double>(round++)),
              QoeTarget::kBitrateKbps, "churn"));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      const std::vector<double> row(14, 0.0);
      for (int round = 0; round < kReaderRounds; ++round) {
        auto composed = registry.resolveSet("teams", targets);
        ASSERT_NE(composed, nullptr);
        inference::WindowContext context;
        context.features = row;
        inference::PredictionSet out;
        composed->predictWindow(context, out);
        ASSERT_EQ(out.get(QoeTarget::kFrameRate), std::optional<double>(24.0));
      }
    });
  }
  for (auto& thread : readers) thread.join();
  stop.store(true);
  writer.join();
  EXPECT_NE(registry.resolve("synthetic", QoeTarget::kBitrateKbps), nullptr);
}

/// The engine stressed the way a live deployment drives it: tiny result
/// rings (max backpressure), tiny dispatch batches (max queue traffic),
/// batched inference with deadline flushes, pump() interleaved with the
/// feed, idle eviction on, and a finish() that lands while the workers are
/// mid-stream. Output must still be bit-identical to a 1-worker engine
/// given the exact same call sequence.
TEST(EngineStress, PumpedBackpressuredFeedMatchesSingleWorker) {
  constexpr int kFlows = 16;
  constexpr int kPacketsPerFlow = 220;
  std::vector<netflow::FlowKey> keys;
  std::vector<std::pair<std::uint32_t, netflow::Packet>> stream;
  for (int f = 0; f < kFlows; ++f) {
    keys.push_back(syntheticFlowKey(static_cast<std::uint32_t>(f)));
    for (const auto& packet :
         syntheticFlowTrace(11u + static_cast<std::uint64_t>(f),
                            kPacketsPerFlow, /*startNs=*/f * 41'000)) {
      stream.emplace_back(static_cast<std::uint32_t>(f), packet);
    }
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrivalNs < b.second.arrivalNs;
                   });

  const auto run = [&](int workers) {
    auto registry = std::make_shared<inference::ModelRegistry>();
    registry->registerBackend(
        "synthetic", inference::QoeTarget::kFrameRate,
        std::make_shared<inference::ForestBackend>(
            syntheticForest(2, 2, 27.0), inference::QoeTarget::kFrameRate,
            "stress"));

    EngineOptions options;
    options.numWorkers = workers;
    options.dispatchBatch = 2;
    options.resultRingCapacity = 0;  // clamps to 2: constant backpressure
    options.registry = registry;
    options.vcaResolver = [](const netflow::FlowKey&) {
      return std::string("synthetic");
    };
    options.idleTimeoutNs = 800 * common::kNanosPerMilli;
    options.inferenceBatch = 8;
    options.inferenceFlushNs = scaledInferenceFlushNs(8);

    MultiFlowEngine engine(options);
    std::vector<EngineResult> results;
    std::size_t fed = 0;
    for (const auto& [flow, packet] : stream) {
      engine.onPacket(keys[flow], packet);
      ++fed;
      // Same pump/poll cadence on every run: both are deterministic
      // functions of the feed position, so outputs stay comparable.
      if (fed % 97 == 0) engine.pump(packet.arrivalNs);
      if (fed % 311 == 0) engine.poll(results);
    }
    for (auto& result : engine.finish()) results.push_back(std::move(result));

    // Canonical (flow, window) order for comparison across worker counts.
    std::stable_sort(results.begin(), results.end(),
                     [](const auto& a, const auto& b) {
                       if (a.flow != b.flow) return a.flow < b.flow;
                       return a.output.window < b.output.window;
                     });
    return results;
  };

  const auto sequential = run(1);
  const auto sharded = run(4);
  ASSERT_GT(sequential.size(), 0u);
  ASSERT_EQ(sharded.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sharded[i].flow, sequential[i].flow);
    ASSERT_EQ(sharded[i].output.window, sequential[i].output.window);
    ASSERT_EQ(sharded[i].output.features, sequential[i].output.features);
    ASSERT_TRUE(sharded[i].output.predictions ==
                sequential[i].output.predictions);
  }
}

/// Migrate-under-fire: adaptive placement AND live flow migration with
/// tiny backpressured rings, cross-flow batching, pump/poll churn, and a
/// one-elephant skew that keeps the imbalance trigger firing — the whole
/// handover protocol (quiesce ticket, parked packets, stash drain,
/// estimator rebind on the target worker) runs many times under TSan.
/// Output must still match the single-worker run exactly.
TEST(EngineStress, MigrationUnderBackpressureMatchesSingleWorker) {
  constexpr int kFlows = 10;
  std::vector<netflow::FlowKey> keys;
  std::vector<std::pair<std::uint32_t, netflow::Packet>> stream;
  for (int f = 0; f < kFlows; ++f) {
    keys.push_back(syntheticFlowKey(static_cast<std::uint32_t>(f)));
    // Flow 0 is the elephant (10x the packets of every mouse).
    const int packets = f == 0 ? 3000 : 300;
    for (const auto& packet :
         syntheticFlowTrace(23u + static_cast<std::uint64_t>(f), packets,
                            /*startNs=*/f * 53'000)) {
      stream.emplace_back(static_cast<std::uint32_t>(f), packet);
    }
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.arrivalNs < b.second.arrivalNs;
                   });

  std::uint64_t shardedMigrations = 0;
  const auto run = [&](int workers) {
    auto registry = std::make_shared<inference::ModelRegistry>();
    registry->registerBackend(
        "synthetic", inference::QoeTarget::kFrameRate,
        std::make_shared<inference::ForestBackend>(
            syntheticForest(2, 2, 27.0), inference::QoeTarget::kFrameRate,
            "stress"));

    EngineOptions options;
    options.numWorkers = workers;
    options.dispatchBatch = 4;
    options.resultRingCapacity = 0;  // clamps to 2: constant backpressure
    options.registry = registry;
    options.vcaResolver = [](const netflow::FlowKey&) {
      return std::string("synthetic");
    };
    options.placement = Placement::kLeastLoaded;
    options.migrateFlows = true;
    options.migrateImbalance = 1.0;  // migrate on any imbalance
    options.inferenceBatch = 4;
    options.inferenceFlushNs = scaledInferenceFlushNs(4);

    MultiFlowEngine engine(options);
    std::vector<EngineResult> results;
    std::size_t fed = 0;
    for (const auto& [flow, packet] : stream) {
      engine.onPacket(keys[flow], packet);
      ++fed;
      if (fed % 89 == 0) engine.pump(packet.arrivalNs);
      if (fed % 173 == 0) engine.poll(results);
    }
    for (auto& result : engine.finish()) results.push_back(std::move(result));
    if (workers > 1) shardedMigrations = engine.stats().migrations;

    std::stable_sort(results.begin(), results.end(),
                     [](const auto& a, const auto& b) {
                       if (a.flow != b.flow) return a.flow < b.flow;
                       return a.output.window < b.output.window;
                     });
    return results;
  };

  const auto sequential = run(1);
  const auto sharded = run(4);
  // The point of the test: the migration path really ran.
  EXPECT_GT(shardedMigrations, 0u);
  ASSERT_GT(sequential.size(), 0u);
  ASSERT_EQ(sharded.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sharded[i].flow, sequential[i].flow);
    ASSERT_EQ(sharded[i].output.window, sequential[i].output.window);
    ASSERT_EQ(sharded[i].output.features, sequential[i].output.features);
    ASSERT_TRUE(sharded[i].output.predictions ==
                sequential[i].output.predictions);
  }
}

TEST(EngineStress, ImmediateFinishWhileWorkersBlockedOnFullRings) {
  // No poll() at all during the feed: every worker ends up parked on a
  // full 2-slot ring, and finish() must unblock them by draining while the
  // pool winds down.
  EngineOptions options;
  options.numWorkers = 4;
  options.dispatchBatch = 1;
  options.resultRingCapacity = 0;  // clamps to 2
  MultiFlowEngine engine(options);
  // ~2500 packets at the synthetic trace's ~1.35ms mean spacing span ~3.4s
  // of stream time, so every flow emits several 1s windows — more results
  // than the 2-slot rings can hold, guaranteeing parked producers.
  for (int f = 0; f < 8; ++f) {
    const auto key = syntheticFlowKey(static_cast<std::uint32_t>(f));
    for (const auto& packet :
         syntheticFlowTrace(99u + static_cast<std::uint64_t>(f), 2500,
                            /*startNs=*/0)) {
      engine.onPacket(key, packet);
    }
  }
  const auto results = engine.finish();
  EXPECT_GT(results.size(), 16u);  // > total ring slots: workers had to park
}

TEST(LiveCaptureStress, ProducerConsumerHandoffDeliversEverythingOnce) {
  ingest::LiveCaptureStub capture;
  constexpr std::uint64_t kPackets = 30'000;
  std::thread producer([&capture] {
    netflow::FlowKey flow = syntheticFlowKey(0);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      netflow::Packet packet;
      packet.arrivalNs = static_cast<common::TimeNs>(i);
      packet.sizeBytes = 100;
      capture.push(flow, packet);
    }
    capture.close();
  });
  ingest::SourcePacket out;
  std::uint64_t received = 0;
  while (capture.next(out)) {
    ASSERT_EQ(out.packet.arrivalNs, static_cast<common::TimeNs>(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kPackets);
  EXPECT_EQ(capture.queued(), 0u);
}

}  // namespace
}  // namespace vcaqoe::engine
