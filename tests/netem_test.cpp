#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "netem/conditions.hpp"
#include "netem/link.hpp"

namespace vcaqoe::netem {
namespace {

// ---------------------------------------------------------------- schedule

TEST(Schedule, ConstantHoldsValue) {
  SecondCondition c;
  c.throughputKbps = 1234.0;
  const auto schedule = ConditionSchedule::constant(c, 5);
  EXPECT_EQ(schedule.durationSec(), 5u);
  EXPECT_DOUBLE_EQ(schedule.at(0).throughputKbps, 1234.0);
  EXPECT_DOUBLE_EQ(schedule.at(4 * common::kNanosPerSecond).throughputKbps,
                   1234.0);
}

TEST(Schedule, LookupClampsPastEnd) {
  std::vector<SecondCondition> seconds(3);
  seconds[2].delayMs = 99.0;
  const ConditionSchedule schedule(std::move(seconds));
  EXPECT_DOUBLE_EQ(schedule.at(100 * common::kNanosPerSecond).delayMs, 99.0);
}

TEST(Schedule, EmptyScheduleReturnsDefault) {
  const ConditionSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_GT(schedule.at(0).throughputKbps, 0.0);
}

TEST(Schedule, PerSecondLookup) {
  std::vector<SecondCondition> seconds(3);
  seconds[0].lossRate = 0.1;
  seconds[1].lossRate = 0.2;
  seconds[2].lossRate = 0.3;
  const ConditionSchedule schedule(std::move(seconds));
  EXPECT_DOUBLE_EQ(schedule.at(common::millisToNs(500.0)).lossRate, 0.1);
  EXPECT_DOUBLE_EQ(schedule.at(common::millisToNs(1500.0)).lossRate, 0.2);
  EXPECT_DOUBLE_EQ(schedule.at(common::millisToNs(2999.0)).lossRate, 0.3);
}

// ---------------------------------------------------------------- NDT

TEST(Ndt, SynthesizesRequestedDuration) {
  NdtTraceSynthesizer synth(1);
  EXPECT_EQ(synth.synthesize(45).durationSec(), 45u);
  EXPECT_EQ(synth.synthesize(0).durationSec(), 0u);
}

TEST(Ndt, ThroughputBelowTenMbps) {
  NdtTraceSynthesizer synth(7);
  for (int trace = 0; trace < 20; ++trace) {
    const auto schedule = synth.synthesize(30);
    double sum = 0.0;
    for (const auto& s : schedule.seconds()) {
      EXPECT_GE(s.throughputKbps, 100.0);
      sum += s.throughputKbps;
    }
    EXPECT_LT(sum / 30.0, 11'000.0);  // §4.2: only sub-10 Mbps traces
  }
}

TEST(Ndt, ConditionsAreDynamicAndSane) {
  NdtTraceSynthesizer synth(3);
  const auto schedule = synth.synthesize(60);
  double minTp = 1e18;
  double maxTp = 0.0;
  for (const auto& s : schedule.seconds()) {
    minTp = std::min(minTp, s.throughputKbps);
    maxTp = std::max(maxTp, s.throughputKbps);
    EXPECT_GT(s.delayMs, 0.0);
    EXPECT_GE(s.jitterMs, 0.0);
    EXPECT_GE(s.lossRate, 0.0);
    EXPECT_LE(s.lossRate, 0.5);
  }
  EXPECT_GT(maxTp, minTp);  // not a flat line
}

TEST(Ndt, DeterministicPerSeed) {
  NdtTraceSynthesizer a(11);
  NdtTraceSynthesizer b(11);
  const auto sa = a.synthesize(20);
  const auto sb = b.synthesize(20);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(sa.seconds()[i].throughputKbps,
                     sb.seconds()[i].throughputKbps);
  }
}

// ----------------------------------------------------- Table A.6 profiles

TEST(Impairments, TableA6SweepsPresent) {
  const auto& sweeps = impairmentSweeps();
  ASSERT_EQ(sweeps.size(), 5u);
  EXPECT_EQ(sweeps[0].name, "Mean Throughput");
  EXPECT_EQ(sweeps[4].name, "Packet Loss %");
  // Paper values.
  EXPECT_EQ(sweeps[0].values,
            (std::vector<double>{100, 200, 500, 1000, 2000, 4000}));
  EXPECT_EQ(sweeps[4].values, (std::vector<double>{1, 2, 5, 10, 15, 20}));
  EXPECT_EQ(sweeps[3].values.size(), 10u);
}

TEST(Impairments, LossProfileSetsOnlyLoss) {
  const auto schedule = packetLossProfile(10.0, 10);
  for (const auto& s : schedule.seconds()) {
    EXPECT_DOUBLE_EQ(s.lossRate, 0.10);
    EXPECT_DOUBLE_EQ(s.throughputKbps, 1500.0);
    EXPECT_DOUBLE_EQ(s.delayMs, 50.0);
    EXPECT_DOUBLE_EQ(s.jitterMs, 0.0);
  }
}

TEST(Impairments, LatencyJitterProfile) {
  const auto schedule = latencyStdevProfile(40.0, 5);
  for (const auto& s : schedule.seconds()) {
    EXPECT_DOUBLE_EQ(s.jitterMs, 40.0);
    EXPECT_DOUBLE_EQ(s.delayMs, 50.0);
  }
}

TEST(Impairments, ThroughputStdevProfileVaries) {
  const auto schedule = throughputStdevProfile(500.0, 30);
  common::RunningStats rs;
  for (const auto& s : schedule.seconds()) rs.add(s.throughputKbps);
  EXPECT_NEAR(rs.mean(), 1500.0, 400.0);
  EXPECT_GT(rs.stdev(), 100.0);
  // And deterministic across calls.
  const auto again = throughputStdevProfile(500.0, 30);
  EXPECT_DOUBLE_EQ(again.seconds()[7].throughputKbps,
                   schedule.seconds()[7].throughputKbps);
}

// ---------------------------------------------------------- households

TEST(Households, FifteenProfiles) {
  EXPECT_EQ(householdProfiles().size(), 15u);
}

TEST(Households, ScheduleMostlyFasterThanLab) {
  common::Rng rng(5);
  for (const auto& household : householdProfiles()) {
    const auto schedule = householdSchedule(household, 20, rng);
    EXPECT_EQ(schedule.durationSec(), 20u);
    double mean = 0.0;
    for (const auto& s : schedule.seconds()) mean += s.throughputKbps;
    mean /= 20.0;
    EXPECT_GT(mean, 5'000.0) << household.ispTier;
  }
}

// ---------------------------------------------------------------- link

ConditionSchedule cleanLink(double kbps = 50'000.0, double delayMs = 10.0) {
  SecondCondition c;
  c.throughputKbps = kbps;
  c.delayMs = delayMs;
  return ConditionSchedule::constant(c, 600);
}

TEST(Link, DeliversEverythingOnCleanLink) {
  LinkEmulator link(cleanLink(), 1);
  for (int i = 0; i < 1000; ++i) {
    const auto arrival =
        link.send(i * common::millisToNs(1.0), 1200);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_GT(*arrival, i * common::millisToNs(1.0));
  }
  EXPECT_EQ(link.stats().deliveredPackets, 1000u);
  EXPECT_EQ(link.stats().randomLosses, 0u);
  EXPECT_EQ(link.stats().queueDrops, 0u);
}

TEST(Link, AppliesPropagationDelay) {
  LinkEmulator link(cleanLink(50'000.0, 40.0), 1);
  const auto arrival = link.send(0, 1000);
  ASSERT_TRUE(arrival.has_value());
  // 40 ms propagation + 0.16 ms serialization at 50 Mbps.
  EXPECT_GE(*arrival, common::millisToNs(40.0));
  EXPECT_LT(*arrival, common::millisToNs(42.0));
}

TEST(Link, BernoulliLossRateApproximatelyHonored) {
  SecondCondition c;
  c.throughputKbps = 100'000.0;
  c.lossRate = 0.2;
  LinkEmulator link(ConditionSchedule::constant(c, 600), 7);
  const int n = 20'000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    if (link.send(i * common::microsToNs(50.0), 500)) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(n - delivered) / n, 0.2, 0.02);
}

TEST(Link, QueueDropsUnderOverload) {
  // 1 Mbps link, 250 ms buffer, offered ~10 Mbps: must tail-drop.
  LinkEmulator link(cleanLink(1'000.0, 10.0), 3);
  std::uint64_t drops = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!link.send(i * common::microsToNs(960.0), 1200)) ++drops;
  }
  EXPECT_GT(drops, 1000u);
  EXPECT_EQ(link.stats().queueDrops, drops);
}

TEST(Link, SerializationOrdersBackToBackPackets) {
  // Without jitter, FIFO service preserves order (offered load just under
  // the 5 Mbps capacity so nothing tail-drops).
  LinkEmulator link(cleanLink(5'000.0, 10.0), 9);
  common::TimeNs last = 0;
  for (int i = 0; i < 200; ++i) {
    const auto arrival = link.send(i * common::millisToNs(2.0), 1200);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_GT(*arrival, last);
    last = *arrival;
  }
}

TEST(Link, HighJitterReordersPackets) {
  SecondCondition c;
  c.throughputKbps = 100'000.0;
  c.delayMs = 20.0;
  c.jitterMs = 60.0;  // §5.4: very high jitter
  LinkEmulator link(ConditionSchedule::constant(c, 600), 11);
  int inversions = 0;
  common::TimeNs last = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto arrival = link.send(i * common::millisToNs(1.0), 800);
    ASSERT_TRUE(arrival.has_value());
    if (*arrival < last) ++inversions;
    last = *arrival;
  }
  EXPECT_GT(inversions, 100);
}

TEST(Link, QueueDelayVisible) {
  LinkEmulator link(cleanLink(1'000.0, 10.0), 5);
  for (int i = 0; i < 50; ++i) {
    link.send(0, 1200);  // all at t=0: builds ~480 ms of queue
  }
  EXPECT_GT(link.currentQueueDelay(0), common::millisToNs(100.0));
  EXPECT_EQ(link.currentQueueDelay(common::secondsToNs(100.0)), 0);
}

TEST(Link, FeedbackWindowReportsLossAndRate) {
  SecondCondition c;
  c.throughputKbps = 100'000.0;
  c.lossRate = 0.5;
  LinkEmulator link(ConditionSchedule::constant(c, 600), 13);
  for (int i = 0; i < 4000; ++i) {
    link.send(i * common::microsToNs(250.0), 1000);
  }
  link.rollFeedbackWindow(common::secondsToNs(1.0));
  EXPECT_NEAR(link.recentLossRate(), 0.5, 0.05);
  EXPECT_GT(link.recentDeliveryRateKbps(), 1000.0);
  // Second window with no traffic reports zero.
  link.rollFeedbackWindow(common::secondsToNs(2.0));
  EXPECT_DOUBLE_EQ(link.recentLossRate(), 0.0);
  EXPECT_DOUBLE_EQ(link.recentDeliveryRateKbps(), 0.0);
}

TEST(Link, DeterministicPerSeed) {
  LinkEmulator a(cleanLink(2'000.0, 15.0), 21);
  LinkEmulator b(cleanLink(2'000.0, 15.0), 21);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.send(i * common::millisToNs(2.0), 900),
              b.send(i * common::millisToNs(2.0), 900));
  }
}

// Property: delivered fraction decreases as configured loss grows.
class LossMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(LossMonotonicity, DeliveredFractionTracksConfiguredLoss) {
  SecondCondition c;
  c.throughputKbps = 100'000.0;
  c.lossRate = GetParam() / 100.0;
  LinkEmulator link(ConditionSchedule::constant(c, 600), 31);
  const int n = 8000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    if (link.send(i * common::microsToNs(100.0), 700)) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 1.0 - c.lossRate, 0.03);
}

INSTANTIATE_TEST_SUITE_P(PaperLossPoints, LossMonotonicity,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0, 15.0, 20.0));

}  // namespace
}  // namespace vcaqoe::netem
